package tvsched

import (
	"context"
	"errors"
	"testing"
	"time"

	"tvsched/internal/pipeline"
)

func TestSentinelErrors(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope", Instructions: 1000}); !errors.Is(err, ErrUnknownBenchmark) {
		t.Errorf("unknown benchmark not matchable: %v", err)
	}
	if _, err := ParseScheme("nope"); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("unknown scheme not matchable: %v", err)
	}
	// ErrBadConfig is the same sentinel the machine-configuration layer
	// wraps, so machine-geometry errors are matchable at the facade.
	bad := pipeline.DefaultConfig()
	bad.Width = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad config not matchable: %v", err)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := RunContext(ctx, Config{Instructions: 500000}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled run took %v", d)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, Config{Benchmark: "sjeng", Instructions: 50_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline: %v", err)
	}
	// The hot loop polls every 1024 cycles, so cancellation must land well
	// before a 50M-instruction run could finish.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

func TestConfigObserverSeesRetires(t *testing.T) {
	var retires, violations uint64
	cfg := Config{
		Benchmark:    "sjeng",
		Scheme:       ABS,
		VDD:          VHighFault,
		Instructions: 30000,
		Warmup:       5000,
		Observer: ObserverFunc(func(e Event) {
			switch e.Kind {
			case EventRetire:
				retires++
			case EventViolationPredicted, EventViolationActual:
				violations++
			}
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The observer is attached for warmup and the measured phase; commit
	// width lets each phase overshoot its target by a few instructions.
	total := cfg.Warmup + cfg.Instructions
	if retires < total || retires > total+16 {
		t.Fatalf("retire events %d for %d simulated instructions", retires, total)
	}
	if retires < res.Stats.Committed {
		t.Fatalf("retire events %d below committed %d", retires, res.Stats.Committed)
	}
	if violations == 0 {
		t.Fatal("no violation events at 0.97V")
	}
}

func TestCompareRespectsSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison is slow in -short mode")
	}
	run := func(seed uint64) []Comparison {
		cs, err := Compare(Config{Benchmark: "bzip2", VDD: VHighFault, Instructions: 40000, Seed: seed},
			[]Scheme{ABS})
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}
	a, b, c := run(3), run(3), run(7)
	if a[0].IPC != b[0].IPC {
		t.Fatalf("same seed, different IPC: %v vs %v", a[0].IPC, b[0].IPC)
	}
	if a[0].IPC == c[0].IPC {
		t.Fatalf("seed ignored: IPC %v for both seeds", a[0].IPC)
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Instructions: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("no progress")
	}
	if res.FaultRate != 0 {
		t.Fatal("defaults must be fault-free (nominal voltage)")
	}
	if res.Energy.TotalPJ() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestRunFaultyEnvironment(t *testing.T) {
	res, err := Run(Config{
		Benchmark:    "sjeng",
		Scheme:       FFS,
		VDD:          VHighFault,
		Instructions: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRate <= 0.02 || res.FaultRate > 0.15 {
		t.Fatalf("fault rate %v outside the 0.97V band", res.FaultRate)
	}
	if res.Coverage < 0.7 {
		t.Fatalf("TEP coverage %v too low", res.Coverage)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope", Instructions: 1000}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestParseScheme(t *testing.T) {
	s, err := ParseScheme("CDS")
	if err != nil || s != CDS {
		t.Fatalf("ParseScheme: %v %v", s, err)
	}
	if _, err := ParseScheme("zzz"); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("12 benchmarks expected, got %d", len(bs))
	}
}

func TestCompareOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison is slow in -short mode")
	}
	cs, err := Compare(Config{Benchmark: "bzip2", VDD: VHighFault, Instructions: 60000},
		[]Scheme{Razor, EP, ABS})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("3 comparisons expected")
	}
	razor, ep, abs := cs[0], cs[1], cs[2]
	if !(razor.PerfOverhead > ep.PerfOverhead && ep.PerfOverhead > abs.PerfOverhead) {
		t.Fatalf("overhead ordering broken: razor=%v ep=%v abs=%v",
			razor.PerfOverhead, ep.PerfOverhead, abs.PerfOverhead)
	}
	// The paper's headline: the proposed scheme eliminates most of the EP
	// baseline's overhead.
	if abs.PerfOverhead > ep.PerfOverhead*0.5 {
		t.Fatalf("ABS %v not well below EP %v", abs.PerfOverhead, ep.PerfOverhead)
	}
	if abs.EDOverhead > ep.EDOverhead*0.6 {
		t.Fatalf("ABS ED %v not well below EP ED %v", abs.EDOverhead, ep.EDOverhead)
	}
}

func TestRunProfileCustomWorkload(t *testing.T) {
	prof, ok := Profile("bzip2")
	if !ok {
		t.Fatal("bundled profile missing")
	}
	// Derive a more memory-bound variant of bzip2.
	prof.Name = "bzip2-membound"
	prof.DRAMRate = 0.02
	res, err := RunProfile(Config{
		Scheme: ABS, VDD: VHighFault, Instructions: 30000,
	}, prof)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{
		Benchmark: "bzip2", Scheme: ABS, VDD: VHighFault, Instructions: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC >= base.IPC {
		t.Fatalf("memory-bound variant IPC %v not below baseline %v", res.IPC, base.IPC)
	}
}

func TestRunProfileInvalid(t *testing.T) {
	var bad WorkloadProfile // zero profile fails validation
	if _, err := RunProfile(Config{Instructions: 100}, bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestRunAsmKernel(t *testing.T) {
	const kernel = `
    li   r1, 0x10000    ; base
    li   r2, 0          ; i
    li   r3, 4096       ; n
loop:
    ld   r4, 0(r1)
    addi r4, r4, 1
    st   r4, 0(r1)
    addi r1, r1, 8
    addi r2, r2, 1
    blt  r2, r3, loop
    halt
`
	res, err := RunAsm(Config{
		Scheme: ABS, VDD: VHighFault, Instructions: 20000, Warmup: 5000,
	}, kernel, func(m *AsmMachine) {
		m.SetReg(9, 7) // exercise the init hook
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Stats.Committed != 20000 {
		t.Fatalf("kernel run degenerate: %+v", res.Stats.Committed)
	}
	if res.FaultRate == 0 {
		t.Fatal("no faults at 0.97V")
	}
}

func TestRunAsmSyntaxError(t *testing.T) {
	if _, err := RunAsm(Config{Instructions: 10}, "frobnicate r1", nil); err == nil {
		t.Fatal("bad kernel accepted")
	}
}
