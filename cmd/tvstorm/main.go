// Command tvstorm runs a hazard survival campaign: every requested hazard
// scenario × base scheme × seed cell is simulated twice on the same seed —
// once with the graceful-degradation supervisor and once without — and the
// outcomes (survival, worst-window CPI, escalation counts, time-to-detect,
// time-to-recover) are reported side by side as storm-report JSON
// (schema tvsched/storm-report/v1).
//
// The report is derived entirely from simulated state, so the same flags
// always produce byte-identical output — CI compares two runs with cmp.
//
// Usage:
//
//	tvstorm                              # default campaign, JSON on stdout
//	tvstorm -list                        # list hazard scenarios
//	tvstorm -scenarios quiet,blackout -schemes Razor,ABS -out storm.json
//	tvstorm -bench sjeng -n 300000 -seeds 1,2,3
//
// tvstorm exits nonzero if any supervised cell fails to survive — an
// unsupervised twin may die (several scenarios exist to kill it), a
// supervised one must not.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tvsched/internal/core"
	"tvsched/internal/experiments"
	"tvsched/internal/hazard"
)

func main() {
	def := experiments.DefaultStormConfig()
	var (
		bench     = flag.String("bench", def.Bench, "benchmark name (see tvsim -list)")
		vdd       = flag.Float64("vdd", def.VDD, "supply voltage (hazards bite hardest at 0.97)")
		n         = flag.Uint64("n", def.Insts, "committed instructions per cell")
		warmup    = flag.Uint64("warmup", def.Warmup, "committed-instruction warmup per cell")
		horizon   = flag.Uint64("horizon", 0, "hazard scenario geometry in cycles (0 = -n)")
		window    = flag.Uint64("window", 0, "worst-window CPI window in cycles (0 = supervisor window)")
		scenarios = flag.String("scenarios", "", "comma-separated scenario names (empty = all)")
		schemes   = flag.String("schemes", "", "comma-separated base schemes (empty = Razor,EP,ABS)")
		seeds     = flag.String("seeds", "1", "comma-separated seeds")
		out       = flag.String("out", "", "write the JSON report to this file (empty = stdout)")
		list      = flag.Bool("list", false, "list hazard scenarios and exit")
		serial    = flag.Bool("serial", false, "run cells serially (report is identical either way)")
	)
	flag.Parse()

	if *list {
		for _, sc := range hazard.Scenarios() {
			fmt.Printf("%-14s %s\n", sc.Name, sc.Description)
		}
		return
	}

	cfg := def
	cfg.Bench = *bench
	cfg.VDD = *vdd
	cfg.Insts = *n
	cfg.Warmup = *warmup
	cfg.Horizon = *horizon
	cfg.Window = *window
	cfg.Parallel = !*serial
	if *scenarios != "" {
		cfg.Scenarios = strings.Split(*scenarios, ",")
	}
	if *schemes != "" {
		for _, name := range strings.Split(*schemes, ",") {
			var s core.Scheme
			if err := s.UnmarshalText([]byte(strings.TrimSpace(name))); err != nil {
				fatal(err)
			}
			cfg.Schemes = append(cfg.Schemes, s)
		}
	}
	for _, f := range strings.Split(*seeds, ",") {
		seed, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad seed %q: %v", f, err))
		}
		cfg.Seeds = append(cfg.Seeds, seed)
	}

	rep, err := experiments.RunStorm(context.Background(), cfg)
	if err != nil {
		fatal(err)
	}

	printSummary(rep)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tvstorm: report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}

	if fails := rep.Failures(); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "tvstorm: supervised cell failed:", f)
		}
		os.Exit(1)
	}
}

// printSummary renders the campaign as a human-readable table on stderr, so
// stdout stays clean JSON when no -out file is given.
func printSummary(r *experiments.StormReport) {
	w := os.Stderr
	fmt.Fprintf(w, "tvstorm: %s vdd=%.2f n=%d warmup=%d window=%d\n",
		r.Bench, r.VDD, r.Insts, r.Warmup, r.Window)
	fmt.Fprintf(w, "%-14s %-6s %4s | %-24s | %-24s\n",
		"scenario", "scheme", "seed", "supervised", "unsupervised")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(w, "%-14s %-6s %4d | %-24s | %-24s\n",
			c.Scenario, c.Scheme, c.Seed,
			outcomeSummary(&c.Supervised), outcomeSummary(&c.Unsupervised))
	}
}

func outcomeSummary(o *experiments.StormOutcome) string {
	if !o.Survived {
		return "DIED: " + truncate(o.Error, 17)
	}
	s := fmt.Sprintf("ipc %.2f wCPI %.1f", o.IPC, o.WorstWindowCPI)
	if o.Escalations > 0 || o.WatchdogFires > 0 {
		s += fmt.Sprintf(" esc %d/wd %d", o.Escalations, o.WatchdogFires)
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvstorm:", err)
	os.Exit(1)
}
