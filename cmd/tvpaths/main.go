// Command tvpaths runs the circuit-level analyses of the paper's
// supplemental study: structural reports for the four synthesized components
// (Table 3), Monte-Carlo statistical timing at the three studied supply
// voltages, and the sensitized-path commonality study (Figure 7).
//
// Usage:
//
//	tvpaths                  # component report + commonality study
//	tvpaths -timing          # add per-component SSTA at 1.10/1.04/0.97 V
//	tvpaths -trials 2000     # more Monte-Carlo samples
//	tvpaths -pprof :8080     # profile a long Monte-Carlo run
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"tvsched/internal/experiments"
	"tvsched/internal/fault"
	"tvsched/internal/netlist"
	"tvsched/internal/obs"
	"tvsched/internal/ssta"
)

func main() {
	var (
		timing = flag.Bool("timing", false, "run Monte-Carlo SSTA per component")
		trials = flag.Int("trials", 500, "Monte-Carlo trials per corner")
		seed   = flag.Uint64("seed", 1, "analysis seed")
		pprofA = flag.String("pprof", "", "serve /debug/pprof on this address while running (e.g. :8080)")
	)
	flag.Parse()

	if *pprofA != "" {
		// tvpaths drives no pipeline simulation, so its /metrics exposition
		// is empty (still valid Prometheus text); it exists for tooling
		// uniformity with tvsim/tvbench.
		http.Handle("/metrics", obs.NewExposition("tvpaths", nil, nil).Handler())
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tvpaths: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "tvpaths: serving http://%s/metrics and /debug/pprof\n", *pprofA)
	}

	fmt.Println(experiments.FormatTable3(experiments.Table3()))

	if *timing {
		fmt.Println("Statistical timing (mu+2sigma delay, FO4-normalized units)")
		fmt.Printf("%-10s %10s %10s %10s %10s\n", "module", "1.10V", "1.04V", "0.97V", "Vmin@95%")
		comps := append(netlist.Components(), netlist.Mul32())
		for _, nl := range comps {
			var row [3]float64
			for i, v := range []float64{fault.VNominal, fault.VLowFault, fault.VHighFault} {
				r := ssta.Analyze(nl, ssta.DefaultVariation(), v, *trials, *seed)
				row[i] = r.MuPlus2Sigma()
			}
			// The voltage at which the component first violates a cycle
			// budgeted with 95% margin at nominal supply.
			budget := ssta.CycleBudget(nl, ssta.DefaultVariation(), 0.95, *trials, *seed)
			vmin := ssta.VMin(nl, ssta.DefaultVariation(), budget, *trials/4+1, *seed)
			fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.3f\n", nl.Name, row[0], row[1], row[2], vmin)
		}
		fmt.Println()
	}

	fmt.Println(experiments.FormatFigure7(experiments.Figure7(*seed)))
}
