// Command tvfuzz is a seeded differential fuzzer for the simulator itself.
// It sweeps randomized machine configurations (widths, queue and window
// sizes, lane counts, replay styles, all five handling schemes, all three
// studied voltages) crossed with randomized workload profiles, and runs each
// with the pipeline's invariant checker (Config.Debug) and the event-stream
// auditor (obs.Auditor) enabled. Per case it checks:
//
//   - the run completes: every per-cycle invariant holds and the machine
//     drains at the end (Config.Debug)
//   - the event stream reconciles against the Stats counters (obs.Auditor)
//   - bit-exact determinism: rebuilding the same case and rerunning yields
//     identical Stats
//   - scheme confinement: Razor never predicts or freezes, only EP pads the
//     whole pipeline, only confined schemes (ABS/FFS/CDS) pad the in-order
//     engine or confine violations, only CDS marks criticality
//
// A third of the cases additionally attach a random survivable hazard
// timeline (hazard.Random: droops, storms, sensor faults whose combined delay
// stays under the replay limit), and a subset of those enable the
// graceful-degradation supervisor; both must still complete, reconcile and
// rerun bit-identically. Scheme-confinement checks are skipped only for
// supervised cases, whose scheme legitimately changes at runtime.
//
// A rotating subset of cases additionally checks cross-scheme properties:
//
//   - at the fault-free nominal voltage all five schemes produce identical
//     Stats (modulo CDS's criticality marks, which fire without faults)
//   - a warm snapshot round-trips: a machine restored from SnapshotState
//     bytes runs on to Stats bit-identical to the donor that produced them
//   - across the whole sweep, ABS spends no more aggregate cycles than EP on
//     the same work at the same faulty voltage (the paper's headline
//     ordering; per-case ordering is not guaranteed, the aggregate is)
//   - attaching an empty hazard timeline (with the supervisor disabled) is
//     bit-identical to attaching none — the hazard hook costs nothing when
//     quiet
//
// Everything is derived deterministically from -seed, so a reported failure
// reproduces with -seed <s> -only <index>.
//
// Usage:
//
//	tvfuzz -n 200 -seed 1          # the CI smoke sweep
//	tvfuzz -n 5000 -insts 20000    # a longer soak
//	tvfuzz -seed 1 -only 137 -v    # reproduce one failing case
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/hazard"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/rng"
	"tvsched/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 200, "number of fuzz cases")
		seed  = flag.Uint64("seed", 1, "sweep seed; every case derives from it")
		insts = flag.Uint64("insts", 6000, "nominal committed instructions per run (cases draw 1/2x..3/2x)")
		only  = flag.Int("only", -1, "run a single case index (for reproducing failures)")
		verb  = flag.Bool("v", false, "print every case as it runs")
	)
	flag.Parse()

	start := time.Now()
	indices := make(chan int)
	var (
		mu       sync.Mutex
		failures []string
		runs     int
		sweeps   int
		pairs    int
		idents   int
		trips    int
		hazarded int
		absCyc   uint64
		epCyc    uint64
	)
	report := func(idx int, spec caseSpec, err error) {
		mu.Lock()
		defer mu.Unlock()
		failures = append(failures, fmt.Sprintf(
			"case %d (seed %d): %v\n  scheme=%v vdd=%.2f insts=%d warmup=%d profile=%s hazardSeed=%d supervised=%v\n  config: %+v",
			idx, *seed, err, spec.cfg.Scheme, spec.vdd, spec.insts, spec.warmup, spec.prof.Name,
			spec.hazardSeed, spec.supervised, spec.cfg))
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				spec := randomCase(rng.New(*seed).Derive(uint64(idx)), *insts)
				if *verb {
					fmt.Printf("case %4d: %-5v vdd=%.2f W=%d rob=%d iq=%d phys=%d flush=%v hz=%v sup=%v %s\n",
						idx, spec.cfg.Scheme, spec.vdd, spec.cfg.Width, spec.cfg.ROBSize,
						spec.cfg.IQSize, spec.cfg.NumPhys, spec.cfg.FullFlushReplay,
						spec.hazardSeed != 0, spec.supervised, spec.prof.Name)
				}
				if err := runCase(spec); err != nil {
					report(idx, spec, err)
					continue
				}
				mu.Lock()
				runs++
				if spec.hazardSeed != 0 {
					hazarded++
				}
				mu.Unlock()

				// Rotating extras: a fault-free cross-scheme sweep every
				// 8th case, a snapshot round-trip every 8th, an
				// empty-timeline identity check every 8th, an ABS-vs-EP
				// pair at a faulty voltage every 4th (offsets chosen so a
				// case never runs two).
				switch {
				case idx%8 == 0:
					if err := nominalSweep(spec); err != nil {
						report(idx, spec, err)
						continue
					}
					mu.Lock()
					sweeps++
					mu.Unlock()
				case idx%8 == 1:
					if err := snapshotRoundTrip(spec); err != nil {
						report(idx, spec, err)
						continue
					}
					mu.Lock()
					trips++
					mu.Unlock()
				case idx%8 == 4:
					if err := emptyTimelineIdentity(spec); err != nil {
						report(idx, spec, err)
						continue
					}
					mu.Lock()
					idents++
					mu.Unlock()
				case idx%4 == 2:
					a, e, err := overheadPair(spec)
					if err != nil {
						report(idx, spec, err)
						continue
					}
					mu.Lock()
					pairs++
					absCyc += a
					epCyc += e
					mu.Unlock()
				}
			}
		}()
	}
	if *only >= 0 {
		indices <- *only
	} else {
		for i := 0; i < *n; i++ {
			indices <- i
		}
	}
	close(indices)
	wg.Wait()

	if pairs > 0 && absCyc > epCyc {
		failures = append(failures, fmt.Sprintf(
			"aggregate over %d ABS/EP pairs: ABS spent %d cycles, EP %d — ABS must not cost more than global padding",
			pairs, absCyc, epCyc))
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "FAIL: "+f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "tvfuzz: %d failure(s) in %v\n", len(failures), time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("tvfuzz: %d cases ok (%d hazarded, %d nominal sweeps, %d snapshot round-trips, %d empty-timeline identities, %d ABS/EP pairs, ABS/EP cycles %d/%d) in %v\n",
		runs, hazarded, sweeps, trips, idents, pairs, absCyc, epCyc, time.Since(start).Round(time.Millisecond))
}

// caseSpec is one point in the fuzzed configuration space. Everything needed
// to rebuild the exact same machine twice.
type caseSpec struct {
	cfg    pipeline.Config
	prof   workload.Profile
	vdd    float64
	insts  uint64
	warmup uint64 // 0 means no warmup phase
	seed   uint64

	// hazardSeed, when nonzero, attaches hazard.Random(hazardSeed, horizon)
	// — a survivable transient timeline rebuilt identically on the
	// determinism rerun. supervised additionally enables the
	// graceful-degradation supervisor with the default policy.
	hazardSeed uint64
	horizon    uint64
	supervised bool
}

// randomCase draws a machine configuration, workload and operating point
// from r. Every knob stays inside Config.Validate's bounds; the ranges
// deliberately include degenerate machines (1-wide, 33 physical registers,
// 2-entry issue queue) the curated experiments never build.
func randomCase(r *rng.Source, insts uint64) caseSpec {
	cfg := pipeline.DefaultConfig()
	cfg.Width = 1 + r.Intn(6)
	cfg.FrontDepth = 1 + r.Intn(8)
	cfg.FrontQ = cfg.Width + r.Intn(3*cfg.Width+1)
	cfg.ROBSize = 8 + r.Intn(185)
	cfg.IQSize = 2 + r.Intn(63) // ≤ 64: the 6-bit age counter's window
	cfg.LQSize = 2 + r.Intn(31)
	cfg.SQSize = 2 + r.Intn(23)
	cfg.NumPhys = 33 + r.Intn(160)
	cfg.SimpleALUs = 1 + r.Intn(4)
	cfg.ComplexALUs = 1 + r.Intn(2)
	cfg.MemPorts = 1 + r.Intn(2)
	cfg.ReplayBubble = r.Intn(6)
	cfg.ReplayLatency = 1 + r.Intn(12)
	cfg.FullFlushReplay = r.Bool(0.3)
	cfg.Scheme = core.Scheme(r.Intn(int(core.NumSchemes)))
	cfg.CT = 1 + r.Intn(16)
	cfg.SamplePeriod = 1 // exact occupancy reconciliation
	cfg.Seed = r.Uint64()

	var prof workload.Profile
	if names := workload.Names(); r.Bool(0.5) {
		prof, _ = workload.Lookup(names[r.Intn(len(names))])
	} else {
		prof = workload.RandomProfile(r)
	}
	cfg.MispredictRate = prof.MispredictRate

	vdd := [...]float64{fault.VNominal, fault.VLowFault, fault.VHighFault}[r.Intn(3)]
	spec := caseSpec{
		cfg:   cfg,
		prof:  prof,
		vdd:   vdd,
		insts: insts/2 + r.Uint64n(insts),
		seed:  r.Uint64(),
	}
	if r.Bool(0.4) {
		spec.warmup = spec.insts / 4
	}
	if r.Bool(0.35) {
		spec.hazardSeed = r.Uint64() | 1 // nonzero marks the hazard on
		spec.horizon = 4 * spec.insts    // covers the run at any plausible CPI
		spec.supervised = r.Bool(0.4)
	}
	return spec
}

// build constructs the pipeline for spec, with the given debug setting and
// observer. The construction is a pure function of spec, which is what makes
// the determinism check meaningful.
func build(spec caseSpec, debug bool, o obs.Observer) (*pipeline.Pipeline, error) {
	gen, err := workload.NewGenerator(spec.prof, spec.seed)
	if err != nil {
		return nil, fmt.Errorf("generator: %w", err)
	}
	fc := fault.DefaultConfig(spec.seed)
	fc.Bias = spec.prof.FaultBias
	cfg := spec.cfg
	cfg.Debug = debug
	cfg.Observer = o
	if spec.supervised {
		pol := core.DefaultSupervisorPolicy()
		cfg.Supervisor = &pol
	}
	p, err := pipeline.New(cfg, gen, fault.New(fc), spec.vdd)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if spec.hazardSeed != 0 {
		p.SetHazard(hazard.Random(rng.New(spec.hazardSeed), spec.horizon))
	}
	p.PrefillData(gen.WarmRegion())
	return p, nil
}

// execute runs spec on p, honoring its warmup phase; aud (may be nil) is
// reset at the warmup boundary so it covers exactly the measured cycles.
func execute(p *pipeline.Pipeline, spec caseSpec, aud *obs.Auditor) (pipeline.Stats, error) {
	if spec.warmup > 0 {
		if err := p.Warmup(spec.warmup); err != nil {
			return pipeline.Stats{}, fmt.Errorf("warmup: %w", err)
		}
		if aud != nil {
			aud.Reset()
		}
	}
	return p.Run(spec.insts)
}

// runCase runs one fuzz case end to end: an audited debug run, counter
// reconciliation, the scheme-confinement properties, and a determinism rerun.
func runCase(spec caseSpec) error {
	aud := obs.NewAuditor()
	p, err := build(spec, true, aud)
	if err != nil {
		return err
	}
	st, err := execute(p, spec, aud)
	if err != nil {
		return err
	}
	if err := aud.Reconcile(st.Expected(spec.cfg.SamplePeriod)); err != nil {
		return err
	}
	// Confinement is a property of a fixed scheme; a supervised machine
	// escalates through other schemes at runtime, so only the completion,
	// reconciliation and determinism contracts apply to it.
	if !spec.supervised {
		if err := schemeProperties(spec, st, aud); err != nil {
			return err
		}
	}

	// Determinism: rebuild from the same spec (debug off — invariant checks
	// read but never write machine state, and the rerun must reproduce the
	// fast path users actually run) and require bit-identical Stats.
	p2, err := build(spec, false, nil)
	if err != nil {
		return err
	}
	st2, err := execute(p2, spec, nil)
	if err != nil {
		return fmt.Errorf("determinism rerun: %w", err)
	}
	if st != st2 {
		return fmt.Errorf("nondeterministic: same spec, different stats\n  first:  %+v\n  second: %+v", st, st2)
	}
	return nil
}

// schemeProperties asserts the confinement contract of each handling scheme
// against both the counters and the auditor's stall-cause split.
func schemeProperties(spec caseSpec, st pipeline.Stats, aud *obs.Auditor) error {
	s := spec.cfg.Scheme
	padGlobal, _ := aud.GlobalStallCauses()
	padFront, _ := aud.FrontStallCauses()

	if s == core.Razor {
		if v := st.PredictedFaults + st.FalsePositives; v != 0 {
			return fmt.Errorf("razor predicted %d violations: razor has no TEP", v)
		}
		// Razor slot freezes exist (the errant instruction holds its lane
		// while replaying through the faulty stage) but only ride on
		// replays, at most one per replay.
		if st.SlotFreezes > st.Replays {
			return fmt.Errorf("razor froze %d slots for %d replays: razor freezes only to replay", st.SlotFreezes, st.Replays)
		}
	}
	if s != core.EP && padGlobal != 0 {
		return fmt.Errorf("%v padded the whole pipeline %d cycles: only EP stalls globally on predictions", s, padGlobal)
	}
	if !s.Confined() {
		if padFront != 0 {
			return fmt.Errorf("%v padded the in-order engine %d cycles: only confined schemes do", s, padFront)
		}
		if st.ConfinedEvents != 0 {
			return fmt.Errorf("%v confined %d violations: only ABS/FFS/CDS confine", s, st.ConfinedEvents)
		}
	}
	if s != core.CDS && st.CriticalMarks != 0 {
		return fmt.Errorf("%v stored %d criticality marks: only CDS runs the CDL", s, st.CriticalMarks)
	}
	// A hazard's delay stretch or tail inflation can push even the nominal
	// supply into violation; the fault-free-baseline property only applies
	// to the stationary environment.
	if spec.vdd >= fault.VNominal && spec.hazardSeed == 0 && st.Faults != 0 {
		return fmt.Errorf("%d faults at the nominal %.2f V: the baseline must be fault-free", st.Faults, spec.vdd)
	}
	return nil
}

// nominalSweep runs spec's machine and workload at the fault-free nominal
// voltage under all five schemes and requires identical Stats. With zero
// faults no handling machinery may engage, so the scheme must be perfectly
// transparent — except CDS's criticality marks, which fire on issue-queue
// fan-out alone and are zeroed before comparison.
func nominalSweep(spec caseSpec) error {
	spec.vdd = fault.VNominal
	spec.hazardSeed, spec.supervised = 0, false // stationary environment only
	var base pipeline.Stats
	var baseScheme core.Scheme
	for s := core.Scheme(0); s < core.NumSchemes; s++ {
		spec.cfg.Scheme = s
		p, err := build(spec, false, nil)
		if err != nil {
			return err
		}
		st, err := execute(p, spec, nil)
		if err != nil {
			return fmt.Errorf("nominal sweep %v: %w", s, err)
		}
		st.CriticalMarks = 0
		if s == 0 {
			base, baseScheme = st, s
			continue
		}
		if st != base {
			return fmt.Errorf("fault-free run differs between %v and %v:\n  %v: %+v\n  %v: %+v",
				baseScheme, s, baseScheme, base, s, st)
		}
	}
	return nil
}

// snapshotRoundTrip is the checkpoint/restore property: warm a machine,
// serialize it with SnapshotState, restore the bytes into a freshly built
// twin, and run both to completion — the restored machine must reach Stats
// bit-identical to its donor. Hazards and the supervisor are stripped
// (snapshots refuse both) and a warmup phase is forced so the snapshot
// captures genuinely warm state across the whole randomized geometry space.
func snapshotRoundTrip(spec caseSpec) error {
	spec.hazardSeed, spec.supervised = 0, false
	if spec.warmup == 0 {
		spec.warmup = spec.insts / 4
	}
	donor, err := build(spec, false, nil)
	if err != nil {
		return err
	}
	if err := donor.Warmup(spec.warmup); err != nil {
		return fmt.Errorf("snapshot round-trip: warmup: %w", err)
	}
	blob, err := donor.SnapshotState()
	if err != nil {
		return fmt.Errorf("snapshot round-trip: snapshot: %w", err)
	}
	stDonor, err := donor.Run(spec.insts)
	if err != nil {
		return fmt.Errorf("snapshot round-trip: donor run: %w", err)
	}
	restored, err := build(spec, false, nil)
	if err != nil {
		return err
	}
	if err := restored.RestoreState(blob); err != nil {
		return fmt.Errorf("snapshot round-trip: restore: %w", err)
	}
	stRestored, err := restored.Run(spec.insts)
	if err != nil {
		return fmt.Errorf("snapshot round-trip: restored run: %w", err)
	}
	if stDonor != stRestored {
		return fmt.Errorf("restored machine diverged from its donor:\n  donor:    %+v\n  restored: %+v", stDonor, stRestored)
	}
	return nil
}

// emptyTimelineIdentity pins the zero-cost contract of the hazard hook: a
// machine with an explicitly attached empty timeline (and the supervisor
// disabled) must produce Stats bit-identical to one with no hazard attached
// at all.
func emptyTimelineIdentity(spec caseSpec) error {
	spec.hazardSeed, spec.supervised = 0, false
	bare, err := build(spec, false, nil)
	if err != nil {
		return err
	}
	stBare, err := execute(bare, spec, nil)
	if err != nil {
		return fmt.Errorf("empty-timeline identity (bare): %w", err)
	}
	hooked, err := build(spec, false, nil)
	if err != nil {
		return err
	}
	hooked.SetHazard(hazard.MustNew(spec.seed))
	stHooked, err := execute(hooked, spec, nil)
	if err != nil {
		return fmt.Errorf("empty-timeline identity (hooked): %w", err)
	}
	if stBare != stHooked {
		return fmt.Errorf("empty hazard timeline perturbed the run:\n  bare:   %+v\n  hooked: %+v", stBare, stHooked)
	}
	return nil
}

// overheadPair runs spec's machine and workload under ABS and EP at a faulty
// voltage and returns both cycle counts. The caller accumulates them: the
// paper's ordering (ABS overhead ≤ EP overhead) holds in aggregate, not
// necessarily per case.
func overheadPair(spec caseSpec) (absCycles, epCycles uint64, err error) {
	if spec.vdd >= fault.VNominal {
		spec.vdd = fault.VHighFault
	}
	spec.hazardSeed, spec.supervised = 0, false // the ordering is stationary
	for _, s := range [...]core.Scheme{core.ABS, core.EP} {
		spec.cfg.Scheme = s
		p, err := build(spec, false, nil)
		if err != nil {
			return 0, 0, err
		}
		st, err := execute(p, spec, nil)
		if err != nil {
			return 0, 0, fmt.Errorf("overhead pair %v: %w", s, err)
		}
		if s == core.ABS {
			absCycles = st.Cycles
		} else {
			epCycles = st.Cycles
		}
	}
	return absCycles, epCycles, nil
}
