// Command tvplan plans and executes simulation campaigns offline — the
// same planner/executor engine behind POST /v1/campaign and /v1/sweep
// (internal/campaign), without a server. A campaign spec (schema
// tvsched/campaign-spec/v1) names the benchmark × scheme × VDD × seed cross
// product; tvplan expands it lazily, executes cells on a bounded worker pool
// with warm-prefix snapshot sharing and per-digest dedup, and streams one
// campaign-report/v1 NDJSON line per cell in the canonical plan order.
//
// Every completed cell is checkpointed to an append-only journal named after
// the plan hash, so a killed campaign — SIGKILL included — resumes exactly
// where it stopped: re-running the same invocation replays the journaled
// prefix verbatim and executes only the missing cells, and the resumed
// output is byte-identical to an uninterrupted run (CI enforces this with a
// kill-and-resume drill).
//
// Usage:
//
//	tvplan -spec campaign.json                     # execute, report on stdout
//	tvplan -spec campaign.json -dry-run            # plan document only, no cells
//	tvplan -spec campaign.json -out report.ndjson -summary summary.json
//	tvplan -spec campaign.json -dir /var/lib/tvplan -progress
//	tvplan -spec campaign.json -store results/     # persistent cross-campaign cache
//	tvplan -spec - < campaign.json                 # spec on stdin
//
// The report stream (-out, default stdout) is byte-deterministic for a
// fixed spec; progress/v1 heartbeats (-progress) go to stderr so they never
// perturb it. The -summary artifact (tvsched/campaign-summary/v1) carries
// the per-provenance accounting and the skip ratio tvgate -campaign gates.
//
// Exit status: 0 on a fully successful campaign, 1 when any cell failed or
// the campaign machinery broke (an interrupted campaign reports how far the
// journal got and is resumable), 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tvsched"
	"tvsched/internal/campaign"
	"tvsched/internal/experiments"
	"tvsched/internal/obs"
	"tvsched/internal/store"
)

// planDoc is the -dry-run artifact (schema tvsched/campaign-plan/v1): the
// campaign's identity and shape, everything knowable without simulating.
type planDoc struct {
	Schema string `json:"schema"`
	// Plan is the plan hash — the campaign id and its journal's basename.
	Plan string `json:"plan"`
	Tag  string `json:"tag,omitempty"`
	// Cells is the cross-product size; WarmGroups the number of distinct
	// warm prefixes (each paying one warmup that all its cells share).
	Cells      int           `json:"cells"`
	WarmGroups int           `json:"warm_groups"`
	Journal    string        `json:"journal,omitempty"`
	Journaled  int           `json:"journaled"`
	Spec       campaign.Spec `json:"spec"`
}

func main() {
	var (
		specF     = flag.String("spec", "", "campaign spec JSON file (\"-\" = stdin; required)")
		outF      = flag.String("out", "-", "campaign-report NDJSON destination (\"-\" = stdout)")
		dirF      = flag.String("dir", ".", "journal directory; the journal is <dir>/<plan-hash>.tvcj")
		journalF  = flag.String("journal", "", "explicit journal path (overrides -dir)")
		noJournal = flag.Bool("no-journal", false, "run without a journal: nothing persists, nothing resumes")
		dryRun    = flag.Bool("dry-run", false, "print the plan document (campaign-plan/v1) and exit without simulating")
		workers   = flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS)")
		storeDir  = flag.String("store", "", "persistent result store directory shared across campaigns (empty = none)")
		progress  = flag.Bool("progress", false, "emit progress/v1 heartbeats on stderr")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "heartbeat cadence with -progress")
		summaryF  = flag.String("summary", "", "write the campaign-summary/v1 artifact here (empty = skip)")
	)
	flag.Parse()
	if *specF == "" {
		fmt.Fprintln(os.Stderr, "tvplan: -spec is required")
		os.Exit(2)
	}

	spec, err := readSpec(*specF)
	if err != nil {
		fatal(err)
	}
	plan, err := campaign.NewPlan(spec)
	if err != nil {
		fatal(err)
	}

	jpath := *journalF
	if jpath == "" {
		jpath = filepath.Join(*dirF, plan.Hash()+".tvcj")
	}
	if *noJournal {
		jpath = ""
	}

	if *dryRun {
		doc := planDoc{
			Schema:     campaign.PlanSchema,
			Plan:       plan.Hash(),
			Tag:        plan.Spec().Tag,
			Cells:      plan.Total(),
			WarmGroups: plan.WarmGroups(),
			Journal:    jpath,
			Spec:       plan.Spec(),
		}
		if jpath != "" {
			if j, p2, err := campaign.LoadJournal(jpath); err == nil {
				if p2.Hash() != plan.Hash() {
					fatal(fmt.Errorf("journal %s belongs to campaign %s, not %s", jpath, p2.Hash(), plan.Hash()))
				}
				doc.Journaled = j.DoneCount()
				j.Close()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}

	out := io.Writer(os.Stdout)
	if *outF != "-" && *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	runner := &campaign.LocalRunner{
		Checkpoint: plan.Checkpoint(),
		Render:     renderReport,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, 0)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		runner.Store = st
	}

	var j *campaign.Journal
	if jpath != "" {
		if err := os.MkdirAll(filepath.Dir(jpath), 0o755); err != nil {
			fatal(err)
		}
		if j, err = campaign.OpenJournal(jpath, plan); err != nil {
			fatal(err)
		}
		defer j.Close()
		if n := j.DoneCount(); n > 0 {
			fmt.Fprintf(os.Stderr, "tvplan: resuming campaign %s: %d of %d cells journaled\n",
				plan.Hash(), n, plan.Total())
		}
	}

	// SIGINT/SIGTERM cancel the executor cleanly: the journal keeps every
	// finished cell and the same invocation resumes. SIGKILL gets the same
	// guarantee from the journal's per-append flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := campaign.Options{
		Workers:    *workers,
		HeartbeatW: os.Stderr,
	}
	if *progress {
		opts.Heartbeat = *heartbeat
	}
	prog := campaign.NewProgress(plan.Total())
	opts.Progress = prog
	start := time.Now()
	opts.Start = start

	stats, execErr := campaign.Execute(ctx, plan, j, runner.Run, out, opts)

	summary := prog.Summary(plan, time.Since(start))
	if *summaryF != "" {
		if err := writeSummary(*summaryF, summary); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "tvplan: campaign %s: %d/%d cells (%d replayed, %d errors, skip ratio %.2f) in %s\n",
		plan.Hash(), stats.Done, stats.Total, stats.Replayed, stats.Errors(),
		summary.SkipRatio, stats.Elapsed.Round(time.Millisecond))
	if execErr != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "tvplan: interrupted; re-run the same invocation to resume\n")
		}
		fatal(execErr)
	}
	if stats.Errors() > 0 {
		os.Exit(1)
	}
}

func readSpec(path string) (campaign.Spec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		defer f.Close()
		r = f
	}
	var spec campaign.Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return campaign.Spec{}, fmt.Errorf("bad campaign spec: %w", err)
	}
	return spec, nil
}

// renderReport renders one finished cell as the repo's standard
// run-report/v1 artifact, compact so it embeds verbatim in NDJSON lines.
// Every field derives from the deterministic result: the bytes are a pure
// function of the config.
func renderReport(cfg tvsched.Config, res tvsched.Result) ([]byte, error) {
	st := res.Stats
	return json.Marshal(&obs.RunReport{
		Schema:       obs.RunReportSchema,
		Tool:         "tvplan",
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Seed:         cfg.Seed,
		Instructions: st.Committed,
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		TEP:          experiments.TEPAccuracyFrom(&st),
	})
}

func writeSummary(path string, s *campaign.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvplan:", err)
	os.Exit(1)
}
