// Command tvservd serves tvsched simulations over HTTP/JSON: a bounded
// worker pool executes run requests (schema tvsched/run-request/v1), a
// content-addressed LRU cache plus singleflight collapse repeated and
// concurrent identical requests onto one simulation, and a bounded
// admission queue sheds overload with 429 + Retry-After. Responses are the
// repo's standard run-report/v1 JSON and are byte-deterministic for a fixed
// request, so cache hits are byte-identical to the miss that filled them.
//
// Endpoints:
//
//	POST /v1/run          one simulation (JSON in, run-report/v1 out)
//	POST /v1/sweep        cross-product sweep, NDJSON stream in cell order;
//	                      "progress": true interleaves progress/v1 heartbeats
//	POST /v1/campaign     admit an asynchronous journaled campaign (with
//	                      -campaign-dir): answers 202 + a status document
//	                      immediately, executes in the background, journals
//	                      every finished cell, and resumes after restarts
//	GET  /v1/campaign/{id}         campaign status (campaign-status/v1)
//	GET  /v1/campaign/{id}/report  journaled report prefix, NDJSON in cell
//	                      order (for a finished campaign: the full report)
//	GET  /v1/trace/{id}   flight-recorder timeline of a recent request
//	                      (Chrome/Perfetto trace JSON; id = X-Request-Id)
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining)
//	GET  /metrics         Prometheus text format: pipeline metrics aggregated
//	                      across served runs, queue depth, in-flight, cache
//	                      outcomes, route×outcome latency and span-duration
//	                      histograms
//	GET  /debug/pprof/*   Go profiler (only with -pprof)
//
// Every response carries X-Request-Id (also the trace ID in the W3C
// traceparent response header); logs are structured (-log-format json|text)
// and correlate request ID with config digest.
//
// SIGTERM/SIGINT drain gracefully: readiness flips, in-flight requests and
// simulations finish (bounded by -drain-timeout), then the process exits 0.
//
// With -store DIR, results also persist in a disk-backed content-addressed
// store that survives restarts: a restarted node answers its old digests
// from disk (provenance "hit") without recomputing. With -node-id and
// -peers, nodes form a static cluster routed by rendezvous hashing on the
// config digest: any node accepts any request, a non-owner forwards to the
// owner (cluster-wide singleflight), the owner reads through its peers
// before simulating, and a periodic anti-entropy sweep cross-checks
// replicated digests byte-for-byte (GET /v1/result/{digest} is the
// peer-facing read endpoint, PUT the replication write; POST
// /v1/anti-entropy triggers one sweep on demand; /readyz lists per-peer
// health; /metrics gains per-peer, breaker and store counters).
//
// Peer calls are resilient by default: a per-peer circuit breaker fails
// fast once a peer looks dead (half-open probes bring it back), idempotent
// calls retry with seeded jittered backoff, and when an owner is
// unreachable the receiving node computes on its behalf — the answer is
// still 200, marked X-Tvsched-Source: compute-degraded, and is replicated
// to the owner once its breaker closes. /readyz then reads "degraded" (but
// stays 200). With -repair, the anti-entropy sweep also heals divergences:
// the node re-simulates the digest (determinism makes the fresh result an
// oracle) and overwrites whichever replica disagrees. With -chaos PLAN, a
// seeded fault-injection transport wraps outgoing peer calls (refusals,
// 5xx, latency, mid-body cuts, per-peer blackout windows) for drills —
// never in production.
//
// Usage:
//
//	tvservd                              # serve on :8844
//	tvservd -addr 127.0.0.1:0 -addrfile addr.txt   # ephemeral port for scripts
//	tvservd -workers 8 -queue 128 -cache 4096
//	tvservd -log-format json -pprof      # machine logs + profiler
//	tvservd -store /var/lib/tvservd      # persistent result store
//	tvservd -addr :8844 -node-id a -peers b=http://10.0.0.2:8844   # 2-node cluster
//
// Drive it with cmd/tvload, or by hand:
//
//	curl -d '{"schema":"tvsched/run-request/v1","benchmark":"sjeng","scheme":"ABS","vdd":0.97}' \
//	     http://localhost:8844/v1/run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tvsched/internal/cluster"
	"tvsched/internal/resil/chaos"
	"tvsched/internal/serve"
	"tvsched/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8844", "listen address (host:0 picks an ephemeral port)")
		addrFile     = flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue beyond the pool; full queue answers 429")
		cacheN       = flag.Int("cache", 1024, "result cache capacity in entries")
		snapN        = flag.Int("snapshots", 8, "warm-state snapshot cache capacity in entries")
		maxInsts     = flag.Uint64("max-insts", 2_000_000, "per-request instruction cap (400 beyond it)")
		maxCells     = flag.Int("max-cells", 4096, "per-sweep cell cap (400 beyond it)")
		runTimeout   = flag.Duration("run-timeout", 2*time.Minute, "per-simulation budget once a worker picks it up")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after SIGTERM")
		ns           = flag.String("ns", "tvservd", "Prometheus metric namespace")
		logFormat    = flag.String("log-format", "text", "log output format: json or text")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceSpans   = flag.Int("trace-spans", 4096, "flight-recorder capacity in spans (GET /v1/trace/{id})")
		heartbeat    = flag.Duration("heartbeat", 2*time.Second, "progress/v1 heartbeat cadence on progress-enabled sweeps")
		pprofOn      = flag.Bool("pprof", false, "mount the Go profiler at /debug/pprof (off by default: it exposes internals)")
		campaignDir  = flag.String("campaign-dir", "", "campaign journal directory; enables POST /v1/campaign and resume-on-restart (empty = disabled)")
		maxCampCells = flag.Int("max-campaign-cells", 1<<20, "per-campaign cell cap (400 beyond it)")
		storeDir     = flag.String("store", "", "persistent result store directory (empty = memory-only)")
		storeBytes   = flag.Int64("store-bytes", 0, "persistent store size bound in bytes (0 = 256 MiB default)")
		nodeID       = flag.String("node-id", "", "this node's cluster identity (required with -peers)")
		peersFlag    = flag.String("peers", "", "cluster peers as id=url,... (e.g. b=http://10.0.0.2:8844); empty = standalone")
		antiEntropy  = flag.Duration("anti-entropy", 30*time.Second, "cadence of the peer divergence sweep (0 disables; only with -peers)")
		repair       = flag.Bool("repair", false, "let the anti-entropy sweep heal divergences by re-simulating the digest and overwriting the losing replica")
		resilSeed    = flag.Uint64("resil-seed", 1, "seed for breaker probe schedules and retry backoff (deterministic per seed)")
		chaosSpec    = flag.String("chaos", "", "fault-injection plan for outgoing peer calls, e.g. seed=42,refuse=0.05,blackout=host:port@0:40 (testing only)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvservd:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("error", err.Error()))
		os.Exit(1)
	}

	peers, err := cluster.ParsePeers(*peersFlag)
	if err != nil {
		fatal("bad -peers", err)
	}
	if len(peers) > 0 && *nodeID == "" {
		fatal("bad flags", errors.New("-peers requires -node-id"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal("addrfile write failed", err)
		}
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, *storeBytes)
		if err != nil {
			fatal("store open failed", err)
		}
		defer st.Close()
		if st.Truncated > 0 {
			logger.Warn("store log had a torn tail",
				slog.Int64("truncated_bytes", st.Truncated))
		}
		logger.Info("store opened",
			slog.String("dir", *storeDir),
			slog.Int("entries", st.Len()),
			slog.Int64("bytes", st.Bytes()),
		)
	}

	var peerTransport http.RoundTripper
	if *chaosSpec != "" {
		plan, err := chaos.ParsePlan(*chaosSpec)
		if err != nil {
			fatal("bad -chaos", err)
		}
		peerTransport = chaos.NewTransport(plan, nil)
		logger.Warn("chaos fault injection ACTIVE on peer calls (testing only)",
			slog.String("plan", *chaosSpec))
	}

	srv := serve.New(serve.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheEntries:        *cacheN,
		SnapshotEntries:     *snapN,
		MaxInstructions:     *maxInsts,
		MaxSweepCells:       *maxCells,
		RunTimeout:          *runTimeout,
		Namespace:           *ns,
		Logger:              logger,
		TraceSpans:          *traceSpans,
		HeartbeatInterval:   *heartbeat,
		CampaignDir:         *campaignDir,
		MaxCampaignCells:    *maxCampCells,
		Store:               st,
		AntiEntropyInterval: *antiEntropy,
		Repair:              *repair,
		ResilSeed:           *resilSeed,
		PeerTransport:       peerTransport,
	})
	if len(peers) > 0 {
		if err := srv.SetPeers(*nodeID, peers); err != nil {
			fatal("bad cluster config", err)
		}
	}
	if *campaignDir != "" {
		n, err := srv.ResumeCampaigns()
		if err != nil {
			fatal("campaign resume failed", err)
		}
		logger.Info("campaign API enabled",
			slog.String("dir", *campaignDir),
			slog.Int("resumed", n),
		)
	}
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("serving",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", effectiveWorkers(*workers)),
		slog.Int("queue", *queue),
		slog.Int("cache", *cacheN),
		slog.Int("trace_spans", *traceSpans),
		slog.Bool("pprof", *pprofOn),
		slog.String("node_id", *nodeID),
		slog.Int("peers", len(peers)),
		slog.Bool("store", st != nil),
	)

	select {
	case err := <-errc:
		fatal("server failed", err)
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", slog.Duration("budget", *drainTimeout))
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		fatal("drain failed", err)
	}
	// Shutdown waits for in-flight HTTP requests; detached computations
	// (leaders whose clients left) may still be running for the cache.
	if err := srv.Drain(shutdownCtx); err != nil {
		srv.Close()
		fatal("drain failed", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("server failed", err)
	}
	logger.Info("drained cleanly")
}

// buildLogger assembles the process logger from the -log-format/-log-level
// flags. Both handlers write to stderr, keeping stdout free for data.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want json or text", format)
	}
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
