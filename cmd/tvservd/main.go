// Command tvservd serves tvsched simulations over HTTP/JSON: a bounded
// worker pool executes run requests (schema tvsched/run-request/v1), a
// content-addressed LRU cache plus singleflight collapse repeated and
// concurrent identical requests onto one simulation, and a bounded
// admission queue sheds overload with 429 + Retry-After. Responses are the
// repo's standard run-report/v1 JSON and are byte-deterministic for a fixed
// request, so cache hits are byte-identical to the miss that filled them.
//
// Endpoints:
//
//	POST /v1/run     one simulation (JSON in, run-report/v1 out)
//	POST /v1/sweep   cross-product sweep, NDJSON stream in cell order
//	GET  /healthz    liveness
//	GET  /readyz     readiness (503 while draining)
//	GET  /metrics    Prometheus text format: pipeline metrics aggregated
//	                 across served runs, plus queue depth, in-flight,
//	                 cache hit/miss and latency histograms
//
// SIGTERM/SIGINT drain gracefully: readiness flips, in-flight requests and
// simulations finish (bounded by -drain-timeout), then the process exits 0.
//
// Usage:
//
//	tvservd                              # serve on :8844
//	tvservd -addr 127.0.0.1:0 -addrfile addr.txt   # ephemeral port for scripts
//	tvservd -workers 8 -queue 128 -cache 4096
//
// Drive it with cmd/tvload, or by hand:
//
//	curl -d '{"schema":"tvsched/run-request/v1","benchmark":"sjeng","scheme":"ABS","vdd":0.97}' \
//	     http://localhost:8844/v1/run
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tvsched/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8844", "listen address (host:0 picks an ephemeral port)")
		addrFile     = flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue beyond the pool; full queue answers 429")
		cacheN       = flag.Int("cache", 1024, "result cache capacity in entries")
		snapN        = flag.Int("snapshots", 8, "warm-state snapshot cache capacity in entries")
		maxInsts     = flag.Uint64("max-insts", 2_000_000, "per-request instruction cap (400 beyond it)")
		maxCells     = flag.Int("max-cells", 4096, "per-sweep cell cap (400 beyond it)")
		runTimeout   = flag.Duration("run-timeout", 2*time.Minute, "per-simulation budget once a worker picks it up")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after SIGTERM")
		ns           = flag.String("ns", "tvservd", "Prometheus metric namespace")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("tvservd: ")

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheN,
		SnapshotEntries: *snapN,
		MaxInstructions: *maxInsts,
		MaxSweepCells:   *maxCells,
		RunTimeout:      *runTimeout,
		Namespace:       *ns,
	})
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (workers=%d queue=%d cache=%d)",
		ln.Addr(), effectiveWorkers(*workers), *queue, *cacheN)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (budget %s)", *drainTimeout)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		log.Fatalf("drain failed: %v", err)
	}
	// Shutdown waits for in-flight HTTP requests; detached computations
	// (leaders whose clients left) may still be running for the cache.
	if err := srv.Drain(shutdownCtx); err != nil {
		srv.Close()
		log.Fatalf("drain failed: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
