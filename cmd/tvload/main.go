// Command tvload is a seeded closed-loop load generator for tvservd: each
// worker keeps one request in flight, drawing from a fixed population of
// distinct simulations with Zipf-skewed popularity — the hot head
// exercises the server's result cache and singleflight, the tail its
// worker pool. The outcome is a load-report/v1 JSON on stdout (throughput,
// cache hit rate, latency percentiles) and a human summary on stderr.
//
// The request mix is deterministic given -seed, so two load runs offer the
// same work; throughput and latency are what the server made of it.
//
// Usage:
//
//	tvload -url http://127.0.0.1:8844                 # default mix
//	tvload -url http://$addr -c 16 -n 2000 -zipf 1.4  # hotter, harder
//	tvload -url http://$addr -zipf 1 -pop 64 -n 64    # uniform cold sweep
//	tvload ... -out load.json                         # report to a file
//
// With -sweepbench, tvload instead times the same warmup-heavy
// scheme×voltage sweep twice — warm-state checkpointing off, then on — and
// emits a sweep-bench/v1 JSON ({cold_ns, warm_ns, speedup}); cmd/tvgate
// -sweep gates on the speedup.
//
// With -sweepprobe, tvload posts one progress-enabled sweep and measures the
// live telemetry from the consumer side: time to first cell, heartbeat count,
// the closing heartbeat's provenance accounting, and the mean absolute error
// of the mid-stream ETAs against the wall time the sweep actually took.
// Emits a sweep-probe/v1 JSON.
//
// With -campaignbench, tvload times the same warm-prefix-heavy grid as
// three asynchronous campaigns against a server started with -campaign-dir
// — cell-independent execution, the campaign engine's shared-prefix
// execution, and a cached re-campaign — and emits a campaign-bench/v1 JSON
// ({independent_ns, engine_ns, cached_ns, speedup, cached_skip_ratio});
// cmd/tvgate -campaign gates on it.
//
// With -urls (comma-separated base URLs), tvload sprays the same seeded mix
// across every node of a tvservd cluster and emits a cluster-load-report/v1
// JSON instead: per-node hit/miss/stolen breakdowns (stolen = the answer's
// bytes came from a peer via forward or read-through) plus a client-side
// byte-consistency check across nodes. cmd/tvgate -cluster gates on it.
//
// With -urls and -chaos, tvload runs the chaos drill instead: the same
// sprayed mix against a cluster under fault injection (tvservd -chaos),
// measuring availability and degraded serving from the client side, then
// driving anti-entropy on every node and re-auditing every digest across
// all nodes for byte divergence. Emits a chaos-load-report/v1 JSON;
// cmd/tvgate -chaos gates on it.
//
// Typical cache demonstration: run a cold pass (uniform, population-sized)
// then a hot pass (Zipf) and compare throughput_rps — the hot pass rides
// the cache and should be several times faster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tvsched/internal/serve"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8844", "tvservd base URL")
		urls    = flag.String("urls", "", "comma-separated cluster node URLs; spray the mix across all of them")
		c       = flag.Int("c", 8, "closed-loop concurrency")
		n       = flag.Int("n", 200, "total requests")
		seed    = flag.Uint64("seed", 1, "request-mix seed")
		pop     = flag.Int("pop", 64, "distinct request cells in the population")
		zipf    = flag.Float64("zipf", 1.3, "Zipf skew (>1; 1 means uniform mix)")
		insts   = flag.Uint64("insts", 20000, "instructions per simulation")
		warmup  = flag.Uint64("warmup", 0, "warmup instructions (0 = library default)")
		vdd     = flag.Float64("vdd", 0.97, "supply voltage for every cell")
		benches = flag.String("benchmarks", "", "comma-separated benchmarks (empty = all)")
		schemes = flag.String("schemes", "ABS", "comma-separated schemes to cycle through")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request timeout")
		out     = flag.String("out", "", "write the JSON report to this file (empty = stdout)")

		sweepBench  = flag.Bool("sweepbench", false, "time a cold-vs-checkpointed sweep instead of generating load")
		sweepWarmup = flag.Uint64("sweep-warmup", 120000, "sweepbench: warmup instructions per cell")
		sweepInsts  = flag.Uint64("sweep-insts", 8000, "sweepbench: measured instructions per cell")

		campaignBench  = flag.Bool("campaignbench", false, "time independent vs engine vs cached campaigns instead of generating load (server needs -campaign-dir)")
		campaignWarmup = flag.Uint64("campaign-warmup", 120000, "campaignbench: warmup instructions per cell")
		campaignInsts  = flag.Uint64("campaign-insts", 8000, "campaignbench: measured instructions per cell")

		chaosMode = flag.Bool("chaos", false, "with -urls: run the chaos drill (availability, degraded serving, anti-entropy, post-repair byte audit) and emit chaos-load-report/v1")

		sweepProbe  = flag.Bool("sweepprobe", false, "measure a progress-enabled sweep's heartbeat telemetry instead of generating load")
		probeWarmup = flag.Uint64("probe-warmup", 20000, "sweepprobe: warmup instructions per cell")
		probeInsts  = flag.Uint64("probe-insts", 4000, "sweepprobe: measured instructions per cell")
	)
	flag.Parse()

	if *sweepBench {
		runSweepBench(strings.TrimRight(*url, "/"), *benches, *seed, *sweepWarmup, *sweepInsts, *timeout, *out)
		return
	}
	if *sweepProbe {
		runSweepProbe(strings.TrimRight(*url, "/"), *benches, *seed, *probeWarmup, *probeInsts, *timeout, *out)
		return
	}
	if *campaignBench {
		runCampaignBench(strings.TrimRight(*url, "/"), *benches, *seed, *campaignWarmup, *campaignInsts, *timeout, *out)
		return
	}

	cfg := serve.LoadConfig{
		URL:          strings.TrimRight(*url, "/"),
		Concurrency:  *c,
		Requests:     *n,
		Seed:         *seed,
		Population:   *pop,
		ZipfS:        *zipf,
		Instructions: *insts,
		Warmup:       *warmup,
		VDD:          *vdd,
		Timeout:      *timeout,
	}
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if *schemes != "" {
		cfg.Schemes = strings.Split(*schemes, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *urls != "" {
		if *chaosMode {
			runChaosLoad(ctx, *urls, cfg, *out)
		} else {
			runClusterLoad(ctx, *urls, cfg, *out)
		}
		return
	}
	if *chaosMode {
		fmt.Fprintln(os.Stderr, "tvload: -chaos requires -urls")
		os.Exit(2)
	}

	rep, err := serve.RunLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr,
		"tvload: %d reqs, %d workers, zipf %.2f over %d cells: %.1f req/s, hit rate %.0f%% (%d hit / %d shared / %d miss / %d rejected / %d error)\n",
		rep.Requests, rep.Concurrency, rep.ZipfS, rep.Population,
		rep.ThroughputRPS, 100*rep.HitRate, rep.Hits, rep.Shared, rep.Misses, rep.Rejected, rep.Errors)
	fmt.Fprintf(os.Stderr, "tvload: latency µs: p50 %.0f p90 %.0f p99 %.0f max %.0f\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// runClusterLoad drives the -urls mode: the seeded mix sprayed across every
// cluster node, reported as cluster-load-report/v1 JSON.
func runClusterLoad(ctx context.Context, urls string, load serve.LoadConfig, out string) {
	var targets []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			targets = append(targets, u)
		}
	}
	rep, err := serve.RunClusterLoad(ctx, serve.ClusterLoadConfig{URLs: targets, Load: load})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"tvload: cluster of %d: %d reqs: %.1f req/s, hit rate %.0f%% (%d hit / %d shared / %d miss, %d stolen / %d rejected / %d error), %d divergences\n",
		len(rep.Nodes), rep.Requests, rep.ThroughputRPS, 100*rep.HitRate,
		rep.Hits, rep.Shared, rep.Misses, rep.Stolen, rep.Rejected, rep.Errors, rep.Divergences)
	for _, n := range rep.Nodes {
		fmt.Fprintf(os.Stderr,
			"tvload:   %s: %d reqs, %d hit / %d shared / %d miss (%d stolen), p50 %.0fµs\n",
			n.URL, n.Requests, n.Hits, n.Shared, n.Misses, n.Stolen, n.Latency.P50)
	}
	writeJSON(rep, out)
	if rep.Errors > 0 || rep.Divergences > 0 {
		os.Exit(1)
	}
}

// runChaosLoad drives the -chaos mode: the sprayed mix against a cluster
// under fault injection, followed by anti-entropy passes and a cross-node
// byte audit, reported as chaos-load-report/v1 JSON.
func runChaosLoad(ctx context.Context, urls string, load serve.LoadConfig, out string) {
	var targets []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			targets = append(targets, u)
		}
	}
	rep, err := serve.RunChaosLoad(ctx, serve.ChaosLoadConfig{URLs: targets, Load: load})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"tvload: chaos drill on %d nodes: %d reqs, availability %.2f%% (%d ok / %d rejected / %d error), %d degraded, %d stolen, %d divergences during load\n",
		rep.Nodes, rep.Requests, 100*rep.Availability, rep.OK, rep.Rejected, rep.Errors,
		rep.Degraded, rep.Stolen, rep.Divergences)
	fmt.Fprintf(os.Stderr,
		"tvload: anti-entropy: %d checked, %d diverged, %d repaired; post-repair audit: %d digests, %d divergences\n",
		rep.RepairChecked, rep.RepairDiverged, rep.Repaired,
		rep.PostRepairDigests, rep.PostRepairDivergences)
	for key, n := range rep.BreakerTransitions {
		fmt.Fprintf(os.Stderr, "tvload:   breaker %s ×%d\n", key, n)
	}
	writeJSON(rep, out)
	if rep.Errors > 0 || rep.PostRepairDivergences > 0 {
		os.Exit(1)
	}
}

// runSweepProbe drives the -sweepprobe mode: one progress-enabled sweep,
// measured from the consumer side, reported as sweep-probe/v1 JSON.
func runSweepProbe(url, bench string, seed, warmup, insts uint64, timeout time.Duration, out string) {
	cfg := serve.SweepProbeConfig{
		URL:          url,
		Warmup:       warmup,
		Instructions: insts,
		Seed:         seed,
		Timeout:      timeout,
	}
	if bench != "" {
		cfg.Benchmark = strings.Split(bench, ",")[0]
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := serve.RunSweepProbe(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"tvload: sweepprobe %s: %d cells in %.2fs, first cell after %.0fms, %d heartbeats (%d hit / %d shared / %d restored / %d cold), ETA MAE %.2fs over %d samples\n",
		rep.Benchmark, rep.Cells, float64(rep.TotalNS)/1e9, float64(rep.TimeToFirstCellNS)/1e6,
		rep.Heartbeats, rep.Hit, rep.Shared, rep.Restored, rep.Cold, rep.EtaMAESec, rep.EtaSamples)
	writeJSON(rep, out)
}

// runCampaignBench drives the -campaignbench mode: the same warm-prefix-heavy
// grid as three campaigns — cell-independent, engine (shared warm prefixes),
// and cached (re-POSTed over a warm result cache) — reported as
// campaign-bench/v1 JSON. cmd/tvgate -campaign gates on it.
func runCampaignBench(url, bench string, seed, warmup, insts uint64, timeout time.Duration, out string) {
	cfg := serve.CampaignBenchConfig{
		URL:          url,
		Warmup:       warmup,
		Instructions: insts,
		Seed:         seed,
		Timeout:      timeout,
	}
	if bench != "" {
		cfg.Benchmark = strings.Split(bench, ",")[0]
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := serve.RunCampaignBench(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"tvload: campaignbench %s: %d cells: independent %.2fs, engine %.2fs (%.2fx), cached %.2fs (skip ratio %.2f)\n",
		rep.Benchmark, rep.Cells, float64(rep.IndependentNS)/1e9, float64(rep.EngineNS)/1e9,
		rep.Speedup, float64(rep.CachedNS)/1e9, rep.CachedSkipRatio)
	writeJSON(rep, out)
}

// writeJSON renders a report to stdout or -out, indented.
func writeJSON(rep any, out string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tvload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
}

// runSweepBench drives the -sweepbench mode: one warmup-heavy sweep timed
// cold, then checkpointed, reported as sweep-bench/v1 JSON.
func runSweepBench(url, bench string, seed, warmup, insts uint64, timeout time.Duration, out string) {
	cfg := serve.SweepBenchConfig{
		URL:          url,
		Warmup:       warmup,
		Instructions: insts,
		Seed:         seed,
		Timeout:      timeout,
	}
	// -benchmarks lists; sweepbench sweeps schemes×voltages over one
	// workload, so only the first entry applies.
	if bench != "" {
		cfg.Benchmark = strings.Split(bench, ",")[0]
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := serve.RunSweepBench(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"tvload: sweepbench %s: %d cells, warmup %d, insts %d: cold %.2fs, checkpointed %.2fs, speedup %.2fx\n",
		rep.Benchmark, rep.Cells, rep.Warmup, rep.Instructions,
		float64(rep.ColdNS)/1e9, float64(rep.WarmNS)/1e9, rep.Speedup)
	writeJSON(rep, out)
}
