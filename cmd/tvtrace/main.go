// Command tvtrace records and inspects committed-instruction traces in the
// repository's binary format (internal/trace), decoupling workload
// generation from simulation and letting externally produced traces drive
// the pipeline model.
//
// Usage:
//
//	tvtrace -gen -bench sjeng -n 500000 -o sjeng.tvtr   # record a trace
//	tvtrace -info sjeng.tvtr                            # summarize a trace
//	tvtrace -run sjeng.tvtr -scheme ABS -vdd 0.97       # simulate from file
package main

import (
	"flag"
	"fmt"
	"os"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/isa"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/trace"
	"tvsched/internal/workload"
)

func main() {
	var scheme = core.ABS
	flag.TextVar(&scheme, "scheme", core.ABS, "handling scheme for -run")
	var (
		gen    = flag.Bool("gen", false, "generate a trace from a workload profile")
		info   = flag.String("info", "", "summarize the given trace file")
		runF   = flag.String("run", "", "simulate the given trace file")
		bench  = flag.String("bench", "bzip2", "workload profile for -gen")
		n      = flag.Uint64("n", 300000, "instructions to record (-gen) or simulate (-run)")
		out    = flag.String("o", "trace.tvtr", "output file for -gen")
		vdd    = flag.Float64("vdd", fault.VHighFault, "supply voltage for -run")
		seed   = flag.Uint64("seed", 1, "generation/simulation seed")
		traceF = flag.String("trace", "", "for -run: write the measured run as Chrome trace-event JSON")
	)
	flag.Parse()

	switch {
	case *gen:
		if err := generate(*bench, *out, *n, *seed); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := summarize(*info); err != nil {
			fatal(err)
		}
	case *runF != "":
		if err := simulate(*runF, scheme, *vdd, *n, *seed, *traceF); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(bench, out string, n, seed uint64) error {
	prof, err := workload.Lookup(bench)
	if err != nil {
		return err
	}
	g, err := workload.NewGenerator(prof, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, n)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := w.Write(g.Next()); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s (%.2f bytes/inst)\n",
		n, out, float64(st.Size())/float64(n))
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var counts [isa.NumClasses]uint64
	pcs := map[uint64]struct{}{}
	var total, taken uint64
	for {
		in, err := r.Read()
		if err != nil {
			break
		}
		counts[in.Class]++
		pcs[in.PC] = struct{}{}
		total++
		if in.Taken {
			taken++
		}
	}
	fmt.Printf("%s: %d instructions (declared %d), %d static PCs\n",
		path, total, r.DeclaredCount(), len(pcs))
	for c := isa.IntALU; c < isa.NumClasses; c++ {
		fmt.Printf("  %-7s %9d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(total))
	}
	if counts[isa.Branch] > 0 {
		fmt.Printf("  taken branches: %.1f%%\n", 100*float64(taken)/float64(counts[isa.Branch]))
	}
	return nil
}

func simulate(path string, sch core.Scheme, vdd float64, n, seed uint64, traceF string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	src := trace.NewSource(r)
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = sch
	cfg.Seed = seed
	p, err := pipeline.New(cfg, src, fault.New(fault.DefaultConfig(seed)), vdd)
	if err != nil {
		return err
	}
	if err := p.Warmup(n / 4); err != nil {
		return err
	}
	var tracer *obs.ChromeTracer
	if traceF != "" {
		// Attach after warmup so the trace covers only the measured run.
		tracer = obs.NewChromeTracer()
		p.SetObserver(tracer)
	}
	st, err := p.Run(n)
	if err != nil {
		return err
	}
	if src.Err != nil {
		return fmt.Errorf("trace decode: %w", src.Err)
	}
	if tracer != nil {
		out, err := os.Create(traceF)
		if err != nil {
			return err
		}
		if _, err := tracer.WriteTo(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tvtrace: trace hit its record cap; %d events dropped (shorten -n)\n", d)
		}
		fmt.Printf("trace written to %s (open at ui.perfetto.dev)\n", traceF)
	}
	fmt.Printf("%s under %v at %.2fV: IPC %.3f, FR %.2f%%, coverage %.1f%%\n",
		path, sch, vdd, st.IPC(), 100*st.FaultRate(), 100*st.Coverage())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvtrace:", err)
	os.Exit(1)
}
