// Command tvbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tvbench                    # everything
//	tvbench -exp table1        # one experiment
//	tvbench -n 1000000         # paper-scale 1M-instruction phases
//	tvbench -pprof :8080       # live /metrics + expvar + pprof while running
//	tvbench -exp table1 -json out.json   # artifacts + BENCH_table1.json
//
// Experiments: table1, fig4, fig5, fig8, fig9, table2, table3, fig7, all.
//
// With -json, besides the artifact file, a cycle-accounting RunReport
// (obs.RunReportSchema) is written as BENCH_<exp>.json next to it; cmd/tvgate
// compares such reports to gate performance regressions in CI.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"tvsched/internal/experiments"
	"tvsched/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1 fig4 fig5 fig8 fig9 table2 table3 fig7 all")
		n       = flag.Uint64("n", 300000, "committed instructions per phase")
		warmup  = flag.Uint64("warmup", 50000, "warmup instructions per phase")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		serial  = flag.Bool("serial", false, "disable parallel simulation")
		plot    = flag.Bool("plot", false, "render figures as ASCII bar charts")
		jsonOut = flag.String("json", "", "also write all computed artifacts as JSON to this file")
		csvDir  = flag.String("csvdir", "", "also write CSVs (table1.csv, fig*.csv) into this directory")
		svgDir  = flag.String("svgdir", "", "also write figures as SVG bar charts into this directory")
		seeds   = flag.Int("seeds", 0, "rerun figures across N seeds and report mean±sigma of the reduction")
		pprofA  = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address while running (e.g. :8080)")
	)
	flag.Parse()

	cfg := experiments.Config{Insts: *n, Warmup: *warmup, Seed: *seed, Parallel: !*serial}
	var (
		metrics *obs.Metrics
		stack   *obs.CPIStack
	)
	if *pprofA != "" || *jsonOut != "" {
		// Aggregate observability across every simulation the suite runs.
		// Both observers implement obs.Sharder, so the suite gives each
		// parallel simulation a private lock-free shard and merges at run
		// end — the hot Event path never contends on a shared mutex.
		metrics = obs.NewMetrics()
		stack = experiments.NewRunCPIStack()
		cfg.Observer = obs.Multi(metrics, stack)
	}
	if *pprofA != "" {
		// Published three ways while running: the Prometheus text format at
		// /metrics, expvar JSON under /debug/vars, pprof at /debug/pprof.
		metrics.Publish("tvbench")
		expvar.NewString("tvbench.experiment").Set(*exp)
		http.Handle("/metrics", obs.NewExposition("tvbench", metrics, stack).Handler())
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tvbench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "tvbench: serving http://%s/metrics, /debug/pprof and /debug/vars\n", *pprofA)
	}
	suite := experiments.NewSuite(cfg)

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false
	report := experiments.Report{Config: cfg}

	writeCSV := func(name string, fn func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		check(os.MkdirAll(*csvDir, 0o755))
		f, err := os.Create(filepath.Join(*csvDir, name))
		check(err)
		defer f.Close()
		check(fn(f))
	}

	if want("table1") {
		rows, err := suite.Table1()
		check(err)
		fmt.Println(experiments.FormatTable1(rows))
		report.Table1 = rows
		writeCSV("table1.csv", func(f *os.File) error { return experiments.WriteTable1CSV(f, rows) })
		ran = true
	}
	figs := []struct {
		id   string
		fn   func() (experiments.FigureData, error)
		slot **experiments.FigureData
	}{
		{"fig4", suite.Figure4, &report.Figure4},
		{"fig5", suite.Figure5, &report.Figure5},
		{"fig8", suite.Figure8, &report.Figure8},
		{"fig9", suite.Figure9, &report.Figure9},
	}
	for _, f := range figs {
		if want(f.id) {
			data, err := f.fn()
			check(err)
			if *plot {
				fmt.Println(experiments.PlotFigure(data))
			} else {
				fmt.Println(experiments.FormatFigure(data))
			}
			d := data
			*f.slot = &d
			writeCSV(f.id+".csv", func(file *os.File) error { return experiments.WriteFigureCSV(file, d) })
			if *svgDir != "" {
				check(os.MkdirAll(*svgDir, 0o755))
				sf, err := os.Create(filepath.Join(*svgDir, f.id+".svg"))
				check(err)
				check(experiments.WriteFigureSVG(sf, d))
				check(sf.Close())
			}
			if *seeds > 1 {
				var seedList []uint64
				for s := uint64(1); s <= uint64(*seeds); s++ {
					seedList = append(seedList, s)
				}
				vals, mean, sigma, err := experiments.ReductionCI(f.id, cfg, seedList)
				check(err)
				fmt.Printf("%s reduction across %d seeds: %.1f%% ± %.1f%% %v\n\n",
					f.id, *seeds, mean, sigma, fmtVals(vals))
			}
			ran = true
		}
	}
	if want("table3") {
		rows := experiments.Table3()
		fmt.Println(experiments.FormatTable3(rows))
		report.Table3 = rows
		ran = true
	}
	if want("table2") {
		rows := experiments.Table2()
		fmt.Println(experiments.FormatTable2(rows))
		report.Table2 = rows
		ran = true
	}
	if want("fig7") {
		d := experiments.Figure7(*seed)
		fmt.Println(experiments.FormatFigure7(d))
		report.Figure7 = experiments.Figure7ToJSON(d)
		ran = true
	}
	if ran && *jsonOut != "" {
		report.RunReport = buildRunReport(suite, *exp, *seed, metrics, stack)
		f, err := os.Create(*jsonOut)
		check(err)
		check(report.WriteJSON(f))
		check(f.Close())

		// The standalone BENCH_<exp>.json next to the artifact file is what
		// cmd/tvgate and the CI perf gate consume.
		benchOut := filepath.Join(filepath.Dir(*jsonOut), "BENCH_"+*exp+".json")
		bf, err := os.Create(benchOut)
		check(err)
		check(report.RunReport.WriteJSON(bf))
		check(bf.Close())
		fmt.Fprintf(os.Stderr, "tvbench: run report written to %s\n", benchOut)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tvbench: unknown experiment %q (want %s)\n",
			*exp, strings.Join([]string{"table1", "fig4", "fig5", "fig8", "fig9", "table2", "table3", "fig7", "all"}, "|"))
		os.Exit(2)
	}
}

// buildRunReport aggregates the suite's runs into the RunReport artifact:
// throughput and the CPI stack from the shared observers, TEP accuracy from
// the metrics registry, and per-scheme overheads versus the fault-free
// baseline (simulated now if the chosen experiment did not already need
// them; suite memoization makes repeats free).
func buildRunReport(suite *experiments.Suite, exp string, seed uint64,
	metrics *obs.Metrics, stack *obs.CPIStack) *obs.RunReport {
	rep := &obs.RunReport{
		Tool:       "tvbench",
		Experiment: exp,
		Benchmark:  "all",
		Seed:       seed,
	}
	// Overheads first: any simulations they trigger feed the shared
	// observers, so the stack/accuracy snapshots below cover them too.
	ov, err := suite.SchemeOverheads(nil, experiments.EvalVoltages())
	check(err)
	rep.SchemeOverheads = ov
	sr := stack.Report()
	rep.CPIStack = &sr
	rep.Instructions = sr.Committed
	rep.Cycles = sr.Cycles
	if sr.Cycles > 0 {
		rep.IPC = float64(sr.Committed) / float64(sr.Cycles)
	}
	tp, fp := metrics.Accuracy()
	unpred := metrics.Counts()[obs.KindReplay]
	acc := &obs.TEPAccuracy{TruePositives: tp, FalsePositives: fp, Unpredicted: unpred}
	if actual := tp + unpred; actual > 0 {
		acc.Coverage = float64(tp) / float64(actual)
	}
	if pos := tp + fp; pos > 0 {
		acc.Precision = float64(tp) / float64(pos)
	}
	rep.TEP = acc
	return rep
}

func fmtVals(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%.1f", v)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvbench:", err)
		os.Exit(1)
	}
}
