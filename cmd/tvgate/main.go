// Command tvgate compares a freshly measured RunReport (BENCH_<exp>.json,
// written by tvbench -json or tvsim -report) against a checked-in baseline
// and exits non-zero when a watched scheme's performance overhead regressed
// beyond tolerance. It is the CI performance gate: simulations are
// deterministic given the seed, so any drift it flags is a code change, not
// noise.
//
// Usage:
//
//	tvgate -report BENCH_table1.json -baseline .github/perf-baseline.json
//	tvgate -report r.json -baseline b.json -scheme ABS -vdd 0.97 -tolerance 0.10
//	tvgate -sweep sweepbench.json -min-speedup 2.0
//	tvgate -cluster clusterload.json -min-steals 1
//	tvgate -chaos chaosload.json -min-availability 0.99 -min-degraded 1
//	tvgate -campaign summary.json -min-skip 0.5
//
// With -sweep, tvgate instead gates a sweep-bench/v1 artifact (tvload
// -sweepbench): the checkpointed sweep must be at least -min-speedup times
// faster than the cold one.
//
// With -cluster, tvgate gates a cluster-load-report/v1 artifact (tvload
// -urls): zero request errors, zero byte divergences across nodes, and at
// least -min-steals responses whose bytes came from a peer — proof the
// forward/read-through path actually carried load.
//
// With -chaos, tvgate gates a chaos-load-report/v1 artifact (tvload
// -chaos): zero errors and availability at or above -min-availability
// despite injected faults, at least -min-degraded degraded-mode answers
// (proof the drill exercised the fallback), and zero byte divergences left
// after anti-entropy.
//
// With -campaign, tvgate gates a campaign-summary/v1 artifact (tvplan
// -summary): the campaign must be complete, error-free, and have skipped —
// via journal replay, result-cache hits or collapsed duplicates — at least
// -min-skip of its cells.
//
// The comparison is on the scheme's performance overhead versus fault-free
// execution (perf_pct in the report): the gate fails when
//
//	measured > baseline·(1+tolerance) + slack
//
// The additive slack keeps near-zero baselines from turning into a
// zero-tolerance gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tvsched/internal/campaign"
	"tvsched/internal/obs"
	"tvsched/internal/serve"
)

func main() {
	var (
		reportF   = flag.String("report", "", "freshly measured RunReport JSON (required)")
		baselineF = flag.String("baseline", "", "baseline RunReport JSON to compare against (required)")
		scheme    = flag.String("scheme", "ABS", "scheme whose overhead is gated")
		vdd       = flag.Float64("vdd", 0.97, "supply voltage of the gated overhead entry")
		tolerance = flag.Float64("tolerance", 0.10, "allowed relative regression (0.10 = +10%)")
		slack     = flag.Float64("slack", 0.25, "allowed absolute regression in percentage points")

		sweepF     = flag.String("sweep", "", "sweep-bench JSON (tvload -sweepbench) to gate instead of a RunReport pair")
		minSpeedup = flag.Float64("min-speedup", 2.0, "minimum checkpointed-sweep speedup required by -sweep")

		clusterF  = flag.String("cluster", "", "cluster-load-report JSON (tvload -urls) to gate instead of a RunReport pair")
		minSteals = flag.Uint64("min-steals", 1, "minimum peer-served responses required by -cluster")

		chaosF          = flag.String("chaos", "", "chaos-load-report JSON (tvload -chaos) to gate instead of a RunReport pair")
		minAvailability = flag.Float64("min-availability", 0.99, "minimum fraction of 200 answers required by -chaos")
		minDegraded     = flag.Uint64("min-degraded", 1, "minimum degraded-mode answers required by -chaos (proof the drill actually bit)")

		campaignF = flag.String("campaign", "", "campaign-summary or campaign-bench JSON to gate instead of a RunReport pair")
		minSkip   = flag.Float64("min-skip", 0.5, "minimum cached-cell skip ratio required by -campaign")
	)
	flag.Parse()
	if *campaignF != "" {
		gateCampaign(*campaignF, *minSkip, *minSpeedup)
		return
	}
	if *sweepF != "" {
		gateSweep(*sweepF, *minSpeedup)
		return
	}
	if *clusterF != "" {
		gateCluster(*clusterF, *minSteals)
		return
	}
	if *chaosF != "" {
		gateChaos(*chaosF, *minAvailability, *minDegraded)
		return
	}
	if *reportF == "" || *baselineF == "" {
		fmt.Fprintln(os.Stderr, "tvgate: -report and -baseline are required")
		os.Exit(2)
	}

	rep := read(*reportF)
	base := read(*baselineF)
	cur, ok := rep.Overhead(*scheme, *vdd)
	if !ok {
		fatal(fmt.Errorf("%s: no overhead entry for %s at %.2f V", *reportF, *scheme, *vdd))
	}
	ref, ok := base.Overhead(*scheme, *vdd)
	if !ok {
		fatal(fmt.Errorf("%s: no overhead entry for %s at %.2f V", *baselineF, *scheme, *vdd))
	}

	limit := ref.PerfPct*(1+*tolerance) + *slack
	fmt.Printf("tvgate: %s at %.2f V: perf overhead %.3f%% (baseline %.3f%%, limit %.3f%%)\n",
		*scheme, *vdd, cur.PerfPct, ref.PerfPct, limit)
	if cur.PerfPct > limit {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %s overhead regressed %.3f%% -> %.3f%% (limit %.3f%%)\n",
			*scheme, ref.PerfPct, cur.PerfPct, limit)
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

// gateSweep enforces the checkpointed-sweep throughput floor on a
// sweep-bench/v1 artifact.
func gateSweep(path string, minSpeedup float64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var rep serve.SweepBenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if rep.Schema != serve.SweepBenchSchema {
		fatal(fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, serve.SweepBenchSchema))
	}
	fmt.Printf("tvgate: checkpointed sweep %.2fx faster than cold (%d cells, warmup %d; floor %.2fx)\n",
		rep.Speedup, rep.Cells, rep.Warmup, minSpeedup)
	if rep.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: checkpointed sweep speedup %.2fx below floor %.2fx\n",
			rep.Speedup, minSpeedup)
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

// gateCluster enforces cluster-serving invariants on a
// cluster-load-report/v1 artifact: no errors, byte-identical answers across
// nodes, and a nonzero amount of peer-served work.
func gateCluster(path string, minSteals uint64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var rep serve.ClusterLoadReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if rep.Schema != serve.ClusterLoadReportSchema {
		fatal(fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, serve.ClusterLoadReportSchema))
	}
	fmt.Printf("tvgate: cluster of %d nodes: %d reqs, %d stolen, %d errors, %d divergences (steal floor %d)\n",
		len(rep.Nodes), rep.Requests, rep.Stolen, rep.Errors, rep.Divergences, minSteals)
	bad := false
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d request errors\n", rep.Errors)
		bad = true
	}
	if rep.Divergences > 0 {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d byte divergences between nodes\n", rep.Divergences)
		bad = true
	}
	if rep.Stolen < minSteals {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d peer-served responses, floor %d\n", rep.Stolen, minSteals)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

// gateChaos enforces the resilience invariants on a chaos-load-report/v1
// artifact (tvload -chaos): despite injected faults, zero request errors,
// availability above the floor, some degraded-mode serving (otherwise the
// drill proved nothing), and — after anti-entropy — zero byte divergence
// anywhere in the cluster.
func gateChaos(path string, minAvailability float64, minDegraded uint64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var rep serve.ChaosLoadReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if rep.Schema != serve.ChaosLoadReportSchema {
		fatal(fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, serve.ChaosLoadReportSchema))
	}
	fmt.Printf("tvgate: chaos drill on %d nodes: %d reqs, availability %.2f%% (floor %.2f%%), %d degraded (floor %d), %d errors, %d repaired, %d post-repair divergences\n",
		rep.Nodes, rep.Requests, 100*rep.Availability, 100*minAvailability,
		rep.Degraded, minDegraded, rep.Errors, rep.Repaired, rep.PostRepairDivergences)
	bad := false
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d request errors under chaos\n", rep.Errors)
		bad = true
	}
	if rep.Availability < minAvailability {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: availability %.4f below floor %.4f\n", rep.Availability, minAvailability)
		bad = true
	}
	if rep.Degraded < minDegraded {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d degraded answers, floor %d — the injected faults never bit\n", rep.Degraded, minDegraded)
		bad = true
	}
	if rep.PostRepairDivergences > 0 {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d digests still byte-divergent after anti-entropy\n", rep.PostRepairDivergences)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

// gateCampaign gates a campaign artifact, dispatched on its schema tag: a
// campaign-summary/v1 (tvplan -summary, mirrored by a finished /v1/campaign)
// must be complete, error-free, and have a cached-cell skip ratio at or
// above the floor — proof a resumed or re-run campaign actually reused
// prior work; a campaign-bench/v1 (tvload -campaignbench) must additionally
// show the engine's shared-prefix execution beating cell-independent
// execution by at least -min-speedup.
func gateCampaign(path string, minSkip, minSpeedup float64) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if probe.Schema == serve.CampaignBenchSchema {
		gateCampaignBench(path, blob, minSkip, minSpeedup)
		return
	}
	var sum campaign.Summary
	if err := json.Unmarshal(blob, &sum); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if sum.Schema != campaign.SummarySchema {
		fatal(fmt.Errorf("%s: schema %q, want %q or %q", path, sum.Schema, campaign.SummarySchema, serve.CampaignBenchSchema))
	}
	fmt.Printf("tvgate: campaign %.12s: %d/%d cells (%d replayed, %d errors), skip ratio %.2f (floor %.2f)\n",
		sum.Plan, sum.Done, sum.Cells, sum.Replayed, sum.Errors, sum.SkipRatio, minSkip)
	bad := false
	if sum.Done != sum.Cells {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: campaign incomplete: %d of %d cells done\n", sum.Done, sum.Cells)
		bad = true
	}
	if sum.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: %d cells failed\n", sum.Errors)
		bad = true
	}
	if sum.SkipRatio < minSkip {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: skip ratio %.2f below floor %.2f — the campaign re-simulated cells it should have reused\n",
			sum.SkipRatio, minSkip)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

// gateCampaignBench enforces the campaign-engine throughput and caching
// floors on a campaign-bench/v1 artifact: the shared-prefix engine pass must
// beat cell-independent execution by -min-speedup, and the cached
// re-campaign must have skipped at least -min-skip of its cells.
func gateCampaignBench(path string, blob []byte, minSkip, minSpeedup float64) {
	var rep serve.CampaignBenchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("tvgate: campaign engine %.2fx faster than cell-independent (%d cells, warmup %d; floor %.2fx), cached skip ratio %.2f (floor %.2f)\n",
		rep.Speedup, rep.Cells, rep.Warmup, minSpeedup, rep.CachedSkipRatio, minSkip)
	bad := false
	if rep.Speedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: engine speedup %.2fx below floor %.2fx\n",
			rep.Speedup, minSpeedup)
		bad = true
	}
	if rep.CachedSkipRatio < minSkip {
		fmt.Fprintf(os.Stderr, "tvgate: FAIL: cached campaign skip ratio %.2f below floor %.2f\n",
			rep.CachedSkipRatio, minSkip)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("tvgate: OK")
}

func read(path string) *obs.RunReport {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := obs.ReadRunReport(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvgate:", err)
	os.Exit(1)
}
