// Command tvsim runs one benchmark under one timing-error handling scheme at
// one supply voltage and prints the resulting statistics. It is the
// single-experiment entry point; cmd/tvbench regenerates the paper's full
// tables and figures.
//
// Usage:
//
//	tvsim -bench bzip2 -scheme ABS -vdd 0.97 -n 1000000
//	tvsim -all -vdd 1.10           # fault-free IPC for every benchmark
//	tvsim -bench sjeng -vdd 0.97 -trace out.json   # Perfetto trace
//	tvsim -bench sjeng -vdd 0.97 -cpistack         # CPI-stack table
//	tvsim -bench sjeng -vdd 0.97 -report run.json  # RunReport JSON
//	tvsim -bench sjeng -pprof :8080                # /metrics + /debug/pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"tvsched/internal/asm"
	"tvsched/internal/core"
	"tvsched/internal/experiments"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/sim"
	"tvsched/internal/workload"
)

func main() {
	var scheme = core.ABS
	flag.TextVar(&scheme, "scheme", core.ABS, "Razor | EP | ABS | FFS | CDS")
	var (
		bench   = flag.String("bench", "bzip2", "benchmark name (see -list)")
		vdd     = flag.Float64("vdd", fault.VLowFault, "supply voltage (1.10 fault-free, 1.04 low FR, 0.97 high FR)")
		n       = flag.Uint64("n", 300000, "committed instructions to simulate")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		all     = flag.Bool("all", false, "run every benchmark")
		list    = flag.Bool("list", false, "list benchmark names and exit")
		flush   = flag.Bool("fullflush", false, "use architectural (flush) replay instead of selective")
		ct      = flag.Int("ct", 8, "CDL criticality threshold (paper best: 8)")
		tepN    = flag.Int("tep-entries", 4096, "TEP table entries (power of two)")
		tepH    = flag.Int("tep-history", 2, "branch-history bits folded into the TEP index")
		asmF    = flag.String("asm", "", "run the assembly kernel in this file instead of a benchmark profile")
		bias    = flag.Float64("bias", 1.0, "fault susceptibility multiplier for -asm kernels")
		traceF  = flag.String("trace", "", "write the measured run as Chrome trace-event JSON (open at ui.perfetto.dev)")
		metricF = flag.Bool("metrics", false, "print the observability metrics summary after each run")
		stackF  = flag.Bool("cpistack", false, "print the cycle-accounting CPI stack after each run")
		reportF = flag.String("report", "", "write the run as RunReport JSON (schema "+obs.RunReportSchema+") to this file")
		pprofA  = flag.String("pprof", "", "serve /metrics, /debug/pprof and /debug/vars on this address while running (e.g. :8080)")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *all && *traceF != "" {
		fatal(fmt.Errorf("-trace records a single run; drop -all or -trace"))
	}
	if *all && *reportF != "" {
		fatal(fmt.Errorf("-report records a single run; drop -all or -report"))
	}

	if *asmF != "" {
		if err := runAsm(*asmF, scheme, *vdd, *n, *seed, *bias, *traceF, *metricF, *stackF); err != nil {
			fatal(err)
		}
		return
	}

	// With -pprof one observer set is shared across all runs and scraped
	// live; otherwise each run gets (and reports) its own.
	shared := (*pprofA != "")
	var sharedSet *observers
	if shared {
		sharedSet = newObservers(*traceF != "", true, true)
		http.Handle("/metrics", obs.NewExposition("tvsim", sharedSet.metrics, sharedSet.stack).Handler())
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tvsim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "tvsim: serving http://%s/metrics and /debug/pprof\n", *pprofA)
	}

	benches := []string{*bench}
	if *all {
		benches = workload.Names()
	}
	fmt.Printf("%-12s %-6s vdd=%.2f n=%d\n", "benchmark", scheme, *vdd, *n)
	fmt.Printf("%-12s %7s %7s %8s %8s %8s %8s %8s\n",
		"", "IPC", "FR%", "cover%", "replays", "gstall", "confined", "cycles")
	o := options{flush: *flush, ct: *ct, tepEntries: *tepN, tepHistory: *tepH}
	for _, name := range benches {
		oset := sharedSet
		if oset == nil {
			oset = newObservers(*traceF != "", *metricF, *stackF || *reportF != "")
		}
		o.obs = oset.combined()
		st, err := run(name, scheme, *vdd, *n, *seed, o)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %7.3f %7.2f %8.1f %8d %8d %8d %8d\n",
			name, st.IPC(), 100*st.FaultRate(), 100*st.Coverage(),
			st.Replays, st.GlobalStalls, st.ConfinedEvents, st.Cycles)
		if *reportF != "" {
			if err := writeReport(*reportF, name, scheme, *vdd, *seed, &st, oset.stack); err != nil {
				fatal(err)
			}
			fmt.Printf("run report written to %s\n", *reportF)
		}
		if !shared {
			if err := oset.finish(*traceF, *metricF, *stackF); err != nil {
				fatal(err)
			}
		}
	}
	if shared {
		if err := sharedSet.finish(*traceF, *metricF, *stackF); err != nil {
			fatal(err)
		}
	}
}

// options carries the machine-configuration flags.
type options struct {
	flush                  bool
	ct                     int
	tepEntries, tepHistory int
	obs                    obs.Observer
}

// observers is the per-run (or, with -pprof, shared) observer set.
type observers struct {
	tracer  *obs.ChromeTracer
	metrics *obs.Metrics
	stack   *obs.CPIStack
}

// newObservers builds the requested observer set.
func newObservers(trace, metrics, stack bool) *observers {
	o := &observers{}
	if trace {
		o.tracer = obs.NewChromeTracer()
	}
	if metrics {
		o.metrics = obs.NewMetrics()
	}
	if stack {
		o.stack = experiments.NewRunCPIStack()
	}
	return o
}

// combined fans out to the non-nil observers; nil when none is requested.
// (obs.Multi drops nil interfaces, but a typed-nil *ChromeTracer inside an
// interface is not nil — hence the explicit checks here.)
func (o *observers) combined() obs.Observer {
	var os []obs.Observer
	if o.tracer != nil {
		os = append(os, o.tracer)
	}
	if o.metrics != nil {
		os = append(os, o.metrics)
	}
	if o.stack != nil {
		os = append(os, o.stack)
	}
	return obs.Multi(os...)
}

// finish writes the trace file and prints the requested summaries.
func (o *observers) finish(path string, metrics, stack bool) error {
	if o.tracer != nil {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := o.tracer.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := o.tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tvsim: trace hit its record cap; %d events dropped (shorten -n)\n", d)
		}
		fmt.Printf("trace written to %s (open at ui.perfetto.dev)\n", path)
	}
	if o.metrics != nil && metrics {
		fmt.Print(o.metrics.Summary())
	}
	if o.stack != nil && stack {
		rep := o.stack.Report()
		fmt.Print(rep.Format())
	}
	return nil
}

// writeReport emits the single-run RunReport JSON.
func writeReport(path, bench string, sch core.Scheme, vdd float64, seed uint64,
	st *pipeline.Stats, stack *obs.CPIStack) error {
	rep := &obs.RunReport{
		Tool:         "tvsim",
		Benchmark:    bench,
		Scheme:       sch.String(),
		VDD:          vdd,
		Seed:         seed,
		Instructions: st.Committed,
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		TEP:          experiments.TEPAccuracyFrom(st),
	}
	if stack != nil {
		sr := stack.Report()
		rep.CPIStack = &sr
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, sch core.Scheme, vdd float64, n, seed uint64, opts options) (pipeline.Stats, error) {
	mcfg := pipeline.DefaultConfig()
	mcfg.FullFlushReplay = opts.flush
	mcfg.CT = opts.ct
	mcfg.TEP.Entries = opts.tepEntries
	mcfg.TEP.HistoryBits = opts.tepHistory
	sess, err := sim.New(sim.Config{
		Benchmark: name,
		Scheme:    sch,
		VDD:       vdd,
		Warmup:    n / 4,
		Seed:      seed,
		Machine:   &mcfg,
	})
	if err != nil {
		return pipeline.Stats{}, err
	}
	ctx := context.Background()
	if err := sess.Warmup(ctx); err != nil {
		return pipeline.Stats{}, err
	}
	// Attach after warmup so the trace/metrics cover only the measured run.
	sess.SetObserver(opts.obs)
	return sess.Run(ctx, n)
}

// runAsm simulates a kernel file through the mini-ISA interpreter.
func runAsm(path string, sch core.Scheme, vdd float64, n, seed uint64, bias float64, traceF string, metricF, stackF bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Assemble once up front for the static-instruction count; the session
	// assembles its own copy (assembly is deterministic and cheap).
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	var m *asm.Machine
	sess, err := sim.NewAsm(sim.Config{
		Scheme:    sch,
		VDD:       vdd,
		Warmup:    n / 4,
		Seed:      seed,
		FaultBias: bias,
	}, string(src), func(mm *asm.Machine) { m = mm })
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := sess.Warmup(ctx); err != nil {
		return err
	}
	oset := newObservers(traceF != "", metricF, stackF)
	sess.SetObserver(oset.combined())
	st, err := sess.Run(ctx, n)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d static insts, %d restarts) under %v at %.2fV:\n",
		path, prog.Len(), m.Restarts(), sch, vdd)
	fmt.Printf("  IPC %.3f  FR %.2f%%  coverage %.1f%%  replays %d\n",
		st.IPC(), 100*st.FaultRate(), 100*st.Coverage(), st.Replays)
	return oset.finish(traceF, metricF, stackF)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvsim:", err)
	os.Exit(1)
}
