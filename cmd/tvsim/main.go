// Command tvsim runs one benchmark under one timing-error handling scheme at
// one supply voltage and prints the resulting statistics. It is the
// single-experiment entry point; cmd/tvbench regenerates the paper's full
// tables and figures.
//
// Usage:
//
//	tvsim -bench bzip2 -scheme ABS -vdd 0.97 -n 1000000
//	tvsim -all -vdd 1.10           # fault-free IPC for every benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"tvsched/internal/asm"
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/pipeline"
	"tvsched/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "bzip2", "benchmark name (see -list)")
		scheme = flag.String("scheme", "ABS", "Razor | EP | ABS | FFS | CDS")
		vdd    = flag.Float64("vdd", fault.VLowFault, "supply voltage (1.10 fault-free, 1.04 low FR, 0.97 high FR)")
		n      = flag.Uint64("n", 300000, "committed instructions to simulate")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		all    = flag.Bool("all", false, "run every benchmark")
		list   = flag.Bool("list", false, "list benchmark names and exit")
		flush  = flag.Bool("fullflush", false, "use architectural (flush) replay instead of selective")
		ct     = flag.Int("ct", 8, "CDL criticality threshold (paper best: 8)")
		tepN   = flag.Int("tep-entries", 4096, "TEP table entries (power of two)")
		tepH   = flag.Int("tep-history", 2, "branch-history bits folded into the TEP index")
		asmF   = flag.String("asm", "", "run the assembly kernel in this file instead of a benchmark profile")
		bias   = flag.Float64("bias", 1.0, "fault susceptibility multiplier for -asm kernels")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}

	if *asmF != "" {
		if err := runAsm(*asmF, sch, *vdd, *n, *seed, *bias); err != nil {
			fatal(err)
		}
		return
	}

	benches := []string{*bench}
	if *all {
		benches = workload.Names()
	}
	fmt.Printf("%-12s %-6s vdd=%.2f n=%d\n", "benchmark", sch, *vdd, *n)
	fmt.Printf("%-12s %7s %7s %8s %8s %8s %8s %8s\n",
		"", "IPC", "FR%", "cover%", "replays", "gstall", "confined", "cycles")
	o := options{flush: *flush, ct: *ct, tepEntries: *tepN, tepHistory: *tepH}
	for _, name := range benches {
		st, err := run(name, sch, *vdd, *n, *seed, o)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %7.3f %7.2f %8.1f %8d %8d %8d %8d\n",
			name, st.IPC(), 100*st.FaultRate(), 100*st.Coverage(),
			st.Replays, st.GlobalStalls, st.ConfinedEvents, st.Cycles)
	}
}

// options carries the machine-configuration flags.
type options struct {
	flush                  bool
	ct                     int
	tepEntries, tepHistory int
}

func run(name string, sch core.Scheme, vdd float64, n, seed uint64, opts options) (pipeline.Stats, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return pipeline.Stats{}, fmt.Errorf("unknown benchmark %q", name)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		return pipeline.Stats{}, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = sch
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	cfg.FullFlushReplay = opts.flush
	cfg.CT = opts.ct
	cfg.TEP.Entries = opts.tepEntries
	cfg.TEP.HistoryBits = opts.tepHistory
	fc := fault.DefaultConfig(seed)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		return pipeline.Stats{}, err
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(n / 4); err != nil {
		return pipeline.Stats{}, err
	}
	return p.Run(n)
}

// runAsm simulates a kernel file through the mini-ISA interpreter.
func runAsm(path string, sch core.Scheme, vdd float64, n, seed uint64, bias float64) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	m := asm.NewMachine(prog)
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = sch
	cfg.Seed = seed
	fc := fault.DefaultConfig(seed)
	fc.Bias = bias
	p, err := pipeline.New(cfg, m, fault.New(fc), vdd)
	if err != nil {
		return err
	}
	if err := p.Warmup(n / 4); err != nil {
		return err
	}
	st, err := p.Run(n)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d static insts, %d restarts) under %v at %.2fV:\n",
		path, prog.Len(), m.Restarts(), sch, vdd)
	fmt.Printf("  IPC %.3f  FR %.2f%%  coverage %.1f%%  replays %d\n",
		st.IPC(), 100*st.FaultRate(), 100*st.Coverage(), st.Replays)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvsim:", err)
	os.Exit(1)
}
