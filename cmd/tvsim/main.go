// Command tvsim runs one benchmark under one timing-error handling scheme at
// one supply voltage and prints the resulting statistics. It is the
// single-experiment entry point; cmd/tvbench regenerates the paper's full
// tables and figures.
//
// Usage:
//
//	tvsim -bench bzip2 -scheme ABS -vdd 0.97 -n 1000000
//	tvsim -all -vdd 1.10           # fault-free IPC for every benchmark
//	tvsim -bench sjeng -vdd 0.97 -trace out.json   # Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"

	"tvsched/internal/asm"
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/workload"
)

func main() {
	var scheme = core.ABS
	flag.TextVar(&scheme, "scheme", core.ABS, "Razor | EP | ABS | FFS | CDS")
	var (
		bench   = flag.String("bench", "bzip2", "benchmark name (see -list)")
		vdd     = flag.Float64("vdd", fault.VLowFault, "supply voltage (1.10 fault-free, 1.04 low FR, 0.97 high FR)")
		n       = flag.Uint64("n", 300000, "committed instructions to simulate")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		all     = flag.Bool("all", false, "run every benchmark")
		list    = flag.Bool("list", false, "list benchmark names and exit")
		flush   = flag.Bool("fullflush", false, "use architectural (flush) replay instead of selective")
		ct      = flag.Int("ct", 8, "CDL criticality threshold (paper best: 8)")
		tepN    = flag.Int("tep-entries", 4096, "TEP table entries (power of two)")
		tepH    = flag.Int("tep-history", 2, "branch-history bits folded into the TEP index")
		asmF    = flag.String("asm", "", "run the assembly kernel in this file instead of a benchmark profile")
		bias    = flag.Float64("bias", 1.0, "fault susceptibility multiplier for -asm kernels")
		traceF  = flag.String("trace", "", "write the measured run as Chrome trace-event JSON (open at ui.perfetto.dev)")
		metricF = flag.Bool("metrics", false, "print the observability metrics summary after each run")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *all && *traceF != "" {
		fatal(fmt.Errorf("-trace records a single run; drop -all or -trace"))
	}

	if *asmF != "" {
		if err := runAsm(*asmF, scheme, *vdd, *n, *seed, *bias, *traceF, *metricF); err != nil {
			fatal(err)
		}
		return
	}

	benches := []string{*bench}
	if *all {
		benches = workload.Names()
	}
	fmt.Printf("%-12s %-6s vdd=%.2f n=%d\n", "benchmark", scheme, *vdd, *n)
	fmt.Printf("%-12s %7s %7s %8s %8s %8s %8s %8s\n",
		"", "IPC", "FR%", "cover%", "replays", "gstall", "confined", "cycles")
	o := options{flush: *flush, ct: *ct, tepEntries: *tepN, tepHistory: *tepH}
	for _, name := range benches {
		tracer, metrics := newObservers(*traceF != "", *metricF)
		o.obs = combine(tracer, metrics)
		st, err := run(name, scheme, *vdd, *n, *seed, o)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %7.3f %7.2f %8.1f %8d %8d %8d %8d\n",
			name, st.IPC(), 100*st.FaultRate(), 100*st.Coverage(),
			st.Replays, st.GlobalStalls, st.ConfinedEvents, st.Cycles)
		if err := finishObservers(tracer, metrics, *traceF); err != nil {
			fatal(err)
		}
	}
}

// options carries the machine-configuration flags.
type options struct {
	flush                  bool
	ct                     int
	tepEntries, tepHistory int
	obs                    obs.Observer
}

// newObservers builds the requested observer set for one run.
func newObservers(trace, metrics bool) (*obs.ChromeTracer, *obs.Metrics) {
	var t *obs.ChromeTracer
	var m *obs.Metrics
	if trace {
		t = obs.NewChromeTracer()
	}
	if metrics {
		m = obs.NewMetrics()
	}
	return t, m
}

// combine fans out to the non-nil observers; nil when neither is requested.
// (obs.Multi drops nil interfaces, but a typed-nil *ChromeTracer inside an
// interface is not nil — hence the explicit checks here.)
func combine(t *obs.ChromeTracer, m *obs.Metrics) obs.Observer {
	var os []obs.Observer
	if t != nil {
		os = append(os, t)
	}
	if m != nil {
		os = append(os, m)
	}
	return obs.Multi(os...)
}

// finishObservers writes the trace file and prints the metrics summary.
func finishObservers(t *obs.ChromeTracer, m *obs.Metrics, path string) error {
	if t != nil {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := t.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := t.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "tvsim: trace hit its record cap; %d events dropped (shorten -n)\n", d)
		}
		fmt.Printf("trace written to %s (open at ui.perfetto.dev)\n", path)
	}
	if m != nil {
		fmt.Print(m.Summary())
	}
	return nil
}

func run(name string, sch core.Scheme, vdd float64, n, seed uint64, opts options) (pipeline.Stats, error) {
	prof, err := workload.Lookup(name)
	if err != nil {
		return pipeline.Stats{}, err
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		return pipeline.Stats{}, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = sch
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	cfg.FullFlushReplay = opts.flush
	cfg.CT = opts.ct
	cfg.TEP.Entries = opts.tepEntries
	cfg.TEP.HistoryBits = opts.tepHistory
	fc := fault.DefaultConfig(seed)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		return pipeline.Stats{}, err
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(n / 4); err != nil {
		return pipeline.Stats{}, err
	}
	// Attach after warmup so the trace/metrics cover only the measured run.
	p.SetObserver(opts.obs)
	return p.Run(n)
}

// runAsm simulates a kernel file through the mini-ISA interpreter.
func runAsm(path string, sch core.Scheme, vdd float64, n, seed uint64, bias float64, traceF string, metricF bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	m := asm.NewMachine(prog)
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = sch
	cfg.Seed = seed
	fc := fault.DefaultConfig(seed)
	fc.Bias = bias
	p, err := pipeline.New(cfg, m, fault.New(fc), vdd)
	if err != nil {
		return err
	}
	if err := p.Warmup(n / 4); err != nil {
		return err
	}
	tracer, metrics := newObservers(traceF != "", metricF)
	p.SetObserver(combine(tracer, metrics))
	st, err := p.Run(n)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d static insts, %d restarts) under %v at %.2fV:\n",
		path, prog.Len(), m.Restarts(), sch, vdd)
	fmt.Printf("  IPC %.3f  FR %.2f%%  coverage %.1f%%  replays %d\n",
		st.IPC(), 100*st.FaultRate(), 100*st.Coverage(), st.Replays)
	return finishObservers(tracer, metrics, traceF)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvsim:", err)
	os.Exit(1)
}
