// Package tvsched is a library-grade reproduction of "Efficiently Tolerating
// Timing Violations in Pipelined Microprocessors" (Chakraborty, Cozzens, Roy,
// Ancajas — DAC 2013).
//
// The paper's contribution is a violation-aware instruction scheduling
// framework for out-of-order processors: when the Timing Error Predictor
// (TEP) flags an instruction as likely to violate timing in a particular
// pipe stage, the issue stage schedules around it — the faulty instruction
// occupies its stage one extra cycle, its issue slot / functional unit is
// frozen for the following cycle, and its dependents are held back — instead
// of stalling the whole pipeline (Error Padding) or replaying (Razor). Three
// selection policies are provided: age-based (ABS), faulty-first (FFS) and
// criticality-driven (CDS).
//
// This package is the public facade. It wraps:
//
//   - a cycle-level 4-wide out-of-order core model (Fabscalar Core-1 class)
//     with caches, branch prediction, TEP, and all five handling schemes;
//   - twelve calibrated SPEC CPU2006-like workload models;
//   - the statistical timing-fault model of the paper's §4.3;
//   - the gate-level substrate for the supplemental sensitized-path study;
//   - an experiment harness regenerating every table and figure.
//
// Quick start:
//
//	s, err := tvsched.NewSession(tvsched.Config{
//	    Benchmark: "bzip2",
//	    Scheme:    tvsched.ABS,
//	    VDD:       tvsched.VHighFault,
//	    Instructions: 300000,
//	})
//	if err != nil { ... }
//	if err := s.Warmup(ctx); err != nil { ... }
//	res, err := s.Run(ctx, tvsched.RunOpts{})
//	fmt.Println(res.IPC, res.FaultRate, res.Coverage)
//
// Session is the unified lifecycle API: construct, warm up, optionally
// checkpoint (Snapshot) or restore a previous warm state (Restore), then
// measure. The free functions Run, Compare, RunProfile and RunAsm remain as
// deprecated one-call wrappers.
//
// See cmd/tvbench for the full paper reproduction and EXPERIMENTS.md for the
// paper-vs-measured record.
package tvsched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"tvsched/internal/asm"
	"tvsched/internal/core"
	"tvsched/internal/energy"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/sim"
	"tvsched/internal/workload"
)

// Sentinel errors, matchable with errors.Is. They originate in the internal
// packages (which cannot import this facade) and are re-exported here so
// callers never need to match on message text.
var (
	// ErrUnknownBenchmark reports a Config.Benchmark outside Benchmarks().
	ErrUnknownBenchmark = workload.ErrUnknownBenchmark
	// ErrUnknownScheme reports a scheme name ParseScheme does not recognize.
	ErrUnknownScheme = core.ErrUnknownScheme
	// ErrBadConfig reports an invalid machine configuration.
	ErrBadConfig = pipeline.ErrBadConfig
	// ErrSnapshotUnsupported reports a Snapshot or Restore refused because of
	// the machine's configuration (supervisor attached, custom predictor,
	// non-checkpointable source, or a wire-format version mismatch).
	ErrSnapshotUnsupported = pipeline.ErrSnapshotUnsupported
)

// Scheme selects the timing-error handling scheme.
type Scheme = core.Scheme

// The five comparative schemes of the paper's §5.
const (
	// Razor replays every violation (reactive baseline).
	Razor = core.Razor
	// EP (Error Padding) stalls the whole pipeline one cycle per predicted
	// violation (the paper's baseline, after Roy et al. and Xin et al.).
	EP = core.EP
	// ABS is violation-aware scheduling with age-based selection.
	ABS = core.ABS
	// FFS is violation-aware scheduling with faulty-first selection.
	FFS = core.FFS
	// CDS is violation-aware scheduling with criticality-driven selection.
	CDS = core.CDS
)

// The three supply-voltage environments of §4.3.
const (
	// VNominal (1.10 V) is fault-free.
	VNominal = fault.VNominal
	// VLowFault (1.04 V) is the paper's low-fault-rate environment.
	VLowFault = fault.VLowFault
	// VHighFault (0.97 V) is the paper's high-fault-rate environment.
	VHighFault = fault.VHighFault
)

// ParseScheme converts "Razor" | "EP" | "ABS" | "FFS" | "CDS" to a Scheme.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// Benchmarks returns the available workload names (Table 1's twelve
// SPEC CPU2006 profiles).
func Benchmarks() []string { return workload.Names() }

// PipeStats re-exports the detailed pipeline statistics.
type PipeStats = pipeline.Stats

// EnergyResult re-exports the energy accounting.
type EnergyResult = energy.Result

// Observability re-exports (see internal/obs for the full documentation).
// An Observer attached via Config.Observer receives every typed pipeline
// event — fetch/dispatch/issue/retire progress, predicted and actual timing
// violations, replays and flushes, FUSR slot freezes, delayed tag broadcasts,
// TEP activity, and periodic occupancy samples. A nil observer costs nothing.
type (
	// Observer receives pipeline events.
	Observer = obs.Observer
	// ObserverFunc adapts a function to an Observer.
	ObserverFunc = obs.ObserverFunc
	// Event is one typed pipeline event.
	Event = obs.Event
	// EventKind discriminates Event payloads.
	EventKind = obs.Kind
	// Metrics is a thread-safe aggregating observer: counters, per-stage
	// violation counts, occupancy/burst histograms and a decimating
	// occupancy time series, publishable via expvar.
	Metrics = obs.Metrics
	// ChromeTracer is an observer that records Chrome trace-event JSON
	// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
	ChromeTracer = obs.ChromeTracer
	// CPIStack is the cycle-accounting profiler: it decomposes every issue
	// slot of the observed run into a CPI stack (base, branch mispredict,
	// cache misses, dispatch back-pressure, and each flavour of
	// timing-violation handling) with per-PC penalty attribution.
	CPIStack = obs.CPIStack
	// CPIStackConfig parameterizes a CPIStack; zero fields take Core-1
	// defaults.
	CPIStackConfig = obs.CPIStackConfig
	// CPIStackReport is a rendered CPI stack (components sum to the CPI).
	CPIStackReport = obs.CPIStackReport
	// RunReport is the machine-readable run summary written by tvsim
	// -report and tvbench -json (schema tvsched/run-report/v1).
	RunReport = obs.RunReport
	// Exposition renders Metrics and/or a CPIStack in the Prometheus text
	// format; mount Exposition.Handler at /metrics.
	Exposition = obs.Exposition
	// Sharder is implemented by observers (Metrics, CPIStack, Multi over
	// them) that can hand each pipeline a private lock-free shard, merged
	// back on Flush; the experiment harness uses it automatically.
	Sharder = obs.Sharder
	// ShardObserver is the per-pipeline accumulator a Sharder hands out.
	ShardObserver = obs.ShardObserver
	// Auditor is the accounting cross-check observer: it accumulates the
	// event stream into per-kind counts and reconciles them against the
	// simulator's own Stats counters (Auditor.Reconcile with
	// PipeStats.Expected), so the two accounting paths can never silently
	// diverge. Pair it with Config.Debug for full correctness checking.
	Auditor = obs.Auditor
	// AuditExpected is the counter-side view Auditor.Reconcile checks the
	// event stream against; build it with PipeStats.Expected.
	AuditExpected = obs.Expected
)

// Event kinds (see internal/obs for per-kind payload conventions).
const (
	EventFetch              = obs.KindFetch
	EventDispatch           = obs.KindDispatch
	EventIssue              = obs.KindIssue
	EventViolationPredicted = obs.KindViolationPredicted
	EventViolationActual    = obs.KindViolationActual
	EventReplay             = obs.KindReplay
	EventFlush              = obs.KindFlush
	EventSlotFreeze         = obs.KindSlotFreeze
	EventDelayedBroadcast   = obs.KindDelayedBroadcast
	EventRetire             = obs.KindRetire
	EventSample             = obs.KindSample
	EventTEPPredict         = obs.KindTEPPredict
	EventTEPTrain           = obs.KindTEPTrain
	EventDispatchStall      = obs.KindDispatchStall
	EventFrontStall         = obs.KindFrontStall
	EventGlobalStall        = obs.KindGlobalStall
)

// NeverIssued is the EventRetire payload-A sentinel for instructions that
// committed without passing through issue select (cycle 0 is a valid select
// time, so 0 cannot mean "never").
const NeverIssued = obs.NeverIssued

// NewMetrics builds an empty Metrics observer.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewChromeTracer builds a ChromeTracer with the default event filter
// (issue/violation/replay/flush/freeze/sample/retire) and record cap.
func NewChromeTracer() *ChromeTracer { return obs.NewChromeTracer() }

// NewCPIStack builds a cycle-accounting profiler; zero config fields take
// the Core-1 machine defaults, matching what Run simulates.
func NewCPIStack(cfg CPIStackConfig) *CPIStack { return obs.NewCPIStack(cfg) }

// NewExposition renders the given sources (either may be nil) in the
// Prometheus text exposition format under the ns name prefix.
func NewExposition(ns string, m *Metrics, s *CPIStack) *Exposition {
	return obs.NewExposition(ns, m, s)
}

// MultiObserver fans events out to every non-nil observer, and is nil when
// none remain — safe to assign to Config.Observer directly.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// NewAuditor builds an empty accounting-reconciliation observer.
func NewAuditor() *Auditor { return obs.NewAuditor() }

// Config describes one simulation.
type Config struct {
	// Benchmark is a workload name from Benchmarks().
	Benchmark string
	// Scheme is the handling scheme under test.
	Scheme Scheme
	// VDD is the supply voltage (use the V* constants).
	VDD float64
	// Instructions is the measured phase length in committed instructions
	// (default 300000). Warmup (default Instructions/4) instructions run
	// first, after an L2 working-set prefill, and are not measured.
	Instructions uint64
	Warmup       uint64
	// Seed drives all deterministic randomness (default 1).
	Seed uint64
	// FaultBias multiplies the fault model's near-critical path fraction
	// (default 1.0; bundled benchmarks override it with their calibrated
	// susceptibility). Useful for custom kernels whose few static
	// instructions may otherwise miss the fault-prone tail entirely.
	FaultBias float64
	// Observer, when non-nil, receives the simulation's event stream
	// (warmup included). See the observability re-exports above; attach a
	// *Metrics for aggregate counters or a *ChromeTracer for a Perfetto
	// trace, or combine them with MultiObserver.
	Observer Observer
	// PhaseHook, when non-nil, is called after each session lifecycle phase
	// completes — "warmup", "warmup_neutral", "restore", "run" — with the
	// phase's wall-clock duration. Like Observer it is machinery, not
	// simulation identity: it is excluded from CanonicalJSON/Digest and
	// cannot affect results. The serving layer uses it to attribute request
	// latency to pipeline phases as trace spans.
	PhaseHook func(phase string, d time.Duration)
	// Debug runs the pipeline's per-cycle invariant checker and end-of-run
	// drain check (see internal/pipeline CheckInvariants/CheckDrained).
	// Roughly an order of magnitude slower; meant for correctness work, not
	// measurement.
	Debug bool
}

func (c *Config) fill() {
	if c.Benchmark == "" {
		c.Benchmark = "bzip2"
	}
	if c.VDD == 0 {
		c.VDD = VNominal
	}
	if c.Instructions == 0 {
		c.Instructions = 300000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Instructions / 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultBias == 0 {
		c.FaultBias = 1
	}
}

// Normalized returns the config with every default applied — the exact
// parameters Run would simulate. Normalizing before comparing or digesting
// makes an omitted field and its explicit default the same simulation.
func (c Config) Normalized() Config {
	c.fill()
	return c
}

// CanonicalJSON renders the simulation-identity fields of the config —
// benchmark, scheme, supply voltage, phase lengths, seed, and fault bias,
// with defaults applied — as canonical JSON: keys sorted, floats in Go's
// shortest round-trip form, no insignificant whitespace. Two configs that
// describe the same simulation always serialize to identical bytes, which
// makes the form fit for content addressing; Digest hashes it. Observer and
// Debug are machinery, not identity, and are excluded. The exact byte
// layout is pinned by a golden test: changing it silently invalidates every
// stored digest downstream, so treat any change as a breaking schema change.
func (c Config) CanonicalJSON() []byte {
	c.fill()
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	str := func(s string) string { b, _ := json.Marshal(s); return string(b) }
	var b strings.Builder
	fmt.Fprintf(&b, `{"benchmark":%s,"fault_bias":%s,"instructions":%d,"scheme":%s,"seed":%d,"vdd":%s,"warmup":%d}`,
		str(c.Benchmark), num(c.FaultBias), c.Instructions, str(c.Scheme.String()),
		c.Seed, num(c.VDD), c.Warmup)
	return []byte(b.String())
}

// Digest returns the hex SHA-256 of CanonicalJSON: a content address for
// the simulation the config describes. Runs are deterministic, so equal
// digests mean equal results — the property the serving layer's result
// cache and request collapsing (internal/serve) key on.
func (c Config) Digest() string {
	sum := sha256.Sum256(c.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// WarmKey is the content address of the neutral warm state a session with
// this config would produce — the same key Session.WarmKey reports, computed
// without constructing a session. It covers the workload profile, seed,
// warmup length and machine geometry but excludes scheme and VDD, so every
// cell of a scheme×voltage sweep that shares (benchmark, seed, warmup) shares
// one key: the grouping the campaign planner (internal/campaign) fans warm
// snapshots out by.
func (c Config) WarmKey() string {
	c.fill()
	return sim.WarmKey(c.simConfig())
}

// Result is the outcome of one simulation.
type Result struct {
	// IPC is committed instructions per cycle.
	IPC float64
	// FaultRate is dynamic timing violations per committed instruction.
	FaultRate float64
	// Coverage is the fraction of violations the TEP predicted early.
	Coverage float64
	// Stats carries the full pipeline counters.
	Stats PipeStats
	// Energy carries the energy accounting (EDP is the paper's efficiency
	// metric).
	Energy EnergyResult
}

// resultFrom assembles a Result from final pipeline statistics, the way every
// entry point always has: energy is computed on the 45 nm defaults.
func resultFrom(st PipeStats) Result {
	return Result{
		IPC:       st.IPC(),
		FaultRate: st.FaultRate(),
		Coverage:  st.Coverage(),
		Stats:     st,
		Energy:    energy.Compute(energy.Default45nm(), &st),
	}
}

// simConfig maps the facade config onto the session layer's. Benchmark and
// profile sessions always use the profile's calibrated fault bias; the
// FaultBias field only reaches asm sessions — both matching the historical
// free-function behaviour.
func (c Config) simConfig() sim.Config {
	return sim.Config{
		Benchmark: c.Benchmark,
		Scheme:    c.Scheme,
		VDD:       c.VDD,
		Warmup:    c.Warmup,
		Seed:      c.Seed,
		FaultBias: c.FaultBias,
		Observer:  c.Observer,
		PhaseHook: c.PhaseHook,
		Debug:     c.Debug,
	}
}

// RunOpts parameterizes one measured phase of a Session.
type RunOpts struct {
	// Instructions overrides the session config's measured phase length for
	// this run; 0 keeps Config.Instructions.
	Instructions uint64
}

// Snapshot is a serialized warm machine state. Key is the content address of
// the compatibility class the bytes belong to (see Session.WarmKey): a
// snapshot restores into exactly the sessions that would produce it — same
// workload, seed, warmup length and machine geometry — regardless of their
// handling scheme or supply voltage.
type Snapshot struct {
	Key  string
	Data []byte
}

// Session is the unified simulation lifecycle: construct with NewSession (or
// NewProfileSession / NewAsmSession), warm up with Warmup or WarmupNeutral,
// optionally checkpoint with Snapshot or skip the warmup entirely with
// Restore, then measure with Run. A Session owns one simulated machine and is
// not safe for concurrent use; it is single-shot — build a new one per
// simulation.
type Session struct {
	cfg  Config
	scfg sim.Config
	s    *sim.Session
}

// NewSession builds a session over one of the bundled benchmarks.
func NewSession(cfg Config) (*Session, error) {
	cfg.fill()
	scfg := cfg.simConfig()
	s, err := sim.New(scfg)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, scfg: scfg, s: s}, nil
}

// NewProfileSession builds a session over a custom workload profile;
// cfg.Benchmark is ignored.
func NewProfileSession(cfg Config, prof WorkloadProfile) (*Session, error) {
	cfg.fill()
	scfg := cfg.simConfig()
	scfg.Benchmark = ""
	scfg.Profile = &prof
	s, err := sim.New(scfg)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, scfg: scfg, s: s}, nil
}

// NewAsmSession builds a session whose instruction stream comes from a kernel
// in the repository's mini assembly (see internal/asm for the syntax),
// executed architecturally. init, when non-nil, seeds registers and memory
// first (kernel arguments). cfg.Benchmark is ignored; asm sessions cannot be
// checkpointed.
func NewAsmSession(cfg Config, source string, init func(m *AsmMachine)) (*Session, error) {
	cfg.fill()
	scfg := cfg.simConfig()
	s, err := sim.NewAsm(scfg, source, init)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, scfg: scfg, s: s}, nil
}

// Warmup simulates Config.Warmup committed instructions at the configured
// supply voltage and discards statistics, keeping micro-architectural warm
// state. This is the historical warmup the deprecated free functions wrap;
// its warm state depends on (scheme, VDD), so Snapshot refuses it unless the
// configured supply is already VNominal — use WarmupNeutral to checkpoint.
func (s *Session) Warmup(ctx context.Context) error { return s.s.Warmup(ctx) }

// WarmupNeutral simulates the warmup phase at the nominal supply (where
// nothing violates timing) and defers the retarget to Config.VDD until Run
// begins. The resulting warm state is provably independent of the handling
// scheme and the eventual measurement supply, so one Snapshot of it serves
// every (scheme, VDD) cell of a sweep under the same WarmKey.
func (s *Session) WarmupNeutral(ctx context.Context) error { return s.s.WarmupNeutral(ctx) }

// Snapshot serializes the session's warm state, keyed by WarmKey. It is only
// valid between a neutral warmup and the first Run, and fails with
// ErrSnapshotUnsupported on configurations whose state cannot be serialized
// (supervised machines, custom predictors, asm sessions).
func (s *Session) Snapshot() (*Snapshot, error) {
	b, err := s.s.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{Key: sim.WarmKey(s.scfg), Data: b}, nil
}

// Restore loads a warm state produced by Snapshot into this freshly built
// session, in place of running Warmup. The snapshot's Key must equal this
// session's WarmKey (the machine additionally verifies geometry field by
// field). After Restore the session behaves exactly as if WarmupNeutral had
// just completed.
func (s *Session) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("tvsched: Restore(nil)")
	}
	if key := sim.WarmKey(s.scfg); snap.Key != "" && snap.Key != key {
		return fmt.Errorf("tvsched: %w: snapshot key %.12s… does not match session warm key %.12s…",
			ErrSnapshotUnsupported, snap.Key, key)
	}
	return s.s.Restore(snap.Data)
}

// Run simulates the measured phase at the configured (scheme, VDD) operating
// point — applying the deferred retarget if the warm state is neutral — and
// returns the result. Cancellation: the simulation stops within 256 simulated
// cycles of ctx being done and returns the context's error.
func (s *Session) Run(ctx context.Context, opts RunOpts) (Result, error) {
	n := opts.Instructions
	if n == 0 {
		n = s.cfg.Instructions
	}
	st, err := s.s.Run(ctx, n)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(st), nil
}

// WarmKey is the content address of the neutral warm state this session
// would produce: sessions with equal WarmKeys produce byte-identical
// Snapshots, restorable into any of them. The key covers the snapshot wire
// version, workload identity, seed, warmup length and machine geometry; it
// excludes the handling scheme, the supply voltage and the measurement
// length.
func (s *Session) WarmKey() string { return sim.WarmKey(s.scfg) }

// SetObserver attaches (or detaches) the event observer mid-lifecycle — for
// example to start tracing only after warmup.
func (s *Session) SetObserver(o Observer) { s.s.SetObserver(o) }

// Config returns the session's configuration with all defaults applied.
func (s *Session) Config() Config { return s.cfg }

// Run simulates one (benchmark, scheme, voltage) combination.
//
// Deprecated: use NewSession followed by Warmup and Session.Run.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the simulation
// stops within 256 simulated cycles and the context's error is returned.
//
// Deprecated: use NewSession followed by Warmup and Session.Run.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.Warmup(ctx); err != nil {
		return Result{}, err
	}
	return s.Run(ctx, RunOpts{})
}

// Comparison reports a scheme's overheads versus fault-free execution of the
// same benchmark: the numbers behind Table 1 and Figures 4/5/8/9.
type Comparison struct {
	Scheme       Scheme
	IPC          float64
	PerfOverhead float64 // relative IPC degradation vs fault-free
	EDOverhead   float64 // relative energy-delay degradation vs fault-free
}

// Compare runs the given schemes plus the fault-free baseline and returns
// per-scheme overheads. cfg supplies the benchmark, voltage, phase length,
// seed and observer — in particular the seed is respected, so comparisons are
// reproducible under any Config (earlier revisions pinned Seed to 1);
// cfg.Scheme is ignored in favour of the schemes argument.
//
// Deprecated: use one Session per (scheme, voltage) cell; the overhead
// arithmetic is two lines per scheme. Compare remains for Table 1-style
// one-call comparisons.
func Compare(cfg Config, schemes []Scheme) ([]Comparison, error) {
	return CompareContext(context.Background(), cfg, schemes)
}

// CompareContext is Compare with cancellation.
//
// Deprecated: see Compare.
func CompareContext(ctx context.Context, cfg Config, schemes []Scheme) ([]Comparison, error) {
	cfg.fill()
	cell := func(scheme Scheme, vdd float64) (Result, error) {
		ccfg := cfg
		ccfg.Scheme = scheme
		ccfg.VDD = vdd
		s, err := NewSession(ccfg)
		if err != nil {
			return Result{}, err
		}
		if err := s.Warmup(ctx); err != nil {
			return Result{}, err
		}
		return s.Run(ctx, RunOpts{})
	}
	base, err := cell(ABS, VNominal)
	if err != nil {
		return nil, err
	}
	var out []Comparison
	for _, sch := range schemes {
		r, err := cell(sch, cfg.VDD)
		if err != nil {
			return nil, fmt.Errorf("tvsched: %s/%v: %w", cfg.Benchmark, sch, err)
		}
		perfOv := 0.0
		if ipc := r.Stats.IPC(); ipc != 0 {
			if ov := base.Stats.IPC()/ipc - 1; ov > 0 {
				perfOv = ov
			}
		}
		edOv := energy.Overhead(r.Energy, base.Energy)
		if edOv < 0 {
			edOv = 0
		}
		out = append(out, Comparison{
			Scheme:       sch,
			IPC:          r.Stats.IPC(),
			PerfOverhead: perfOv,
			EDOverhead:   edOv,
		})
	}
	return out, nil
}

// WorkloadProfile re-exports the synthetic benchmark parameterization so
// downstream users can model their own workloads: instruction mix,
// dependency-distance distribution (ILP), memory-level behaviour, branch
// misprediction rate, loop structure and fault susceptibility. See
// Benchmarks() for the twelve calibrated SPEC CPU2006 profiles.
type WorkloadProfile = workload.Profile

// Profile returns the calibrated profile for one of the bundled benchmarks,
// as a starting point for custom workloads.
func Profile(name string) (WorkloadProfile, bool) { return workload.ByName(name) }

// RunProfile simulates a custom workload profile under the given scheme and
// voltage; cfg.Benchmark is ignored.
//
// Deprecated: use NewProfileSession followed by Warmup and Session.Run.
func RunProfile(cfg Config, prof WorkloadProfile) (Result, error) {
	s, err := NewProfileSession(cfg, prof)
	if err != nil {
		return Result{}, err
	}
	ctx := context.Background()
	if err := s.Warmup(ctx); err != nil {
		return Result{}, err
	}
	return s.Run(ctx, RunOpts{})
}

// RunAsm assembles a kernel written in the repository's mini assembly
// (see internal/asm for the syntax), executes it architecturally, and drives
// the pipeline model with the resulting committed stream. init, when
// non-nil, seeds registers and memory before execution (kernel arguments).
// cfg.Benchmark is ignored.
//
// Deprecated: use NewAsmSession followed by Warmup and Session.Run.
func RunAsm(cfg Config, source string, init func(m *AsmMachine)) (Result, error) {
	s, err := NewAsmSession(cfg, source, init)
	if err != nil {
		return Result{}, err
	}
	ctx := context.Background()
	if err := s.Warmup(ctx); err != nil {
		return Result{}, err
	}
	return s.Run(ctx, RunOpts{})
}

// AsmMachine re-exports the mini-ISA interpreter for kernel setup.
type AsmMachine = asm.Machine
