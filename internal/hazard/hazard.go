// Package hazard injects deterministic transient operating-condition events
// into a simulation: voltage droops, thermal steps, slow aging drift,
// violation storms and TEP sensor faults. The paper's evaluation (and the
// stationary fault model of internal/fault) holds the environment fixed for
// a whole run; real silicon sees di/dt droops, thermal ramps and flaky delay
// sensors, and the graceful-degradation supervisor (internal/core) exists to
// survive exactly those. A Timeline composes events into a per-cycle
// fault.Perturbation and plugs into fault.Env via Env.SetHazard, so the
// fault model's violation decisions and the TEP's sensor gating both see the
// same perturbed world.
//
// Everything is seeded and stateless per cycle: At(c) is a pure function of
// the timeline, so two runs of the same scenario are bit-identical and a
// timeline can be re-evaluated from any point (resumes, twin runs). An empty
// timeline returns the neutral perturbation every cycle and an Env carrying
// one behaves bit-identically to an Env with no hazard attached.
package hazard

import (
	"fmt"

	"tvsched/internal/fault"
	"tvsched/internal/rng"
)

// Kind enumerates the transient event types.
type Kind uint8

const (
	// Droop is a supply-voltage droop: gate delays stretch by Mag at the
	// peak, with an attack ramp, a hold plateau and a recovery ramp
	// (classic di/dt triangle/trapezoid).
	Droop Kind = iota
	// ThermalStep is a sustained temperature step (e.g. a neighbouring core
	// waking up): delays ramp up by Mag and stay there for the hold window.
	ThermalStep
	// AgingDrift is slow wear-out (NBTI/HCI): delays creep up by Mag over
	// the attack window and never recover.
	AgingDrift
	// Storm is a violation storm: the fault model's TailFraction inflates
	// by a factor of 1+Mag at the peak, pulling extra static instructions
	// into the near-critical tail without moving the existing population.
	Storm
	// SensorStuckOff pins the TEP's thermal/voltage sensors to "benign" for
	// the hold window: predictions are silently suppressed and every
	// violation escapes to replay recovery.
	SensorStuckOff
	// SensorStuckOn pins the sensors to "hazardous" for the hold window:
	// the TEP predicts even at the fault-free nominal supply and stale
	// entries fire as false positives.
	SensorStuckOn
	// SensorFlaky makes the sensor drop out intermittently during the hold
	// window: each Period-cycle slice is stuck-off or truthful by a seeded
	// coin flip.
	SensorFlaky
	// NumKinds is the number of event kinds.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Droop:
		return "droop"
	case ThermalStep:
		return "thermal-step"
	case AgingDrift:
		return "aging-drift"
	case Storm:
		return "storm"
	case SensorStuckOff:
		return "sensor-stuck-off"
	case SensorStuckOn:
		return "sensor-stuck-on"
	case SensorFlaky:
		return "sensor-flaky"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one transient on the timeline.
//
// Delay-family events (Droop, ThermalStep, AgingDrift) and Storm follow a
// trapezoid envelope: intensity ramps 0→1 over Attack cycles starting at
// Start, holds at 1 for Hold cycles, then ramps back 1→0 over Release
// cycles. AgingDrift has no release — it holds forever. A Hold of 0 on
// ThermalStep also means "forever" (a step, not a pulse).
//
// Sensor-family events ignore Attack/Release and are active for exactly
// [Start, Start+Hold) (Hold 0 = forever).
type Event struct {
	Kind  Kind
	Start uint64
	// Attack, Hold, Release shape the envelope, in cycles.
	Attack, Hold, Release uint64
	// Mag is the peak intensity: for delay-family events the extra delay
	// fraction at the peak (0.08 = +8% gate delay); for Storm the extra
	// TailFraction multiplier (Mag 7 = 8× tail at the peak). Ignored by
	// sensor events.
	Mag float64
	// Period is the SensorFlaky slice length in cycles (ignored otherwise).
	Period uint64
}

// forever reports whether the event never ends.
func (e *Event) forever() bool {
	switch e.Kind {
	case AgingDrift:
		return true
	case ThermalStep, SensorStuckOff, SensorStuckOn, SensorFlaky:
		return e.Hold == 0
	}
	return false
}

// end returns the first cycle after which the event is permanently inactive.
func (e *Event) end() uint64 {
	if e.forever() {
		return ^uint64(0)
	}
	return e.Start + e.Attack + e.Hold + e.Release
}

// envelope returns the event's intensity in [0, 1] at cycle c.
func (e *Event) envelope(c uint64) float64 {
	if c < e.Start {
		return 0
	}
	t := c - e.Start
	if t < e.Attack {
		return float64(t) / float64(e.Attack)
	}
	t -= e.Attack
	if e.forever() || t < e.Hold {
		return 1
	}
	t -= e.Hold
	if t < e.Release {
		return 1 - float64(t)/float64(e.Release)
	}
	return 0
}

// validate reports parameter errors.
func (e *Event) validate() error {
	if e.Kind >= NumKinds {
		return fmt.Errorf("hazard: unknown event kind %d", e.Kind)
	}
	switch e.Kind {
	case Droop, ThermalStep, AgingDrift:
		if e.Mag <= -1 {
			return fmt.Errorf("hazard: %v magnitude %v would stop the clock", e.Kind, e.Mag)
		}
	case Storm:
		if e.Mag < 0 {
			return fmt.Errorf("hazard: storm magnitude %v negative", e.Mag)
		}
	case SensorFlaky:
		if e.Period == 0 {
			return fmt.Errorf("hazard: flaky sensor needs a period")
		}
	}
	return nil
}

// Timeline is a seeded, composable set of transient events. The zero-event
// timeline is valid and permanently neutral. Safe for concurrent use (it is
// immutable after construction).
type Timeline struct {
	seed   uint64
	events []Event
}

// New builds a timeline; event parameters are validated eagerly so a bad
// scenario fails at construction, not mid-run.
func New(seed uint64, events ...Event) (*Timeline, error) {
	for i := range events {
		if err := events[i].validate(); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return &Timeline{seed: seed, events: append([]Event(nil), events...)}, nil
}

// MustNew is New for program-constant scenarios; it panics on invalid events.
func MustNew(seed uint64, events ...Event) *Timeline {
	t, err := New(seed, events...)
	if err != nil {
		panic(err)
	}
	return t
}

// Events returns a copy of the timeline's events.
func (t *Timeline) Events() []Event { return append([]Event(nil), t.events...) }

// Empty reports whether the timeline carries no events.
func (t *Timeline) Empty() bool { return len(t.events) == 0 }

// Onset returns the first cycle any event becomes active, or ^uint64(0) for
// an empty timeline.
func (t *Timeline) Onset() uint64 {
	on := ^uint64(0)
	for i := range t.events {
		if t.events[i].Start < on {
			on = t.events[i].Start
		}
	}
	return on
}

// End returns the first cycle after which the timeline is permanently
// neutral: 0 for an empty timeline, ^uint64(0) if any event lasts forever.
func (t *Timeline) End() uint64 {
	var end uint64
	for i := range t.events {
		if e := t.events[i].end(); e > end {
			end = e
		}
	}
	return end
}

// At implements fault.Hazard: the combined perturbation at cycle c. Delay
// and tail contributions multiply across concurrent events; for the sensor,
// the latest-starting active fault wins.
func (t *Timeline) At(c uint64) fault.Perturbation {
	p := fault.Neutral()
	var sensorStart uint64
	haveSensor := false
	for i := range t.events {
		e := &t.events[i]
		switch e.Kind {
		case Droop, ThermalStep, AgingDrift:
			if env := e.envelope(c); env > 0 {
				p.Delay *= 1 + e.Mag*env
			}
		case Storm:
			if env := e.envelope(c); env > 0 {
				p.TailScale *= 1 + e.Mag*env
			}
		case SensorStuckOff, SensorStuckOn, SensorFlaky:
			if c < e.Start || (e.Hold != 0 && c >= e.Start+e.Hold) {
				continue
			}
			if haveSensor && e.Start < sensorStart {
				continue
			}
			sensorStart, haveSensor = e.Start, true
			switch e.Kind {
			case SensorStuckOff:
				p.Sensor = fault.SensorStuckOff
			case SensorStuckOn:
				p.Sensor = fault.SensorStuckOn
			case SensorFlaky:
				// Seeded coin per Period-slice: stuck-off or truthful.
				slice := (c - e.Start) / e.Period
				if rng.Mix(t.seed^rng.Mix(slice^0xf1a4))&1 == 0 {
					p.Sensor = fault.SensorStuckOff
				} else {
					p.Sensor = fault.SensorAuto
				}
			}
		}
	}
	return p
}

// Random draws a survivable random timeline: 0–4 events inside [0, horizon),
// with delay magnitudes drawn from a shared budget so the combined scale —
// concurrent delay events multiply — stays below fault.ReplayScaleLimit even
// at the worst studied supply (0.97 V) with worst-case thermal. Replay
// recovery therefore keeps working and a fuzzer can run any scheme to
// completion. Deep blackout droops (the watchdog's territory) are
// deliberately outside this generator; curated scenarios provide those.
// Deterministic in the source state.
func Random(r *rng.Source, horizon uint64) *Timeline {
	// 1.5 / (1.13 voltage × 1.004 thermal) ≈ 1.32; keep headroom below it.
	delayBudget := 1.30
	n := r.Intn(5)
	events := make([]Event, 0, n)
	span := func(max uint64) uint64 { return 1 + r.Uint64n(max) }
	drawMag := func(cap float64) float64 {
		max := delayBudget - 1
		if max > cap {
			max = cap
		}
		if max <= 0 {
			return 0
		}
		m := max * r.Float64()
		delayBudget /= 1 + m
		return m
	}
	for i := 0; i < n; i++ {
		start := r.Uint64n(horizon)
		var e Event
		switch r.Intn(6) {
		case 0:
			e = Event{Kind: Droop, Start: start, Attack: span(horizon / 16),
				Hold: span(horizon / 4), Release: span(horizon / 8),
				Mag: drawMag(0.22)}
		case 1:
			e = Event{Kind: ThermalStep, Start: start, Attack: span(horizon / 4),
				Hold: span(horizon), Release: span(horizon / 2),
				Mag: drawMag(0.05)}
		case 2:
			e = Event{Kind: AgingDrift, Start: start, Attack: span(4 * horizon),
				Mag: drawMag(0.03)}
		case 3:
			e = Event{Kind: Storm, Start: start, Attack: span(horizon / 16),
				Hold: span(horizon / 3), Release: span(horizon / 8),
				Mag: 1 + 5*r.Float64()}
		case 4:
			e = Event{Kind: SensorStuckOff, Start: start, Hold: span(horizon / 2)}
		case 5:
			e = Event{Kind: SensorFlaky, Start: start, Hold: span(horizon / 2),
				Period: 64 + uint64(r.Intn(2000))}
		}
		events = append(events, e)
	}
	return MustNew(r.Uint64(), events...)
}
