package hazard

import (
	"fmt"
	"sort"
)

// Scenario is a named, parameterized hazard recipe. Build returns a fresh
// timeline for a run of roughly `horizon` cycles; the seed feeds only the
// stochastic pieces (flaky-sensor coins), so the envelope geometry of a
// scenario is identical across seeds and survival metrics are comparable.
type Scenario struct {
	Name        string
	Description string
	Build       func(seed, horizon uint64) *Timeline
}

// Scenarios returns the curated scenario set, sorted by name. The magnitudes
// are chosen against the studied operating points (fault.VNominal=1.10 down
// to 0.97 V): "survivable" scenarios keep the combined delay scale under
// fault.ReplayScaleLimit at every studied VDD, while "blackout" exceeds it at
// the faulty supplies but not at nominal — the case only a supervisor VDD
// boost recovers from.
func Scenarios() []Scenario {
	s := []Scenario{
		{
			Name:        "quiet",
			Description: "empty timeline; control cell, must be bit-identical to a hazard-free run",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed)
			},
		},
		{
			Name:        "droop",
			Description: "one moderate di/dt droop (+12% delay) with attack/hold/recovery ramps",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed, Event{
					Kind: Droop, Start: horizon / 4,
					Attack: horizon / 64, Hold: horizon / 8, Release: horizon / 16,
					Mag: 0.12,
				})
			},
		},
		{
			Name: "droop-storm",
			Description: "di/dt droop whose transient knocks out the delay sensor while a 6x " +
				"violation storm builds; the base scheme loses prediction cover exactly when " +
				"it needs it, so every storm violation escapes to replay — the escalation case",
			Build: func(seed, horizon uint64) *Timeline {
				// The storm ramps over a quarter of the run so the monitors see
				// the leading edge well before the peak; the sensor dies at
				// droop onset and stays dead past the storm's release.
				return MustNew(seed,
					Event{
						Kind: Droop, Start: horizon / 8,
						Attack: horizon / 4, Hold: horizon / 6, Release: horizon / 16,
						Mag: 0.06,
					},
					Event{
						Kind: Storm, Start: horizon / 8,
						Attack: horizon / 4, Hold: horizon / 6, Release: horizon / 16,
						Mag: 5,
					},
					Event{Kind: SensorStuckOff, Start: horizon / 8, Hold: horizon / 2},
				)
			},
		},
		{
			Name: "blackout",
			Description: "sustained +40% delay droop whose storm drags even in-order-engine paths " +
				"into the critical tail: replay recovery is unreliable below nominal VDD, the " +
				"stuck instruction re-faults forever, and only a supervisor voltage boost " +
				"restores forward progress",
			Build: func(seed, horizon uint64) *Timeline {
				// The hold must outlast the pipeline's 200k-cycle
				// no-forward-progress horizon: a shorter blackout releases the
				// livelocked instruction when the droop decays, and the run
				// limps to completion instead of dying.
				hold := 4 * horizon
				if hold < 300000 {
					hold = 300000
				}
				return MustNew(seed,
					Event{
						Kind: Droop, Start: horizon / 4,
						Attack: horizon / 64, Hold: hold, Release: horizon / 16,
						Mag: 0.40,
					},
					// The in-order stages carry ~0.3% of the sensitized-path
					// weight, so only a deep tail inflation reaches them —
					// which is exactly what makes this scenario lethal rather
					// than merely slow.
					Event{
						Kind: Storm, Start: horizon / 4,
						Attack: horizon / 64, Hold: hold, Release: horizon / 16,
						Mag: 20,
					},
				)
			},
		},
		{
			Name:        "thermal-ramp",
			Description: "slow thermal step (+5% delay) that arrives and stays",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed, Event{
					Kind: ThermalStep, Start: horizon / 8,
					Attack: horizon / 4, Hold: 0,
					Mag: 0.05,
				})
			},
		},
		{
			Name:        "aging",
			Description: "wear-out drift: +3% delay creeping in over the whole run, never recovers",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed, Event{
					Kind: AgingDrift, Start: 0, Attack: horizon,
					Mag: 0.03,
				})
			},
		},
		{
			Name:        "sensor-flaky",
			Description: "TEP sensor drops out intermittently for half the run; predictions silently poisoned",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed, Event{
					Kind: SensorFlaky, Start: horizon / 8, Hold: horizon / 2,
					Period: 512,
				})
			},
		},
		{
			Name:        "sensor-stuck",
			Description: "TEP sensor stuck at benign during a violation storm: every violation escapes prediction",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed,
					Event{Kind: SensorStuckOff, Start: horizon / 4, Hold: horizon / 3},
					Event{
						Kind: Storm, Start: horizon / 4,
						Attack: horizon / 64, Hold: horizon / 4, Release: horizon / 16,
						Mag: 5,
					},
				)
			},
		},
		{
			Name:        "mixed",
			Description: "aging drift + mid-run droop + flaky sensor tail; the kitchen sink",
			Build: func(seed, horizon uint64) *Timeline {
				return MustNew(seed,
					Event{Kind: AgingDrift, Start: 0, Attack: 2 * horizon, Mag: 0.02},
					Event{
						Kind: Droop, Start: horizon / 3,
						Attack: horizon / 64, Hold: horizon / 10, Release: horizon / 16,
						Mag: 0.15,
					},
					Event{Kind: SensorFlaky, Start: horizon / 2, Hold: horizon / 4, Period: 256},
				)
			},
		},
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("hazard: unknown scenario %q", name)
}
