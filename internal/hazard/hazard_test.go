package hazard

import (
	"math"
	"testing"

	"tvsched/internal/fault"
	"tvsched/internal/rng"
)

func TestEmptyTimelineIsNeutral(t *testing.T) {
	tl := MustNew(7)
	if !tl.Empty() {
		t.Fatal("zero-event timeline not Empty")
	}
	if tl.End() != 0 {
		t.Fatalf("empty End() = %d, want 0", tl.End())
	}
	for _, c := range []uint64{0, 1, 1000, 1 << 40} {
		if p := tl.At(c); p != fault.Neutral() {
			t.Fatalf("At(%d) = %+v, want neutral", c, p)
		}
	}
}

func TestDroopEnvelope(t *testing.T) {
	tl := MustNew(1, Event{Kind: Droop, Start: 100, Attack: 10, Hold: 20, Release: 40, Mag: 0.5})
	cases := []struct {
		cycle uint64
		delay float64
	}{
		{0, 1}, {99, 1}, // before onset
		{100, 1},    // attack starts at intensity 0
		{105, 1.25}, // halfway up the attack ramp
		{110, 1.5},  // plateau
		{129, 1.5},  // last plateau cycle
		{150, 1.25}, // halfway down the recovery ramp
		{170, 1},    // fully recovered
		{1 << 30, 1},
	}
	for _, c := range cases {
		p := tl.At(c.cycle)
		if math.Abs(p.Delay-c.delay) > 1e-12 {
			t.Errorf("At(%d).Delay = %v, want %v", c.cycle, p.Delay, c.delay)
		}
		if p.TailScale != 1 || p.Sensor != fault.SensorAuto {
			t.Errorf("At(%d) droop leaked into tail/sensor: %+v", c.cycle, p)
		}
	}
	if got := tl.End(); got != 170 {
		t.Fatalf("End() = %d, want 170", got)
	}
	if got := tl.Onset(); got != 100 {
		t.Fatalf("Onset() = %d, want 100", got)
	}
}

func TestConcurrentDelayEventsMultiply(t *testing.T) {
	tl := MustNew(1,
		Event{Kind: Droop, Start: 0, Attack: 1, Hold: 100, Release: 1, Mag: 0.2},
		Event{Kind: ThermalStep, Start: 0, Attack: 1, Hold: 100, Release: 1, Mag: 0.1},
	)
	if got, want := tl.At(50).Delay, 1.2*1.1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("combined delay %v, want %v", got, want)
	}
}

func TestAgingDriftNeverRecovers(t *testing.T) {
	tl := MustNew(1, Event{Kind: AgingDrift, Start: 0, Attack: 1000, Mag: 0.04})
	if got := tl.At(500).Delay; math.Abs(got-1.02) > 1e-12 {
		t.Fatalf("mid-ramp drift %v, want 1.02", got)
	}
	for _, c := range []uint64{1000, 1 << 20, 1 << 50} {
		if got := tl.At(c).Delay; math.Abs(got-1.04) > 1e-12 {
			t.Fatalf("At(%d) drift %v, want 1.04 forever", c, got)
		}
	}
	if tl.End() != ^uint64(0) {
		t.Fatal("aging timeline should never end")
	}
}

func TestStormScalesTailOnly(t *testing.T) {
	tl := MustNew(1, Event{Kind: Storm, Start: 10, Attack: 1, Hold: 10, Release: 1, Mag: 7})
	p := tl.At(15)
	if math.Abs(p.TailScale-8) > 1e-12 {
		t.Fatalf("storm TailScale %v, want 8", p.TailScale)
	}
	if p.Delay != 1 {
		t.Fatalf("storm leaked into delay: %v", p.Delay)
	}
}

func TestSensorOverrides(t *testing.T) {
	tl := MustNew(1,
		Event{Kind: SensorStuckOff, Start: 100, Hold: 100},
		Event{Kind: SensorStuckOn, Start: 150, Hold: 100},
	)
	if got := tl.At(50).Sensor; got != fault.SensorAuto {
		t.Fatalf("before onset: sensor %v, want auto", got)
	}
	if got := tl.At(120).Sensor; got != fault.SensorStuckOff {
		t.Fatalf("stuck-off window: sensor %v", got)
	}
	// Overlap: the latest-starting fault wins.
	if got := tl.At(180).Sensor; got != fault.SensorStuckOn {
		t.Fatalf("overlap: sensor %v, want stuck-on", got)
	}
	if got := tl.At(200).Sensor; got != fault.SensorStuckOn {
		t.Fatalf("stuck-on tail: sensor %v", got)
	}
	if got := tl.At(250).Sensor; got != fault.SensorAuto {
		t.Fatalf("after both: sensor %v, want auto", got)
	}
}

func TestFlakySensorDeterministicAndMixed(t *testing.T) {
	tl := MustNew(42, Event{Kind: SensorFlaky, Start: 0, Hold: 100000, Period: 100})
	var off, auto int
	for c := uint64(0); c < 100000; c += 100 {
		switch tl.At(c).Sensor {
		case fault.SensorStuckOff:
			off++
		case fault.SensorAuto:
			auto++
		default:
			t.Fatalf("flaky sensor produced %v", tl.At(c).Sensor)
		}
		// Same slice, same reading.
		if tl.At(c) != tl.At(c+99) {
			t.Fatalf("reading changed within slice at %d", c)
		}
	}
	if off == 0 || auto == 0 {
		t.Fatalf("flaky sensor never mixed: off=%d auto=%d", off, auto)
	}
	// Different seed, different pattern somewhere.
	tl2 := MustNew(43, Event{Kind: SensorFlaky, Start: 0, Hold: 100000, Period: 100})
	same := true
	for c := uint64(0); c < 100000; c += 100 {
		if tl.At(c) != tl2.At(c) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("flaky pattern identical across seeds")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(1, Event{Kind: Droop, Mag: -1.5}); err == nil {
		t.Error("clock-stopping droop accepted")
	}
	if _, err := New(1, Event{Kind: Storm, Mag: -0.5}); err == nil {
		t.Error("negative storm accepted")
	}
	if _, err := New(1, Event{Kind: SensorFlaky, Hold: 10}); err == nil {
		t.Error("zero-period flaky sensor accepted")
	}
	if _, err := New(1, Event{Kind: NumKinds}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestScenariosSurvivable pins the design split: every curated scenario
// except blackout keeps the combined delay scale under ReplayScaleLimit at
// the worst studied supply (0.97 V, delay scale ~1.13, thermal ±0.4%), so
// replay recovery keeps working; blackout exceeds the limit there but stays
// under it at the nominal supply — the watchdog's VDD boost is exactly what
// restores recovery.
func TestScenariosSurvivable(t *testing.T) {
	const horizon = 200000
	vHigh := fault.DelayScale(fault.VHighFault) * 1.004 // worst thermal
	vNom := 1.004
	for _, sc := range Scenarios() {
		tl := sc.Build(1, horizon)
		peak := 1.0
		for c := uint64(0); c < 4*horizon; c += 64 {
			if d := tl.At(c).Delay; d > peak {
				peak = d
			}
		}
		if sc.Name == "blackout" {
			if vHigh*peak <= fault.ReplayScaleLimit {
				t.Errorf("blackout peak %v survivable at 0.97 V — watchdog never needed", peak)
			}
			if vNom*peak > fault.ReplayScaleLimit {
				t.Errorf("blackout peak %v unrecoverable even at nominal VDD", peak)
			}
			continue
		}
		if vHigh*peak > fault.ReplayScaleLimit {
			t.Errorf("scenario %q peak delay %v breaks replay at 0.97 V", sc.Name, peak)
		}
	}
}

func TestScenarioLookup(t *testing.T) {
	if _, err := Lookup("droop-storm"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRandomSurvivable: the fuzz generator must never produce a timeline
// that breaks replay at any studied supply.
func TestRandomSurvivable(t *testing.T) {
	r := rng.New(99)
	worst := fault.DelayScale(fault.VHighFault) * 1.004
	for i := 0; i < 200; i++ {
		tl := Random(r, 100000)
		for c := uint64(0); c < 500000; c += 97 {
			if d := tl.At(c).Delay; worst*d > fault.ReplayScaleLimit {
				t.Fatalf("random timeline %d: delay %v at cycle %d breaks replay", i, d, c)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rng.New(5), 50000)
	b := Random(rng.New(5), 50000)
	for c := uint64(0); c < 200000; c += 31 {
		if a.At(c) != b.At(c) {
			t.Fatalf("same-seed random timelines diverge at cycle %d", c)
		}
	}
}
