// Package snap is the byte codec underneath the simulator's warm-state
// snapshots (DESIGN.md §13): a minimal little-endian fixed-width
// writer/reader pair with sticky error handling. Each simulator component
// serializes itself with an AppendState(*snap.Writer) / ReadState(*snap.Reader)
// method pair; the pipeline concatenates the components under a versioned
// header. Fixed-width encoding keeps the format trivially deterministic —
// the same state always produces the same bytes — which is what lets the
// serving layer key snapshots by digest and share them across sweep cells.
package snap

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt is returned (wrapped) by Reader when a snapshot is truncated
// or otherwise unreadable.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// Writer accumulates the encoded bytes. The zero value is ready to use.
type Writer struct {
	B []byte
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.B = binary.LittleEndian.AppendUint64(w.B, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.B = binary.LittleEndian.AppendUint32(w.B, v) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.B = append(w.B, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.B = append(w.B, 1)
	} else {
		w.B = append(w.B, 0)
	}
}

// I64 appends an int64 as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Reader decodes a byte stream produced by Writer. Underflow sets a sticky
// error and every subsequent read returns zero values; callers check Err()
// once at the end of a decode pass.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.b) {
		r.err = ErrCorrupt
		return nil
	}
	s := r.b[r.pos : r.pos+n]
	r.pos += n
	return s
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// Bool reads one byte as a bool; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Rest returns the number of unread bytes.
func (r *Reader) Rest() int {
	if r.err != nil {
		return 0
	}
	return len(r.b) - r.pos
}
