package snap

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0xdeadbeefcafef00d)
	w.U32(0x12345678)
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.I64(-42)
	w.F64(3.14159)
	w.F64(math.Inf(-1))

	r := NewReader(w.B)
	if got := r.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.U32(); got != 0x12345678 {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip broken")
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Rest() != 0 {
		t.Fatalf("%d bytes left over", r.Rest())
	}
}

func TestUnderflowSticky(t *testing.T) {
	var w Writer
	w.U32(7)
	r := NewReader(w.B)
	if r.U64() != 0 {
		t.Error("underflow read returned nonzero")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", r.Err())
	}
	// Sticky: later reads keep failing even if bytes notionally remain.
	if r.U8() != 0 || r.Err() == nil {
		t.Error("sticky error not sticky")
	}
	if r.Rest() != 0 {
		t.Error("Rest after error must be 0")
	}
}

func TestDeterministicBytes(t *testing.T) {
	enc := func() []byte {
		var w Writer
		w.U64(1)
		w.F64(1.1)
		w.Bool(true)
		return w.B
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("same values, different bytes")
	}
}
