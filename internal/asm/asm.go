// Package asm provides a small MIPS-flavored assembly language and an
// architectural interpreter, so custom kernels — pointer chases, streaming
// loops, reductions — can drive the pipeline model directly instead of going
// through the stochastic workload generator. The interpreter executes
// instructions functionally (register values, memory contents, branch
// outcomes) and emits the committed dynamic stream as a pipeline Source.
//
// Syntax (one instruction per line; '#' or ';' start comments):
//
//	label:
//	  li   r1, 0x1000        # load immediate
//	  addi r2, r1, 8         # add immediate
//	  add  r3, r1, r2        # also: sub and or xor slt
//	  mul  r4, r3, r2
//	  div  r4, r3, r2
//	  ld   r5, 16(r1)        # load from [r1+16]
//	  st   r5, 0(r1)         # store to  [r1+0]
//	  beq  r1, r2, label     # also: bne blt bge
//	  j    label             # unconditional jump
//	  halt                   # restart from the top (sources are infinite)
//
// Registers are r0..r31; r0 reads as zero and ignores writes. Values are
// 64-bit; loads/stores move whole values at byte addresses.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"tvsched/internal/isa"
)

// CodeBase is the virtual address of the first assembled instruction.
const CodeBase = 0x0040_0000

type opcode uint8

const (
	opLI opcode = iota
	opADDI
	opADD
	opSUB
	opAND
	opOR
	opXOR
	opSLT
	opMUL
	opDIV
	opLD
	opST
	opBEQ
	opBNE
	opBLT
	opBGE
	opJ
	opHALT
	opSLL
	opSRL
	opSRA
	opMV
	opNOP
)

var opNames = map[string]opcode{
	"li": opLI, "addi": opADDI, "add": opADD, "sub": opSUB,
	"and": opAND, "or": opOR, "xor": opXOR, "slt": opSLT,
	"sll": opSLL, "srl": opSRL, "sra": opSRA,
	"mul": opMUL, "div": opDIV,
	"ld": opLD, "st": opST,
	"beq": opBEQ, "bne": opBNE, "blt": opBLT, "bge": opBGE,
	"j": opJ, "halt": opHALT,
	"mv": opMV, "nop": opNOP,
}

// decoded is one assembled instruction.
type decoded struct {
	op      opcode
	rd      int8  // destination (LI/ADDI/ALU/MUL/DIV/LD); value reg for ST
	rs, rt  int8  // sources
	imm     int64 // immediate / memory offset
	target  int   // branch/jump target (instruction index)
	srcLine int   // 1-based source line, for diagnostics
}

// Program is an assembled kernel.
type Program struct {
	insts  []decoded
	labels map[string]int
	// data holds initial memory contents from .word directives.
	data map[uint64]uint64
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.insts) }

// SyntaxError describes an assembly failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errAt(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses and resolves a program.
func Assemble(src string) (*Program, error) {
	p := &Program{labels: make(map[string]int), data: make(map[uint64]uint64)}
	var dataCursor uint64
	type fixup struct {
		inst  int
		label string
		line  int
	}
	var fixups []fixup

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !validLabel(label) {
				return nil, errAt(lineNo+1, "invalid label %q", label)
			}
			if _, dup := p.labels[label]; dup {
				return nil, errAt(lineNo+1, "duplicate label %q", label)
			}
			p.labels[label] = len(p.insts)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])

		// Data directives: ".org addr" positions the data cursor and
		// ".word v, v, ..." deposits 64-bit words at it.
		if mnemonic == ".org" || mnemonic == ".word" {
			args := splitArgs(strings.TrimSpace(strings.TrimPrefix(line, fields[0])))
			if len(args) == 0 {
				return nil, errAt(lineNo+1, "%s needs operands", mnemonic)
			}
			vals := make([]uint64, len(args))
			for i, a := range args {
				v, err := strconv.ParseInt(a, 0, 64)
				if err != nil {
					return nil, errAt(lineNo+1, "bad value %q", a)
				}
				vals[i] = uint64(v)
			}
			if mnemonic == ".org" {
				if len(vals) != 1 {
					return nil, errAt(lineNo+1, ".org takes one address")
				}
				dataCursor = vals[0]
			} else {
				for _, v := range vals {
					p.data[dataCursor] = v
					dataCursor += 8
				}
			}
			continue
		}

		op, ok := opNames[mnemonic]
		if !ok {
			return nil, errAt(lineNo+1, "unknown instruction %q", mnemonic)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		args := splitArgs(rest)
		d := decoded{op: op, rd: -1, rs: -1, rt: -1, srcLine: lineNo + 1}

		reg := func(s string) (int8, error) {
			s = strings.ToLower(strings.TrimSpace(s))
			if !strings.HasPrefix(s, "r") {
				return 0, errAt(lineNo+1, "expected register, got %q", s)
			}
			n, err := strconv.Atoi(s[1:])
			if err != nil || n < 0 || n >= isa.NumArchRegs {
				return 0, errAt(lineNo+1, "bad register %q", s)
			}
			return int8(n), nil
		}
		imm := func(s string) (int64, error) {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
			if err != nil {
				return 0, errAt(lineNo+1, "bad immediate %q", s)
			}
			return v, nil
		}
		need := func(n int) error {
			if len(args) != n {
				return errAt(lineNo+1, "%s takes %d operands, got %d", mnemonic, n, len(args))
			}
			return nil
		}

		var err error
		switch op {
		case opLI:
			if err = need(2); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					d.imm, err = imm(args[1])
				}
			}
		case opADDI:
			if err = need(3); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					if d.rs, err = reg(args[1]); err == nil {
						d.imm, err = imm(args[2])
					}
				}
			}
		case opADD, opSUB, opAND, opOR, opXOR, opSLT, opMUL, opDIV:
			if err = need(3); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					if d.rs, err = reg(args[1]); err == nil {
						d.rt, err = reg(args[2])
					}
				}
			}
		case opSLL, opSRL, opSRA:
			if err = need(3); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					if d.rs, err = reg(args[1]); err == nil {
						d.imm, err = imm(args[2])
					}
				}
			}
		case opMV:
			if err = need(2); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					d.rs, err = reg(args[1])
				}
			}
		case opNOP:
			err = need(0)
		case opLD, opST:
			if err = need(2); err == nil {
				if d.rd, err = reg(args[0]); err == nil {
					d.rs, d.imm, err = parseMem(args[1], lineNo+1, reg)
				}
			}
		case opBEQ, opBNE, opBLT, opBGE:
			if err = need(3); err == nil {
				if d.rs, err = reg(args[0]); err == nil {
					if d.rt, err = reg(args[1]); err == nil {
						fixups = append(fixups, fixup{len(p.insts), strings.TrimSpace(args[2]), lineNo + 1})
					}
				}
			}
		case opJ:
			if err = need(1); err == nil {
				fixups = append(fixups, fixup{len(p.insts), strings.TrimSpace(args[0]), lineNo + 1})
			}
		case opHALT:
			err = need(0)
		}
		if err != nil {
			return nil, err
		}
		p.insts = append(p.insts, d)
	}

	if len(p.insts) == 0 {
		return nil, errAt(1, "empty program")
	}
	for _, f := range fixups {
		idx, ok := p.labels[f.label]
		if !ok {
			return nil, errAt(f.line, "undefined label %q", f.label)
		}
		p.insts[f.inst].target = idx
	}
	return p, nil
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitArgs splits on commas, tolerating spaces.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseMem parses "offset(rN)" operands.
func parseMem(s string, line int, reg func(string) (int8, error)) (int8, int64, error) {
	open := strings.Index(s, "(")
	closeP := strings.LastIndex(s, ")")
	if open < 0 || closeP < open {
		return 0, 0, errAt(line, "expected offset(reg), got %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	off := int64(0)
	if offStr != "" {
		v, err := strconv.ParseInt(offStr, 0, 64)
		if err != nil {
			return 0, 0, errAt(line, "bad offset %q", offStr)
		}
		off = v
	}
	r, err := reg(s[open+1 : closeP])
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}
