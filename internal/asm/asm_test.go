package asm

import (
	"strings"
	"testing"

	"tvsched/internal/isa"
)

const sumKernel = `
# sum the first r2 integers into r3
    li   r1, 0          ; i
    li   r2, 100        ; n
    li   r3, 0          ; acc
loop:
    add  r3, r3, r1
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
`

func TestAssembleAndRunSum(t *testing.T) {
	p, err := Assemble(sumKernel)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	// Step until the kernel halts once (the machine then wraps and would
	// recompute, so check the register right at the boundary).
	for i := 0; i < 10000 && m.Restarts() == 0; i++ {
		m.Step()
	}
	if m.Restarts() != 1 {
		t.Fatal("halt never reached")
	}
	if got := m.Reg(3); got != 4950 { // 0+1+...+99
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestMemoryKernel(t *testing.T) {
	src := `
    li  r1, 0x1000      ; src
    li  r2, 0x2000      ; dst
    li  r3, 0           ; i
    li  r4, 8           ; n
copy:
    ld  r5, 0(r1)
    st  r5, 0(r2)
    addi r1, r1, 8
    addi r2, r2, 8
    addi r3, r3, 1
    blt r3, r4, copy
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	for i := uint64(0); i < 8; i++ {
		m.Poke(0x1000+8*i, 100+i)
	}
	m.RunPure(p.Len() * 12)
	for i := uint64(0); i < 8; i++ {
		if got := m.Peek(0x2000 + 8*i); got != 100+i {
			t.Fatalf("dst[%d] = %d", i, got)
		}
	}
}

func TestArithmeticSemantics(t *testing.T) {
	src := `
    li  r1, 7
    li  r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    and r5, r1, r2
    or  r6, r1, r2
    xor r7, r1, r2
    slt r8, r2, r1
    slt r9, r1, r2
    mul r10, r1, r2
    div r11, r1, r2
    div r12, r1, r0     ; divide by zero -> 0
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.RunPure(p.Len())
	want := map[int]uint64{3: 10, 4: 4, 5: 3, 6: 7, 7: 4, 8: 1, 9: 0, 10: 21, 11: 2, 12: 0}
	for r, v := range want {
		if got := m.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	src := `
    li  r0, 42
    add r1, r0, r0
    halt
`
	p, _ := Assemble(src)
	m := NewMachine(p)
	m.RunPure(3)
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Fatalf("r0 not hardwired: r0=%d r1=%d", m.Reg(0), m.Reg(1))
	}
}

func TestBranchVariants(t *testing.T) {
	src := `
    li  r1, 5
    li  r2, 5
    li  r10, 0
    beq r1, r2, eq      ; taken
    li  r10, 99
eq: bne r1, r2, bad     ; not taken
    bge r1, r2, ge      ; taken
    li  r10, 99
ge: addi r10, r10, 1
    halt
bad:
    li r10, 77
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.RunPure(8)
	if m.Reg(10) != 1 {
		t.Fatalf("branch path wrong: r10 = %d", m.Reg(10))
	}
}

func TestTraceRecordsWellFormed(t *testing.T) {
	p, err := Assemble(sumKernel)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	var prev isa.Inst
	for i := 0; i < 2000; i++ {
		in := m.Next()
		if err := in.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v (%+v)", i, err, in)
		}
		if i > 0 && prev.NextPC != in.PC {
			t.Fatalf("NextPC chain broken at %d: %#x -> %#x", i, prev.NextPC, in.PC)
		}
		prev = in
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"frob r1, r2", "unknown instruction"},
		{"add r1, r2", "takes 3 operands"},
		{"add r1, r2, r99", "bad register"},
		{"li r1, zebra", "bad immediate"},
		{"beq r1, r2, nowhere", `undefined label "nowhere"`},
		{"ld r1, r2", "expected offset(reg)"},
		{"dup: li r1, 1\ndup: li r1, 2", "duplicate label"},
		{"9bad: li r1, 1", "invalid label"},
		{"", "empty program"},
		{"halt extra", "takes 0 operands"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Assemble(%q) error = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestSyntaxErrorLineNumbers(t *testing.T) {
	_, err := Assemble("li r1, 1\nli r2, 2\nbogus\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Fatalf("line %d, want 3", se.Line)
	}
}

func TestDisassemble(t *testing.T) {
	p, _ := Assemble(sumKernel)
	dis := p.Disassemble()
	for _, want := range []string{"li", "add", "blt", "0x00400000"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestFallThroughWraps(t *testing.T) {
	p, _ := Assemble("li r1, 1\naddi r1, r1, 1")
	m := NewMachine(p)
	m.RunPure(10)
	if m.Restarts() < 4 {
		t.Fatalf("restarts %d", m.Restarts())
	}
}

func BenchmarkInterpreter(b *testing.B) {
	p, _ := Assemble(sumKernel)
	m := NewMachine(p)
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func TestShiftsAndMv(t *testing.T) {
	src := `
    li  r1, 0x80
    sll r2, r1, 4
    srl r3, r1, 3
    li  r4, -16
    sra r5, r4, 2
    mv  r6, r2
    nop
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.RunPure(p.Len())
	if m.Reg(2) != 0x800 || m.Reg(3) != 0x10 {
		t.Fatalf("shifts wrong: %#x %#x", m.Reg(2), m.Reg(3))
	}
	if int64(m.Reg(5)) != -4 {
		t.Fatalf("sra wrong: %d", int64(m.Reg(5)))
	}
	if m.Reg(6) != 0x800 {
		t.Fatalf("mv wrong: %#x", m.Reg(6))
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
.org 0x1000
.word 11, 22, 33
.org 0x2000
.word 0xdeadbeef
    li r1, 0x1000
    ld r2, 8(r1)
    halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if m.Peek(0x1000) != 11 || m.Peek(0x1010) != 33 || m.Peek(0x2000) != 0xdeadbeef {
		t.Fatal("data not deposited")
	}
	m.RunPure(3)
	if m.Reg(2) != 22 {
		t.Fatalf("ld from .word data = %d", m.Reg(2))
	}
}

func TestDataDirectiveErrors(t *testing.T) {
	for _, src := range []string{".org", ".word", ".org 1, 2", ".word zebra"} {
		if _, err := Assemble(src + "\nhalt"); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}
