package asm

import (
	"fmt"

	"tvsched/internal/isa"
)

// Machine executes an assembled program architecturally and emits the
// committed dynamic stream. It implements the pipeline's Source interface;
// the stream is infinite (halt or falling off the end restarts at the top
// with machine state preserved, which is what a measurement loop wants).
type Machine struct {
	prog *Program
	pc   int // instruction index
	regs [isa.NumArchRegs]uint64
	mem  map[uint64]uint64

	executed uint64
	restarts uint64
}

// NewMachine builds an interpreter over prog with zeroed registers and
// memory initialized from the program's .org/.word data directives.
func NewMachine(prog *Program) *Machine {
	m := &Machine{prog: prog, mem: make(map[uint64]uint64)}
	for a, v := range prog.data {
		m.mem[a] = v
	}
	return m
}

// Reg returns register r's current value (r0 reads as zero).
func (m *Machine) Reg(r int) uint64 {
	if r <= 0 || r >= isa.NumArchRegs {
		return 0
	}
	return m.regs[r]
}

// SetReg initializes a register (useful to pass kernel arguments).
func (m *Machine) SetReg(r int, v uint64) {
	if r > 0 && r < isa.NumArchRegs {
		m.regs[r] = v
	}
}

// Poke writes a memory word (kernel input data).
func (m *Machine) Poke(addr, v uint64) { m.mem[addr] = v }

// Peek reads a memory word.
func (m *Machine) Peek(addr uint64) uint64 { return m.mem[addr] }

// Executed returns the number of instructions emitted so far.
func (m *Machine) Executed() uint64 { return m.executed }

// Restarts returns how many times the program wrapped (halt or fall-through).
func (m *Machine) Restarts() uint64 { return m.restarts }

// pcAddr converts an instruction index to its virtual address.
func pcAddr(idx int) uint64 { return CodeBase + uint64(idx)*4 }

// Step executes one instruction and returns its committed-trace record.
func (m *Machine) Step() isa.Inst {
	d := &m.prog.insts[m.pc]
	in := isa.Inst{PC: pcAddr(m.pc), Dest: -1, Src1: -1, Src2: -1}
	next := m.pc + 1
	wrap := false

	writeReg := func(r int8, v uint64) {
		if r > 0 {
			m.regs[r] = v
		}
	}
	src := func(r int8) uint64 {
		if r <= 0 {
			return 0
		}
		return m.regs[r]
	}

	switch d.op {
	case opLI:
		in.Class = isa.IntALU
		in.Dest = d.rd
		writeReg(d.rd, uint64(d.imm))
	case opADDI:
		in.Class = isa.IntALU
		in.Dest, in.Src1 = d.rd, d.rs
		writeReg(d.rd, src(d.rs)+uint64(d.imm))
	case opADD, opSUB, opAND, opOR, opXOR, opSLT, opMUL, opDIV:
		in.Dest, in.Src1, in.Src2 = d.rd, d.rs, d.rt
		a, b := src(d.rs), src(d.rt)
		var v uint64
		switch d.op {
		case opADD:
			in.Class, v = isa.IntALU, a+b
		case opSUB:
			in.Class, v = isa.IntALU, a-b
		case opAND:
			in.Class, v = isa.IntALU, a&b
		case opOR:
			in.Class, v = isa.IntALU, a|b
		case opXOR:
			in.Class, v = isa.IntALU, a^b
		case opSLT:
			in.Class = isa.IntALU
			if int64(a) < int64(b) {
				v = 1
			}
		case opMUL:
			in.Class, v = isa.IntMul, a*b
		case opDIV:
			in.Class = isa.IntDiv
			if b != 0 {
				v = a / b
			}
		}
		writeReg(d.rd, v)
	case opSLL, opSRL, opSRA:
		in.Class = isa.IntALU
		in.Dest, in.Src1 = d.rd, d.rs
		sh := uint(d.imm) & 63
		switch d.op {
		case opSLL:
			writeReg(d.rd, src(d.rs)<<sh)
		case opSRL:
			writeReg(d.rd, src(d.rs)>>sh)
		case opSRA:
			writeReg(d.rd, uint64(int64(src(d.rs))>>sh))
		}
	case opMV:
		in.Class = isa.IntALU
		in.Dest, in.Src1 = d.rd, d.rs
		writeReg(d.rd, src(d.rs))
	case opNOP:
		in.Class = isa.IntALU
		in.Dest = 31 // harmless scratch write keeps the record well-formed
		writeReg(31, m.regs[31])
	case opLD:
		in.Class = isa.Load
		in.Dest, in.Src1 = d.rd, d.rs
		addr := src(d.rs) + uint64(d.imm)
		if addr == 0 {
			addr = 8 // the timing model needs non-zero addresses
		}
		in.Addr = addr
		writeReg(d.rd, m.mem[addr])
	case opST:
		in.Class = isa.Store
		in.Src1, in.Src2 = d.rs, d.rd // address base, stored value
		addr := src(d.rs) + uint64(d.imm)
		if addr == 0 {
			addr = 8
		}
		in.Addr = addr
		m.mem[addr] = src(d.rd)
	case opBEQ, opBNE, opBLT, opBGE:
		in.Class = isa.Branch
		in.Src1, in.Src2 = d.rs, d.rt
		a, b := src(d.rs), src(d.rt)
		taken := false
		switch d.op {
		case opBEQ:
			taken = a == b
		case opBNE:
			taken = a != b
		case opBLT:
			taken = int64(a) < int64(b)
		case opBGE:
			taken = int64(a) >= int64(b)
		}
		if taken {
			in.Taken = true
			in.Target = pcAddr(d.target)
			next = d.target
		}
	case opJ:
		in.Class = isa.Branch
		in.Taken = true
		in.Target = pcAddr(d.target)
		next = d.target
	case opHALT:
		// Modeled as an always-taken branch back to the top.
		in.Class = isa.Branch
		in.Taken = true
		in.Target = pcAddr(0)
		next = 0
		wrap = true
	}

	if next >= len(m.prog.insts) {
		next = 0
		wrap = true
	}
	if wrap {
		m.restarts++
	}
	in.NextPC = pcAddr(next)
	m.pc = next
	m.executed++
	return in
}

// Next implements the pipeline Source contract.
func (m *Machine) Next() isa.Inst { return m.Step() }

// RunPure executes n instructions functionally without recording a trace —
// for testing kernels' architectural semantics.
func (m *Machine) RunPure(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// Disassemble renders the program listing with addresses (diagnostics).
func (p *Program) Disassemble() string {
	names := make(map[opcode]string, len(opNames))
	for n, op := range opNames {
		names[op] = n
	}
	var b []byte
	for i, d := range p.insts {
		b = append(b, fmt.Sprintf("%#08x  %-5s", pcAddr(i), names[d.op])...)
		switch d.op {
		case opLI:
			b = append(b, fmt.Sprintf(" r%d, %d", d.rd, d.imm)...)
		case opADDI:
			b = append(b, fmt.Sprintf(" r%d, r%d, %d", d.rd, d.rs, d.imm)...)
		case opADD, opSUB, opAND, opOR, opXOR, opSLT, opMUL, opDIV:
			b = append(b, fmt.Sprintf(" r%d, r%d, r%d", d.rd, d.rs, d.rt)...)
		case opSLL, opSRL, opSRA:
			b = append(b, fmt.Sprintf(" r%d, r%d, %d", d.rd, d.rs, d.imm)...)
		case opMV:
			b = append(b, fmt.Sprintf(" r%d, r%d", d.rd, d.rs)...)
		case opLD, opST:
			b = append(b, fmt.Sprintf(" r%d, %d(r%d)", d.rd, d.imm, d.rs)...)
		case opBEQ, opBNE, opBLT, opBGE:
			b = append(b, fmt.Sprintf(" r%d, r%d, %#x", d.rs, d.rt, pcAddr(d.target))...)
		case opJ:
			b = append(b, fmt.Sprintf(" %#x", pcAddr(d.target))...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
