package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" b=http://h2:1/ , c=http://h3:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{"b", "http://h2:1"}) || peers[1] != (Peer{"c", "http://h3:2"}) {
		t.Fatalf("parsed %+v", peers)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Fatalf("empty list: %v %v", p, err)
	}
	for _, bad := range []string{"nourl", "=http://x", "a=", "a=u,a=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestOwnerAgreement is the coordination-free routing property: every node,
// building its ring from its own point of view, names the same owner for
// every digest.
func TestOwnerAgreement(t *testing.T) {
	ids := []string{"a", "b", "c"}
	peersOf := func(self string) []Peer {
		var ps []Peer
		for _, id := range ids {
			if id != self {
				ps = append(ps, Peer{ID: id, URL: "http://" + id})
			}
		}
		return ps
	}
	rings := make(map[string]*Ring)
	for _, id := range ids {
		r, err := NewRing(id, peersOf(id))
		if err != nil {
			t.Fatal(err)
		}
		rings[id] = r
	}
	for i := 0; i < 200; i++ {
		digest := fmt.Sprintf("sha256:%032x", i)
		owner, _ := rings["a"].Owner(digest)
		for _, id := range ids[1:] {
			got, isSelf := rings[id].Owner(digest)
			if got.ID != owner.ID {
				t.Fatalf("digest %s: node a says owner %s, node %s says %s", digest, owner.ID, id, got.ID)
			}
			if isSelf != (got.ID == id) {
				t.Fatalf("digest %s: node %s isSelf=%v for owner %s", digest, id, isSelf, got.ID)
			}
		}
	}
}

// TestOwnerDistribution checks rendezvous hashing spreads digests roughly
// evenly over three nodes (no node starved, none dominant).
func TestOwnerDistribution(t *testing.T) {
	r, err := NewRing("a", []Peer{{ID: "b"}, {ID: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const N = 3000
	for i := 0; i < N; i++ {
		owner, _ := r.Owner(fmt.Sprintf("sha256:%040x", i*7919))
		counts[owner.ID]++
	}
	for id, n := range counts {
		if n < N/6 || n > N/2 {
			t.Fatalf("node %s owns %d of %d digests — distribution badly skewed: %v", id, n, N, counts)
		}
	}
}

// TestMinimalRemapping pins the rendezvous property the deploy story rests
// on: dropping one node only remaps the digests that node owned.
func TestMinimalRemapping(t *testing.T) {
	full, err := NewRing("a", []Peer{{ID: "b"}, {ID: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewRing("a", []Peer{{ID: "b"}}) // node c gone
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		digest := fmt.Sprintf("sha256:%040x", i)
		before, _ := full.Owner(digest)
		after, _ := without.Owner(digest)
		if before.ID != "c" && after.ID != before.ID {
			t.Fatalf("digest %s moved %s → %s though its owner never left", digest, before.ID, after.ID)
		}
	}
}

func TestNewRingRejectsCollision(t *testing.T) {
	if _, err := NewRing("a", []Peer{{ID: "a"}}); err == nil {
		t.Fatal("self-colliding peer id accepted")
	}
	if _, err := NewRing("", nil); err == nil {
		t.Fatal("empty self id accepted")
	}
}

// TestClientFetch exercises hit, miss, and error answers.
func TestClientFetch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/result/have":
			w.Write([]byte("body-bytes\n"))
		case "/v1/result/missing":
			http.Error(w, "not here", http.StatusNotFound)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	c := NewClient("a")
	peer := Peer{ID: "b", URL: ts.URL}

	body, ok, err := c.Fetch(context.Background(), peer, "have")
	if err != nil || !ok || string(body) != "body-bytes\n" {
		t.Fatalf("hit: %q ok=%v err=%v", body, ok, err)
	}
	if _, ok, err := c.Fetch(context.Background(), peer, "missing"); ok || err != nil {
		t.Fatalf("miss must be clean: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Fetch(context.Background(), peer, "broken"); ok || err == nil {
		t.Fatal("server error not surfaced")
	}
}

// TestClientForward checks the forward carries the loop-prevention header
// and returns the owner's bytes and cache annotation.
func TestClientForward(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardHeader) != "a" {
			http.Error(w, "missing forward header", http.StatusBadRequest)
			return
		}
		w.Header().Set("X-Tvsched-Cache", "miss")
		w.Write([]byte(`{"ok":true}` + "\n"))
	}))
	defer ts.Close()
	c := NewClient("a")
	body, hdr, err := c.Forward(context.Background(), Peer{ID: "b", URL: ts.URL}, []byte(`{}`))
	if err != nil || string(body) != `{"ok":true}`+"\n" || hdr.Get("X-Tvsched-Cache") != "miss" {
		t.Fatalf("forward: %q hdr=%v err=%v", body, hdr, err)
	}
}
