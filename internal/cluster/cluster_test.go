package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" b=http://h2:1/ , c=http://h3:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != (Peer{"b", "http://h2:1"}) || peers[1] != (Peer{"c", "http://h3:2"}) {
		t.Fatalf("parsed %+v", peers)
	}
	if p, err := ParsePeers(""); err != nil || p != nil {
		t.Fatalf("empty list: %v %v", p, err)
	}
	for _, bad := range []string{"nourl", "=http://x", "a=", "a=u,a=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestOwnerAgreement is the coordination-free routing property: every node,
// building its ring from its own point of view, names the same owner for
// every digest.
func TestOwnerAgreement(t *testing.T) {
	ids := []string{"a", "b", "c"}
	peersOf := func(self string) []Peer {
		var ps []Peer
		for _, id := range ids {
			if id != self {
				ps = append(ps, Peer{ID: id, URL: "http://" + id})
			}
		}
		return ps
	}
	rings := make(map[string]*Ring)
	for _, id := range ids {
		r, err := NewRing(id, peersOf(id))
		if err != nil {
			t.Fatal(err)
		}
		rings[id] = r
	}
	for i := 0; i < 200; i++ {
		digest := fmt.Sprintf("sha256:%032x", i)
		owner, _ := rings["a"].Owner(digest)
		for _, id := range ids[1:] {
			got, isSelf := rings[id].Owner(digest)
			if got.ID != owner.ID {
				t.Fatalf("digest %s: node a says owner %s, node %s says %s", digest, owner.ID, id, got.ID)
			}
			if isSelf != (got.ID == id) {
				t.Fatalf("digest %s: node %s isSelf=%v for owner %s", digest, id, isSelf, got.ID)
			}
		}
	}
}

// TestOwnerDistribution checks rendezvous hashing spreads digests roughly
// evenly over three nodes (no node starved, none dominant).
func TestOwnerDistribution(t *testing.T) {
	r, err := NewRing("a", []Peer{{ID: "b"}, {ID: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const N = 3000
	for i := 0; i < N; i++ {
		owner, _ := r.Owner(fmt.Sprintf("sha256:%040x", i*7919))
		counts[owner.ID]++
	}
	for id, n := range counts {
		if n < N/6 || n > N/2 {
			t.Fatalf("node %s owns %d of %d digests — distribution badly skewed: %v", id, n, N, counts)
		}
	}
}

// TestMinimalRemapping pins the rendezvous property the deploy story rests
// on: dropping one node only remaps the digests that node owned.
func TestMinimalRemapping(t *testing.T) {
	full, err := NewRing("a", []Peer{{ID: "b"}, {ID: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewRing("a", []Peer{{ID: "b"}}) // node c gone
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		digest := fmt.Sprintf("sha256:%040x", i)
		before, _ := full.Owner(digest)
		after, _ := without.Owner(digest)
		if before.ID != "c" && after.ID != before.ID {
			t.Fatalf("digest %s moved %s → %s though its owner never left", digest, before.ID, after.ID)
		}
	}
}

func TestNewRingRejectsCollision(t *testing.T) {
	if _, err := NewRing("a", []Peer{{ID: "a"}}); err == nil {
		t.Fatal("self-colliding peer id accepted")
	}
	if _, err := NewRing("", nil); err == nil {
		t.Fatal("empty self id accepted")
	}
}

// TestClientFetch exercises hit, miss, and error answers.
func TestClientFetch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/result/have":
			w.Write([]byte("body-bytes\n"))
		case "/v1/result/missing":
			http.Error(w, "not here", http.StatusNotFound)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	c := NewClient("a")
	peer := Peer{ID: "b", URL: ts.URL}

	body, ok, err := c.Fetch(context.Background(), peer, "have")
	if err != nil || !ok || string(body) != "body-bytes\n" {
		t.Fatalf("hit: %q ok=%v err=%v", body, ok, err)
	}
	if _, ok, err := c.Fetch(context.Background(), peer, "missing"); ok || err != nil {
		t.Fatalf("miss must be clean: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Fetch(context.Background(), peer, "broken"); ok || err == nil {
		t.Fatal("server error not surfaced")
	}
}

// TestClientForward checks the forward carries the loop-prevention header
// and returns the owner's bytes and cache annotation.
func TestClientForward(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardHeader) != "a" {
			http.Error(w, "missing forward header", http.StatusBadRequest)
			return
		}
		w.Header().Set("X-Tvsched-Cache", "miss")
		w.Write([]byte(`{"ok":true}` + "\n"))
	}))
	defer ts.Close()
	c := NewClient("a")
	body, hdr, err := c.Forward(context.Background(), Peer{ID: "b", URL: ts.URL}, []byte(`{}`))
	if err != nil || string(body) != `{"ok":true}`+"\n" || hdr.Get("X-Tvsched-Cache") != "miss" {
		t.Fatalf("forward: %q hdr=%v err=%v", body, hdr, err)
	}
}

// TestFaultClassification pins the class each failure shape maps to, since
// the retry rules key on it.
func TestFaultClassification(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/cut"):
			// Promise more bytes than we send, then sever the connection, so
			// the client fails mid-body after a 200.
			w.Header().Set("Content-Length", "1000")
			w.Write([]byte("partial"))
			w.(http.Flusher).Flush()
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
		case strings.HasSuffix(r.URL.Path, "/busy"):
			http.Error(w, "shedding", http.StatusServiceUnavailable)
		default:
			http.Error(w, "no such run", http.StatusBadRequest)
		}
	}))
	defer ts.Close()
	c := NewClient("a")
	peer := Peer{ID: "b", URL: ts.URL}
	ctx := context.Background()

	classOf := func(err error) FaultClass {
		t.Helper()
		var pe *PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("error %v is not a PeerError", err)
		}
		return pe.Class
	}

	// Connect: nothing listens on a closed port.
	dead := Peer{ID: "dead", URL: "http://127.0.0.1:1"}
	if _, _, err := c.Forward(ctx, dead, []byte(`{}`)); classOf(err) != FaultConnect {
		t.Fatalf("dead peer: class %v, want connect", classOf(err))
	}
	// Status: 5xx and 4xx arrive intact.
	_, _, err := c.Forward(ctx, peer, []byte(`{}`)) // hits default → 400
	if classOf(err) != FaultStatus {
		t.Fatalf("4xx: class %v, want status", classOf(err))
	}
	var pe *PeerError
	errors.As(err, &pe)
	if pe.Status != http.StatusBadRequest || pe.Detail != "no such run" {
		t.Fatalf("4xx: status %d detail %q", pe.Status, pe.Detail)
	}
	// Body: 200 then the stream dies.
	if _, ok, err := c.Fetch(ctx, peer, "cut"); ok || classOf(err) != FaultBody {
		t.Fatalf("cut body: ok=%v class %v, want body fault", ok, classOf(err))
	}
}

// TestRetryRules pins the two retry predicates: Forward retries only
// connect faults and 5xx-before-body; the general rule also retries 4xx
// (Fetch against a restarting peer) but never a mid-body cut.
func TestRetryRules(t *testing.T) {
	connect := &PeerError{Class: FaultConnect, Peer: "b", Op: "forward", Err: errors.New("refused")}
	s503 := &PeerError{Class: FaultStatus, Peer: "b", Op: "forward", Status: 503}
	s400 := &PeerError{Class: FaultStatus, Peer: "b", Op: "forward", Status: 400}
	body := &PeerError{Class: FaultBody, Peer: "b", Op: "forward", Err: errors.New("unexpected EOF")}

	cases := []struct {
		err              error
		forward, general bool
	}{
		{connect, true, true},
		{s503, true, true},
		{s400, false, true},
		{body, false, false},
		{fmt.Errorf("wrapped: %w", s503), true, true},
		{errors.New("not a peer error"), false, false},
	}
	for _, tc := range cases {
		if got := ForwardRetryable(tc.err); got != tc.forward {
			t.Errorf("ForwardRetryable(%v) = %v, want %v", tc.err, got, tc.forward)
		}
		if got := Retryable(tc.err); got != tc.general {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.general)
		}
	}
}

// TestClientPush checks the replication call: method, path, forwarded-by
// header, body bytes, and the status-fault path.
func TestClientPush(t *testing.T) {
	var gotMethod, gotPath, gotFrom string
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod, gotPath, gotFrom = r.Method, r.URL.Path, r.Header.Get(ForwardHeader)
		gotBody, _ = io.ReadAll(r.Body)
		if strings.HasSuffix(r.URL.Path, "reject") {
			http.Error(w, "digest mismatch", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	c := NewClient("a")
	peer := Peer{ID: "b", URL: ts.URL}

	if err := c.Push(context.Background(), peer, "d123", []byte("result-bytes")); err != nil {
		t.Fatal(err)
	}
	if gotMethod != http.MethodPut || gotPath != "/v1/result/d123" || gotFrom != "a" || string(gotBody) != "result-bytes" {
		t.Fatalf("push sent %s %s from=%q body=%q", gotMethod, gotPath, gotFrom, gotBody)
	}
	err := c.Push(context.Background(), peer, "reject", []byte("x"))
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Class != FaultStatus || pe.Status != http.StatusBadRequest {
		t.Fatalf("rejected push: %v", err)
	}
}

// TestSharedTransportReusesConnections pins the satellite fix: peer calls
// ride pooled keep-alive connections instead of a fresh dial per call.
func TestSharedTransportReusesConnections(t *testing.T) {
	var mu sync.Mutex
	remotes := make(map[string]bool)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		remotes[r.RemoteAddr] = true
		mu.Unlock()
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	c := NewClient("a")
	peer := Peer{ID: "b", URL: ts.URL}
	for i := 0; i < 8; i++ {
		if err := c.Health(context.Background(), peer); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	n := len(remotes)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("8 sequential health probes used %d connections, want 1 (pooling broken)", n)
	}
}
