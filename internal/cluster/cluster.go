// Package cluster is the fleet layer under cmd/tvservd: a static peer list,
// rendezvous (highest-random-weight) hashing that assigns every config
// digest one owning node, and a small HTTP client for the three peer
// operations the serving layer needs — read-through fetch of a cached
// result, forwarding a run to its owner, and health probes.
//
// Rendezvous hashing was chosen over a token ring because the peer lists
// here are small and static: every node scores each (node, digest) pair
// with an independent hash and the highest score owns the digest. All nodes
// holding the same peer list agree on every owner with no coordination, and
// removing a node remaps only the digests it owned — the property that
// keeps a deploy from stampeding the whole keyspace.
//
// The routing protocol is one hop by construction: a node that accepts a
// request it does not own forwards it to the owner with the ForwardHeader
// set, and a forwarded request is always computed locally, even if the
// receiving node's (possibly skewed) peer list disagrees about ownership.
// Two nodes with inconsistent peer lists can therefore each compute a
// digest — wasteful, never wrong, and the divergence sweep would surface
// any disagreement in the bytes.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// ForwardHeader marks a /v1/run request as already routed: the value is the
// forwarding node's ID, and the receiving node must compute locally instead
// of routing again (the loop-prevention rule).
const ForwardHeader = "X-Tvsched-Forwarded"

// Peer is one cluster member: a stable ID (the hashing identity — renaming
// a node remaps its keys) and the base URL its tvservd listens on.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag form: comma-separated id=url pairs,
// e.g. "b=http://10.0.0.2:8844,c=http://10.0.0.3:8844".
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q, want id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return peers, nil
}

// Ring assigns digests to nodes by rendezvous hashing over self + peers.
// It is immutable after New — swap the whole Ring to change membership.
type Ring struct {
	self  string
	peers []Peer
}

// NewRing builds the ring for a node and its peers. The self ID must not
// collide with a peer ID.
func NewRing(self string, peers []Peer) (*Ring, error) {
	if self == "" {
		return nil, errors.New("cluster: empty node id")
	}
	ps := make([]Peer, len(peers))
	copy(ps, peers)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	for _, p := range ps {
		if p.ID == self {
			return nil, fmt.Errorf("cluster: peer id %q collides with this node's id", self)
		}
	}
	return &Ring{self: self, peers: ps}, nil
}

// Peers returns the ring's peer list (sorted by ID, self excluded).
func (r *Ring) Peers() []Peer { return r.peers }

// Self returns this node's ID.
func (r *Ring) Self() string { return r.self }

// score is the rendezvous weight of one (node, digest) pair: FNV-64a over
// the node ID, a separator that cannot appear in IDs parsed from id=url
// pairs, and the digest.
func score(node, digest string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, node)
	h.Write([]byte{0})
	io.WriteString(h, digest)
	return h.Sum64()
}

// Owner returns the node owning digest and whether that node is self.
// Ties (astronomically unlikely with 64-bit scores) break toward the
// lexically greatest ID so every node still agrees.
func (r *Ring) Owner(digest string) (Peer, bool) {
	best := Peer{ID: r.self}
	bestScore := score(r.self, digest)
	for _, p := range r.peers {
		s := score(p.ID, digest)
		if s > bestScore || (s == bestScore && p.ID > best.ID) {
			best, bestScore = p, s
		}
	}
	return best, best.ID == r.self
}

// FaultClass partitions peer-call failures by where in the exchange they
// happened — the property retry policy keys on. A connect-class fault means
// the request may never have reached the peer, so retrying costs only the
// wire. A status fault means the peer answered (headers arrived, no useful
// body); retrying is safe for 5xx because the peer declined rather than
// processed. A body fault means the exchange died mid-stream after a good
// status: for a non-idempotent-cost call like Forward, the peer has already
// done the work, and the cheaper recovery is computing locally.
type FaultClass int

const (
	// FaultConnect is a transport-level failure before any response: dial
	// refused, DNS, TLS, timeout waiting for headers.
	FaultConnect FaultClass = iota
	// FaultStatus is a non-2xx response whose status arrived intact.
	FaultStatus
	// FaultBody is an error reading the response body after a good status.
	FaultBody
)

var faultNames = [...]string{"connect", "status", "body"}

// String names the class.
func (f FaultClass) String() string {
	if f < 0 || int(f) >= len(faultNames) {
		return "unknown"
	}
	return faultNames[f]
}

// PeerError is every error the Client returns for a reachable-protocol
// failure, carrying the fault class, the peer, the operation, and — for
// FaultStatus — the HTTP status. It unwraps to the underlying transport
// error so sentinel checks (context.DeadlineExceeded, chaos.ErrRefused)
// still work through it.
type PeerError struct {
	Class  FaultClass
	Peer   string // peer ID
	Op     string // "fetch", "forward", "health", "push"
	Status int    // HTTP status for FaultStatus, else 0
	Detail string // trimmed response body for FaultStatus, may be empty
	Err    error  // underlying error for FaultConnect/FaultBody, else nil
}

// Error renders the failure with its class, so logs show at a glance
// whether the peer was unreachable, declining, or cut off mid-answer.
func (e *PeerError) Error() string {
	switch e.Class {
	case FaultStatus:
		if e.Detail != "" {
			return fmt.Sprintf("cluster: %s %s: status %d: %s", e.Op, e.Peer, e.Status, e.Detail)
		}
		return fmt.Sprintf("cluster: %s %s: status %d", e.Op, e.Peer, e.Status)
	default:
		return fmt.Sprintf("cluster: %s %s: %s fault: %v", e.Op, e.Peer, e.Class, e.Err)
	}
}

// Unwrap exposes the underlying transport error.
func (e *PeerError) Unwrap() error { return e.Err }

// Retryable reports whether any peer error is worth retrying at all: every
// class except a mid-body cut, where the peer already did the work. Fetch,
// Health and Push use this directly.
func Retryable(err error) bool {
	var pe *PeerError
	if !errors.As(err, &pe) {
		return false
	}
	return pe.Class != FaultBody
}

// ForwardRetryable is the stricter rule for Forward, the one call that makes
// the peer simulate: retry only when the peer provably did not accept the
// work — a connect-class fault, or a 5xx that arrived before any result body
// (overload shedding, chaos bursts). A 4xx is deterministic and a body cut
// means the run completed; both retries would be wasted simulation.
func ForwardRetryable(err error) bool {
	var pe *PeerError
	if !errors.As(err, &pe) {
		return false
	}
	switch pe.Class {
	case FaultConnect:
		return true
	case FaultStatus:
		return pe.Status >= 500
	default:
		return false
	}
}

// sharedTransport pools peer connections process-wide: every Client reuses
// it, so repeated peer calls ride warm keep-alive connections, and the dial
// and TLS-handshake timeouts bound how long a black-holed peer can hang a
// call even when the caller forgot a context deadline.
var sharedTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	TLSHandshakeTimeout:   5 * time.Second,
	MaxIdleConns:          64,
	MaxIdleConnsPerHost:   16,
	IdleConnTimeout:       90 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

// Client speaks the peer protocol. The zero value is not usable; use
// NewClient.
type Client struct {
	self string
	http *http.Client
}

// NewClient builds a peer client identifying as self, on the shared pooled
// transport. The http.Client's timeout is left zero — every call takes a
// context, and the serving layer bounds each operation with its own
// deadline.
func NewClient(self string) *Client {
	return NewClientWith(self, nil)
}

// NewClientWith is NewClient with an interposed RoundTripper — the seam the
// chaos transport installs through. A nil rt means the shared transport.
func NewClientWith(self string, rt http.RoundTripper) *Client {
	if rt == nil {
		rt = sharedTransport
	}
	return &Client{self: self, http: &http.Client{Transport: rt}}
}

// Fetch asks peer for its locally cached bytes of digest (GET
// /v1/result/{digest}). A 404 is a clean miss, not an error; the peer never
// computes or forwards on this path.
func (c *Client) Fetch(ctx context.Context, peer Peer, digest string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.URL+"/v1/result/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, &PeerError{Class: FaultConnect, Peer: peer.ID, Op: "fetch", Err: err}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, &PeerError{Class: FaultBody, Peer: peer.ID, Op: "fetch", Err: err}
		}
		return body, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, &PeerError{Class: FaultStatus, Peer: peer.ID, Op: "fetch", Status: resp.StatusCode}
	}
}

// Forward posts a run request to its owner (POST /v1/run with ForwardHeader
// set) and returns the response bytes plus the owner's response headers (the
// caller reads X-Tvsched-Digest to verify both nodes normalized the request
// identically, and X-Tvsched-Cache for provenance). Any non-200 answer is an
// error — the caller falls back to computing locally.
func (c *Client) Forward(ctx context.Context, peer Peer, body []byte) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.URL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, &PeerError{Class: FaultConnect, Peer: peer.ID, Op: "forward", Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Read the error detail best-effort: the status already arrived, so
		// the class is FaultStatus even if the detail body is cut short.
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, nil, &PeerError{Class: FaultStatus, Peer: peer.ID, Op: "forward",
			Status: resp.StatusCode, Detail: strings.TrimSpace(string(detail))}
	}
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, &PeerError{Class: FaultBody, Peer: peer.ID, Op: "forward", Err: err}
	}
	return respBody, resp.Header, nil
}

// Health probes peer's liveness endpoint.
func (c *Client) Health(ctx context.Context, peer Peer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &PeerError{Class: FaultConnect, Peer: peer.ID, Op: "health", Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &PeerError{Class: FaultStatus, Peer: peer.ID, Op: "health", Status: resp.StatusCode}
	}
	return nil
}

// Push replicates locally held result bytes of digest to peer (PUT
// /v1/result/{digest}) — the repair half of the protocol, used to hand an
// owner the result a non-owner computed in degraded mode, and to overwrite
// a diverged replica after anti-entropy re-simulation. The digest names the
// config, not the body, so the receiver cannot check the bytes against it —
// pushes are trusted cluster-internal traffic (it does validate the digest's
// shape and reject empty bodies); anti-entropy is the backstop for bad ones.
func (c *Client) Push(ctx context.Context, peer Peer, digest string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer.URL+"/v1/result/"+digest, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return &PeerError{Class: FaultConnect, Peer: peer.ID, Op: "push", Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &PeerError{Class: FaultStatus, Peer: peer.ID, Op: "push",
			Status: resp.StatusCode, Detail: strings.TrimSpace(string(detail))}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
