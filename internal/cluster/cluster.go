// Package cluster is the fleet layer under cmd/tvservd: a static peer list,
// rendezvous (highest-random-weight) hashing that assigns every config
// digest one owning node, and a small HTTP client for the three peer
// operations the serving layer needs — read-through fetch of a cached
// result, forwarding a run to its owner, and health probes.
//
// Rendezvous hashing was chosen over a token ring because the peer lists
// here are small and static: every node scores each (node, digest) pair
// with an independent hash and the highest score owns the digest. All nodes
// holding the same peer list agree on every owner with no coordination, and
// removing a node remaps only the digests it owned — the property that
// keeps a deploy from stampeding the whole keyspace.
//
// The routing protocol is one hop by construction: a node that accepts a
// request it does not own forwards it to the owner with the ForwardHeader
// set, and a forwarded request is always computed locally, even if the
// receiving node's (possibly skewed) peer list disagrees about ownership.
// Two nodes with inconsistent peer lists can therefore each compute a
// digest — wasteful, never wrong, and the divergence sweep would surface
// any disagreement in the bytes.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
)

// ForwardHeader marks a /v1/run request as already routed: the value is the
// forwarding node's ID, and the receiving node must compute locally instead
// of routing again (the loop-prevention rule).
const ForwardHeader = "X-Tvsched-Forwarded"

// Peer is one cluster member: a stable ID (the hashing identity — renaming
// a node remaps its keys) and the base URL its tvservd listens on.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag form: comma-separated id=url pairs,
// e.g. "b=http://10.0.0.2:8844,c=http://10.0.0.3:8844".
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q, want id=url", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return peers, nil
}

// Ring assigns digests to nodes by rendezvous hashing over self + peers.
// It is immutable after New — swap the whole Ring to change membership.
type Ring struct {
	self  string
	peers []Peer
}

// NewRing builds the ring for a node and its peers. The self ID must not
// collide with a peer ID.
func NewRing(self string, peers []Peer) (*Ring, error) {
	if self == "" {
		return nil, errors.New("cluster: empty node id")
	}
	ps := make([]Peer, len(peers))
	copy(ps, peers)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
	for _, p := range ps {
		if p.ID == self {
			return nil, fmt.Errorf("cluster: peer id %q collides with this node's id", self)
		}
	}
	return &Ring{self: self, peers: ps}, nil
}

// Peers returns the ring's peer list (sorted by ID, self excluded).
func (r *Ring) Peers() []Peer { return r.peers }

// Self returns this node's ID.
func (r *Ring) Self() string { return r.self }

// score is the rendezvous weight of one (node, digest) pair: FNV-64a over
// the node ID, a separator that cannot appear in IDs parsed from id=url
// pairs, and the digest.
func score(node, digest string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, node)
	h.Write([]byte{0})
	io.WriteString(h, digest)
	return h.Sum64()
}

// Owner returns the node owning digest and whether that node is self.
// Ties (astronomically unlikely with 64-bit scores) break toward the
// lexically greatest ID so every node still agrees.
func (r *Ring) Owner(digest string) (Peer, bool) {
	best := Peer{ID: r.self}
	bestScore := score(r.self, digest)
	for _, p := range r.peers {
		s := score(p.ID, digest)
		if s > bestScore || (s == bestScore && p.ID > best.ID) {
			best, bestScore = p, s
		}
	}
	return best, best.ID == r.self
}

// Client speaks the peer protocol. The zero value is not usable; use
// NewClient.
type Client struct {
	self string
	http *http.Client
}

// NewClient builds a peer client identifying as self. The http.Client's
// timeout is left zero — every call takes a context, and the serving layer
// bounds each operation with its own deadline.
func NewClient(self string) *Client {
	return &Client{self: self, http: &http.Client{}}
}

// Fetch asks peer for its locally cached bytes of digest (GET
// /v1/result/{digest}). A 404 is a clean miss, not an error; the peer never
// computes or forwards on this path.
func (c *Client) Fetch(ctx context.Context, peer Peer, digest string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.URL+"/v1/result/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return body, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("cluster: fetch %s from %s: status %d", digest, peer.ID, resp.StatusCode)
	}
}

// Forward posts a run request to its owner (POST /v1/run with ForwardHeader
// set) and returns the response bytes plus the owner's response headers (the
// caller reads X-Tvsched-Digest to verify both nodes normalized the request
// identically, and X-Tvsched-Cache for provenance). Any non-200 answer is an
// error — the caller falls back to computing locally.
func (c *Client) Forward(ctx context.Context, peer Peer, body []byte) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.URL+"/v1/run", strings.NewReader(string(body)))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("cluster: forward to %s: status %d: %s",
			peer.ID, resp.StatusCode, strings.TrimSpace(string(respBody)))
	}
	return respBody, resp.Header, nil
}

// Health probes peer's liveness endpoint.
func (c *Client) Health(ctx context.Context, peer Peer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.URL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
