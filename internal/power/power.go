// Package power provides the 45nm-class synthesis model behind the paper's
// area/power results: per-cell area, leakage and switching energy for the
// standard cells of internal/circuit, plus SRAM and CAM bit cells for the
// storage-dominated structures. Table 3's component characteristics are
// computed directly from the built netlists; Table 2's VTE overheads are
// computed from a structural inventory of the baseline (Error Padding)
// scheduler and the logic each proposed scheme adds (§S3).
package power

import "tvsched/internal/circuit"

// Cell characteristics, 45nm-class. Area in µm², leakage in nW at nominal
// voltage and temperature, switching energy in fJ per output toggle.
type Cell struct {
	Area    float64
	Leakage float64
	Energy  float64
}

// CellFor returns the characteristics of a combinational cell type.
func CellFor(t circuit.GateType) Cell {
	switch t {
	case circuit.Not:
		return Cell{Area: 0.6, Leakage: 2.0, Energy: 0.6}
	case circuit.Buf:
		return Cell{Area: 0.7, Leakage: 2.5, Energy: 0.7}
	case circuit.Nand, circuit.Nor:
		return Cell{Area: 0.8, Leakage: 3.0, Energy: 0.9}
	case circuit.And, circuit.Or:
		return Cell{Area: 1.1, Leakage: 4.0, Energy: 1.1}
	case circuit.Xor, circuit.Xnor:
		return Cell{Area: 1.8, Leakage: 6.0, Energy: 1.6}
	case circuit.Mux2:
		return Cell{Area: 1.6, Leakage: 5.0, Energy: 1.4}
	default:
		return Cell{Area: 1.0, Leakage: 3.5, Energy: 1.0}
	}
}

// Storage bit cells.
var (
	// SRAMBit is a 6T SRAM bit with its share of decode/precharge.
	SRAMBit = Cell{Area: 0.55, Leakage: 5.5, Energy: 0.25}
	// CAMBit is a ternary match cell: storage plus comparator per search
	// port; the dominant cost of wakeup and LSQ search structures.
	CAMBit = Cell{Area: 1.9, Leakage: 7, Energy: 1.1}
	// FlipFlop is a scan D-flop for pipeline and state registers.
	FlipFlop = Cell{Area: 2.2, Leakage: 7, Energy: 1.8}
)

// Budget aggregates area (µm²), leakage power (nW) and dynamic energy per
// cycle (fJ, at the block's activity) for a structure.
type Budget struct {
	Area    float64
	Leakage float64
	Dynamic float64
}

// Add accumulates another budget.
func (b *Budget) Add(o Budget) {
	b.Area += o.Area
	b.Leakage += o.Leakage
	b.Dynamic += o.Dynamic
}

// Scale returns the budget scaled by k (e.g. for replicated lanes).
func (b Budget) Scale(k float64) Budget {
	return Budget{Area: b.Area * k, Leakage: b.Leakage * k, Dynamic: b.Dynamic * k}
}

// Gates builds a budget for n cells of type t toggling with the given
// activity (average output toggles per cycle).
func Gates(t circuit.GateType, n int, activity float64) Budget {
	c := CellFor(t)
	fn := float64(n)
	return Budget{
		Area:    c.Area * fn,
		Leakage: c.Leakage * fn,
		Dynamic: c.Energy * fn * activity,
	}
}

// NetlistBudget prices a whole netlist at a uniform activity factor.
func NetlistBudget(nl *circuit.Netlist, activity float64) Budget {
	var b Budget
	counts := nl.CountByType()
	for t := circuit.And; t < circuit.NumGateTypes; t++ {
		b.Add(Gates(t, counts[t], activity))
	}
	return b
}

// RAM prices bits of SRAM with the given read/write activity.
func RAM(bits int, activity float64) Budget {
	fb := float64(bits)
	return Budget{
		Area:    SRAMBit.Area * fb,
		Leakage: SRAMBit.Leakage * fb,
		Dynamic: SRAMBit.Energy * fb * activity,
	}
}

// CAM prices search-port bit cells with the given search activity.
func CAM(bits int, activity float64) Budget {
	fb := float64(bits)
	return Budget{
		Area:    CAMBit.Area * fb,
		Leakage: CAMBit.Leakage * fb,
		Dynamic: CAMBit.Energy * fb * activity,
	}
}

// EmbeddedField prices extra bits folded into an existing RAM array's rows:
// they share the row's decoders, wordline drivers and sense amps, so area
// and leakage run below standalone-array cost.
func EmbeddedField(bits int, activity float64) Budget {
	b := RAM(bits, activity)
	b.Area *= 0.6
	b.Leakage *= 0.6
	return b
}

// Flops prices pipeline/state registers.
func Flops(n int, activity float64) Budget {
	fn := float64(n)
	return Budget{
		Area:    FlipFlop.Area * fn,
		Leakage: FlipFlop.Leakage * fn,
		Dynamic: FlipFlop.Energy * fn * activity,
	}
}
