package power

import (
	"testing"

	"tvsched/internal/circuit"
	"tvsched/internal/netlist"
)

func TestCellsPositive(t *testing.T) {
	for g := circuit.And; g < circuit.NumGateTypes; g++ {
		c := CellFor(g)
		if c.Area <= 0 || c.Leakage <= 0 || c.Energy <= 0 {
			t.Errorf("cell %v has non-positive characteristics: %+v", g, c)
		}
	}
	for _, c := range []Cell{SRAMBit, CAMBit, FlipFlop} {
		if c.Area <= 0 || c.Leakage <= 0 || c.Energy <= 0 {
			t.Errorf("storage cell %+v invalid", c)
		}
	}
}

func TestBudgetArithmetic(t *testing.T) {
	a := Budget{Area: 1, Leakage: 2, Dynamic: 3}
	b := Budget{Area: 10, Leakage: 20, Dynamic: 30}
	a.Add(b)
	if a != (Budget{Area: 11, Leakage: 22, Dynamic: 33}) {
		t.Fatalf("Add: %+v", a)
	}
	if s := a.Scale(2); s != (Budget{Area: 22, Leakage: 44, Dynamic: 66}) {
		t.Fatalf("Scale: %+v", s)
	}
}

func TestActivityOnlyAffectsDynamic(t *testing.T) {
	idle := Gates(circuit.And, 100, 0)
	busy := Gates(circuit.And, 100, 1)
	if idle.Area != busy.Area || idle.Leakage != busy.Leakage {
		t.Fatal("activity changed area/leakage")
	}
	if idle.Dynamic != 0 || busy.Dynamic <= 0 {
		t.Fatal("dynamic energy wrong")
	}
}

func TestEmbeddedFieldCheaper(t *testing.T) {
	std := RAM(128, 0.1)
	emb := EmbeddedField(128, 0.1)
	if emb.Area >= std.Area || emb.Leakage >= std.Leakage {
		t.Fatal("embedded field must be cheaper than standalone array")
	}
	if emb.Dynamic != std.Dynamic {
		t.Fatal("embedded field dynamic should match (same bit toggles)")
	}
}

func TestNetlistBudgetMatchesCounts(t *testing.T) {
	nl := netlist.FwdCheck()
	b := NetlistBudget(nl, 0.5)
	if b.Area <= 0 {
		t.Fatal("empty budget for a real netlist")
	}
	// Area must equal the sum over types.
	var want float64
	counts := nl.CountByType()
	for g := circuit.And; g < circuit.NumGateTypes; g++ {
		want += CellFor(g).Area * float64(counts[g])
	}
	if b.Area != want {
		t.Fatalf("area %v != %v", b.Area, want)
	}
}

func TestSchedulerShareBands(t *testing.T) {
	// §S3: the scheduler is 3.9% of core area, 8.9% of dynamic power and
	// 1.2% of leakage. The structural model must land in those bands.
	area, dyn, leak := SchedulerShare()
	if area < 2 || area > 6 {
		t.Errorf("scheduler area share %.1f%% outside band around 3.9%%", area)
	}
	if dyn < 6 || dyn > 14 {
		t.Errorf("scheduler dynamic share %.1f%% outside band around 8.9%%", dyn)
	}
	if leak < 0.6 || leak > 3 {
		t.Errorf("scheduler leakage share %.1f%% outside band around 1.2%%", leak)
	}
}

func TestTable2Shape(t *testing.T) {
	abs := ComputeOverheads(ABSDelta())
	ffs := ComputeOverheads(FFSDelta())
	cds := ComputeOverheads(CDSDelta())

	if abs != ffs {
		t.Error("ABS and FFS share the same fundamental logic (Table 2)")
	}
	// ABS scheduler-level overheads are sub-1.5% everywhere.
	for _, v := range []float64{abs.SchedArea, abs.SchedDynamic, abs.SchedLeakage} {
		if v <= 0 || v > 1.5 {
			t.Errorf("ABS scheduler overhead %v%% out of band", v)
		}
	}
	// CDS costs several times ABS in area/leakage (the CDL), but its
	// clock-gated dynamic overhead stays low.
	if cds.SchedArea < 4*abs.SchedArea {
		t.Errorf("CDS area %v%% not well above ABS %v%%", cds.SchedArea, abs.SchedArea)
	}
	if cds.SchedArea < 4 || cds.SchedArea > 10 {
		t.Errorf("CDS scheduler area %v%% outside band around 6.35%%", cds.SchedArea)
	}
	if cds.SchedDynamic > 3 {
		t.Errorf("CDS dynamic %v%% too high (paper: 1.56%%)", cds.SchedDynamic)
	}
	// Core level: everything well below 1% (the paper's headline).
	for _, v := range []float64{cds.CoreArea, cds.CoreDynamic, cds.CoreLeakage,
		abs.CoreArea, abs.CoreDynamic, abs.CoreLeakage} {
		if v <= 0 || v >= 1 {
			t.Errorf("core-level overhead %v%% not sub-1%%", v)
		}
	}
}

func TestCoreDominatesScheduler(t *testing.T) {
	sched := BaselineScheduler()
	core := Core()
	if core.Area < 10*sched.Area {
		t.Fatal("core must dwarf the scheduler")
	}
}
