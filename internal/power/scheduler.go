package power

import (
	"tvsched/internal/circuit"
	"tvsched/internal/netlist"
)

// This file builds the structural inventories behind Table 2: the baseline
// (Error Padding) scheduler of the Core-1 issue stage, the logic each
// violation-aware scheme adds, and the whole core the scheduler sits in.
// All Table 2 percentages are computed from these inventories and the cell
// model — nothing is transcribed from the paper.

// BaselineScheduler prices the EP-baseline issue stage: the wakeup CAM (two
// source tags per entry, searched by W result buses plus the memory
// dependence port), the payload RAM, the operand-ready/timestamp state, the
// per-lane select trees (priced from the actual IQSelect netlist) and the
// age-ordering and allocation control. The baseline already contains the
// 6-bit modulo-64 timestamps because fault-free and EP machines use
// age-based selection (§4.2).
func BaselineScheduler() Budget {
	var b Budget
	const entries = 32
	// Wakeup CAM: 2 source tags x 7 bits, searched by 4 result buses.
	b.Add(CAM(entries*2*7*4, 0.7))
	// Memory-dependence search port (store-set style).
	b.Add(CAM(entries*2*8, 0.4))
	// Payload RAM: opcode, dest tag, immediate, PC fragment, branch mask.
	b.Add(RAM(entries*160, 0.25))
	// Destination tag RAM driving the broadcast buses.
	b.Add(RAM(entries*7, 0.3))
	// Ready/valid/issued state plus the 6-bit timestamp per entry.
	b.Add(Flops(entries*(6+4), 0.2))
	// Select trees: one per execute lane (3 simple + 1 complex + 2 memory),
	// priced from the synthesized select netlist.
	sel := NetlistBudget(netlist.IQSelect(), 0.4)
	b.Add(sel.Scale(6))
	// Age comparison matrix for the ABS priority (31 six-bit comparators).
	b.Add(Gates(circuit.Xor, 31*6, 0.3))
	b.Add(Gates(circuit.And, 31*8, 0.3))
	// Allocation freelist and dispatch write drivers.
	b.Add(Gates(circuit.And, 400, 0.2))
	b.Add(Flops(entries*4, 0.25))
	// Issue-stage control.
	b.Add(Gates(circuit.Nand, 800, 0.2))
	// Broadcast bus drivers and wakeup precharge.
	b.Add(Gates(circuit.Buf, 1200, 0.6))
	b.Add(Gates(circuit.Nor, 800, 0.8))
	// Dispatch-time ready-check CAM port.
	b.Add(CAM(32*2*7, 0.3))
	return b
}

// ABSDelta prices what ABS and FFS add over the EP baseline (§3.2, §3.5.1):
// the 4-bit fault-prediction/stage field per issue-queue entry, the
// Functional Unit State Register, the issue-slot freeze control and the
// completion-countdown increment for delayed tag broadcast. FFS's
// faulty-first grant line reuses the same state, so the two schemes price
// identically (Table 2 lists them with identical overheads).
func ABSDelta() Budget {
	var b Budget
	const entries = 32
	// 4-bit fault field per entry, folded into the payload array (§3.2.1).
	b.Add(EmbeddedField(entries*4, 0.35))
	// FUSR: one state bit per lane (6 lanes) plus update logic, exercised
	// every cycle (§3.3.3).
	b.Add(Flops(6, 0.5))
	b.Add(Gates(circuit.And, 18, 0.4))
	// Issue-slot freeze tracking (§3.2.3).
	b.Add(Gates(circuit.And, 12, 0.1))
	b.Add(Flops(6, 0.1))
	// Completion-countdown +1 for faulty instructions (§3.2.2).
	b.Add(Gates(circuit.And, 10, 0.1))
	return b
}

// FFSDelta equals ABSDelta (same fundamental logic, §S3).
func FFSDelta() Budget { return ABSDelta() }

// CDSDelta prices CDS: everything ABS adds, plus the Criticality Detection
// Logic of §3.5.2 (Figure 3) — a tag-match counter per broadcast bus (a
// 32-input population-count tree), the encoder and criticality-threshold
// comparator, and the per-entry criticality bit. The CDL is clock-gated and
// evaluates only for broadcasts of TEP-resident instructions, so its dynamic
// contribution is far below its area contribution (Table 2's 6.35% area vs
// 1.56% dynamic pattern).
func CDSDelta() Budget {
	b := ABSDelta()
	const entries = 32
	// Population-count tree per result bus: 31 full adders (5 gates each).
	perBus := Budget{}
	perBus.Add(Gates(circuit.Xor, 31*2, 0.05))
	perBus.Add(Gates(circuit.And, 31*2, 0.05))
	perBus.Add(Gates(circuit.Or, 31, 0.05))
	b.Add(perBus.Scale(4))
	// Encoder + CT comparator (§3.5.2).
	b.Add(Gates(circuit.And, 40, 0.05))
	// Criticality bit per entry and the TEP write path.
	b.Add(EmbeddedField(entries*1, 0.05))
	b.Add(Gates(circuit.Buf, 32, 0.05))
	return b
}

// Core prices the whole Core-1 microprocessor the scheduler sits in: the L1
// caches, the branch predictor, rename/ROB/PRF/LSQ storage, the functional
// units (priced from the synthesized netlists) and the front-end logic. The
// paper reports the scheduler at 3.9% of core area, 8.9% of core dynamic
// power and 1.2% of core leakage (§S3); this inventory reproduces those
// shares structurally.
func Core() Budget {
	var b Budget
	// Split 32KB L1 caches with tags (bit activity is low: one line of
	// hundreds toggles per access).
	b.Add(RAM(2*(32<<10)*8+2*4096, 0.012))
	// Branch predictor: 4K 2-bit PHT + 1K-entry BTB (~40b each) + RAS.
	b.Add(RAM(4096*2+1024*40+16*32, 0.05))
	// Rename map (32 x 7, 8 ports as flops) and freelist.
	b.Add(Flops(32*7*2, 0.2))
	// ROB: 128 entries x ~100 bits.
	b.Add(RAM(128*100, 0.12))
	// Physical register file: 96 x 64 bits, multi-ported (area factor on
	// bit cells folded into a 3x bit multiplier).
	b.Add(RAM(96*64*3, 0.15))
	// LSQ: 40 entries x 32-bit address CAM + payload.
	b.Add(CAM(40*32, 0.35))
	b.Add(RAM(40*80, 0.15))
	// Functional units from the synthesized netlists: 3 simple ALUs, one
	// complex unit (~4 ALU-equivalents), 2 AGENs, the forward-check logic.
	alu := NetlistBudget(netlist.ALU32(), 0.3)
	b.Add(alu.Scale(3))
	b.Add(alu.Scale(4)) // complex unit
	agen := NetlistBudget(netlist.AGEN(), 0.3)
	b.Add(agen.Scale(2))
	b.Add(NetlistBudget(netlist.FwdCheck(), 0.4))
	// Fetch/decode/steering random logic.
	b.Add(Gates(circuit.Nand, 9000, 0.25))
	// Clock distribution: the biggest single dynamic consumer in a 45nm
	// core; always toggling.
	b.Add(Gates(circuit.Buf, 42000, 1.0))
	// The scheduler itself.
	b.Add(BaselineScheduler())
	return b
}

// Overheads computes Table 2's six percentages for one scheme delta.
type Overheads struct {
	SchedArea, SchedDynamic, SchedLeakage float64 // % of baseline scheduler
	CoreArea, CoreDynamic, CoreLeakage    float64 // % of whole core
}

// ComputeOverheads derives the scheduler- and core-level overhead
// percentages of one VTE delta.
func ComputeOverheads(delta Budget) Overheads {
	sched := BaselineScheduler()
	core := Core()
	pct := func(d, base float64) float64 { return 100 * d / base }
	return Overheads{
		SchedArea:    pct(delta.Area, sched.Area),
		SchedDynamic: pct(delta.Dynamic, sched.Dynamic),
		SchedLeakage: pct(delta.Leakage, sched.Leakage),
		CoreArea:     pct(delta.Area, core.Area),
		CoreDynamic:  pct(delta.Dynamic, core.Dynamic),
		CoreLeakage:  pct(delta.Leakage, core.Leakage),
	}
}

// SchedulerShare reports the scheduler's share of core area, dynamic power
// and leakage (the paper's 3.9% / 8.9% / 1.2%, §S3).
func SchedulerShare() (area, dynamic, leakage float64) {
	sched := BaselineScheduler()
	core := Core()
	return 100 * sched.Area / core.Area,
		100 * sched.Dynamic / core.Dynamic,
		100 * sched.Leakage / core.Leakage
}
