package netlist

import "tvsched/internal/circuit"

// ALU32 input layout: a[0..31], b[0..31], op[0..2], sub.
// op selects the result: 0 add/sub, 1 and, 2 or, 3 xor, 4 shift-left,
// 5 shift-right-logical, 6 shift-right-arithmetic, 7 set-less-than.
// Shift amount is b[0..4]. Outputs: result[0..31], zero, negative, carry.
const (
	ALUInputs = 32 + 32 + 3 + 1

	ALUOpAdd = 0
	ALUOpAnd = 1
	ALUOpOr  = 2
	ALUOpXor = 3
	ALUOpSll = 4
	ALUOpSrl = 5
	ALUOpSra = 6
	ALUOpSlt = 7
)

// ALU32 builds the 32-bit simple ALU of §S1.2.2 — the component with the
// highest logic depth in Table 3. It contains a CLA adder/subtractor, a
// logic unit, a 5-stage barrel shifter (left, logical right, arithmetic
// right), set-less-than, and condition flags, merged by a result mux tree.
func ALU32() *circuit.Netlist {
	b := circuit.NewBuilder("alu32", ALUInputs)
	a := make([]int, 32)
	x := make([]int, 32)
	for i := 0; i < 32; i++ {
		a[i] = b.Input(i)
		x[i] = b.Input(32 + i)
	}
	op := []int{b.Input(64), b.Input(65), b.Input(66)}
	sub := b.Input(67)

	// Adder/subtractor: b xor sub, carry-in sub.
	xb := make([]int, 32)
	for i := 0; i < 32; i++ {
		xb[i] = b.Xor2(x[i], sub)
	}
	sum, cout := claAdder(b, a, xb, sub)

	// Logic unit.
	andv := make([]int, 32)
	orv := make([]int, 32)
	xorv := make([]int, 32)
	for i := 0; i < 32; i++ {
		andv[i] = b.And2(a[i], x[i])
		orv[i] = b.Or2(a[i], x[i])
		xorv[i] = b.Xor2(a[i], x[i])
	}

	// Barrel shifter: 5 mux stages, direction/arithmetic control from op.
	// right = op5 or op6; arith = op6. Decode op bits first.
	notOp0 := b.Not(op[0])
	notOp1 := b.Not(op[1])
	notOp2 := b.Not(op[2])
	dec := func(v int) int { // 3-bit decode of op == v
		t0, t1, t2 := notOp0, notOp1, notOp2
		if v&1 != 0 {
			t0 = op[0]
		}
		if v&2 != 0 {
			t1 = op[1]
		}
		if v&4 != 0 {
			t2 = op[2]
		}
		return b.ReduceAnd([]int{t0, t1, t2})
	}
	isSll := dec(ALUOpSll)
	isSrl := dec(ALUOpSrl)
	isSra := dec(ALUOpSra)
	isSlt := dec(ALUOpSlt)
	isAnd := dec(ALUOpAnd)
	isOr := dec(ALUOpOr)
	isXor := dec(ALUOpXor)
	right := b.Or2(isSrl, isSra)
	arithFill := b.And2(isSra, a[31]) // fill bit for arithmetic right shift
	zero := b.Xor2(a[0], a[0])        // constant 0

	shifted := make([]int, 32)
	copy(shifted, a)
	for s := 0; s < 5; s++ {
		amt := 1 << s
		en := x[s] // shift amount bit
		next := make([]int, 32)
		for i := 0; i < 32; i++ {
			// Left-shift source: i-amt; right-shift source: i+amt.
			var fromL, fromR int
			if i-amt >= 0 {
				fromL = shifted[i-amt]
			} else {
				fromL = zero
			}
			if i+amt < 32 {
				fromR = shifted[i+amt]
			} else {
				fromR = arithFill
			}
			moved := b.Mux(right, fromL, fromR)
			next[i] = b.Mux(en, shifted[i], moved)
		}
		shifted = next
	}

	// Set-less-than: sign of (a - b); the adder already computes a+~b+1 when
	// sub is asserted, so reuse its sign with overflow correction.
	overflow := b.ReduceOr([]int{
		b.ReduceAnd([]int{a[31], xb[31], b.Not(sum[31])}),
		b.ReduceAnd([]int{b.Not(a[31]), b.Not(xb[31]), sum[31]}),
	})
	lt := b.Xor2(sum[31], overflow)

	// Result mux per bit.
	result := make([]int, 32)
	isShift := b.ReduceOr([]int{isSll, isSrl, isSra})
	for i := 0; i < 32; i++ {
		logic1 := b.Mux(isOr, andv[i], orv[i])
		logic := b.Mux(isXor, logic1, xorv[i])
		useLogic := b.ReduceOr([]int{isAnd, isOr, isXor})
		arith := b.Mux(useLogic, sum[i], logic)
		sh := b.Mux(isShift, arith, shifted[i])
		if i == 0 {
			sh = b.Mux(isSlt, sh, lt)
		} else {
			sh = b.Mux(isSlt, sh, zero)
		}
		result[i] = sh
		b.Output(result[i])
	}

	// Flags.
	nz := b.ReduceOr(result)
	b.Output(b.Not(nz)) // zero flag
	b.Output(result[31])
	b.Output(cout)
	return b.MustBuild()
}

// IQSelectInputs is the input layout of the issue-queue select logic:
// request[0..31] (one per issue-queue entry).
const (
	IQEntries      = 32
	IQGrants       = 4
	IQSelectInputs = IQEntries
)

// IQSelect builds the instruction selection logic of §S1.2.2: given a
// request vector from the 32 issue-queue entries, it grants up to four
// (the paper's W=4) in priority order. The implementation ripples a unary
// 4-token window through the entries two at a time, keeping the critical
// path near one logic level per entry — the structure behind Table 3's
// narrow-but-deep select unit.
func IQSelect() *circuit.Netlist {
	b := circuit.NewBuilder("iqselect", IQSelectInputs)
	req := make([]int, IQEntries)
	for i := range req {
		req[i] = b.Input(i)
	}
	zero := b.Xor2(req[0], req[0])

	// tokens[k] == true means more than k grants remain available.
	tokens := make([]int, IQGrants+2)
	one := b.Not(zero)
	for k := 0; k < IQGrants; k++ {
		tokens[k] = one
	}
	tokens[IQGrants] = zero
	tokens[IQGrants+1] = zero

	grants := make([]int, IQEntries)
	for i := 0; i < IQEntries; i += 2 {
		g0 := b.And2(req[i], tokens[0])
		// Token state seen by the second entry of the pair. Because the
		// token window is a monotone unary mask, shifting it by the number
		// of *requests* (not grants) is exact: once the window is empty,
		// further shifts are no-ops.
		t0After := b.Mux(req[i], tokens[0], tokens[1])
		g1 := b.And2(req[i+1], t0After)
		grants[i] = g0
		grants[i+1] = g1
		mid := make([]int, IQGrants+2)
		for k := 0; k <= IQGrants; k++ {
			mid[k] = b.Mux(req[i], tokens[k], tokens[k+1])
		}
		mid[IQGrants+1] = zero
		next := make([]int, IQGrants+2)
		for k := 0; k < IQGrants; k++ {
			next[k] = b.Mux(req[i+1], mid[k], mid[k+1])
		}
		next[IQGrants] = zero
		next[IQGrants+1] = zero
		tokens = next
	}
	for _, g := range grants {
		b.Output(g)
	}
	// "Any grant" summary line for the pipeline control.
	b.Output(b.ReduceOr(grants))
	return b.MustBuild()
}

// AGENInputs is the input layout of the address generation unit: base[0..31]
// then offset[0..15] (sign-extended internally).
const AGENInputs = 32 + 16

// AGEN builds the effective-address computation of §S1.2.2: a 32-bit
// base-plus-sign-extended-offset adder built from rippled 2-bit CLA groups,
// a parallel end-address (+8) adder, and misalignment / cache-line-crossing
// detection — the checks a load-store unit performs alongside the add. Its
// many dynamic instances per static PC differ by a small stride, which is
// why the paper finds high sensitized-path commonality here.
func AGEN() *circuit.Netlist {
	b := circuit.NewBuilder("agen", AGENInputs)
	base := make([]int, 32)
	for i := range base {
		base[i] = b.Input(i)
	}
	off := make([]int, 32)
	for i := 0; i < 16; i++ {
		off[i] = b.Input(32 + i)
	}
	signBit := off[15]
	for i := 16; i < 32; i++ {
		off[i] = b.Gate(circuit.Buf, signBit)
	}
	zero := b.Xor2(base[0], base[0])
	one := b.Not(zero)

	// Effective address in rippled 2-bit CLA groups (depth ~2.5/group).
	var sum []int
	c := zero
	for i := 0; i < 32; i += 2 {
		var s []int
		s, c = claGroup(b, base[i:i+2], off[i:i+2], c)
		sum = append(sum, s...)
	}
	cout := c
	for _, s := range sum {
		b.Output(s)
	}
	b.Output(cout)

	// End address for the widest access (sum + 8), computed by a parallel
	// incrementer over bits 3.. (the low bits are unchanged by +8).
	end := make([]int, 32)
	copy(end, sum[:3])
	carry := one
	for i := 3; i < 32; i++ {
		end[i] = b.Xor2(sum[i], carry)
		carry = b.And2(sum[i], carry)
	}
	// Cache-line crossing: line index (bits 6..) of end differs from sum's.
	var diff []int
	for i := 6; i < 32; i++ {
		diff = append(diff, b.Xor2(sum[i], end[i]))
	}
	b.Output(b.ReduceOr(diff))

	// Misalignment checks for halfword/word/doubleword accesses.
	b.Output(sum[0])
	b.Output(b.Or2(sum[0], sum[1]))
	b.Output(b.ReduceOr([]int{sum[0], sum[1], sum[2]}))
	return b.MustBuild()
}

// Forward-check geometry: W results broadcast to the bypass network, each
// consumer instruction has two source tags; tags are physical register
// numbers (7 bits for the 96-entry PRF).
const (
	FwdResults     = 4
	FwdSources     = 8 // 4 consumers x 2 source operands
	FwdTagBits     = 7
	FwdCheckInputs = FwdResults*FwdTagBits + FwdResults + FwdSources*FwdTagBits
)

// FwdCheck builds the forward-check logic of §S1.2.2: it compares each of
// the W results' destination tags against every consumer source tag and
// raises the bypass-latch enables. Wide but shallow — the smallest logic
// depth in Table 3.
func FwdCheck() *circuit.Netlist {
	b := circuit.NewBuilder("fwdcheck", FwdCheckInputs)
	resTag := make([][]int, FwdResults)
	resValid := make([]int, FwdResults)
	idx := 0
	for r := 0; r < FwdResults; r++ {
		resTag[r] = make([]int, FwdTagBits)
		for k := 0; k < FwdTagBits; k++ {
			resTag[r][k] = b.Input(idx)
			idx++
		}
	}
	for r := 0; r < FwdResults; r++ {
		resValid[r] = b.Input(idx)
		idx++
	}
	srcTag := make([][]int, FwdSources)
	for s := 0; s < FwdSources; s++ {
		srcTag[s] = make([]int, FwdTagBits)
		for k := 0; k < FwdTagBits; k++ {
			srcTag[s][k] = b.Input(idx)
			idx++
		}
	}

	for s := 0; s < FwdSources; s++ {
		var matches []int
		for r := 0; r < FwdResults; r++ {
			bits := make([]int, FwdTagBits)
			for k := 0; k < FwdTagBits; k++ {
				bits[k] = b.Gate(circuit.Xnor, srcTag[s][k], resTag[r][k])
			}
			eq := b.ReduceAnd(bits)
			m := b.And2(eq, resValid[r])
			matches = append(matches, m)
			b.Output(m) // per (source, result) bypass-latch enable
		}
		b.Output(b.ReduceOr(matches)) // source forwards from somewhere
	}
	return b.MustBuild()
}

// Components returns the four studied netlists in Table 3 order.
func Components() []*circuit.Netlist {
	return []*circuit.Netlist{IQSelect(), ALU32(), AGEN(), FwdCheck()}
}
