// Package netlist builds gate-level implementations of the four processor
// components the paper synthesizes for its sensitized-path study (§S1.2.2,
// Table 3): the 32-bit simple ALU, the issue-queue select logic, the address
// generation unit (AGEN) and the forward-check logic of the bypass network.
// Structural metrics (gate count, logic depth) are computed from the built
// netlists, not transcribed from the paper; exact counts depend on cell
// mapping, but the components preserve Table 3's ordering — the ALU is by
// far the largest and deepest, the forward check the shallowest.
package netlist

import "tvsched/internal/circuit"

// fullAdder builds sum and carry-out for one bit.
func fullAdder(b *circuit.Builder, a, x, cin int) (sum, cout int) {
	p := b.Xor2(a, x)
	sum = b.Xor2(p, cin)
	g := b.And2(a, x)
	pc := b.And2(p, cin)
	cout = b.Or2(g, pc)
	return sum, cout
}

// rippleAdder builds an n-bit adder from chained full adders. Depth grows
// ~2 gates per bit; used where the paper's depth suggests a compact
// ripple-style mapping (AGEN).
func rippleAdder(b *circuit.Builder, a, x []int, cin int) (sum []int, cout int) {
	if len(a) != len(x) {
		panic("netlist: operand width mismatch")
	}
	c := cin
	sum = make([]int, len(a))
	for i := range a {
		sum[i], c = fullAdder(b, a[i], x[i], c)
	}
	return sum, c
}

// claGroup builds a 4-bit carry-lookahead group: sums plus a group carry-out
// computed in two logic levels from the group's propagate/generate terms.
func claGroup(b *circuit.Builder, a, x []int, cin int) (sum []int, cout int) {
	n := len(a)
	p := make([]int, n)
	g := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = b.Xor2(a[i], x[i])
		g[i] = b.And2(a[i], x[i])
	}
	// Carries into each bit.
	c := make([]int, n+1)
	c[0] = cin
	for i := 1; i <= n; i++ {
		// c[i] = g[i-1] | p[i-1]g[i-2] | ... | p[i-1..0]cin
		terms := []int{g[i-1]}
		for j := i - 2; j >= 0; j-- {
			t := g[j]
			for k := j + 1; k < i; k++ {
				t = b.And2(t, p[k])
			}
			terms = append(terms, t)
		}
		t := cin
		for k := 0; k < i; k++ {
			t = b.And2(t, p[k])
		}
		terms = append(terms, t)
		c[i] = b.ReduceOr(terms)
	}
	sum = make([]int, n)
	for i := 0; i < n; i++ {
		sum[i] = b.Xor2(p[i], c[i])
	}
	return sum, c[n]
}

// claAdder builds an n-bit adder from rippled 4-bit CLA groups.
func claAdder(b *circuit.Builder, a, x []int, cin int) (sum []int, cout int) {
	if len(a) != len(x) {
		panic("netlist: operand width mismatch")
	}
	sum = make([]int, 0, len(a))
	c := cin
	for i := 0; i < len(a); i += 4 {
		end := i + 4
		if end > len(a) {
			end = len(a)
		}
		var s []int
		s, c = claGroup(b, a[i:end], x[i:end], c)
		sum = append(sum, s...)
	}
	return sum, c
}
