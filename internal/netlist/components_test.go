package netlist

import (
	"testing"
	"testing/quick"

	"tvsched/internal/circuit"
	"tvsched/internal/rng"
)

// aluEval runs the ALU netlist on 32-bit operands.
func aluEval(t *testing.T, nl *circuit.Netlist, st circuit.State, a, x uint32, op int, sub bool) (uint32, bool, bool, bool) {
	t.Helper()
	in := make([]bool, ALUInputs)
	for i := 0; i < 32; i++ {
		in[i] = a&(1<<i) != 0
		in[32+i] = x&(1<<i) != 0
	}
	for k := 0; k < 3; k++ {
		in[64+k] = op&(1<<k) != 0
	}
	in[67] = sub
	nl.Eval(in, st)
	out := nl.OutputValues(st)
	var res uint32
	for i := 0; i < 32; i++ {
		if out[i] {
			res |= 1 << i
		}
	}
	return res, out[32], out[33], out[34] // result, zero, neg, carry
}

func aluRef(a, x uint32, op int, sub bool) uint32 {
	switch op {
	case ALUOpAdd:
		if sub {
			return a - x
		}
		return a + x
	case ALUOpAnd:
		return a & x
	case ALUOpOr:
		return a | x
	case ALUOpXor:
		return a ^ x
	case ALUOpSll:
		return a << (x & 31)
	case ALUOpSrl:
		return a >> (x & 31)
	case ALUOpSra:
		return uint32(int32(a) >> (x & 31))
	case ALUOpSlt:
		if int32(a) < int32(x) {
			return 1
		}
		return 0
	}
	return 0
}

func TestALU32AgainstReference(t *testing.T) {
	nl := ALU32()
	st := nl.NewState()
	src := rng.New(1)
	for trial := 0; trial < 3000; trial++ {
		a := uint32(src.Uint64())
		x := uint32(src.Uint64())
		op := src.Intn(8)
		sub := op == ALUOpSlt || (op == ALUOpAdd && src.Bool(0.5))
		got, zero, neg, _ := aluEval(t, nl, st, a, x, op, sub)
		want := aluRef(a, x, op, sub)
		if got != want {
			t.Fatalf("alu op=%d sub=%v a=%#x b=%#x: got %#x want %#x", op, sub, a, x, got, want)
		}
		if zero != (want == 0) {
			t.Fatalf("zero flag wrong for %#x", want)
		}
		if neg != (want&0x8000_0000 != 0) {
			t.Fatalf("neg flag wrong for %#x", want)
		}
	}
}

func TestALUCarry(t *testing.T) {
	nl := ALU32()
	st := nl.NewState()
	_, _, _, carry := aluEval(t, nl, st, 0xffffffff, 1, ALUOpAdd, false)
	if !carry {
		t.Fatal("carry not set on overflowing add")
	}
	_, _, _, carry = aluEval(t, nl, st, 1, 1, ALUOpAdd, false)
	if carry {
		t.Fatal("carry set on small add")
	}
}

func TestIQSelectGrantsFirstFour(t *testing.T) {
	nl := IQSelect()
	st := nl.NewState()
	eval := func(req uint32) (uint32, bool) {
		in := make([]bool, IQSelectInputs)
		for i := 0; i < IQEntries; i++ {
			in[i] = req&(1<<i) != 0
		}
		nl.Eval(in, st)
		out := nl.OutputValues(st)
		var g uint32
		for i := 0; i < IQEntries; i++ {
			if out[i] {
				g |= 1 << i
			}
		}
		return g, out[IQEntries]
	}
	ref := func(req uint32) uint32 {
		var g uint32
		granted := 0
		for i := 0; i < 32 && granted < IQGrants; i++ {
			if req&(1<<i) != 0 {
				g |= 1 << i
				granted++
			}
		}
		return g
	}
	cases := []uint32{0, 1, 0x80000000, 0xffffffff, 0xf, 0xf0, 0x11111111, 0x80000001, 0xaaaa5555}
	src := rng.New(2)
	for i := 0; i < 2000; i++ {
		cases = append(cases, src.Uint32())
	}
	for _, req := range cases {
		got, any := eval(req)
		want := ref(req)
		if got != want {
			t.Fatalf("select(%#x) = %#x, want %#x", req, got, want)
		}
		if any != (want != 0) {
			t.Fatalf("any-grant wrong for %#x", req)
		}
	}
}

func TestIQSelectNeverOverGrants(t *testing.T) {
	nl := IQSelect()
	st := nl.NewState()
	f := func(req uint32) bool {
		in := make([]bool, IQSelectInputs)
		for i := 0; i < IQEntries; i++ {
			in[i] = req&(1<<i) != 0
		}
		nl.Eval(in, st)
		out := nl.OutputValues(st)
		n := 0
		for i := 0; i < IQEntries; i++ {
			if out[i] {
				if req&(1<<i) == 0 {
					return false // granted a non-requester
				}
				n++
			}
		}
		return n <= IQGrants
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAGEN(t *testing.T) {
	nl := AGEN()
	st := nl.NewState()
	eval := func(base uint32, off int16) uint32 {
		in := make([]bool, AGENInputs)
		for i := 0; i < 32; i++ {
			in[i] = base&(1<<i) != 0
		}
		for i := 0; i < 16; i++ {
			in[32+i] = uint16(off)&(1<<i) != 0
		}
		nl.Eval(in, st)
		out := nl.OutputValues(st)
		var r uint32
		for i := 0; i < 32; i++ {
			if out[i] {
				r |= 1 << i
			}
		}
		return r
	}
	src := rng.New(3)
	for i := 0; i < 3000; i++ {
		base := uint32(src.Uint64())
		off := int16(src.Uint64())
		if got, want := eval(base, off), base+uint32(int32(off)); got != want {
			t.Fatalf("agen(%#x, %d) = %#x, want %#x", base, off, got, want)
		}
	}
}

func TestFwdCheck(t *testing.T) {
	nl := FwdCheck()
	st := nl.NewState()
	src := rng.New(4)
	for trial := 0; trial < 1000; trial++ {
		var resTags [FwdResults]int
		var valid [FwdResults]bool
		var srcTags [FwdSources]int
		in := make([]bool, FwdCheckInputs)
		idx := 0
		for r := 0; r < FwdResults; r++ {
			resTags[r] = src.Intn(96)
			for k := 0; k < FwdTagBits; k++ {
				in[idx] = resTags[r]&(1<<k) != 0
				idx++
			}
		}
		for r := 0; r < FwdResults; r++ {
			valid[r] = src.Bool(0.7)
			in[idx] = valid[r]
			idx++
		}
		for s := 0; s < FwdSources; s++ {
			if src.Bool(0.4) {
				srcTags[s] = resTags[src.Intn(FwdResults)] // force some matches
			} else {
				srcTags[s] = src.Intn(96)
			}
			for k := 0; k < FwdTagBits; k++ {
				in[idx] = srcTags[s]&(1<<k) != 0
				idx++
			}
		}
		nl.Eval(in, st)
		out := nl.OutputValues(st)
		o := 0
		for s := 0; s < FwdSources; s++ {
			anyWant := false
			for r := 0; r < FwdResults; r++ {
				want := valid[r] && srcTags[s] == resTags[r]
				if out[o] != want {
					t.Fatalf("match(s=%d,r=%d) = %v, want %v", s, r, out[o], want)
				}
				anyWant = anyWant || want
				o++
			}
			if out[o] != anyWant {
				t.Fatalf("any-match(s=%d) = %v, want %v", s, out[o], anyWant)
			}
			o++
		}
	}
}

func TestTable3Ordering(t *testing.T) {
	// Table 3's structural shape: the ALU has the most gates and greatest
	// depth; the forward check is the shallowest; the select unit is deep
	// relative to its size.
	sel, alu, agen, fwd := IQSelect(), ALU32(), AGEN(), FwdCheck()
	if alu.NumGates() <= agen.NumGates() || alu.NumGates() <= fwd.NumGates() || alu.NumGates() <= sel.NumGates() {
		t.Fatalf("ALU must be largest: alu=%d sel=%d agen=%d fwd=%d",
			alu.NumGates(), sel.NumGates(), agen.NumGates(), fwd.NumGates())
	}
	if d := fwd.LogicDepth(); d >= sel.LogicDepth() || d >= agen.LogicDepth() || d >= alu.LogicDepth() {
		t.Fatalf("forward check must be shallowest (depth %d)", d)
	}
	if alu.LogicDepth() <= sel.LogicDepth() {
		t.Fatalf("ALU depth %d must exceed select depth %d", alu.LogicDepth(), sel.LogicDepth())
	}
}

func TestComponentsValidate(t *testing.T) {
	for _, nl := range Components() {
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: %v", nl.Name, err)
		}
		if nl.NumGates() == 0 || nl.LogicDepth() == 0 {
			t.Errorf("%s: degenerate netlist", nl.Name)
		}
	}
}

func BenchmarkALUEval(b *testing.B) {
	nl := ALU32()
	st := nl.NewState()
	in := make([]bool, ALUInputs)
	for i := 0; i < b.N; i++ {
		in[0] = !in[0]
		nl.Eval(in, st)
	}
}

func TestMul32AgainstReference(t *testing.T) {
	nl := Mul32()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	st := nl.NewState()
	src := rng.New(9)
	eval := func(a, x uint32) (uint32, bool) {
		in := make([]bool, Mul32Inputs)
		for i := 0; i < 32; i++ {
			in[i] = a&(1<<i) != 0
			in[32+i] = x&(1<<i) != 0
		}
		nl.Eval(in, st)
		out := nl.OutputValues(st)
		var r uint32
		for i := 0; i < 32; i++ {
			if out[i] {
				r |= 1 << i
			}
		}
		return r, out[32]
	}
	cases := [][2]uint32{{0, 0}, {1, 1}, {0xffffffff, 0xffffffff}, {3, 5}, {1 << 31, 2}}
	for i := 0; i < 1500; i++ {
		cases = append(cases, [2]uint32{uint32(src.Uint64()), uint32(src.Uint64())})
	}
	for _, c := range cases {
		got, zero := eval(c[0], c[1])
		want := c[0] * c[1]
		if got != want {
			t.Fatalf("mul(%#x, %#x) = %#x, want %#x", c[0], c[1], got, want)
		}
		if zero != (want == 0) {
			t.Fatalf("zero flag wrong for %#x", want)
		}
	}
}

func TestMul32IsBiggestAndDeep(t *testing.T) {
	mul := Mul32()
	alu := ALU32()
	if mul.NumGates() <= alu.NumGates() {
		t.Fatalf("multiplier (%d gates) should exceed the simple ALU (%d)",
			mul.NumGates(), alu.NumGates())
	}
	if mul.LogicDepth() <= alu.LogicDepth() {
		t.Fatalf("multiplier depth %d should exceed ALU depth %d — it is why the complex unit is multi-cycle",
			mul.LogicDepth(), alu.LogicDepth())
	}
}
