package netlist

import "tvsched/internal/circuit"

// Mul32Inputs is the input layout of the multiplier: a[0..31], b[0..31].
const Mul32Inputs = 64

// Mul32 builds a 32x32→32 array multiplier — the dominant block of the
// complex ALU. The partial-product array (1024 AND cells) feeds a
// carry-save reduction with a ripple final row, the classic dense/deep
// structure that makes multi-cycle complex-ALU pipelines necessary (§3.3.3)
// and gives the complex unit its timing criticality. The low 32 product
// bits are produced (architectural mul).
func Mul32() *circuit.Netlist {
	b := circuit.NewBuilder("mul32", Mul32Inputs)
	a := make([]int, 32)
	x := make([]int, 32)
	for i := 0; i < 32; i++ {
		a[i] = b.Input(i)
		x[i] = b.Input(32 + i)
	}
	zero := b.Xor2(a[0], a[0])

	// pp(i, j) = a[i] & b[j], contributing to product bit i+j. We only need
	// columns 0..31 for the architectural low half.
	pp := func(i, j int) int { return b.And2(a[i], x[j]) }

	// Row-by-row carry-save accumulation: sum holds the running low bits.
	sum := make([]int, 32)
	for k := 0; k < 32; k++ {
		sum[k] = pp(k, 0)
	}
	for j := 1; j < 32; j++ {
		carry := zero
		// Add the j-th shifted partial-product row into sum[j..31].
		for k := j; k < 32; k++ {
			p := pp(k-j, j)
			var s1, c1 int
			s1, c1 = fullAdder(b, sum[k], p, carry)
			sum[k] = s1
			carry = c1
		}
	}
	for _, s := range sum {
		b.Output(s)
	}
	// Zero flag over the low half.
	b.Output(b.Gate(circuit.Nor, sum...))
	return b.MustBuild()
}
