package campaign

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tvsched/internal/resil/chaos"
)

func testPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := NewPlan(Spec{
		Benchmarks: []string{"bzip2"},
		Schemes:    []string{"ABS", "FFS"},
		VDDs:       []float64{0.97},
		Seeds:      []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func lineFor(plan *Plan, i int) []byte {
	return []byte(fmt.Sprintf(`{"index":%d,"digest":%q}`, i, plan.Cell(i).Config.Digest()[:12]))
}

// frameOffsets scans the journal file with the wire framing and returns each
// intact frame's byte offset (the header frame included).
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(io.NewSectionReader(f, 0, size))
	var offs []int64
	var off int64
	for off < size {
		_, n, err := readFrame(r, size-off)
		if err != nil {
			break
		}
		offs = append(offs, off)
		off += n
	}
	return offs
}

func TestJournalAppendAndResume(t *testing.T) {
	plan := testPlan(t)
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(i, ClassRestored, lineFor(plan, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends are no-ops.
	if err := j.Append(2, ClassCold, []byte(`{"overwrite":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Truncated != 0 {
		t.Fatalf("clean journal reopened with %d truncated bytes", j2.Truncated)
	}
	if got := j2.DoneCount(); got != 4 {
		t.Fatalf("DoneCount = %d, want 4", got)
	}
	for i := 0; i < plan.Total(); i++ {
		class, line, ok, err := j2.ReadLine(i)
		if err != nil {
			t.Fatal(err)
		}
		if i < 4 {
			if !ok || class != ClassRestored || string(line) != string(lineFor(plan, i)) {
				t.Fatalf("cell %d: ok=%v class=%v line=%s", i, ok, class, line)
			}
		} else if ok {
			t.Fatalf("cell %d unexpectedly journaled", i)
		}
	}

	// LoadJournal rebuilds the plan from the embedded spec alone.
	j3, plan3, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if plan3.Hash() != plan.Hash() || j3.DoneCount() != 4 {
		t.Fatalf("LoadJournal: hash %s done %d", plan3.Hash(), j3.DoneCount())
	}
}

func TestJournalPlanMismatch(t *testing.T) {
	plan := testPlan(t)
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other, err := NewPlan(Spec{Benchmarks: []string{"sjeng"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, other); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("foreign plan opened the journal: %v", err)
	}
}

// TestJournalTearTail kills the last record mid-frame (a process killed
// mid-write) and proves open truncates back to the last intact frame: every
// earlier cell stays completed, the torn one reverts to pending, and the
// journal accepts its re-append.
func TestJournalTearTail(t *testing.T) {
	plan := testPlan(t)
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(i, ClassRestored, lineFor(plan, i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if err := chaos.TearTail(path, 3); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Truncated == 0 {
		t.Fatal("torn tail not detected")
	}
	if got := j2.DoneCount(); got != 3 {
		t.Fatalf("DoneCount after tear = %d, want 3", got)
	}
	if j2.Done(3) {
		t.Fatal("torn cell still reads as completed")
	}
	for i := 0; i < 3; i++ {
		if _, line, ok, err := j2.ReadLine(i); err != nil || !ok || string(line) != string(lineFor(plan, i)) {
			t.Fatalf("cell %d damaged by tear recovery: ok=%v err=%v line=%s", i, ok, err, line)
		}
	}
	if err := j2.Append(3, ClassRestored, lineFor(plan, 3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Truncated != 0 || j3.DoneCount() != 4 {
		t.Fatalf("after re-append: truncated %d, done %d", j3.Truncated, j3.DoneCount())
	}
}

// TestJournalFlipBit corrupts one bit inside a mid-file record. The checksum
// catches it, and — append-only logs having no way to trust anything past a
// corrupt frame — the journal truncates from that frame on: earlier records
// survive bit-exact, later ones revert to pending for re-execution.
func TestJournalFlipBit(t *testing.T) {
	plan := testPlan(t)
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(i, ClassCold, lineFor(plan, i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	offs := frameOffsets(t, path)
	if len(offs) != 6 { // header + 5 records
		t.Fatalf("frame count = %d, want 6", len(offs))
	}
	// Flip a payload bit of the third record (cell 2).
	if err := chaos.FlipBit(path, offs[3]+frameHeaderLen+2, 4); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Truncated == 0 {
		t.Fatal("flipped bit not detected")
	}
	if got := j2.DoneCount(); got != 2 {
		t.Fatalf("DoneCount after flip = %d, want 2 (cells 0-1)", got)
	}
	for i := 0; i < 2; i++ {
		if _, line, ok, err := j2.ReadLine(i); err != nil || !ok || string(line) != string(lineFor(plan, i)) {
			t.Fatalf("cell %d damaged by flip recovery: ok=%v err=%v line=%s", i, ok, err, line)
		}
	}
	for i := 2; i < 5; i++ {
		if j2.Done(i) {
			t.Fatalf("cell %d past the corrupt frame still reads as completed", i)
		}
	}
}

// TestJournalHeaderDestroyed: when not even the header frame survives, the
// file is reinitialized for the plan instead of failing forever.
func TestJournalHeaderDestroyed(t *testing.T) {
	plan := testPlan(t)
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(0, ClassCold, lineFor(plan, 0))
	j.Close()
	if err := chaos.FlipBit(path, frameHeaderLen+1, 2); err != nil { // inside the header payload
		t.Fatal(err)
	}
	j2, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.DoneCount() != 0 {
		t.Fatalf("reinitialized journal reports %d done cells", j2.DoneCount())
	}
	if err := j2.Append(0, ClassCold, lineFor(plan, 0)); err != nil {
		t.Fatal(err)
	}
}
