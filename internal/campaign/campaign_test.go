package campaign

import (
	"fmt"
	"strings"
	"testing"

	"tvsched"
)

// TestEnumerateOrderGolden pins the canonical cross-product walk: first axis
// outermost, last fastest, flat indices ascending with no gaps.
func TestEnumerateOrderGolden(t *testing.T) {
	var got []string
	Enumerate([]int{2, 3}, func(cell int, idx []int) bool {
		got = append(got, fmt.Sprintf("%d:%d,%d", cell, idx[0], idx[1]))
		return true
	})
	want := []string{"0:0,0", "1:0,1", "2:0,2", "3:1,0", "4:1,1", "5:1,2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("enumerate order:\n got %v\nwant %v", got, want)
	}
}

func TestUnrankInvertsEnumerate(t *testing.T) {
	lens := []int{3, 1, 4, 2}
	Enumerate(lens, func(cell int, idx []int) bool {
		var back [4]int
		Unrank(lens, cell, back[:])
		for ax := range idx {
			if back[ax] != idx[ax] {
				t.Fatalf("cell %d: Unrank %v, Enumerate %v", cell, back, idx)
			}
		}
		return true
	})
}

func TestCountOverflowAndEmpty(t *testing.T) {
	if n := Count([]int{4, 0, 2}); n != 0 {
		t.Fatalf("empty axis: Count = %d, want 0", n)
	}
	if n := Count([]int{1 << 31, 1 << 31, 1 << 31}); n != -1 {
		t.Fatalf("overflow: Count = %d, want -1", n)
	}
}

// TestPlanCellOrderGolden pins the campaign cell order to the exact sequence
// /v1/sweep has always promised: benchmarks × schemes × VDDs × seeds, each
// axis in spec order, seeds varying fastest. The axes are deliberately not
// sorted so the test catches any accidental canonicalization.
func TestPlanCellOrderGolden(t *testing.T) {
	plan, err := NewPlan(Spec{
		Benchmarks: []string{"sjeng", "bzip2"},
		Schemes:    []string{"CDS", "ABS"},
		VDDs:       []float64{0.97, 1.10},
		Seeds:      []uint64{2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sjeng/CDS/0.97/2", "sjeng/CDS/0.97/1",
		"sjeng/CDS/1.10/2", "sjeng/CDS/1.10/1",
		"sjeng/ABS/0.97/2", "sjeng/ABS/0.97/1",
		"sjeng/ABS/1.10/2", "sjeng/ABS/1.10/1",
		"bzip2/CDS/0.97/2", "bzip2/CDS/0.97/1",
		"bzip2/CDS/1.10/2", "bzip2/CDS/1.10/1",
		"bzip2/ABS/0.97/2", "bzip2/ABS/0.97/1",
		"bzip2/ABS/1.10/2", "bzip2/ABS/1.10/1",
	}
	if plan.Total() != len(want) {
		t.Fatalf("Total = %d, want %d", plan.Total(), len(want))
	}
	for i, w := range want {
		c := plan.Cell(i)
		if c.Index != i {
			t.Fatalf("Cell(%d).Index = %d", i, c.Index)
		}
		got := fmt.Sprintf("%s/%s/%.2f/%d", c.Config.Benchmark, c.Config.Scheme, c.Config.VDD, c.Config.Seed)
		if got != w {
			t.Fatalf("cell %d = %s, want %s", i, got, w)
		}
	}
}

// TestPlanHashIdentity: omitted axes and their explicit defaults are the same
// campaign; a tag (or any axis change) is a different one.
func TestPlanHashIdentity(t *testing.T) {
	def, err := NewPlan(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := NewPlan(Spec{
		Schema:     SpecSchema,
		Benchmarks: []string{"bzip2"},
		Schemes:    []string{"ABS"},
		VDDs:       []float64{tvsched.VHighFault},
		Seeds:      []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if def.Hash() != explicit.Hash() {
		t.Fatalf("default and explicit-default specs hash differently:\n%s\n%s", def.Hash(), explicit.Hash())
	}
	tagged, err := NewPlan(Spec{Tag: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Hash() == def.Hash() {
		t.Fatal("tag did not change the plan hash")
	}
	// The tag must not leak into cell identity: re-tagged campaigns hit the
	// same result cache entries.
	if tagged.Cell(0).Config.Digest() != def.Cell(0).Config.Digest() {
		t.Fatal("tag changed a cell digest")
	}
}

func TestPlanValidation(t *testing.T) {
	for _, spec := range []Spec{
		{Schema: "tvsched/elsewhere/v1"},
		{Benchmarks: []string{"nope"}},
		{Schemes: []string{"NOPE"}},
	} {
		if _, err := NewPlan(spec); err == nil {
			t.Fatalf("NewPlan(%+v) accepted a bad spec", spec)
		}
	}
}

func TestPlanWarmGroups(t *testing.T) {
	plan, err := NewPlan(Spec{
		Benchmarks: []string{"bzip2", "sjeng", "bzip2"},
		Schemes:    []string{"ABS", "FFS", "CDS"},
		VDDs:       []float64{0.97, 1.04},
		Seeds:      []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 distinct benchmarks × 2 seeds: schemes and VDDs never split a group.
	if g := plan.WarmGroups(); g != 4 {
		t.Fatalf("WarmGroups = %d, want 4", g)
	}
}

// TestPlanAllocsIndependentOfCells pins the lazy-planning contract: building
// a million-cell plan and addressing a cell must not allocate anything
// proportional to the cross product — only to the axes. This is the memory
// bound that lets /v1/sweep plan huge sweeps without materializing them.
func TestPlanAllocsIndependentOfCells(t *testing.T) {
	seeds := make([]uint64, 50000)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := Spec{
		Benchmarks: []string{"bzip2", "sjeng"},
		Schemes:    []string{"ABS", "FFS"},
		VDDs:       []float64{0.97, 1.00, 1.04, 1.07, 1.10},
		Seeds:      seeds, // 2×2×5×50000 = 1,000,000 cells
	}
	allocs := testing.AllocsPerRun(10, func() {
		plan, err := NewPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Total() != 1_000_000 {
			t.Fatalf("Total = %d", plan.Total())
		}
		_ = plan.Cell(999_999)
	})
	// Planning costs O(axes): spec copies, scheme parses, one hash. The
	// bound is generous; what matters is that it is not O(10^6).
	if allocs > 200 {
		t.Fatalf("planning a 1M-cell campaign cost %.0f allocations — enumeration is no longer lazy", allocs)
	}
}
