// Package campaign is the sweep planner/executor behind POST /v1/campaign,
// cmd/tvplan and the lazy /v1/sweep path: it expands a campaign spec (the
// cross product of benchmark × scheme × VDD × seed axes) into a deterministic
// cell sequence without ever materializing it, groups cells by shared
// warm-prefix (tvsched.Config.WarmKey) so each warm snapshot is produced once
// and fanned out, executes ready cells on a bounded worker pool streaming
// campaign-report/v1 NDJSON in ascending index order, and checkpoints
// completed cells to an append-only journal so a killed campaign resumes
// exactly where it stopped — byte-identical to an uninterrupted run.
//
// The determinism contract mirrors /v1/sweep's: the stream carries exactly
// one line per cell in the canonical cross-product order (first axis
// outermost, seeds fastest), cells simulate concurrently but emission always
// waits for the next index, and only the per-line Cache annotation may vary
// with scheduling when a plan contains duplicate digests. Heartbeats reuse
// the tvsched/progress/v1 schema and are strictly opt-in, because they carry
// wall-clock timings.
package campaign

import "math"

// Enumerate walks the cross product of axes with the given lengths in the
// canonical campaign order: the first axis varies slowest, the last fastest.
// fn receives the flat cell index (ascending from 0, no gaps) and the per-axis
// indices; returning false stops the walk. idx is reused between calls — copy
// it to retain. This single definition is the cell order /v1/sweep, tvstorm
// and every campaign promise; golden tests pin it.
func Enumerate(lens []int, fn func(cell int, idx []int) bool) {
	total := Count(lens)
	if total <= 0 {
		return
	}
	idx := make([]int, len(lens))
	for cell := 0; cell < total; cell++ {
		if !fn(cell, idx) {
			return
		}
		for ax := len(lens) - 1; ax >= 0; ax-- {
			idx[ax]++
			if idx[ax] < lens[ax] {
				break
			}
			idx[ax] = 0
		}
	}
}

// Unrank converts a flat cell index back to per-axis indices (the inverse of
// the Enumerate order), filling idx, which must have len(lens) elements. It is
// how a plan addresses one cell in O(axes) without enumerating its
// predecessors.
func Unrank(lens []int, cell int, idx []int) {
	for ax := len(lens) - 1; ax >= 0; ax-- {
		idx[ax] = cell % lens[ax]
		cell /= lens[ax]
	}
}

// Count returns the cross-product size, or -1 on overflow (a campaign that
// cannot be addressed with int indices). An empty axis makes the product 0.
func Count(lens []int) int {
	total := 1
	for _, n := range lens {
		if n <= 0 {
			return 0
		}
		if total > math.MaxInt/n {
			return -1
		}
		total *= n
	}
	return total
}
