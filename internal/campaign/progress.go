package campaign

import (
	"sync"
	"time"
)

// ProgressSchema tags the heartbeat records a progress-enabled campaign or
// sweep stream interleaves with its cell lines. Cell lines never carry a
// schema field, so `"schema":"tvsched/progress/v1"` is the discriminator.
// This is the schema PR 7 introduced on /v1/sweep; the campaign engine
// adopts it unchanged.
const ProgressSchema = "tvsched/progress/v1"

// Class is the provenance of one resolved cell, the campaign accounting's
// vocabulary: a cache/store "hit", a duplicate collapsed onto an in-flight
// computation ("shared"), a fresh simulation that "restored" a warm snapshot
// or ran fully "cold", a cell another cluster node paid for ("stolen"), or a
// failure.
type Class int

// The provenance classes, in ProgressLine field order.
const (
	ClassHit Class = iota
	ClassShared
	ClassRestored
	ClassCold
	ClassStolen
	ClassError
	NumClasses
)

var classNames = [NumClasses]string{"hit", "shared", "restored", "cold", "stolen", "error"}

// String returns the metrics/journal label for the class.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "unknown"
	}
	return classNames[c]
}

// ProgressLine is one live-campaign heartbeat: cumulative cell accounting by
// provenance plus an ETA extrapolated from an EWMA of cell latency. The field
// layout is tvsched/progress/v1, shared byte-for-byte with /v1/sweep
// heartbeats.
type ProgressLine struct {
	Schema      string  `json:"schema"`
	Done        int     `json:"done"`
	Total       int     `json:"total"`
	Hit         int     `json:"hit"`
	Shared      int     `json:"shared"`
	Restored    int     `json:"restored"`
	Cold        int     `json:"cold"`
	Stolen      int     `json:"stolen"`
	Errors      int     `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	CellEwmaSec float64 `json:"cell_ewma_sec"`
	EtaSec      float64 `json:"eta_sec"`
}

// Progress accumulates per-cell completions for one campaign's heartbeats and
// status answers. Cell workers write, the emission loop and status handlers
// read; the mutex is the only coupling.
type Progress struct {
	mu       sync.Mutex
	total    int
	done     int
	counts   [NumClasses]int
	replayed int
	// replayedSkip counts replays whose original class was itself a skip
	// (hit/shared/stolen), so the skip ratio never counts them twice.
	replayedSkip int
	ewma         float64 // seconds per executed cell
}

// NewProgress returns accounting for a campaign of total cells.
func NewProgress(total int) *Progress { return &Progress{total: total} }

// Observe folds one executed cell in. The EWMA (α=0.3) tracks recent cell
// latency so the ETA adapts as a campaign transitions cold → warm.
func (p *Progress) Observe(c Class, d time.Duration) {
	if c < 0 || c >= NumClasses {
		c = ClassError
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.counts[c]++
	const alpha = 0.3
	if sec := d.Seconds(); p.ewma == 0 {
		p.ewma = sec
	} else {
		p.ewma = alpha*sec + (1-alpha)*p.ewma
	}
}

// Replay folds one journal-replayed cell in under its original class. Replays
// are free, so they count toward done without touching the latency EWMA.
func (p *Progress) Replay(c Class) {
	if c < 0 || c >= NumClasses {
		c = ClassError
	}
	p.mu.Lock()
	p.done++
	p.counts[c]++
	p.replayed++
	if c == ClassHit || c == ClassShared || c == ClassStolen {
		p.replayedSkip++
	}
	p.mu.Unlock()
}

// Line renders the current heartbeat. The ETA assumes the remaining cells run
// at the EWMA latency across min(lanes, remaining) lanes.
func (p *Progress) Line(start time.Time, lanes int) *ProgressLine {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := &ProgressLine{
		Schema: ProgressSchema,
		Done:   p.done, Total: p.total,
		Hit: p.counts[ClassHit], Shared: p.counts[ClassShared],
		Restored: p.counts[ClassRestored], Cold: p.counts[ClassCold],
		Stolen:      p.counts[ClassStolen],
		Errors:      p.counts[ClassError],
		ElapsedSec:  time.Since(start).Seconds(),
		CellEwmaSec: p.ewma,
	}
	if remaining := p.total - p.done; remaining > 0 && lanes > 0 {
		if remaining < lanes {
			lanes = remaining
		}
		l.EtaSec = p.ewma * float64(remaining) / float64(lanes)
	}
	return l
}

// Snapshot returns a consistent copy of the accounting (status endpoints,
// summaries).
func (p *Progress) Snapshot() (done, replayed int, counts [NumClasses]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.replayed, p.counts
}

// Summary renders the end-of-campaign artifact for a plan executed under this
// accounting.
func (p *Progress) Summary(plan *Plan, elapsed time.Duration) *Summary {
	p.mu.Lock()
	done, replayed, counts, replayedSkip := p.done, p.replayed, p.counts, p.replayedSkip
	p.mu.Unlock()
	s := &Summary{
		Schema: SummarySchema,
		Plan:   plan.Hash(),
		Tag:    plan.Spec().Tag,
		Cells:  plan.Total(),
		Done:   done, Replayed: replayed,
		Hit: counts[ClassHit], Shared: counts[ClassShared],
		Restored: counts[ClassRestored], Cold: counts[ClassCold],
		Stolen: counts[ClassStolen], Errors: counts[ClassError],
		ElapsedSec: elapsed.Seconds(),
	}
	if done > 0 {
		// A cell is "skipped" when this run paid no simulation for it: an
		// executed hit/shared/stolen, or any journal replay. Replays carry
		// their original class in counts, so subtract the overlap.
		skipped := counts[ClassHit] + counts[ClassShared] + counts[ClassStolen] - replayedSkip + replayed
		s.SkipRatio = float64(skipped) / float64(done)
	}
	return s
}
