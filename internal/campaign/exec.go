package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// CellResult is how a Runner resolved one cell: the provenance class the
// accounting folds in, the coarse cache annotation the line carries, and the
// rendered run-report/v1 body (or the error).
type CellResult struct {
	Class Class
	Cache string
	Body  []byte
	Err   error
}

// Runner executes one planned cell. The executor calls it from worker
// goroutines, at most Options.Workers concurrently; the context is canceled
// when the campaign stops early.
type Runner func(ctx context.Context, cell Cell) CellResult

// Options parameterizes one Execute call.
type Options struct {
	// Workers bounds concurrently executing cells (default GOMAXPROCS).
	Workers int
	// Window bounds launched-but-not-yet-emitted cells — the out-of-order
	// buffer between the concurrent pool and the strictly ordered stream
	// (default 4×Workers, min 16). Peak memory is proportional to Window,
	// never to the plan's cell count.
	Window int
	// Lanes is the parallelism the heartbeat ETA assumes (default Workers).
	Lanes int
	// Heartbeat, when positive, interleaves tvsched/progress/v1 records with
	// the cell lines at this cadence, plus one final heartbeat after the last
	// cell. Zero keeps the stream a pure function of the plan.
	Heartbeat time.Duration
	// HeartbeatW receives heartbeat records (default the cell-line writer;
	// tvplan points it at stderr so -out stays byte-deterministic).
	HeartbeatW io.Writer
	// Progress, when non-nil, is the shared accounting Execute folds cells
	// into — the seam status endpoints read live. Nil gets a private one.
	Progress *Progress
	// Start anchors elapsed/ETA accounting (default now).
	Start time.Time
	// Flush, when non-nil, runs after every emitted record (HTTP streaming).
	Flush func()
	// OnCell, when non-nil, observes every executed (not replayed) cell with
	// its wall-clock duration — the metrics/span seam.
	OnCell func(cell Cell, res CellResult, d time.Duration)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Window <= 0 {
		o.Window = 4 * o.Workers
		if o.Window < 16 {
			o.Window = 16
		}
	}
	if o.Lanes <= 0 {
		o.Lanes = o.Workers
	}
	if o.Start.IsZero() {
		o.Start = time.Now()
	}
}

// Stats summarizes one Execute call.
type Stats struct {
	Total    int
	Done     int
	Replayed int
	Counts   [NumClasses]int
	Elapsed  time.Duration
}

// Errors is the failed-cell count.
func (s Stats) Errors() int { return s.Counts[ClassError] }

type indexedResult struct {
	index int
	res   CellResult
}

// Execute runs the plan: journaled cells are replayed verbatim (free,
// byte-identical), the rest execute on a bounded worker pool, and every line
// is written to w in strictly ascending index order — journaled before
// emitted, so the journal always holds a prefix of the stream and a killed
// campaign resumes exactly where it stopped. j may be nil (journal-less
// sweeps). The returned error is an I/O or context failure of the campaign
// machinery; per-cell simulation failures are lines and Stats counts, not an
// error.
func Execute(ctx context.Context, plan *Plan, j *Journal, run Runner, w io.Writer, opts Options) (Stats, error) {
	opts.fill()
	prog := opts.Progress
	if prog == nil {
		prog = NewProgress(plan.Total())
	}
	hw := opts.HeartbeatW
	if hw == nil {
		hw = w
	}
	total := plan.Total()
	stats := Stats{Total: total}

	ectx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The launcher walks indices ascending, skipping journaled cells,
	// acquiring a window token (bounds unemitted work) then a worker slot.
	// Workers deliver out of order; the emitter reorders. Launch order is
	// deterministic, so a duplicate digest's singleflight leader is almost
	// always its first cell — but under concurrency that is a tendency, not a
	// guarantee, which is why only Cache may vary between runs of a plan with
	// duplicate digests.
	results := make(chan indexedResult, opts.Window)
	window := make(chan struct{}, opts.Window)
	sem := make(chan struct{}, opts.Workers)
	go func() {
		for i := 0; i < total; i++ {
			if j != nil && j.Done(i) {
				continue
			}
			select {
			case window <- struct{}{}:
			case <-ectx.Done():
				return
			}
			select {
			case sem <- struct{}{}:
			case <-ectx.Done():
				return
			}
			cell := plan.Cell(i)
			go func(cell Cell) {
				defer func() { <-sem }()
				cellStart := time.Now()
				res := run(ectx, cell)
				d := time.Since(cellStart)
				prog.Observe(res.Class, d)
				if opts.OnCell != nil {
					opts.OnCell(cell, res, d)
				}
				select {
				case results <- indexedResult{cell.Index, res}:
				case <-ectx.Done():
				}
			}(cell)
		}
	}()

	emit := func(record []byte) error {
		if _, err := w.Write(record); err != nil {
			return err
		}
		if opts.Flush != nil {
			opts.Flush()
		}
		return nil
	}
	heartbeat := func() error {
		b, err := json.Marshal(prog.Line(opts.Start, opts.Lanes))
		if err != nil {
			return err
		}
		if _, err := hw.Write(append(b, '\n')); err != nil {
			return err
		}
		if opts.Flush != nil {
			opts.Flush()
		}
		return nil
	}
	// A nil ticker channel blocks forever, collapsing the wait select to
	// plain emission.
	var tick <-chan time.Time
	if opts.Heartbeat > 0 {
		t := time.NewTicker(opts.Heartbeat)
		defer t.Stop()
		tick = t.C
	}

	buffered := make(map[int]CellResult, opts.Window)
	for i := 0; i < total; i++ {
		if j != nil {
			if class, line, ok, err := j.ReadLine(i); err != nil {
				return stats, err
			} else if ok {
				prog.Replay(class)
				stats.Done++
				stats.Replayed++
				stats.Counts[class]++
				if err := emit(append(line, '\n')); err != nil {
					return stats, err
				}
				continue
			}
		}
		res, ok := buffered[i]
		for !ok {
			select {
			case r := <-results:
				buffered[r.index] = r.res
				res, ok = buffered[i]
			case <-tick:
				if err := heartbeat(); err != nil {
					return stats, err
				}
			case <-ectx.Done():
				stats.Elapsed = time.Since(opts.Start)
				return stats, ectx.Err()
			}
		}
		delete(buffered, i)
		<-window

		if res.Err != nil && ectx.Err() != nil {
			// The campaign is stopping and this cell died of the shared
			// cancellation (or alongside it). Journaling it would freeze a
			// transient shutdown error into the record and break the resume
			// contract — a resumed campaign must replay only real results.
			stats.Elapsed = time.Since(opts.Start)
			return stats, ectx.Err()
		}
		cfg := plan.Cell(i).Config
		line := Line{
			Index:     i,
			Benchmark: cfg.Benchmark,
			Scheme:    cfg.Scheme.String(),
			VDD:       cfg.VDD,
			Seed:      cfg.Seed,
			Digest:    cfg.Digest(),
			Cache:     res.Cache,
		}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			line.Report = json.RawMessage(trimNewline(res.Body))
		}
		b, err := json.Marshal(&line)
		if err != nil {
			return stats, fmt.Errorf("campaign: render cell %d: %w", i, err)
		}
		if j != nil {
			if err := j.Append(i, res.Class, b); err != nil {
				return stats, err
			}
		}
		stats.Done++
		stats.Counts[res.Class]++
		if err := emit(append(b, '\n')); err != nil {
			return stats, err
		}
	}
	// A final heartbeat closes the accounting (done == total, ETA 0) so a
	// consumer never has to infer completion from a stale extrapolation.
	if opts.Heartbeat > 0 {
		if err := heartbeat(); err != nil {
			return stats, err
		}
	}
	if j != nil {
		if err := j.Sync(); err != nil {
			return stats, err
		}
	}
	stats.Elapsed = time.Since(opts.Start)
	return stats, nil
}

func trimNewline(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}
