package campaign

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// JournalSchema tags the header frame of a campaign journal file.
const JournalSchema = "tvsched/campaign-journal/v1"

// The journal is an append-only log of CRC-framed JSON payloads — the same
// discipline as the persistent result store (internal/store): every frame is
// `magic | payload length | CRC32(payload) | payload`, a torn or corrupted
// tail is truncated back to the last intact frame on open, and nothing is
// trusted until its checksum passes. The first frame is the header (schema,
// plan hash, cell total, the full normalized spec — enough to rebuild the
// plan with no side channel); every later frame is one completed cell: its
// index, its provenance class, and the exact rendered NDJSON line bytes.
//
// Because the executor journals a cell at emission time — and emission is
// strictly index-ascending — an intact journal always holds a prefix of the
// report. Replaying that prefix verbatim and executing the rest is what makes
// a resumed campaign byte-identical to an uninterrupted one.
const (
	journalMagic   = 0x5456434A // "TVCJ"
	frameHeaderLen = 4 + 4 + 4
	maxFrameLen    = 16 << 20 // sanity bound; one cell line is ~1 KiB
)

// ErrJournalMismatch reports a journal that belongs to a different plan than
// the one being executed — resuming it would corrupt both campaigns.
var ErrJournalMismatch = errors.New("campaign journal belongs to a different plan")

// errNoHeader reports a journal file with no intact header frame.
var errNoHeader = errors.New("campaign journal has no intact header")

type journalHeader struct {
	Schema string `json:"schema"`
	Plan   string `json:"plan"`
	Total  int    `json:"total"`
	Spec   Spec   `json:"spec"`
}

type journalRecord struct {
	Index int             `json:"index"`
	Class int             `json:"class"`
	Line  json.RawMessage `json:"line"`
}

// Journal is the on-disk completed-cell log of one campaign. All methods are
// safe for concurrent use; reads (ReadLine, Done) may run while the executor
// appends.
type Journal struct {
	f    *os.File
	w    *bufio.Writer
	path string

	hdr     journalHeader
	mu      sync.Mutex
	end     int64   // append offset
	offsets []int64 // cell index → frame offset, -1 when absent
	doneN   int
	appends int // appends since the last fsync

	// Truncated is how many torn-tail bytes open discarded (diagnostics).
	Truncated int64
}

// OpenJournal creates or resumes the journal for one plan. A fresh (or
// headerless, e.g. torn-at-birth) file is initialized with a header frame; an
// existing one is scanned, its torn tail truncated, and its identity checked:
// a plan-hash or total mismatch is ErrJournalMismatch, never silent reuse.
func OpenJournal(path string, plan *Plan) (*Journal, error) {
	j, err := openJournalFile(path)
	if err != nil {
		return nil, err
	}
	if j.hdr.Schema == "" {
		// New file: write the header.
		j.hdr = journalHeader{Schema: JournalSchema, Plan: plan.Hash(), Total: plan.Total(), Spec: plan.Spec()}
		j.offsets = newOffsets(plan.Total())
		payload, err := json.Marshal(&j.hdr)
		if err != nil {
			j.f.Close()
			return nil, err
		}
		if err := j.appendFrame(payload); err != nil {
			j.f.Close()
			return nil, fmt.Errorf("campaign journal %s: %w", path, err)
		}
		if err := j.sync(); err != nil {
			j.f.Close()
			return nil, err
		}
		return j, nil
	}
	if j.hdr.Plan != plan.Hash() || j.hdr.Total != plan.Total() {
		j.f.Close()
		return nil, fmt.Errorf("%w: journal %s holds plan %s (%d cells), want %s (%d cells)",
			ErrJournalMismatch, path, j.hdr.Plan, j.hdr.Total, plan.Hash(), plan.Total())
	}
	return j, nil
}

// LoadJournal opens an existing journal standalone — the resume-on-restart
// scan path, where the journal itself is the only record of what the campaign
// was. The embedded spec rebuilds the plan; OpenJournal semantics otherwise.
func LoadJournal(path string) (*Journal, *Plan, error) {
	j, err := openJournalFile(path)
	if err != nil {
		return nil, nil, err
	}
	if j.hdr.Schema == "" {
		j.f.Close()
		return nil, nil, fmt.Errorf("campaign journal %s: %w", path, errNoHeader)
	}
	plan, err := NewPlan(j.hdr.Spec)
	if err != nil {
		j.f.Close()
		return nil, nil, fmt.Errorf("campaign journal %s: embedded spec: %w", path, err)
	}
	if plan.Hash() != j.hdr.Plan || plan.Total() != j.hdr.Total {
		j.f.Close()
		return nil, nil, fmt.Errorf("%w: journal %s header says %s (%d cells) but its spec plans %s (%d cells)",
			ErrJournalMismatch, path, j.hdr.Plan, j.hdr.Total, plan.Hash(), plan.Total())
	}
	return j, plan, nil
}

// openJournalFile opens path and scans every intact frame, truncating the
// torn tail. A missing or empty file (or one whose very first frame is
// corrupt) comes back with a zero header for the caller to initialize.
func openJournalFile(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	r := bufio.NewReader(io.NewSectionReader(f, 0, size))
	var off int64
	for {
		payload, n, err := readFrame(r, size-off)
		if err != nil {
			// Torn or corrupt tail: everything from off on is discarded.
			j.Truncated = size - off
			break
		}
		if off == 0 {
			var hdr journalHeader
			if err := json.Unmarshal(payload, &hdr); err != nil || hdr.Schema != JournalSchema || hdr.Total < 0 {
				j.Truncated = size
				break
			}
			j.hdr = hdr
			j.offsets = newOffsets(hdr.Total)
		} else {
			var rec journalRecord
			if err := json.Unmarshal(payload, &rec); err == nil &&
				rec.Index >= 0 && rec.Index < len(j.offsets) && j.offsets[rec.Index] < 0 {
				j.offsets[rec.Index] = off
				j.doneN++
			}
		}
		off += n
		if off >= size {
			break
		}
	}
	if j.Truncated > 0 {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.end = off
	j.w = bufio.NewWriter(f)
	if j.hdr.Schema == "" {
		// Nothing intact: restart the file from byte zero.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		j.end, j.doneN, j.offsets = 0, 0, nil
	}
	return j, nil
}

func newOffsets(total int) []int64 {
	offs := make([]int64, total)
	for i := range offs {
		offs[i] = -1
	}
	return offs
}

// readFrame reads one frame from r, which has remain bytes left. It returns
// the payload and the frame's total length, or an error for any torn or
// corrupt frame.
func readFrame(r *bufio.Reader, remain int64) ([]byte, int64, error) {
	if remain < frameHeaderLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != journalMagic {
		return nil, 0, errors.New("bad frame magic")
	}
	n := int64(binary.BigEndian.Uint32(hdr[4:8]))
	if n > maxFrameLen || frameHeaderLen+n > remain {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[8:12]) {
		return nil, 0, errors.New("frame checksum mismatch")
	}
	return payload, frameHeaderLen + n, nil
}

// appendFrame writes one framed payload and flushes the buffer, so the bytes
// survive a SIGKILL of this process (fsync — surviving a machine crash — is
// amortized; see Append). Callers hold mu (or have exclusive access).
func (j *Journal) appendFrame(payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], journalMagic)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.w.Write(payload); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.end += int64(frameHeaderLen + len(payload))
	return nil
}

// Append journals one completed cell: its index, provenance class, and the
// exact line bytes the stream emitted (sans trailing newline). Duplicate
// appends for a completed index are no-ops. Every append is flushed to the
// kernel; an fsync lands every 64 appends and on Close, so a machine crash
// costs at most a tail of re-runs, never a corrupt prefix.
func (j *Journal) Append(index int, class Class, line []byte) error {
	if index < 0 || index >= len(j.offsets) {
		return fmt.Errorf("campaign journal %s: index %d out of range [0,%d)", j.path, index, len(j.offsets))
	}
	rec := journalRecord{Index: index, Class: int(class), Line: json.RawMessage(line)}
	payload, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.offsets[index] >= 0 {
		return nil
	}
	off := j.end
	if err := j.appendFrame(payload); err != nil {
		return fmt.Errorf("campaign journal %s: %w", j.path, err)
	}
	j.offsets[index] = off
	j.doneN++
	j.appends++
	if j.appends >= 64 {
		j.appends = 0
		return j.f.Sync()
	}
	return nil
}

// Done reports whether the cell at index has a journaled line.
func (j *Journal) Done(index int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return index >= 0 && index < len(j.offsets) && j.offsets[index] >= 0
}

// DoneCount is the number of journaled cells.
func (j *Journal) DoneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneN
}

// Complete reports whether every cell is journaled.
func (j *Journal) Complete() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneN == j.hdr.Total
}

// PlanHash returns the plan identity the journal belongs to.
func (j *Journal) PlanHash() string { return j.hdr.Plan }

// Spec returns the normalized campaign spec embedded in the header.
func (j *Journal) Spec() Spec { return j.hdr.Spec }

// Total returns the campaign's cell count.
func (j *Journal) Total() int { return j.hdr.Total }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// ReadLine returns the journaled class and line bytes for one completed cell
// index; ok is false when the cell has no record. Reads go through ReadAt, so
// they are safe alongside concurrent appends (appends only ever add frames
// past every published offset).
func (j *Journal) ReadLine(index int) (Class, []byte, bool, error) {
	j.mu.Lock()
	if index < 0 || index >= len(j.offsets) || j.offsets[index] < 0 {
		j.mu.Unlock()
		return 0, nil, false, nil
	}
	off := j.offsets[index]
	j.mu.Unlock()

	var hdr [frameHeaderLen]byte
	if _, err := j.f.ReadAt(hdr[:], off); err != nil {
		return 0, nil, false, err
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := j.f.ReadAt(payload, off+frameHeaderLen); err != nil {
		return 0, nil, false, err
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, nil, false, fmt.Errorf("campaign journal %s: record at %d: %w", j.path, off, err)
	}
	return Class(rec.Class), []byte(rec.Line), true, nil
}

// sync flushes buffered frames and fsyncs. Callers hold mu (or have
// exclusive access).
func (j *Journal) sync() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Sync forces buffered frames to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sync()
}

// Close syncs and closes the file. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
