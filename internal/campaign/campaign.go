package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"tvsched"
)

// The wire schemas this package speaks, documented in EXPERIMENTS.md. Like
// the serve schemas they are matched exactly before any field semantics are
// trusted; bump on breaking change.
const (
	// SpecSchema tags a campaign spec (POST /v1/campaign, tvplan -spec).
	SpecSchema = "tvsched/campaign-spec/v1"
	// ReportSchema names the NDJSON stream a campaign emits: one Line per
	// cell in plan order. The line layout is identical to a /v1/sweep cell
	// line (the sweep is a journal-less campaign), so consumers share code.
	ReportSchema = "tvsched/campaign-report/v1"
	// SummarySchema tags the end-of-campaign accounting artifact
	// (tvplan -summary), the input of tvgate -campaign skip-ratio gating.
	SummarySchema = "tvsched/campaign-summary/v1"
	// PlanSchema tags the dry-run plan description (tvplan -plan).
	PlanSchema = "tvsched/campaign-plan/v1"
)

// ErrBadSpec reports a campaign spec the planner refuses: wrong schema,
// unknown benchmark or scheme, or a cross product too large to index.
var ErrBadSpec = errors.New("bad campaign spec")

// Spec is the wire form of a campaign: the cross product of the four axes,
// every cell sharing the scalar phase parameters. Empty axes default to a
// single element — bzip2 / ABS / 0.97 V / seed 1 — matching /v1/sweep.
type Spec struct {
	// Schema must be SpecSchema (or empty, which assumes it).
	Schema string `json:"schema,omitempty"`
	// Tag is a free-form campaign label. It participates in the plan hash —
	// two campaigns over identical axes but different tags are distinct
	// campaigns with distinct journals — but never in cell configs, so a
	// re-tagged campaign still hits the result cache cell for cell.
	Tag        string    `json:"tag,omitempty"`
	Benchmarks []string  `json:"benchmarks,omitempty"`
	Schemes    []string  `json:"schemes,omitempty"`
	VDDs       []float64 `json:"vdds,omitempty"`
	Seeds      []uint64  `json:"seeds,omitempty"`
	// Instructions, Warmup and FaultBias apply to every cell.
	Instructions uint64  `json:"instructions,omitempty"`
	Warmup       uint64  `json:"warmup,omitempty"`
	FaultBias    float64 `json:"fault_bias,omitempty"`
	// Checkpoint, when absent or true, lets cells restore a shared warm-state
	// snapshot for their WarmKey instead of each re-simulating the warmup
	// phase; false forces every cell to warm up from scratch. Results are
	// byte-identical either way (neutral warmup) — the flag trades warmup CPU
	// for snapshot memory, and exists so benchmarks can compare the paths.
	Checkpoint *bool `json:"checkpoint,omitempty"`
}

// normalized returns the spec with every default applied — the exact axes a
// plan enumerates. Normalizing before hashing makes an omitted axis and its
// explicit default the same campaign.
func (s Spec) normalized() Spec {
	s.Schema = SpecSchema
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = []string{"bzip2"}
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{"ABS"}
	}
	if len(s.VDDs) == 0 {
		s.VDDs = []float64{tvsched.VHighFault}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	t := true
	if s.Checkpoint == nil {
		s.Checkpoint = &t
	}
	return s
}

// Cell is one planned simulation: its flat index in the campaign order and
// the fully normalized config (whose Digest is its result address and whose
// WarmKey is its warm-prefix group).
type Cell struct {
	Index  int
	Config tvsched.Config
}

// Plan is a validated, hashable campaign: axes parsed and checked once, cells
// addressed lazily by index arithmetic. Construction costs O(axes); nothing
// is ever proportional to Total until cells actually execute, which is what
// lets a million-cell sweep stream in constant memory.
type Plan struct {
	spec    Spec
	schemes []tvsched.Scheme
	lens    [4]int // benchmarks, schemes, vdds, seeds
	total   int
	hash    string
}

// NewPlan validates the spec (schema tag, benchmark and scheme names, index
// range) and returns the plan. All failures wrap ErrBadSpec.
func NewPlan(spec Spec) (*Plan, error) {
	if spec.Schema != "" && spec.Schema != SpecSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadSpec, spec.Schema, SpecSchema)
	}
	spec = spec.normalized()
	for _, b := range spec.Benchmarks {
		if _, ok := tvsched.Profile(b); !ok {
			return nil, fmt.Errorf("%w: unknown benchmark %q", ErrBadSpec, b)
		}
	}
	schemes := make([]tvsched.Scheme, len(spec.Schemes))
	for i, name := range spec.Schemes {
		s, err := tvsched.ParseScheme(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		schemes[i] = s
	}
	p := &Plan{
		spec:    spec,
		schemes: schemes,
		lens:    [4]int{len(spec.Benchmarks), len(spec.Schemes), len(spec.VDDs), len(spec.Seeds)},
	}
	p.total = Count(p.lens[:])
	if p.total < 0 {
		return nil, fmt.Errorf("%w: cross product overflows int", ErrBadSpec)
	}
	sum := sha256.Sum256(p.canonicalSpecJSON())
	p.hash = hex.EncodeToString(sum[:])
	return p, nil
}

// canonicalSpecJSON renders the normalized spec deterministically (fixed
// field order, defaults applied, Checkpoint concrete). The plan hash — the
// campaign's identity, its journal's name and its /v1/campaign id — is the
// SHA-256 of these bytes.
func (p *Plan) canonicalSpecJSON() []byte {
	b, err := json.Marshal(p.spec)
	if err != nil {
		// The spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: canonical spec: %v", err))
	}
	return b
}

// Spec returns the normalized spec the plan was built from.
func (p *Plan) Spec() Spec { return p.spec }

// Total is the cell count of the cross product.
func (p *Plan) Total() int { return p.total }

// Hash is the campaign's content address: hex SHA-256 of the canonical
// normalized spec. Equal hashes mean identical plans, hence (determinism)
// identical uninterrupted reports.
func (p *Plan) Hash() string { return p.hash }

// Checkpoint reports whether cells may share warm-state snapshots.
func (p *Plan) Checkpoint() bool { return *p.spec.Checkpoint }

// WarmGroups is the number of distinct warm-prefix groups the plan fans out
// to: one neutral snapshot per (benchmark, seed) pair serves every
// (scheme, VDD) cell under it.
func (p *Plan) WarmGroups() int {
	benches := make(map[string]struct{}, len(p.spec.Benchmarks))
	for _, b := range p.spec.Benchmarks {
		benches[b] = struct{}{}
	}
	seeds := make(map[uint64]struct{}, len(p.spec.Seeds))
	for _, s := range p.spec.Seeds {
		seeds[s] = struct{}{}
	}
	return len(benches) * len(seeds)
}

// Cell addresses one cell by flat index in O(axes): benchmarks × schemes ×
// VDDs × seeds, each axis in spec order, seeds varying fastest — the order
// Enumerate defines and the golden tests pin.
func (p *Plan) Cell(i int) Cell {
	var idx [4]int
	Unrank(p.lens[:], i, idx[:])
	cfg := tvsched.Config{
		Benchmark:    p.spec.Benchmarks[idx[0]],
		Scheme:       p.schemes[idx[1]],
		VDD:          p.spec.VDDs[idx[2]],
		Seed:         p.spec.Seeds[idx[3]],
		Instructions: p.spec.Instructions,
		Warmup:       p.spec.Warmup,
		FaultBias:    p.spec.FaultBias,
	}
	return Cell{Index: i, Config: cfg.Normalized()}
}

// Line is one NDJSON record of a campaign (or sweep) report stream: the
// cell's coordinates, its result digest, the cache-provenance annotation, and
// either the embedded run-report/v1 body or the cell's error. The field
// layout is byte-compatible with the historical /v1/sweep cell line.
//
// Ordering contract (pinned by golden tests): a stream carries exactly one
// line per cell, Index ascending from 0 with no gaps, in the plan's cell
// order. Only Cache may vary between two runs of the same plan, and only when
// the plan addresses one digest from several cells.
type Line struct {
	Index     int             `json:"index"`
	Benchmark string          `json:"benchmark"`
	Scheme    string          `json:"scheme"`
	VDD       float64         `json:"vdd"`
	Seed      uint64          `json:"seed"`
	Digest    string          `json:"digest"`
	Cache     string          `json:"cache"`
	Report    json.RawMessage `json:"report,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// Summary is the end-of-campaign accounting artifact
// (tvsched/campaign-summary/v1): how every cell resolved, how many were
// replayed from the journal rather than executed, and the cached-cell skip
// ratio tvgate -campaign gates on.
type Summary struct {
	Schema string `json:"schema"`
	Plan   string `json:"plan"`
	Tag    string `json:"tag,omitempty"`
	Cells  int    `json:"cells"`
	Done   int    `json:"done"`
	// Replayed cells were emitted verbatim from the journal: completed by an
	// earlier run of this campaign and never re-executed here.
	Replayed int `json:"replayed"`
	Hit      int `json:"hit"`
	Shared   int `json:"shared"`
	Restored int `json:"restored"`
	Cold     int `json:"cold"`
	Stolen   int `json:"stolen"`
	Errors   int `json:"errors"`
	// SkipRatio is the fraction of done cells that cost no local simulation:
	// cache/store hits, collapsed duplicates, cluster-served cells and
	// journal replays.
	SkipRatio  float64 `json:"skip_ratio"`
	ElapsedSec float64 `json:"elapsed_sec"`
}
