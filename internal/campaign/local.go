package campaign

import (
	"context"
	"sync"

	"tvsched"
	"tvsched/internal/store"
)

// ReportFunc renders one finished simulation as the line's embedded report
// payload (compact JSON, no trailing newline needed). It is injected rather
// than fixed so cmd/tvplan can emit run-report/v1 with its own tool tag
// without this package importing the experiments layer.
type ReportFunc func(cfg tvsched.Config, res tvsched.Result) ([]byte, error)

// LocalRunner executes cells in-process — the offline engine behind
// cmd/tvplan, mirroring the serving layer's sharing tiers without a server:
//
//   - per-WarmKey snapshot singleflight: the first cell of a warm-prefix
//     group pays one neutral warmup on a donor session and every cell of the
//     group (the leader included) restores the snapshot — provenance
//     "restored", a pure function of the plan;
//   - per-digest result dedup: concurrent duplicates collapse onto one
//     simulation ("shared"), later duplicates reuse the bytes ("hit");
//   - an optional persistent result store consulted before simulating and
//     written back after, so a re-run campaign (or one sharing a store with
//     prior campaigns) skips every already-computed cell as "hit".
type LocalRunner struct {
	// Checkpoint enables the warm-snapshot sharing tier; off, every cell
	// warms up from scratch ("cold"). Results are byte-identical either way.
	Checkpoint bool
	// Store, when non-nil, persists result bytes by digest across runs. The
	// caller owns its lifecycle. Note a store's bytes embed the producing
	// tool's name, so tvplan stores and tvservd stores must not be mixed.
	Store *store.Store
	// Render is the report renderer (required).
	Render ReportFunc

	mu      sync.Mutex
	snaps   map[string]*localCall // WarmKey → snapshot bytes
	results map[string]*localCall // digest → rendered report bytes
}

// localCall is one in-flight (then settled) production, singleflighted.
type localCall struct {
	done chan struct{}
	data []byte
	err  error
}

// Run executes one cell.
func (r *LocalRunner) Run(ctx context.Context, cell Cell) CellResult {
	digest := cell.Config.Digest()
	r.mu.Lock()
	if r.results == nil {
		r.results = make(map[string]*localCall)
	}
	if c, ok := r.results[digest]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return CellResult{Class: ClassError, Cache: "error", Err: ctx.Err()}
		}
		if c.err != nil {
			return CellResult{Class: ClassError, Cache: "error", Err: c.err}
		}
		// Settled before we looked: a warm "hit"; still in flight when we
		// arrived would be "shared" — indistinguishable here and equally
		// free, so the settled label is used for both.
		return CellResult{Class: ClassHit, Cache: "hit", Body: c.data}
	}
	c := &localCall{done: make(chan struct{})}
	r.results[digest] = c
	r.mu.Unlock()

	class, body, err := r.lead(ctx, cell, digest)
	c.data, c.err = body, err
	close(c.done)
	if err != nil {
		// Failed leads are retryable by a later duplicate (context errors
		// especially); drop the settled failure so they re-lead.
		r.mu.Lock()
		delete(r.results, digest)
		r.mu.Unlock()
		return CellResult{Class: ClassError, Cache: "error", Err: err}
	}
	return CellResult{Class: class, Cache: class.String(), Body: body}
}

// lead produces the bytes for one digest: store read-through, then a
// simulation (restoring the warm-prefix snapshot when checkpointing).
func (r *LocalRunner) lead(ctx context.Context, cell Cell, digest string) (Class, []byte, error) {
	if r.Store != nil {
		if b, ok, _ := r.Store.Get(digest); ok {
			return ClassHit, b, nil
		}
	}
	cfg := cell.Config
	sess, err := tvsched.NewSession(cfg)
	if err != nil {
		return ClassError, nil, err
	}
	class := ClassCold
	warmed := false
	if r.Checkpoint && cfg.Warmup > 0 {
		key := cfg.WarmKey()
		if data, err := r.warmSnapshot(ctx, cfg, key); err == nil {
			if err := sess.Restore(&tvsched.Snapshot{Key: key, Data: data}); err == nil {
				class, warmed = ClassRestored, true
			} else if sess, err = tvsched.NewSession(cfg); err != nil {
				return ClassError, nil, err
			}
		} else if ctx.Err() != nil {
			return ClassError, nil, err
		}
		// Any other snapshot failure falls back to a cold warmup: checkpoints
		// are an optimization, never a correctness dependency.
	}
	if !warmed {
		if err := sess.WarmupNeutral(ctx); err != nil {
			return ClassError, nil, err
		}
	}
	res, err := sess.Run(ctx, tvsched.RunOpts{})
	if err != nil {
		return ClassError, nil, err
	}
	body, err := r.Render(cfg, res)
	if err != nil {
		return ClassError, nil, err
	}
	if r.Store != nil {
		// Best effort: a failed write-back costs a recomputation later,
		// never a wrong answer.
		_ = r.Store.Put(digest, body)
	}
	return class, body, nil
}

// warmSnapshot returns the neutral warm-state bytes for key, singleflighted:
// the first cell of a warm-prefix group leads a donor warmup, every other
// cell waits and restores the same bytes.
func (r *LocalRunner) warmSnapshot(ctx context.Context, cfg tvsched.Config, key string) ([]byte, error) {
	r.mu.Lock()
	if r.snaps == nil {
		r.snaps = make(map[string]*localCall)
	}
	if c, ok := r.snaps[key]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
			return c.data, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &localCall{done: make(chan struct{})}
	r.snaps[key] = c
	r.mu.Unlock()

	donor, err := tvsched.NewSession(cfg)
	if err == nil {
		if err = donor.WarmupNeutral(ctx); err == nil {
			var snap *tvsched.Snapshot
			if snap, err = donor.Snapshot(); err == nil {
				c.data = snap.Data
			}
		}
	}
	c.err = err
	if err != nil {
		// Like the result map: a failed production (a canceled context most
		// of all) must not poison every later cell of the group.
		r.mu.Lock()
		delete(r.snaps, key)
		r.mu.Unlock()
	}
	close(c.done)
	return c.data, c.err
}
