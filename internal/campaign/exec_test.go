package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tvsched/internal/resil/chaos"
)

// fakeRunner resolves cells instantly with bytes that are a pure function of
// the cell — the determinism the real runners guarantee — while counting
// executions so resume tests can prove completed cells never re-run.
func fakeRunner(execs *atomic.Int64) Runner {
	return func(ctx context.Context, cell Cell) CellResult {
		execs.Add(1)
		body := fmt.Sprintf(`{"digest":%q,"seed":%d}`, cell.Config.Digest()[:12], cell.Config.Seed)
		return CellResult{Class: ClassRestored, Cache: "restored", Body: []byte(body)}
	}
}

func execPlan(t *testing.T) *Plan {
	t.Helper()
	plan, err := NewPlan(Spec{
		Benchmarks: []string{"bzip2", "sjeng"},
		Schemes:    []string{"ABS", "FFS"},
		Seeds:      []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestExecuteOrderedDeterministicStream: cells resolve concurrently and out
// of order, but the stream is index-ascending, gap-free, and byte-identical
// across runs.
func TestExecuteOrderedDeterministicStream(t *testing.T) {
	plan := execPlan(t)
	var first []byte
	for round := 0; round < 2; round++ {
		var execs atomic.Int64
		var out bytes.Buffer
		stats, err := Execute(context.Background(), plan, nil, fakeRunner(&execs), &out, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Done != plan.Total() || stats.Errors() != 0 {
			t.Fatalf("stats: %+v", stats)
		}
		if execs.Load() != int64(plan.Total()) {
			t.Fatalf("executions = %d, want %d", execs.Load(), plan.Total())
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(lines) != plan.Total() {
			t.Fatalf("lines = %d, want %d", len(lines), plan.Total())
		}
		for i, raw := range lines {
			var l Line
			if err := json.Unmarshal([]byte(raw), &l); err != nil {
				t.Fatalf("line %d: %v", i, err)
			}
			if l.Index != i {
				t.Fatalf("line %d carries index %d", i, l.Index)
			}
			if want := plan.Cell(i).Config.Digest(); l.Digest != want {
				t.Fatalf("line %d digest mismatch", i)
			}
		}
		if round == 0 {
			first = append([]byte(nil), out.Bytes()...)
		} else if !bytes.Equal(first, out.Bytes()) {
			t.Fatal("two runs of the same plan produced different streams")
		}
	}
}

// TestExecuteResumeByteIdentical is the resume contract end to end: run a
// journaled campaign, tear the journal's tail (a SIGKILL mid-append), and
// re-execute. The resumed stream must equal the uninterrupted one
// byte-for-byte, and only the cells the tear reverted may execute again.
func TestExecuteResumeByteIdentical(t *testing.T) {
	plan := execPlan(t)
	dir := t.TempDir()

	// Uninterrupted reference run, journal-less.
	var refExecs atomic.Int64
	var ref bytes.Buffer
	if _, err := Execute(context.Background(), plan, nil, fakeRunner(&refExecs), &ref, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}

	// Journaled run, then a torn tail.
	path := filepath.Join(dir, "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	var execs1 atomic.Int64
	var out1 bytes.Buffer
	if _, err := Execute(context.Background(), plan, j, fakeRunner(&execs1), &out1, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if !bytes.Equal(ref.Bytes(), out1.Bytes()) {
		t.Fatal("journaled and journal-less streams differ")
	}
	if err := chaos.TearTail(path, 5); err != nil {
		t.Fatal(err)
	}

	// Resume: the torn cell re-executes, every other cell replays.
	j2, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	completed := j2.DoneCount()
	if completed != plan.Total()-1 {
		t.Fatalf("tear reverted %d cells, want 1", plan.Total()-completed)
	}
	var execs2 atomic.Int64
	var out2 bytes.Buffer
	stats, err := Execute(context.Background(), plan, j2, fakeRunner(&execs2), &out2, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !bytes.Equal(ref.Bytes(), out2.Bytes()) {
		t.Fatalf("resumed stream diverges from uninterrupted run:\n--- want\n%s\n--- got\n%s", ref.String(), out2.String())
	}
	if got := execs2.Load(); got != 1 {
		t.Fatalf("resume re-executed %d cells, want exactly the torn one", got)
	}
	if stats.Replayed != completed || stats.Done != plan.Total() {
		t.Fatalf("resume stats: %+v (want replayed %d)", stats, completed)
	}

	// A second resume is a pure replay: zero executions, same bytes.
	j3, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	var execs3 atomic.Int64
	var out3 bytes.Buffer
	if _, err := Execute(context.Background(), plan, j3, fakeRunner(&execs3), &out3, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if execs3.Load() != 0 {
		t.Fatalf("pure replay executed %d cells", execs3.Load())
	}
	if !bytes.Equal(ref.Bytes(), out3.Bytes()) {
		t.Fatal("pure replay diverges from uninterrupted run")
	}
}

// TestExecuteErrorCellsBecomeLines: a failing cell is a line with an error
// field and an accounting entry, never an Execute error.
func TestExecuteErrorCellsBecomeLines(t *testing.T) {
	plan := execPlan(t)
	runner := func(ctx context.Context, cell Cell) CellResult {
		if cell.Index == 3 {
			return CellResult{Class: ClassError, Cache: "error", Err: fmt.Errorf("boom %d", cell.Index)}
		}
		return CellResult{Class: ClassCold, Cache: "miss", Body: []byte(`{"ok":true}`)}
	}
	var out bytes.Buffer
	stats, err := Execute(context.Background(), plan, nil, runner, &out, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors() != 1 {
		t.Fatalf("errors = %d, want 1", stats.Errors())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var l Line
	if err := json.Unmarshal([]byte(lines[3]), &l); err != nil {
		t.Fatal(err)
	}
	if l.Error != "boom 3" || l.Report != nil {
		t.Fatalf("error line: %+v", l)
	}
}

// TestExecuteHeartbeats: opt-in heartbeats interleave progress/v1 records on
// the heartbeat writer and always close with done == total; the cell stream
// stays untouched when heartbeats go to a side writer.
func TestExecuteHeartbeats(t *testing.T) {
	plan := execPlan(t)
	slow := func(ctx context.Context, cell Cell) CellResult {
		time.Sleep(5 * time.Millisecond)
		return CellResult{Class: ClassCold, Cache: "miss", Body: []byte(`{"ok":true}`)}
	}
	var out, hb bytes.Buffer
	_, err := Execute(context.Background(), plan, nil, slow, &out, Options{
		Workers: 2, Heartbeat: 3 * time.Millisecond, HeartbeatW: &hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(out.String()), "\n")); got != plan.Total() {
		t.Fatalf("cell stream carries %d lines, want %d", got, plan.Total())
	}
	hbLines := strings.Split(strings.TrimSpace(hb.String()), "\n")
	if len(hbLines) == 0 || hb.Len() == 0 {
		t.Fatal("no heartbeats emitted")
	}
	var last ProgressLine
	if err := json.Unmarshal([]byte(hbLines[len(hbLines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Schema != ProgressSchema || last.Done != plan.Total() || last.Total != plan.Total() || last.EtaSec != 0 {
		t.Fatalf("final heartbeat: %+v", last)
	}
}

// TestExecuteCancelStops: canceling the context aborts the campaign with the
// context error; the journal keeps what finished.
func TestExecuteCancelStops(t *testing.T) {
	plan := execPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	block := make(chan struct{})
	runner := func(rctx context.Context, cell Cell) CellResult {
		if cell.Index >= 2 {
			<-block
		}
		return CellResult{Class: ClassCold, Cache: "miss", Body: []byte(`{"ok":true}`)}
	}
	path := filepath.Join(t.TempDir(), "c.tvcj")
	j, err := OpenJournal(path, plan)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		_, err := Execute(ctx, plan, j, runner, &out, Options{Workers: 2})
		done <- err
	}()
	// Let the first cells land, then cancel mid-flight.
	deadline := time.After(5 * time.Second)
	for j.DoneCount() < 2 {
		select {
		case <-deadline:
			t.Fatal("first cells never completed")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled Execute returned nil")
	}
	close(block)
	j.Close()

	_, plan2, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Hash() != plan.Hash() {
		t.Fatal("journal identity lost across cancel")
	}
}
