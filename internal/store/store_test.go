package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	body := []byte(`{"ipc":1.5}` + "\n")
	if err := s.Put("sha256:abc", body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("sha256:abc")
	if err != nil || !ok || !bytes.Equal(got, body) {
		t.Fatalf("get: %q ok=%v err=%v, want %q", got, ok, err, body)
	}
	if _, ok, _ := s.Get("sha256:nope"); ok {
		t.Fatal("phantom hit")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
}

// TestReopenRebuildsIndex is the persistence property the serving layer's
// restart story rests on: everything acknowledged before Close is served
// after a fresh Open, byte-identical.
func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("digest-%02d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i)
		want[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede one entry with different-length bytes: last write must win
	// across the reopen.
	want["digest-03"] = []byte("superseded-much-longer-body")
	if err := s.Put("digest-03", want["digest-03"]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := mustOpen(t, dir, 0)
	if r.Truncated != 0 {
		t.Fatalf("clean log reported %d truncated bytes", r.Truncated)
	}
	if r.Len() != len(want) {
		t.Fatalf("reopened len %d, want %d", r.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := r.Get(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("%s after reopen: %q ok=%v err=%v, want %q", k, got, ok, err, v)
		}
	}
}

// TestCorruptTailTruncated simulates a crash mid-append: the damaged tail is
// discarded on open, every record before it survives.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("good", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-half-record-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpen(t, dir, 0)
	if r.Truncated == 0 {
		t.Fatal("torn tail not reported")
	}
	got, ok, err := r.Get("good")
	if err != nil || !ok || string(got) != "intact" {
		t.Fatalf("record before the torn tail lost: %q ok=%v err=%v", got, ok, err)
	}
	// The truncation must be durable: a third open sees a clean log.
	r.Close()
	rr := mustOpen(t, dir, 0)
	if rr.Truncated != 0 {
		t.Fatalf("truncation did not persist (%d bytes reported)", rr.Truncated)
	}
}

// TestCorruptMiddleStopsScan pins the recovery rule: the scan stops at the
// first damaged record, so entries after it are sacrificed (the log is a
// prefix-valid structure, not a skip list).
func TestCorruptMiddleStopsScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("first", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	firstEnd := s.size
	if err := s.Put("second", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's body.
	if _, err := f.WriteAt([]byte{0xFF}, firstEnd+headerLen+int64(len("second"))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpen(t, dir, 0)
	if r.Len() != 1 || r.Truncated == 0 {
		t.Fatalf("len %d truncated %d, want the scan to stop at the corrupt record", r.Len(), r.Truncated)
	}
	if _, ok, _ := r.Get("second"); ok {
		t.Fatal("corrupt record served")
	}
}

// TestCompactionEvictsColdest fills past the byte bound and checks the LRU
// contract: recently used entries survive compaction, the cold tail goes.
func TestCompactionEvictsColdest(t *testing.T) {
	dir := t.TempDir()
	body := bytes.Repeat([]byte("x"), 100)
	recLen := int64(headerLen + len("key-00") + len(body))
	s := mustOpen(t, dir, 5*recLen)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), body); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key-00 so key-01 is the coldest when the bound trips.
	if _, ok, _ := s.Get("key-00"); !ok {
		t.Fatal("key-00 missing before compaction")
	}
	if err := s.Put("key-05", body); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("key-01"); ok {
		t.Fatal("coldest entry survived compaction")
	}
	for _, k := range []string{"key-00", "key-02", "key-03", "key-04", "key-05"} {
		if _, ok, _ := s.Get(k); !ok {
			t.Fatalf("%s evicted, want only the coldest gone", k)
		}
	}
	if s.Bytes() > 5*recLen {
		t.Fatalf("live bytes %d over bound %d after compaction", s.Bytes(), 5*recLen)
	}

	// Recency must survive the compaction rewrite: reopen and check the
	// same set is present.
	s.Close()
	r := mustOpen(t, dir, 5*recLen)
	if r.Len() != 5 {
		t.Fatalf("reopened len %d, want 5", r.Len())
	}
	if _, ok, _ := r.Get("key-00"); !ok {
		t.Fatal("key-00 lost across compaction+reopen")
	}
}

// TestCompactionDropsDeadBytes: superseding the same digest repeatedly
// leaves dead records; compaction reclaims them without losing live data.
func TestCompactionDropsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 4096)
	for i := 0; i < 200; i++ {
		// Alternate lengths so every Put supersedes rather than dedupes.
		if err := s.Put("hot", bytes.Repeat([]byte("y"), 100+i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
	if s.size > 4096 {
		t.Fatalf("log size %d never compacted under bound 4096", s.size)
	}
	got, ok, err := s.Get("hot")
	if err != nil || !ok || len(got) != 100+199%2 {
		t.Fatalf("live entry lost after dead-byte compaction: ok=%v err=%v len=%d", ok, err, len(got))
	}
}

func TestKeysRecencyOrder(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Get("a")
	got := s.Keys()
	want := []string{"a", "c", "b"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("keys %v, want %v", got, want)
	}
}

// TestConcurrentAccess lets the race detector audit the single-lock design.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 64<<10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k-%d-%d", g, i%10)
				if err := s.Put(k, bytes.Repeat([]byte{byte(g)}, 64)); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
				s.Keys()
				s.Bytes()
			}
		}(g)
	}
	wg.Wait()
}
