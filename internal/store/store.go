// Package store is a disk-backed content-addressed result store: config
// digest → the exact response bytes served for it. It is the persistence
// layer under internal/serve's in-memory LRU, so a result computed before a
// restart or deploy is served afterwards without re-simulating.
//
// The on-disk format is a single append-only log (store.log). Every write
// appends one self-describing record — magic, digest length, body length, a
// CRC-32 over digest+body, then the digest and body bytes — and fsyncs
// before the write is acknowledged, so an acknowledged Put survives a crash.
// Open rebuilds the index by scanning the log; a torn or corrupt tail
// (crash mid-append) is truncated at the last intact record rather than
// failing the open, and the truncated byte count is reported so the caller
// can log it.
//
// The store is bounded by bytes, not entries, because response bodies vary
// in size. Recency is tracked like an LRU (Get refreshes), and when the log
// file outgrows MaxBytes — from live data or from dead, superseded records —
// the store compacts: live entries are rewritten coldest-first into a fresh
// log (so a rebuild recovers the same recency order), dropping the coldest
// entries while the live set exceeds the bound, and the new log atomically
// replaces the old via rename.
//
// The determinism contract makes digests true content addresses: two Puts
// of one digest must carry identical bytes. Put with different bytes still
// works (last write wins) — the serving layer's anti-entropy sweep is the
// place that treats such divergence as the loud bug it is.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	logName = "store.log"
	tmpName = "store.log.tmp"

	recMagic  = 0x54565253 // "TVRS"
	headerLen = 4 + 2 + 4 + 4

	maxDigestLen = 256
	maxBodyLen   = 1 << 30

	// DefaultMaxBytes bounds the log when Open is given no bound: 256 MiB.
	DefaultMaxBytes = 256 << 20
)

// ErrCorrupt reports a record whose header or checksum failed verification
// on Get — the entry is treated as lost, never served.
var ErrCorrupt = errors.New("store: corrupt record")

// Store is a bounded, crash-tolerant digest → bytes map. All methods are
// safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	f        *os.File
	size     int64      // log file length, dead records included
	live     int64      // bytes of records the index still points at
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	// Truncated is the number of trailing bytes Open discarded as torn or
	// corrupt. Read it once after Open (it is not updated afterwards).
	Truncated int64
}

type entry struct {
	key string
	off int64
	n   int64 // whole record length
}

// Open opens (creating if needed) the store in dir. maxBytes <= 0 takes
// DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		f:        f,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	if err := s.rebuild(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// rebuild scans the log front to back, indexing every intact record (later
// records are more recent; a digest appearing twice resolves to its last
// record) and truncating the file at the first damaged one.
func (s *Store) rebuild() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	total := fi.Size()
	var off int64
	for off < total {
		key, n, err := s.readRecordAt(off, nil)
		if err != nil {
			break // torn tail: keep what we have, truncate the rest
		}
		if el, ok := s.items[key]; ok {
			old := el.Value.(*entry)
			s.live -= old.n
			s.ll.Remove(el)
		}
		s.items[key] = s.ll.PushFront(&entry{key: key, off: off, n: n})
		s.live += n
		off += n
	}
	if off < total {
		s.Truncated = total - off
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.size = off
	return nil
}

// readRecordAt parses one record. With body non-nil the body bytes are
// appended to *body; either way the digest and whole-record length return.
func (s *Store) readRecordAt(off int64, body *[]byte) (string, int64, error) {
	var hdr [headerLen]byte
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return "", 0, err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	dlen := int(binary.LittleEndian.Uint16(hdr[4:6]))
	blen := int(binary.LittleEndian.Uint32(hdr[6:10]))
	sum := binary.LittleEndian.Uint32(hdr[10:14])
	if magic != recMagic || dlen == 0 || dlen > maxDigestLen || blen > maxBodyLen {
		return "", 0, ErrCorrupt
	}
	payload := make([]byte, dlen+blen)
	if _, err := s.f.ReadAt(payload, off+headerLen); err != nil {
		return "", 0, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return "", 0, ErrCorrupt
	}
	if body != nil {
		*body = append(*body, payload[dlen:]...)
	}
	return string(payload[:dlen]), int64(headerLen + dlen + blen), nil
}

// Get returns the stored bytes for digest and refreshes its recency.
func (s *Store) Get(digest string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[digest]
	if !ok {
		return nil, false, nil
	}
	e := el.Value.(*entry)
	var body []byte
	key, _, err := s.readRecordAt(e.off, &body)
	if err != nil || key != digest {
		// The record rotted under us (should not happen outside disk
		// faults); drop it from the index rather than serving garbage.
		s.ll.Remove(el)
		delete(s.items, digest)
		s.live -= e.n
		if err == nil {
			err = ErrCorrupt
		}
		return nil, false, fmt.Errorf("store: get %s: %w", digest, err)
	}
	s.ll.MoveToFront(el)
	return body, true, nil
}

// Put appends digest → body and fsyncs. Re-putting a known digest only
// refreshes its recency (the bytes are content-addressed, so they are taken
// to be identical); a genuinely different body may be forced in by the
// last-write-wins append path when the lengths differ.
func (s *Store) Put(digest string, body []byte) error {
	if len(digest) == 0 || len(digest) > maxDigestLen {
		return fmt.Errorf("store: bad digest length %d", len(digest))
	}
	if len(body) > maxBodyLen {
		return fmt.Errorf("store: body too large (%d bytes)", len(body))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[digest]; ok {
		e := el.Value.(*entry)
		if e.n == int64(headerLen+len(digest)+len(body)) {
			s.ll.MoveToFront(el)
			return nil
		}
		// Different length ⇒ definitely different bytes: supersede.
		s.ll.Remove(el)
		delete(s.items, digest)
		s.live -= e.n
	}
	rec := make([]byte, headerLen, headerLen+len(digest)+len(body))
	rec = append(rec, digest...)
	rec = append(rec, body...)
	binary.LittleEndian.PutUint32(rec[0:4], recMagic)
	binary.LittleEndian.PutUint16(rec[4:6], uint16(len(digest)))
	binary.LittleEndian.PutUint32(rec[6:10], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[10:14], crc32.ChecksumIEEE(rec[headerLen:]))
	off := s.size
	if _, err := s.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size += int64(len(rec))
	s.live += int64(len(rec))
	s.items[digest] = s.ll.PushFront(&entry{key: digest, off: off, n: int64(len(rec))})
	if s.size > s.maxBytes {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the live set into a fresh log, dropping the
// coldest entries while the live bytes exceed the bound, and atomically
// swaps it in. Callers hold s.mu.
func (s *Store) compactLocked() error {
	// Decide the survivors hottest-first, then write them coldest-first so
	// a rebuild recovers the same recency order.
	var survivors []*entry
	var kept int64
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if kept+e.n > s.maxBytes && len(survivors) > 0 {
			break // everything colder than this is evicted
		}
		survivors = append(survivors, e)
		kept += e.n
	}
	tmpPath := filepath.Join(s.dir, tmpName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	var out int64
	newOff := make([]int64, len(survivors))
	for i := len(survivors) - 1; i >= 0; i-- { // coldest first
		e := survivors[i]
		rec := make([]byte, e.n)
		if _, err := s.f.ReadAt(rec, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := tmp.WriteAt(rec, out); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		newOff[i] = out
		out += e.n
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f = tmp

	// Rebuild the index over the survivors, preserving recency.
	s.ll.Init()
	s.items = make(map[string]*list.Element, len(survivors))
	s.live = 0
	for i := len(survivors) - 1; i >= 0; i-- { // coldest first: PushFront ends hottest-first
		e := survivors[i]
		s.items[e.key] = s.ll.PushFront(&entry{key: e.key, off: newOff[i], n: e.n})
		s.live += e.n
	}
	s.size = out
	return nil
}

// Len is the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes is the live record bytes (header overhead included).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Keys lists the live digests, most recently used first.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// Close releases the log file handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
