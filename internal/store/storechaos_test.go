package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tvsched/internal/resil/chaos"
)

// recordSize is the on-disk footprint of one record, for tests that need
// to tear the log at exact frame boundaries.
func recordSize(digest string, body []byte) int64 {
	return int64(headerLen + len(digest) + len(body))
}

// TestTornTailOnFrameBoundary pins the Truncated accounting at its edge:
// a crash that happens to cut the log exactly between two records loses
// the tail record but leaves a perfectly well-formed file — Open must
// report zero truncated bytes, because nothing it kept was damaged.
func TestTornTailOnFrameBoundary(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	keep1, keep2, lost := []byte("first\n"), []byte("second\n"), []byte("third, torn away\n")
	if err := s.Put("digest-1", keep1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-2", keep2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-3", lost); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if err := chaos.TearTail(filepath.Join(dir, logName), recordSize("digest-3", lost)); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, 0)
	if r.Truncated != 0 {
		t.Fatalf("Truncated = %d after a frame-boundary tear, want 0 (the file is well-formed)", r.Truncated)
	}
	if r.Len() != 2 {
		t.Fatalf("len %d, want 2", r.Len())
	}
	for key, want := range map[string][]byte{"digest-1": keep1, "digest-2": keep2} {
		got, ok, err := r.Get(key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("get %s: %q ok=%v err=%v, want %q", key, got, ok, err, want)
		}
	}
	if _, ok, _ := r.Get("digest-3"); ok {
		t.Fatal("the torn-away record still serves")
	}
}

// TestTornTailMidRecord cuts the log inside the final record and checks
// Open discards exactly the partial bytes — Truncated equals what was left
// of the damaged record, and every earlier record survives.
func TestTornTailMidRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	keep, lost := []byte("survivor\n"), []byte("this record gets torn mid-body\n")
	if err := s.Put("digest-a", keep); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-b", lost); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	const torn = 5 // bytes sheared off the end, mid-record
	if err := chaos.TearTail(filepath.Join(dir, logName), torn); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, 0)
	wantTrunc := recordSize("digest-b", lost) - torn
	if r.Truncated != wantTrunc {
		t.Fatalf("Truncated = %d, want %d (the partial record left behind)", r.Truncated, wantTrunc)
	}
	if got, ok, err := r.Get("digest-a"); err != nil || !ok || !bytes.Equal(got, keep) {
		t.Fatalf("get digest-a: %q ok=%v err=%v, want %q", got, ok, err, keep)
	}
	if _, ok, _ := r.Get("digest-b"); ok {
		t.Fatal("the torn record still serves")
	}
}

// TestFlippedBitInBody flips one bit inside the last record's body and
// checks the CRC catches it: Open drops exactly that record (Truncated is
// its full size), never serving silently corrupted bytes.
func TestFlippedBitInBody(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	keep, poisoned := []byte("clean\n"), []byte("one of these bits is about to flip\n")
	if err := s.Put("digest-x", keep); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-y", poisoned); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Offset -10 lands inside the last record's body (well past its
	// digest), counted from the end of the file.
	if err := chaos.FlipBit(filepath.Join(dir, logName), -10, 3); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, 0)
	if want := recordSize("digest-y", poisoned); r.Truncated != want {
		t.Fatalf("Truncated = %d, want %d (the whole poisoned record)", r.Truncated, want)
	}
	if got, ok, err := r.Get("digest-x"); err != nil || !ok || !bytes.Equal(got, keep) {
		t.Fatalf("get digest-x: %q ok=%v err=%v, want %q", got, ok, err, keep)
	}
	if _, ok, _ := r.Get("digest-y"); ok {
		t.Fatal("the bit-flipped record still serves")
	}
}

// TestGarbageHeaderStopsScan smashes a bit in the magic of the final
// record's header: the scan must stop there cleanly and truncate it.
func TestGarbageHeaderStopsScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	keep, lost := []byte("intact\n"), []byte("header about to rot\n")
	if err := s.Put("digest-k", keep); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("digest-l", lost); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The final record starts headerLen+digest+body bytes from the end;
	// flip a bit in its first header byte (the magic).
	off := -recordSize("digest-l", lost)
	if err := chaos.FlipBit(filepath.Join(dir, logName), off, 0); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, 0)
	if want := recordSize("digest-l", lost); r.Truncated != want {
		t.Fatalf("Truncated = %d, want %d", r.Truncated, want)
	}
	if got, ok, err := r.Get("digest-k"); err != nil || !ok || !bytes.Equal(got, keep) {
		t.Fatalf("get digest-k: %q ok=%v err=%v, want %q", got, ok, err, keep)
	}
}

// TestCompactionRacesConcurrentGets hammers reads against a store whose
// bound forces compaction after compaction, pinning the locking contract:
// every Get during a compaction returns either a clean miss (evicted) or
// the exact bytes written for that key — never torn or relocated garbage.
// Run under -race this also audits the offset bookkeeping the swap does.
func TestCompactionRacesConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	// Each record is ~1 KiB; a 4 KiB bound keeps compaction continuous.
	s := mustOpen(t, dir, 4096)

	value := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i%26)}, 1000)
	}
	key := func(i int) string { return fmt.Sprintf("digest-%03d", i) }

	const writes = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % writes
				got, ok, err := s.Get(key(k))
				if err != nil {
					t.Errorf("get %s: %v", key(k), err)
					return
				}
				if ok && !bytes.Equal(got, value(k)) {
					t.Errorf("get %s returned wrong bytes under compaction", key(k))
					return
				}
			}
		}(g)
	}
	for i := 0; i < writes; i++ {
		if err := s.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The bound held throughout and the hottest entries still read back.
	if s.Bytes() > 4096 {
		t.Fatalf("live bytes %d exceed the 4096 bound after compactions", s.Bytes())
	}
	last := key(writes - 1)
	if got, ok, err := s.Get(last); err != nil || !ok || !bytes.Equal(got, value(writes-1)) {
		t.Fatalf("hottest key %s lost across compactions: ok=%v err=%v", last, ok, err)
	}
}
