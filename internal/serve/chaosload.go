package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ChaosLoadReportSchema tags the chaos drill artifact (cmd/tvload -chaos).
// Documented in EXPERIMENTS.md alongside cluster-load-report/v1.
const ChaosLoadReportSchema = "tvsched/chaos-load-report/v1"

// ChaosLoadConfig parameterizes a chaos drill: the same sprayed seeded mix
// as ClusterLoadConfig, against a cluster whose nodes are running with
// fault injection (tvservd -chaos) — typically a peer blackout window. The
// drill measures what clients experienced (availability, degraded serving),
// then drives anti-entropy over HTTP and re-audits every digest across all
// nodes for byte divergence.
type ChaosLoadConfig struct {
	// URLs are the base URLs of every cluster node (at least one).
	URLs []string
	// Load shapes the request mix; Load.URL is ignored.
	Load LoadConfig
	// RepairRounds is how many anti-entropy passes to drive per node after
	// the load (default 2: the first may repair or replicate, the second
	// confirms convergence).
	RepairRounds int
}

// ChaosLoadReport is the machine-readable outcome of a chaos drill (schema
// tvsched/chaos-load-report/v1). The headline numbers are Availability —
// the fraction of requests answered 200 despite the injected faults —
// Degraded (answers a non-owner computed because the owner was dark; the
// mechanism that keeps availability up), and PostRepairDivergences, which
// must be zero: after the drill and anti-entropy, every node holds
// byte-identical replicas. cmd/tvgate -chaos gates on all three.
type ChaosLoadReport struct {
	Schema      string  `json:"schema"`
	Nodes       int     `json:"nodes"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Population  int     `json:"population"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        uint64  `json:"seed"`
	DurationSec float64 `json:"duration_sec"`

	// OK counts 200 answers; Availability is OK over all completed
	// requests (200 + 429 + errors).
	OK           uint64  `json:"ok"`
	Availability float64 `json:"availability"`
	Hits         uint64  `json:"hits"`
	Shared       uint64  `json:"shared"`
	Misses       uint64  `json:"misses"`
	// Degraded is the subset of misses a node computed on behalf of an
	// unreachable owner (X-Tvsched-Source: compute-degraded); Stolen is the
	// subset served by another node's bytes (forward or peer).
	Degraded uint64 `json:"degraded"`
	Stolen   uint64 `json:"stolen"`
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	// Divergences is the client-side byte-consistency count during the
	// load (responses disagreeing with earlier bytes for their digest).
	Divergences uint64         `json:"divergences"`
	Latency     LatencySummary `json:"latency_us"`

	// The anti-entropy accounting, summed over RepairRounds passes driven
	// on every node (POST /v1/anti-entropy).
	RepairChecked  uint64 `json:"repair_checked"`
	RepairDiverged uint64 `json:"repair_diverged"`
	Repaired       uint64 `json:"repaired"`
	// PostRepairDivergences counts digests for which two nodes still hold
	// different bytes after the repair passes. Determinism makes the only
	// acceptable value zero.
	PostRepairDigests     int    `json:"post_repair_digests"`
	PostRepairDivergences uint64 `json:"post_repair_divergences"`

	// BreakerTransitions is each node's circuit-breaker activity, scraped
	// from /metrics: "peer→state" → transition count, summed across nodes.
	BreakerTransitions map[string]uint64 `json:"breaker_transitions,omitempty"`
}

// RunChaosLoad drives the drill: sprayed load, per-node anti-entropy, then
// a full cross-node byte audit of every digest the load touched.
func RunChaosLoad(ctx context.Context, cfg ChaosLoadConfig) (*ChaosLoadReport, error) {
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("chaos: no cluster URLs")
	}
	rounds := cfg.RepairRounds
	if rounds <= 0 {
		rounds = 2
	}
	load := cfg.Load
	load.fill()
	cells := load.population()
	bodies := make([][]byte, len(cells))
	for i, cell := range cells {
		b, err := json.Marshal(cell)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	type tally struct {
		ok, hits, shared, misses, degraded, stolen, rejected, errors uint64
		lat                                                          []float64 // µs
	}
	tallies := make([]tally, load.Concurrency)
	var (
		seenMu      sync.Mutex
		seen        = make(map[string]uint64) // digest → first body hash
		divergences uint64
	)
	checkBytes := func(digest string, body []byte) {
		if digest == "" {
			return
		}
		h := fnv.New64a()
		h.Write(body)
		sum := h.Sum64()
		seenMu.Lock()
		if prev, ok := seen[digest]; !ok {
			seen[digest] = sum
		} else if prev != sum {
			divergences++
		}
		seenMu.Unlock()
	}

	var issued int64
	var issuedMu sync.Mutex
	next := func() bool {
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(load.Requests) {
			return false
		}
		issued++
		return true
	}

	client := &http.Client{Timeout: load.Timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < load.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(load.Seed) + int64(w)))
			var zipf *rand.Zipf
			if load.ZipfS > 1 && len(cells) > 1 {
				zipf = rand.NewZipf(rng, load.ZipfS, 1, uint64(len(cells)-1))
			}
			ta := &tallies[w]
			for next() {
				if ctx.Err() != nil {
					return
				}
				idx := 0
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else if len(cells) > 1 {
					idx = rng.Intn(len(cells))
				}
				node := rng.Intn(len(cfg.URLs))
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.URLs[node]+"/v1/run", bytes.NewReader(bodies[idx]))
				if err != nil {
					ta.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					ta.errors++
					continue
				}
				body, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, float64(time.Since(t0).Microseconds()))
				switch {
				case readErr != nil:
					ta.errors++
				case resp.StatusCode == http.StatusTooManyRequests:
					ta.rejected++
				case resp.StatusCode != http.StatusOK:
					ta.errors++
				default:
					ta.ok++
					checkBytes(resp.Header.Get("X-Tvsched-Digest"), body)
					switch resp.Header.Get("X-Tvsched-Cache") {
					case "hit":
						ta.hits++
					case "shared":
						ta.shared++
					default:
						ta.misses++
						switch resp.Header.Get(SourceHeader) {
						case "compute-degraded":
							ta.degraded++
						case "forward", "peer":
							ta.stolen++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := &ChaosLoadReport{
		Schema:      ChaosLoadReportSchema,
		Nodes:       len(cfg.URLs),
		Concurrency: load.Concurrency,
		Requests:    load.Requests,
		Population:  load.Population,
		ZipfS:       load.ZipfS,
		Seed:        load.Seed,
		DurationSec: dur.Seconds(),
		Divergences: divergences,
	}
	var allLat []float64
	for w := range tallies {
		ta := &tallies[w]
		rep.OK += ta.ok
		rep.Hits += ta.hits
		rep.Shared += ta.shared
		rep.Misses += ta.misses
		rep.Degraded += ta.degraded
		rep.Stolen += ta.stolen
		rep.Rejected += ta.rejected
		rep.Errors += ta.errors
		allLat = append(allLat, ta.lat...)
	}
	rep.Latency = summarize(allLat)
	if done := rep.OK + rep.Rejected + rep.Errors; done > 0 {
		rep.Availability = float64(rep.OK) / float64(done)
	}

	// Anti-entropy: drive the sweep on every node, twice by default — the
	// first pass flushes owed replicas and repairs divergences, the second
	// confirms the cluster converged (and should check clean).
	for round := 0; round < rounds; round++ {
		for _, u := range cfg.URLs {
			checked, diverged, repaired, err := postAntiEntropy(ctx, client, u)
			if err != nil {
				return nil, fmt.Errorf("chaos: anti-entropy on %s: %w", u, err)
			}
			rep.RepairChecked += checked
			rep.RepairDiverged += diverged
			rep.Repaired += repaired
		}
	}

	// Post-repair audit: re-fetch every digest the load touched from every
	// node and require all replicas (wherever they exist) byte-identical.
	digests := make([]string, 0, len(seen))
	for d := range seen {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	rep.PostRepairDigests = len(digests)
	for _, d := range digests {
		var sums []uint64
		for _, u := range cfg.URLs {
			body, ok, err := fetchResult(ctx, client, u, d)
			if err != nil {
				return nil, fmt.Errorf("chaos: audit fetch %s from %s: %w", d, u, err)
			}
			if !ok {
				continue // this node never held the digest; not a divergence
			}
			h := fnv.New64a()
			h.Write(body)
			sums = append(sums, h.Sum64())
		}
		for _, sum := range sums[1:] {
			if sum != sums[0] {
				rep.PostRepairDivergences++
				break
			}
		}
	}

	// Breaker telemetry, straight from each node's exposition.
	rep.BreakerTransitions = make(map[string]uint64)
	for _, u := range cfg.URLs {
		if err := scrapeBreakerTransitions(ctx, client, u, rep.BreakerTransitions); err != nil {
			return nil, fmt.Errorf("chaos: metrics scrape on %s: %w", u, err)
		}
	}
	if len(rep.BreakerTransitions) == 0 {
		rep.BreakerTransitions = nil
	}
	return rep, nil
}

// postAntiEntropy triggers one sweep on a node and decodes its accounting.
func postAntiEntropy(ctx context.Context, client *http.Client, url string) (checked, diverged, repaired uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/anti-entropy", nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Checked  uint64 `json:"checked"`
		Diverged uint64 `json:"diverged"`
		Repaired uint64 `json:"repaired"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, 0, err
	}
	return out.Checked, out.Diverged, out.Repaired, nil
}

// fetchResult reads one digest's bytes from a node's peer endpoint; a 404
// is a clean miss, not an error.
func fetchResult(ctx context.Context, client *http.Client, url, digest string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/result/"+digest, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
}

// scrapeBreakerTransitions folds one node's serve_breaker_transitions_total
// samples into sums, keyed "peer→state". The parse is deliberately loose on
// the metric-name prefix (the namespace is a deploy choice) and strict on
// the label shape the exposition writes.
func scrapeBreakerTransitions(ctx context.Context, client *http.Client, url string, into map[string]uint64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		idx := strings.Index(line, "serve_breaker_transitions_total{peer=\"")
		if idx < 0 || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line[idx+len("serve_breaker_transitions_total{peer=\""):]
		q := strings.Index(rest, "\"")
		if q < 0 {
			continue
		}
		peer := rest[:q]
		rest = rest[q:]
		const toKey = ",to=\""
		ti := strings.Index(rest, toKey)
		if ti < 0 {
			continue
		}
		rest = rest[ti+len(toKey):]
		q = strings.Index(rest, "\"")
		if q < 0 {
			continue
		}
		state := rest[:q]
		fields := strings.Fields(strings.TrimPrefix(rest[q+1:], "}"))
		if len(fields) < 1 {
			continue
		}
		v, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			continue
		}
		into[peer+"→"+state] += v
	}
	return nil
}

// WriteJSON emits the report with stable indentation.
func (r *ChaosLoadReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ChaosLoadReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
