// Package serve is the simulation-serving subsystem behind cmd/tvservd: an
// HTTP/JSON service that executes tvsched simulations on a bounded worker
// pool and answers with the machine-readable obs.RunReport the rest of the
// repo already speaks.
//
// The serving mechanics exploit the library's determinism end to end. Every
// request is normalized and content-addressed (tvsched.Config.Digest over
// the canonical JSON form), and the digest keys two layers:
//
//   - a bounded LRU result cache holding the exact response bytes, so a
//     repeat request is served byte-identical without simulating;
//   - a singleflight table collapsing concurrent identical requests onto
//     one in-flight simulation, so a thundering herd of N equal requests
//     costs one run, not N.
//
// Admission is bounded: at most Workers simulations execute concurrently
// and at most QueueDepth more may wait; beyond that the server sheds load
// with 429 and a Retry-After estimate instead of queueing unboundedly.
// Request deadlines propagate into the pipeline via context (cancellation
// lands within 256 simulated cycles), and SIGTERM drains gracefully: the
// daemon stops admitting, finishes what is in flight, then exits.
//
// POST /v1/run answers one request; POST /v1/sweep fans a cross-product
// sweep across the pool and streams per-cell results as NDJSON in
// deterministic cell order. GET /healthz, /readyz and /metrics (Prometheus
// text format, including queue depth, cache hit/miss, in-flight and latency
// histograms via obs.ServeMetrics) complete the operational surface.
// cmd/tvload is the matching closed-loop load generator.
//
// Two optional layers extend the digest addressing beyond one process:
//
//   - a persistent result store (Config.Store, internal/store) the LRU reads
//     through and every computed result is written back to, so a restart
//     serves its old answers from disk instead of recomputing them;
//   - a cluster ring (SetPeers, internal/cluster) that assigns each digest
//     an owning node by rendezvous hashing. Any node accepts any request; a
//     non-owner forwards to the owner (cluster-wide singleflight), the owner
//     read-throughs its peers before computing, and GET /v1/result/{digest}
//     serves locally held bytes to peers without ever computing. A periodic
//     anti-entropy sweep cross-checks replicated digests byte-for-byte —
//     determinism makes any divergence a bug, surfaced as a counter and an
//     error log, never an acceptable inconsistency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"tvsched"
	"tvsched/internal/campaign"
	"tvsched/internal/cluster"
	"tvsched/internal/experiments"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
	"tvsched/internal/resil"
	"tvsched/internal/store"
)

// ErrBusy reports a full admission queue; handlers map it to HTTP 429.
var ErrBusy = errors.New("admission queue full")

// StatusClientClosedRequest is nginx's 499: the client closed its connection
// before the server answered. It is the client's doing — not overload, not a
// server fault — so it must never masquerade as a 503 in logs or metrics.
const StatusClientClosedRequest = 499

// errMethod reports a request with the wrong HTTP method.
var errMethod = errors.New("method not allowed")

// Runner executes one normalized simulation config; checkpoint says whether
// the run may share the server's warm-state snapshot cache. It is a seam for
// tests (which substitute counting or blocking stubs); the default runner
// drives a tvsched.Session with a per-run shard of the server's pipeline
// metrics attached.
//
// All server runs use neutral warmup (tvsched.Session.WarmupNeutral): the
// warmup phase executes at the nominal supply and the retarget to the
// requested (scheme, VDD) happens when measurement begins. Neutral warm state
// is scheme- and VDD-independent, so whether a run restores a cached
// checkpoint or warms up from scratch cannot change a single response byte —
// checkpoint only decides whether the warmup cost is paid again.
type Runner func(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error)

// RunInfo reports how a Runner produced its result — the per-cell provenance
// the campaign accounting (progress heartbeats, span tags, capacity
// planning) observes. It never affects the result bytes.
type RunInfo struct {
	// Restored is true when the run skipped its warmup phase by restoring a
	// cached warm-state snapshot; false means a cold warmup ran.
	Restored bool
}

// provenance renders the per-request cache provenance label: cache "hit"
// (memory or store), singleflight "shared", a result obtained from the
// cluster ("forward" to its owner, or owner-side "peer" read-through), or a
// fresh simulation that was "restored" from a warm snapshot or ran fully
// "cold".
func provenance(outcome obs.ServeOutcome, src source, restored bool) string {
	switch outcome {
	case obs.ServeHit:
		return "hit"
	case obs.ServeShared:
		return "shared"
	case obs.ServeMiss:
		switch src {
		case srcForward:
			return "forward"
		case srcPeer:
			return "peer"
		case srcComputeDegraded:
			return "degraded"
		}
		if restored {
			return "restored"
		}
		return "cold"
	default:
		return outcome.String()
	}
}

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing simulations (default
	// GOMAXPROCS — the simulations are CPU-bound).
	Workers int
	// QueueDepth bounds admitted simulations waiting for a worker beyond
	// the pool itself (default 64). When pool and queue are both full the
	// server answers 429 with a Retry-After estimate.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024 entries).
	CacheEntries int
	// SnapshotEntries bounds the warm-state snapshot cache (default 8
	// entries). Snapshots are keyed by tvsched.Session.WarmKey — workload,
	// seed, warmup length and machine geometry, but not scheme or VDD — so
	// one entry serves every cell of a scheme×voltage sweep. They are an
	// order of magnitude larger than response bodies (megabytes of cache and
	// predictor state), hence the separate, much smaller bound.
	SnapshotEntries int
	// MaxInstructions caps the per-request measured phase (default 2e6);
	// longer requests are refused with 400 rather than hogging a worker.
	MaxInstructions uint64
	// MaxSweepCells caps the cross-product size of one sweep (default
	// 4096).
	MaxSweepCells int
	// RunTimeout bounds one simulation (default 2m). The budget starts
	// when a worker picks the run up, not while it queues.
	RunTimeout time.Duration
	// Namespace prefixes the Prometheus metric names (default "tvservd").
	Namespace string
	// Logger receives the serving layer's structured log records: one line
	// per error response (request ID + digest + cause) and one per served
	// request/sweep. Nil discards — cmd/tvservd always installs one.
	Logger *slog.Logger
	// TraceSpans bounds the flight recorder: the most recent TraceSpans
	// finished spans stay retrievable through GET /v1/trace/{requestID}
	// (default 4096; older spans are evicted, never an error).
	TraceSpans int
	// HeartbeatInterval is the cadence of progress/v1 heartbeat records on
	// /v1/sweep streams that opt in with "progress": true (default 2s).
	HeartbeatInterval time.Duration
	// CampaignDir, when non-empty, enables the asynchronous campaign API
	// (POST /v1/campaign): every admitted campaign journals its completed
	// cells to <CampaignDir>/<plan-hash>.tvcj, and ResumeCampaigns picks
	// unfinished journals back up after a restart. Empty disables the API
	// (503) — a campaign without a journal cannot honour the resume contract.
	CampaignDir string
	// MaxCampaignCells caps the cross-product size of one campaign (default
	// 1<<20). Campaigns stream nothing and buffer O(window), so the cap is
	// about simulation budget, not memory — hence far above MaxSweepCells.
	MaxCampaignCells int
	// Store, when non-nil, persists results (digest → response bytes) across
	// restarts: LRU misses read through it and every computed or
	// cluster-obtained result is written back. The caller owns the Store's
	// lifecycle (Open before New, Close after shutdown).
	Store *store.Store
	// PeerTimeout bounds one peer read-through fetch, anti-entropy fetch, or
	// health probe (default 2s).
	PeerTimeout time.Duration
	// ForwardTimeout bounds one run forwarded to its owning node, which may
	// queue there before a worker picks it up (default RunTimeout + 30s).
	ForwardTimeout time.Duration
	// AntiEntropyInterval is the cadence of the background sweep that
	// cross-checks replicated digests against peers byte-for-byte. Zero
	// disables the background loop; AntiEntropySweep can still be driven
	// manually.
	AntiEntropyInterval time.Duration
	// AntiEntropyBatch caps the digests cross-checked per sweep (default 64).
	AntiEntropyBatch int
	// BreakerFailures is how many consecutive failures open a peer's circuit
	// breaker (default 3); BreakerCooldown/BreakerCooldownMax bound the
	// seeded decorrelated-jitter probe schedule (defaults 2s/30s).
	BreakerFailures    int
	BreakerCooldown    time.Duration
	BreakerCooldownMax time.Duration
	// PeerRetries is the total attempts (first try included) for one peer
	// operation (default 2); PeerRetryBase is the first backoff between them
	// (default 50ms). Retries always fit inside the operation's deadline.
	PeerRetries   int
	PeerRetryBase time.Duration
	// ResilSeed drives every breaker probe schedule and retry backoff, so a
	// chaos scenario's resilience decisions replay deterministically.
	ResilSeed uint64
	// Repair opts the anti-entropy sweep into healing divergences: the
	// losing replica is overwritten with a locally re-simulated oracle
	// result. Off by default — detection always runs, repair is a decision.
	Repair bool
	// PeerTransport, when non-nil, replaces the peer client's transport —
	// the seam the chaos harness injects faults through.
	PeerTransport http.RoundTripper
	// ReadyzProbeTimeout bounds each concurrent per-peer health probe a
	// /readyz answer waits for (default 500ms), so one black-holed peer
	// cannot stall the readiness check past the prober's patience.
	ReadyzProbeTimeout time.Duration
	// Runner overrides the simulation executor (tests only).
	Runner Runner
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.SnapshotEntries <= 0 {
		c.SnapshotEntries = 8
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 2_000_000
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 4096
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 2 * time.Minute
	}
	if c.Namespace == "" {
		c.Namespace = "tvservd"
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 4096
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.MaxCampaignCells <= 0 {
		c.MaxCampaignCells = 1 << 20
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = c.RunTimeout + 30*time.Second
	}
	if c.AntiEntropyBatch <= 0 {
		c.AntiEntropyBatch = 64
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BreakerCooldownMax <= 0 {
		c.BreakerCooldownMax = 30 * time.Second
	}
	if c.PeerRetries <= 0 {
		c.PeerRetries = 2
	}
	if c.PeerRetryBase <= 0 {
		c.PeerRetryBase = 50 * time.Millisecond
	}
	if c.ReadyzProbeTimeout <= 0 {
		c.ReadyzProbeTimeout = 500 * time.Millisecond
	}
}

// call is one in-flight computation in the singleflight table. The leader
// fills the result fields and closes done; every waiter (the leader's own
// request and any collapsed followers) reads them afterwards.
type call struct {
	done     chan struct{}
	body     []byte
	status   int
	src      source // where the leader obtained the bytes
	restored bool   // the leader's run restored a warm snapshot
	err      error
}

// Server is the simulation-serving core: handlers, cache, singleflight
// table, admission accounting, and metric registries. Create it with New
// and mount Handler.
type Server struct {
	cfg        Config
	sm         *obs.ServeMetrics
	pipeM      *obs.Metrics
	log        *slog.Logger
	tracer     *span.Tracer
	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{} // worker slots
	wg         sync.WaitGroup

	mu       sync.Mutex
	cache    *lruCache
	flight   map[string]*call
	pending  int // admitted computations: queued + running
	running  int
	draining bool

	// The snapshot layer has its own lock and singleflight table: snapshot
	// production happens inside a result computation (the leader already
	// holds a worker slot), so it must never wait on s.mu-guarded state.
	snapMu     sync.Mutex
	snapCache  *lruCache // WarmKey → snapshot bytes
	snapFlight map[string]*snapCall

	// snapProduce produces warm-state bytes for the snapshot singleflight;
	// it defaults to produceSnapshot and is a seam for tests that need a
	// controllable (blocking, failing) producer.
	snapProduce func(ctx context.Context, cfg tvsched.Config) ([]byte, error)

	// The cluster layer: nil ring means standalone. The ring is swapped
	// whole under clMu (SetPeers); readers take ringView.
	clMu       sync.RWMutex
	ring       *cluster.Ring
	peerClient *cluster.Client
	aeOnce     sync.Once // starts the anti-entropy loop at most once

	// The resilience layer: per-peer circuit breakers, the replication debt
	// owed to owners that were unreachable when their results were computed
	// here (degraded mode), and the configs behind locally led digests —
	// the repair oracle's only road back from a digest to a simulation.
	brkMu     sync.Mutex
	breakers  map[string]*resil.Breaker
	owedMu    sync.Mutex
	owed      map[string][]string
	cfgMu     sync.Mutex
	knownCfgs *lruCache

	store *store.Store // nil means memory-only

	// The campaign layer: asynchronous journaled runs keyed by plan hash.
	campMu    sync.Mutex
	campaigns map[string]*campaignRun

	mux *http.ServeMux
}

// snapCall is one in-flight warm-state production, singleflighted per
// WarmKey so a sweep's N cells cost one warmup, not N.
type snapCall struct {
	done chan struct{}
	data []byte
	err  error
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sm:         obs.NewServeMetrics(),
		pipeM:      obs.NewMetrics(),
		log:        cfg.Logger,
		tracer:     span.NewTracer(cfg.TraceSpans),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Workers),
		cache:      newLRU(cfg.CacheEntries),
		flight:     make(map[string]*call),
		snapCache:  newLRU(cfg.SnapshotEntries),
		snapFlight: make(map[string]*snapCall),
		breakers:   make(map[string]*resil.Breaker),
		owed:       make(map[string][]string),
		knownCfgs:  newLRU(cfg.CacheEntries),
		store:      cfg.Store,
		campaigns:  make(map[string]*campaignRun),
	}
	s.snapProduce = produceSnapshot
	if s.cfg.Runner == nil {
		s.cfg.Runner = s.defaultRunner
	}
	if s.store != nil {
		s.sm.SetStoreSize(s.store.Len(), s.store.Bytes())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/campaign", s.handleCampaignPost)
	mux.HandleFunc("/v1/campaign/", s.handleCampaignGet)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/v1/anti-entropy", s.handleAntiEntropy)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", obs.NewExposition(cfg.Namespace, s.pipeM, nil).
		WithServe(s.sm).WithSpans(s.tracer.DurationHists).Handler())
	s.mux = mux
	return s
}

// Tracer exposes the request flight recorder (tests and embedders).
func (s *Server) Tracer() *span.Tracer { return s.tracer }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the serving-layer registry (tests and embedders).
func (s *Server) Metrics() *obs.ServeMetrics { return s.sm }

// defaultRunner executes the simulation for real, feeding the server's
// pipeline-metrics registry through a private per-run shard so the hot
// event path never contends across workers. With checkpoint set it restores
// the shared warm-state snapshot for the cell's WarmKey (producing and
// caching it on first use) instead of re-simulating the warmup phase; the
// neutral-warmup property makes the two paths byte-identical (see Runner).
func (s *Server) defaultRunner(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error) {
	sh := s.pipeM.Shard()
	cfg.Observer = sh
	defer sh.Flush()
	// The simulate span (if this computation is traced) receives one child
	// per session lifecycle phase, named for the timeline reader: the
	// "restore" phase is a snapshot restore, "run" is the measured phase.
	sp := span.FromContext(ctx)
	if sp != nil {
		cfg.PhaseHook = func(phase string, d time.Duration) {
			switch phase {
			case "restore":
				phase = "snapshot_restore"
			case "run":
				phase = "measure"
			case "warmup_neutral":
				phase = "warmup"
			}
			sp.RecordChild(phase, d)
		}
	}
	sess, err := tvsched.NewSession(cfg)
	if err != nil {
		return tvsched.Result{}, RunInfo{}, err
	}
	sp.SetAttr("warm_key", sess.WarmKey())
	if checkpoint {
		key := sess.WarmKey()
		if data, err := s.warmSnapshot(ctx, cfg, key); err == nil {
			if err := sess.Restore(&tvsched.Snapshot{Key: key, Data: data}); err == nil {
				res, err := sess.Run(ctx, tvsched.RunOpts{})
				return res, RunInfo{Restored: true}, err
			}
			// A failed restore may leave the machine half-loaded; rebuild
			// before falling back to the cold path.
			if sess, err = tvsched.NewSession(cfg); err != nil {
				return tvsched.Result{}, RunInfo{}, err
			}
		} else if ctx.Err() != nil {
			return tvsched.Result{}, RunInfo{}, err
		}
		// Any other snapshot failure falls back to a cold warmup: checkpoints
		// are an optimization, never a correctness dependency.
	}
	if err := sess.WarmupNeutral(ctx); err != nil {
		return tvsched.Result{}, RunInfo{}, err
	}
	res, err := sess.Run(ctx, tvsched.RunOpts{})
	return res, RunInfo{}, err
}

// warmSnapshot returns the snapshot bytes for key: snapshot-cache hit,
// collapse onto an in-flight production, or lead one — a throwaway donor
// session (any scheme/VDD with this key produces the same bytes) warmed at
// the nominal supply and serialized.
//
// A leader produces under its own request context, so it can die of a
// context error (its client hung up, its deadline passed) that says nothing
// about the followers collapsed onto it. A follower waking to such an error
// while its own context is still live must not inherit it: it loops back to
// re-check the cache and either joins a newer flight or leads the
// production itself.
func (s *Server) warmSnapshot(ctx context.Context, cfg tvsched.Config, key string) ([]byte, error) {
	s.snapMu.Lock()
	for {
		if b, ok := s.snapCache.get(key); ok {
			s.snapMu.Unlock()
			return b, nil
		}
		c, ok := s.snapFlight[key]
		if !ok {
			break // no flight: this goroutine leads (still holding snapMu)
		}
		s.snapMu.Unlock()
		select {
		case <-c.done:
			if isCtxErr(c.err) && ctx.Err() == nil {
				s.snapMu.Lock()
				continue // the leader's context died, not ours: re-lead
			}
			return c.data, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &snapCall{done: make(chan struct{})}
	s.snapFlight[key] = c
	s.snapMu.Unlock()

	prodStart := time.Now()
	c.data, c.err = s.snapProduce(ctx, cfg)
	span.FromContext(ctx).RecordChild("snapshot_produce", time.Since(prodStart))
	s.snapMu.Lock()
	if c.err == nil {
		s.snapCache.put(key, c.data)
	}
	delete(s.snapFlight, key)
	s.snapMu.Unlock()
	close(c.done)
	return c.data, c.err
}

// isCtxErr reports whether err is a context cancellation or deadline —
// an error bound to one request's lifetime, not to the work itself.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// produceSnapshot runs the warmup phase once on a donor session and
// serializes its warm state. The donor carries no observer: warm-state bytes
// are observer-independent, and the observer-off cycle loop is the fast one.
func produceSnapshot(ctx context.Context, cfg tvsched.Config) ([]byte, error) {
	cfg.Observer = nil
	donor, err := tvsched.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := donor.WarmupNeutral(ctx); err != nil {
		return nil, err
	}
	snap, err := donor.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Data, nil
}

// BeginDrain flips /readyz to 503 so load balancers stop routing here. Call
// it before http.Server.Shutdown.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain waits for every in-flight computation to finish or for ctx to
// expire, whichever is first.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Close cancels every in-flight simulation. Use after a failed Drain.
func (s *Server) Close() { s.baseCancel() }

// gaugesLocked republishes the admission gauges; callers hold s.mu.
func (s *Server) gaugesLocked() {
	s.sm.SetQueue(int64(s.pending-s.running), int64(s.running))
}

// answer is one resolved result lookup: the response bytes (or error), the
// cache outcome the metrics record, and the source the bytes came from.
type answer struct {
	body     []byte
	outcome  obs.ServeOutcome
	src      source
	restored bool
	status   int
	err      error
}

// provenance renders the answer's cache-provenance label (the X-Tvsched-Cache
// value tooling like tvload classifies on is the coarser outcome; this is the
// span/log label).
func (a answer) provenance() string { return provenance(a.outcome, a.src, a.restored) }

// abandoned maps a waiter's dead context to its answer: a client that hung
// up gets 499/canceled (its own doing), a deadline or shutdown gets
// 503/error.
func abandoned(err error) answer {
	if errors.Is(err, context.Canceled) {
		return answer{outcome: obs.ServeCanceled, src: srcNone, status: StatusClientClosedRequest, err: err}
	}
	return answer{outcome: obs.ServeErrored, src: srcNone, status: http.StatusServiceUnavailable, err: err}
}

// result answers one normalized config: cache hit, collapse onto an
// in-flight computation, or lead a new one. admit=false (sweep cells)
// bypasses the queue-full rejection — a sweep is one admitted request whose
// internal fan-out is flow-controlled by the worker pool, so its cells wait
// for capacity instead of bouncing. forwarded marks a request another node
// already routed here; the leader then never forwards again (the one-hop
// rule).
//
// parent, when non-nil, is the live request (or sweep-cell) span; the
// admission decision and every wait are recorded as children under it, and
// the detached computation parents its own spans under the same trace via a
// value-copied span context (safe even after the request span ends).
func (s *Server) result(ctx context.Context, cfg tvsched.Config, admit, checkpoint, forwarded bool, parent *span.ActiveSpan) answer {
	digest := cfg.Digest()
	lookupStart := time.Now()
	s.mu.Lock()
	if b, ok := s.cache.get(digest); ok {
		s.mu.Unlock()
		parent.RecordChild("cache_lookup", time.Since(lookupStart), span.Attr{Key: "hit", Value: "true"})
		return answer{body: b, outcome: obs.ServeHit, src: srcMemory, status: http.StatusOK}
	}
	if c, ok := s.flight[digest]; ok {
		s.mu.Unlock()
		parent.RecordChild("cache_lookup", time.Since(lookupStart), span.Attr{Key: "hit", Value: "false"})
		ws := parent.Child("singleflight_wait")
		select {
		case <-c.done:
			ws.End()
			return answer{body: c.body, outcome: obs.ServeShared, src: c.src, restored: c.restored, status: c.status, err: c.err}
		case <-ctx.Done():
			ws.SetAttr("outcome", "abandoned")
			ws.End()
			return abandoned(ctx.Err())
		}
	}
	if admit && s.pending >= s.cfg.Workers+s.cfg.QueueDepth {
		s.mu.Unlock()
		parent.RecordChild("admission", time.Since(lookupStart), span.Attr{Key: "decision", Value: "rejected"})
		return answer{outcome: obs.ServeRejected, src: srcNone, status: http.StatusTooManyRequests, err: ErrBusy}
	}
	c := &call{done: make(chan struct{})}
	s.flight[digest] = c
	s.pending++
	s.gaugesLocked()
	s.mu.Unlock()
	parent.RecordChild("admission", time.Since(lookupStart), span.Attr{Key: "decision", Value: "lead"})

	// The computation runs under the server's lifetime, not this request's:
	// followers that arrive later still want the result, and so does the
	// cache. The leader merely waits like any other follower.
	s.wg.Add(1)
	go s.compute(digest, cfg, c, checkpoint, forwarded, parent.Context())
	select {
	case <-c.done:
		outcome := obs.ServeMiss
		if c.src == srcStore {
			// Store hits are cache hits that happened to live on disk: same
			// bytes, no simulation, provenance "hit".
			outcome = obs.ServeHit
		}
		return answer{body: c.body, outcome: outcome, src: c.src, restored: c.restored, status: c.status, err: c.err}
	case <-ctx.Done():
		return abandoned(ctx.Err())
	}
}

// compute is the singleflight leader body: obtain the bytes (store, cluster,
// or a local simulation — see obtain), cache and persist them, publish to
// waiters. parent is the leading request's span context (a value copy — the
// request may be gone by the time the computation finishes; the trace link
// stays valid).
func (s *Server) compute(digest string, cfg tvsched.Config, c *call, checkpoint, forwarded bool, parent span.Context) {
	defer s.wg.Done()
	// Leaders remember the config behind the digest: if this digest ever
	// diverges across replicas, the repair oracle re-simulates from here.
	s.recordConfig(digest, cfg)
	body, src, status, info, err := s.obtain(digest, cfg, checkpoint, forwarded, parent)
	s.mu.Lock()
	if err == nil {
		s.cache.put(digest, body)
	}
	delete(s.flight, digest)
	s.pending--
	s.gaugesLocked()
	s.mu.Unlock()
	if err == nil && src != srcStore {
		s.storePut(digest, body)
	}
	c.body, c.src, c.status, c.restored, c.err = body, src, status, info.Restored, err
	close(c.done)
}

// obtain resolves the bytes for one digest through the three layers beyond
// the in-memory LRU, cheapest first:
//
//  1. the persistent store — bytes computed before a restart;
//  2. the cluster — forward to the digest's owning node (unless this request
//     was itself forwarded), or, when this node is the owner, read through
//     the peers' caches before paying for a simulation;
//  3. a local simulation on the bounded worker pool.
//
// Cluster failures always degrade to layer 3: an unreachable peer costs
// latency and a duplicated computation, never a wrong or failed answer. A
// non-owner that computes because its owner was unreachable (breaker open,
// forward budget exhausted) serves the result as "compute-degraded" and owes
// the owner a replica, delivered when the breaker closes again.
func (s *Server) obtain(digest string, cfg tvsched.Config, checkpoint, forwarded bool, parent span.Context) (body []byte, src source, status int, info RunInfo, err error) {
	if s.store != nil {
		ls := s.tracer.StartRoot("store_lookup", parent)
		b, ok, serr := s.store.Get(digest)
		ls.SetAttr("hit", strconv.FormatBool(ok))
		ls.End()
		if ok {
			s.sm.StoreOp(obs.StoreHit)
			return b, srcStore, http.StatusOK, RunInfo{}, nil
		}
		s.sm.StoreOp(obs.StoreMiss)
		if serr != nil {
			s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "store read failed",
				slog.String("digest", digest), slog.String("cause", serr.Error()))
		}
	}
	degradedOwner := "" // set when this node stands in for an unreachable owner
	if ring := s.ringView(); ring != nil && !forwarded {
		if owner, self := ring.Owner(digest); !self {
			if b, ok := s.forwardToOwner(digest, cfg, owner, parent); ok {
				return b, srcForward, http.StatusOK, RunInfo{}, nil
			}
			// Owner unreachable or disagreeing: compute locally. Wasteful,
			// never wrong — anti-entropy would surface diverging bytes.
			degradedOwner = owner.ID
		} else if b, ok := s.peerReadThrough(digest, parent); ok {
			return b, srcPeer, http.StatusOK, RunInfo{}, nil
		}
	}
	body, status, info, err = s.runLocal(digest, cfg, checkpoint, parent)
	src = srcCompute
	if degradedOwner != "" && err == nil {
		src = srcComputeDegraded
		s.sm.PeerOp(degradedOwner, obs.PeerDegraded)
		s.owe(degradedOwner, digest)
		s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "served degraded: computed for unreachable owner",
			slog.String("digest", digest), slog.String("owner", degradedOwner))
	}
	return body, src, status, info, err
}

// runLocal queues for a worker slot, runs the simulation, and renders the
// report — the only layer that actually simulates.
func (s *Server) runLocal(digest string, cfg tvsched.Config, checkpoint bool, parent span.Context) (body []byte, status int, info RunInfo, err error) {
	status = http.StatusOK
	qs := s.tracer.StartRoot("queue_wait", parent)
	select {
	case s.sem <- struct{}{}:
		qs.End()
		s.mu.Lock()
		s.running++
		s.gaugesLocked()
		s.mu.Unlock()
		runCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
		ss := s.tracer.StartRoot("simulate", parent)
		ss.SetAttr("digest", digest)
		runCtx = span.NewContext(runCtx, ss)
		start := time.Now()
		var res tvsched.Result
		res, info, err = s.cfg.Runner(runCtx, cfg, checkpoint)
		cancel()
		ss.SetAttr("provenance", provenance(obs.ServeMiss, srcCompute, info.Restored))
		if err != nil {
			ss.SetAttr("error", err.Error())
		}
		ss.End()
		s.sm.ObserveRun(uint64(time.Since(start).Microseconds()))
		s.mu.Lock()
		s.running--
		s.gaugesLocked()
		s.mu.Unlock()
		<-s.sem
		if err == nil {
			es := s.tracer.StartRoot("encode", parent)
			body, err = marshalReport(reportFor(cfg, res))
			es.End()
		}
		if err != nil {
			status = statusFor(err)
			if s.baseCtx.Err() != nil {
				// The server is shutting down: whatever the run died of, the
				// client should see overload, not a client-fault status.
				status = http.StatusServiceUnavailable
			}
		}
	case <-s.baseCtx.Done():
		qs.SetAttr("outcome", "aborted")
		qs.End()
		err = s.baseCtx.Err()
		status = http.StatusServiceUnavailable
	}
	return body, status, info, err
}

// reportFor renders a finished simulation as the run-report/v1 artifact the
// rest of the repo (tvgate, dashboards, EXPERIMENTS.md) already consumes.
// Every field derives from the deterministic result, so the bytes are a
// pure function of the request.
func reportFor(cfg tvsched.Config, res tvsched.Result) *obs.RunReport {
	st := res.Stats
	return &obs.RunReport{
		Schema:       obs.RunReportSchema,
		Tool:         "tvservd",
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Seed:         cfg.Seed,
		Instructions: st.Committed,
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		TEP:          experiments.TEPAccuracyFrom(&st),
	}
}

// marshalReport renders the response body: compact JSON plus a trailing
// newline. Compact (rather than RunReport.WriteJSON's indented form) so the
// same bytes embed verbatim in NDJSON sweep lines.
func marshalReport(rep *obs.RunReport) ([]byte, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// statusFor maps simulation errors to HTTP statuses: caller mistakes to
// 400, exhausted run budgets and shutdown to 503, a client that hung up to
// 499, model failures to 500. Canceled and DeadlineExceeded must not share a
// status: a cancellation is the client walking away (no capacity problem),
// a deadline is the server failing to answer in time — conflating them made
// ordinary client disconnects read as server overload on dashboards.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, tvsched.ErrUnknownBenchmark),
		errors.Is(err, tvsched.ErrUnknownScheme),
		errors.Is(err, tvsched.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// retryAfter estimates, from the observed mean simulation latency and the
// current queue, how long a rejected client should wait before retrying.
// The estimate counts only computations waiting for a worker: the running
// ones already hold the slots the queued ones are drained into, so counting
// them too (pending = queued + running) doubled the estimate at saturation
// and told clients to back off twice as long as the queue justified.
// Clamped to [1s, 60s]; a cold server (no latency samples yet) says 1s.
func (s *Server) retryAfter() string {
	snap := s.sm.Snapshot()
	s.mu.Lock()
	queued := s.pending - s.running
	s.mu.Unlock()
	if queued < 0 {
		queued = 0
	}
	secs := int(snap.RunLatency.Mean() / 1e6 * float64(queued) / float64(s.cfg.Workers))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// decode parses a JSON request body strictly: unknown fields are errors, so
// a typo'd field name fails loudly instead of silently taking a default.
func decode(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// checkPolicy enforces the per-request resource caps.
func (s *Server) checkPolicy(cfg tvsched.Config) error {
	if cfg.Instructions > s.cfg.MaxInstructions {
		return fmt.Errorf("%w: instructions %d over server cap %d",
			ErrBadRequest, cfg.Instructions, s.cfg.MaxInstructions)
	}
	return nil
}

// fail is the single chokepoint every 4xx/5xx response goes through: it
// emits exactly one structured log record (request ID + digest + cause) and
// writes the error body, unless the client is already gone. 4xx logs at
// Warn (the client misbehaved), 5xx at Error (we did), and 499 at Info —
// a client hanging up is routine churn, not something to page on.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, reqID, digest string, status int, err error) {
	level := slog.LevelWarn
	switch {
	case status == StatusClientClosedRequest:
		level = slog.LevelInfo
	case status >= 500:
		level = slog.LevelError
	}
	s.log.LogAttrs(r.Context(), level, "request failed",
		slog.String("request_id", reqID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("digest", digest),
		slog.Int("status", status),
		slog.String("cause", err.Error()),
	)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfter())
	}
	if r.Context().Err() != nil {
		return // client is gone; nothing to write to
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tracer.StartRoot("run", span.Extract(r))
	defer sp.End()
	reqID := sp.TraceID().String()
	h := w.Header()
	h.Set("X-Request-Id", reqID)
	sp.Context().Inject(h)
	if r.Method != http.MethodPost {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	var req RunRequest
	var cfg tvsched.Config
	err := decode(w, r, &req)
	if err == nil {
		cfg, err = req.Config()
	}
	if err == nil {
		err = s.checkPolicy(cfg)
	}
	if err != nil {
		s.sm.Outcome(obs.ServeBadRequest)
		s.sm.ObserveRequest(obs.RouteRun, obs.ServeBadRequest, uint64(time.Since(start).Microseconds()))
		sp.SetAttr("outcome", "bad_request")
		s.fail(w, r, reqID, "", http.StatusBadRequest, err)
		return
	}
	digest := cfg.Digest()
	sp.SetAttr("digest", digest)
	forwarded := r.Header.Get(cluster.ForwardHeader) != ""
	if forwarded {
		sp.SetAttr("forwarded_from", r.Header.Get(cluster.ForwardHeader))
	}
	ans := s.result(r.Context(), cfg, true, true, forwarded, sp)
	s.sm.Outcome(ans.outcome)
	s.sm.ObserveRequest(obs.RouteRun, ans.outcome, uint64(time.Since(start).Microseconds()))
	prov := ans.provenance()
	sp.SetAttr("outcome", prov)
	if ans.err != nil {
		s.fail(w, r, reqID, digest, ans.status, ans.err)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("X-Tvsched-Digest", digest)
	h.Set("X-Tvsched-Cache", ans.outcome.String())
	if ans.src != srcNone {
		h.Set(SourceHeader, ans.src.String())
	}
	_, _ = w.Write(ans.body)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "run served",
		slog.String("request_id", reqID),
		slog.String("digest", digest),
		slog.String("cache", prov),
		slog.String("source", ans.src.String()),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// sweepLine is one NDJSON record of a sweep response — the campaign engine's
// line type, shared with /v1/campaign reports and cmd/tvplan.
//
// Ordering contract (pinned by a golden test): the stream carries exactly one
// line per cell, in the canonical campaign cell order — benchmarks × schemes ×
// VDDs × seeds, each axis in its requested order, seeds innermost — and Index
// is the cell's position in that order, ascending from 0 with no gaps. Cells
// simulate concurrently, but emission always waits for the next index, so the
// stream is deterministic end to end (only the per-line Cache annotation may
// vary with scheduling).
type sweepLine = campaign.Line

// ProgressSchema tags the heartbeat records a progress-enabled sweep stream
// interleaves with its cell lines. Cell lines never carry a schema field, so
// `"schema":"tvsched/progress/v1"` is the discriminator.
const ProgressSchema = campaign.ProgressSchema

// classFor folds one resolved answer into the campaign provenance classes the
// progress accounting speaks. Cells whose bytes came from the cluster
// (forwarded to the owner or read through a peer) count as stolen — another
// node paid for the simulation.
func classFor(ans answer) campaign.Class {
	switch {
	case ans.err != nil:
		return campaign.ClassError
	case ans.outcome == obs.ServeHit:
		return campaign.ClassHit
	case ans.outcome == obs.ServeShared:
		return campaign.ClassShared
	case ans.src == srcForward || ans.src == srcPeer:
		return campaign.ClassStolen
	case ans.restored:
		return campaign.ClassRestored
	default:
		return campaign.ClassCold
	}
}

// cellRunner adapts the server's result pipeline (LRU → singleflight → store
// → cluster → local simulation) to the campaign executor: one runner call is
// one cell resolved through s.result with sweep-cell admission (admit=false —
// the worker pool is the throttle, cells wait rather than bounce). Cell spans
// parent under parent, a value-copied span context, because cells may outlive
// the request that launched them.
func (s *Server) cellRunner(route obs.ServeRoute, parent span.Context, checkpoint bool) campaign.Runner {
	return func(ctx context.Context, cell campaign.Cell) campaign.CellResult {
		cs := s.tracer.StartRoot("cell", parent)
		cs.SetAttr("digest", cell.Config.Digest())
		cs.SetAttr("index", strconv.Itoa(cell.Index))
		cellStart := time.Now()
		ans := s.result(ctx, cell.Config, false, checkpoint, false, cs)
		cs.SetAttr("outcome", ans.provenance())
		cs.End()
		s.sm.Outcome(ans.outcome)
		s.sm.ObserveRequest(route, ans.outcome, uint64(time.Since(cellStart).Microseconds()))
		return campaign.CellResult{
			Class: classFor(ans),
			Cache: ans.outcome.String(),
			Body:  ans.body,
			Err:   ans.err,
		}
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tracer.StartRoot("sweep", span.Extract(r))
	defer sp.End()
	reqID := sp.TraceID().String()
	h := w.Header()
	h.Set("X-Request-Id", reqID)
	sp.Context().Inject(h)
	if r.Method != http.MethodPost {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	// Planning is lazy: the plan is O(axes) in memory however many cells the
	// cross product describes, the cap check is arithmetic on the total, and
	// cells materialize one at a time as the executor reaches them. Peak
	// memory is bounded by the executor's reorder window, never the sweep
	// size.
	var req SweepRequest
	var plan *campaign.Plan
	err := decode(w, r, &req)
	if err == nil {
		plan, err = req.Plan()
	}
	if err == nil && plan.Total() > s.cfg.MaxSweepCells {
		err = fmt.Errorf("%w: %d cells over server cap %d", ErrBadRequest, plan.Total(), s.cfg.MaxSweepCells)
	}
	if err == nil {
		// Instructions/Warmup are sweep-wide, so policy holds for every cell
		// iff it holds for the first.
		err = s.checkPolicy(plan.Cell(0).Config)
	}
	if err != nil {
		s.sm.Outcome(obs.ServeBadRequest)
		sp.SetAttr("outcome", "bad_request")
		s.fail(w, r, reqID, "", http.StatusBadRequest, err)
		return
	}
	sp.SetAttr("cells", strconv.Itoa(plan.Total()))

	h.Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	opts := campaign.Options{
		// The worker pool is the real throttle; the executor's concurrency
		// just keeps in-flight cells proportional to capacity rather than
		// sweep size, exactly like the old per-sweep goroutine limiter.
		Workers: s.cfg.Workers + s.cfg.QueueDepth,
		Lanes:   s.cfg.Workers,
		Start:   start,
	}
	if flusher != nil {
		opts.Flush = func() { flusher.Flush() }
	}
	// Heartbeats are strictly opt-in: they carry wall-clock timings, and the
	// default stream must stay a pure function of the request (the
	// determinism contract CI enforces byte-for-byte).
	if req.Progress {
		opts.Heartbeat = s.cfg.HeartbeatInterval
	}
	runner := s.cellRunner(obs.RouteSweep, sp.Context(), plan.Checkpoint())
	if _, err := campaign.Execute(r.Context(), plan, nil, runner, w, opts); err != nil {
		return // client gone or canceled mid-stream; headers are already out
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "sweep served",
		slog.String("request_id", reqID),
		slog.Int("cells", plan.Total()),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// handleTrace serves the flight-recorder slice of one request as a Chrome
// trace-event JSON document (loadable in Perfetto or chrome://tracing). The
// request ID is the X-Request-Id a /v1/run or /v1/sweep response carried;
// spans age out of the bounded ring, so an old ID answers 404, never an
// error.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, "", "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	id, ok := span.ParseTraceID(raw)
	if !ok {
		s.fail(w, r, raw, "", http.StatusBadRequest,
			fmt.Errorf("%w: malformed request id (want 32 hex chars)", ErrBadRequest))
		return
	}
	spans := s.tracer.Trace(id)
	if len(spans) == 0 {
		s.fail(w, r, raw, "", http.StatusNotFound,
			errors.New("trace not found: unknown request id, or its spans were evicted"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = span.WriteChromeTrace(w, spans)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz answers load-balancer readiness. A clustered node probes its
// peers concurrently, each under its own bounded timeout, so one
// black-holed peer delays the whole check by at most ReadyzProbeTimeout
// instead of a full sequential walk. An unreachable peer (or an open
// breaker) flips the first line from "ready" to "degraded" — informational
// only: degraded mode means duplicated computation, not an unfit node, so
// readiness stays 200 and load balancers keep routing here.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	ring := s.ringView()
	if ring == nil {
		fmt.Fprintln(w, "ready")
		return
	}
	cl := s.client()
	peers := ring.Peers()
	lines := make([]string, len(peers))
	degraded := false
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p cluster.Peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReadyzProbeTimeout)
			err := cl.Health(ctx, p)
			cancel()
			if err != nil {
				lines[i] = fmt.Sprintf("peer %s unreachable: %v", p.ID, err)
				mu.Lock()
				degraded = true
				mu.Unlock()
			} else {
				lines[i] = fmt.Sprintf("peer %s ok", p.ID)
			}
		}(i, p)
	}
	wg.Wait()
	for _, p := range peers {
		if s.breakerFor(p.ID).State() != resil.Closed {
			degraded = true
		}
	}
	if degraded {
		fmt.Fprintln(w, "degraded")
	} else {
		fmt.Fprintln(w, "ready")
	}
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
