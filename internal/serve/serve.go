// Package serve is the simulation-serving subsystem behind cmd/tvservd: an
// HTTP/JSON service that executes tvsched simulations on a bounded worker
// pool and answers with the machine-readable obs.RunReport the rest of the
// repo already speaks.
//
// The serving mechanics exploit the library's determinism end to end. Every
// request is normalized and content-addressed (tvsched.Config.Digest over
// the canonical JSON form), and the digest keys two layers:
//
//   - a bounded LRU result cache holding the exact response bytes, so a
//     repeat request is served byte-identical without simulating;
//   - a singleflight table collapsing concurrent identical requests onto
//     one in-flight simulation, so a thundering herd of N equal requests
//     costs one run, not N.
//
// Admission is bounded: at most Workers simulations execute concurrently
// and at most QueueDepth more may wait; beyond that the server sheds load
// with 429 and a Retry-After estimate instead of queueing unboundedly.
// Request deadlines propagate into the pipeline via context (cancellation
// lands within 256 simulated cycles), and SIGTERM drains gracefully: the
// daemon stops admitting, finishes what is in flight, then exits.
//
// POST /v1/run answers one request; POST /v1/sweep fans a cross-product
// sweep across the pool and streams per-cell results as NDJSON in
// deterministic cell order. GET /healthz, /readyz and /metrics (Prometheus
// text format, including queue depth, cache hit/miss, in-flight and latency
// histograms via obs.ServeMetrics) complete the operational surface.
// cmd/tvload is the matching closed-loop load generator.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"tvsched"
	"tvsched/internal/experiments"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
)

// ErrBusy reports a full admission queue; handlers map it to HTTP 429.
var ErrBusy = errors.New("admission queue full")

// errMethod reports a request with the wrong HTTP method.
var errMethod = errors.New("method not allowed")

// Runner executes one normalized simulation config; checkpoint says whether
// the run may share the server's warm-state snapshot cache. It is a seam for
// tests (which substitute counting or blocking stubs); the default runner
// drives a tvsched.Session with a per-run shard of the server's pipeline
// metrics attached.
//
// All server runs use neutral warmup (tvsched.Session.WarmupNeutral): the
// warmup phase executes at the nominal supply and the retarget to the
// requested (scheme, VDD) happens when measurement begins. Neutral warm state
// is scheme- and VDD-independent, so whether a run restores a cached
// checkpoint or warms up from scratch cannot change a single response byte —
// checkpoint only decides whether the warmup cost is paid again.
type Runner func(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error)

// RunInfo reports how a Runner produced its result — the per-cell provenance
// the campaign accounting (progress heartbeats, span tags, capacity
// planning) observes. It never affects the result bytes.
type RunInfo struct {
	// Restored is true when the run skipped its warmup phase by restoring a
	// cached warm-state snapshot; false means a cold warmup ran.
	Restored bool
}

// provenance renders the per-request cache provenance label: cache "hit",
// singleflight "shared", or a fresh simulation that was "restored" from a
// warm snapshot or ran fully "cold".
func provenance(outcome obs.ServeOutcome, restored bool) string {
	switch outcome {
	case obs.ServeHit:
		return "hit"
	case obs.ServeShared:
		return "shared"
	case obs.ServeMiss:
		if restored {
			return "restored"
		}
		return "cold"
	default:
		return outcome.String()
	}
}

// Config parameterizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing simulations (default
	// GOMAXPROCS — the simulations are CPU-bound).
	Workers int
	// QueueDepth bounds admitted simulations waiting for a worker beyond
	// the pool itself (default 64). When pool and queue are both full the
	// server answers 429 with a Retry-After estimate.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024 entries).
	CacheEntries int
	// SnapshotEntries bounds the warm-state snapshot cache (default 8
	// entries). Snapshots are keyed by tvsched.Session.WarmKey — workload,
	// seed, warmup length and machine geometry, but not scheme or VDD — so
	// one entry serves every cell of a scheme×voltage sweep. They are an
	// order of magnitude larger than response bodies (megabytes of cache and
	// predictor state), hence the separate, much smaller bound.
	SnapshotEntries int
	// MaxInstructions caps the per-request measured phase (default 2e6);
	// longer requests are refused with 400 rather than hogging a worker.
	MaxInstructions uint64
	// MaxSweepCells caps the cross-product size of one sweep (default
	// 4096).
	MaxSweepCells int
	// RunTimeout bounds one simulation (default 2m). The budget starts
	// when a worker picks the run up, not while it queues.
	RunTimeout time.Duration
	// Namespace prefixes the Prometheus metric names (default "tvservd").
	Namespace string
	// Logger receives the serving layer's structured log records: one line
	// per error response (request ID + digest + cause) and one per served
	// request/sweep. Nil discards — cmd/tvservd always installs one.
	Logger *slog.Logger
	// TraceSpans bounds the flight recorder: the most recent TraceSpans
	// finished spans stay retrievable through GET /v1/trace/{requestID}
	// (default 4096; older spans are evicted, never an error).
	TraceSpans int
	// HeartbeatInterval is the cadence of progress/v1 heartbeat records on
	// /v1/sweep streams that opt in with "progress": true (default 2s).
	HeartbeatInterval time.Duration
	// Runner overrides the simulation executor (tests only).
	Runner Runner
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.SnapshotEntries <= 0 {
		c.SnapshotEntries = 8
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 2_000_000
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 4096
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 2 * time.Minute
	}
	if c.Namespace == "" {
		c.Namespace = "tvservd"
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 4096
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
}

// call is one in-flight computation in the singleflight table. The leader
// fills the result fields and closes done; every waiter (the leader's own
// request and any collapsed followers) reads them afterwards.
type call struct {
	done     chan struct{}
	body     []byte
	status   int
	restored bool // the leader's run restored a warm snapshot
	err      error
}

// Server is the simulation-serving core: handlers, cache, singleflight
// table, admission accounting, and metric registries. Create it with New
// and mount Handler.
type Server struct {
	cfg        Config
	sm         *obs.ServeMetrics
	pipeM      *obs.Metrics
	log        *slog.Logger
	tracer     *span.Tracer
	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{} // worker slots
	wg         sync.WaitGroup

	mu       sync.Mutex
	cache    *lruCache
	flight   map[string]*call
	pending  int // admitted computations: queued + running
	running  int
	draining bool

	// The snapshot layer has its own lock and singleflight table: snapshot
	// production happens inside a result computation (the leader already
	// holds a worker slot), so it must never wait on s.mu-guarded state.
	snapMu     sync.Mutex
	snapCache  *lruCache // WarmKey → snapshot bytes
	snapFlight map[string]*snapCall

	mux *http.ServeMux
}

// snapCall is one in-flight warm-state production, singleflighted per
// WarmKey so a sweep's N cells cost one warmup, not N.
type snapCall struct {
	done chan struct{}
	data []byte
	err  error
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sm:         obs.NewServeMetrics(),
		pipeM:      obs.NewMetrics(),
		log:        cfg.Logger,
		tracer:     span.NewTracer(cfg.TraceSpans),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Workers),
		cache:      newLRU(cfg.CacheEntries),
		flight:     make(map[string]*call),
		snapCache:  newLRU(cfg.SnapshotEntries),
		snapFlight: make(map[string]*snapCall),
	}
	if s.cfg.Runner == nil {
		s.cfg.Runner = s.defaultRunner
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", obs.NewExposition(cfg.Namespace, s.pipeM, nil).
		WithServe(s.sm).WithSpans(s.tracer.DurationHists).Handler())
	s.mux = mux
	return s
}

// Tracer exposes the request flight recorder (tests and embedders).
func (s *Server) Tracer() *span.Tracer { return s.tracer }

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the serving-layer registry (tests and embedders).
func (s *Server) Metrics() *obs.ServeMetrics { return s.sm }

// defaultRunner executes the simulation for real, feeding the server's
// pipeline-metrics registry through a private per-run shard so the hot
// event path never contends across workers. With checkpoint set it restores
// the shared warm-state snapshot for the cell's WarmKey (producing and
// caching it on first use) instead of re-simulating the warmup phase; the
// neutral-warmup property makes the two paths byte-identical (see Runner).
func (s *Server) defaultRunner(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error) {
	sh := s.pipeM.Shard()
	cfg.Observer = sh
	defer sh.Flush()
	// The simulate span (if this computation is traced) receives one child
	// per session lifecycle phase, named for the timeline reader: the
	// "restore" phase is a snapshot restore, "run" is the measured phase.
	sp := span.FromContext(ctx)
	if sp != nil {
		cfg.PhaseHook = func(phase string, d time.Duration) {
			switch phase {
			case "restore":
				phase = "snapshot_restore"
			case "run":
				phase = "measure"
			case "warmup_neutral":
				phase = "warmup"
			}
			sp.RecordChild(phase, d)
		}
	}
	sess, err := tvsched.NewSession(cfg)
	if err != nil {
		return tvsched.Result{}, RunInfo{}, err
	}
	sp.SetAttr("warm_key", sess.WarmKey())
	if checkpoint {
		key := sess.WarmKey()
		if data, err := s.warmSnapshot(ctx, cfg, key); err == nil {
			if err := sess.Restore(&tvsched.Snapshot{Key: key, Data: data}); err == nil {
				res, err := sess.Run(ctx, tvsched.RunOpts{})
				return res, RunInfo{Restored: true}, err
			}
			// A failed restore may leave the machine half-loaded; rebuild
			// before falling back to the cold path.
			if sess, err = tvsched.NewSession(cfg); err != nil {
				return tvsched.Result{}, RunInfo{}, err
			}
		} else if ctx.Err() != nil {
			return tvsched.Result{}, RunInfo{}, err
		}
		// Any other snapshot failure falls back to a cold warmup: checkpoints
		// are an optimization, never a correctness dependency.
	}
	if err := sess.WarmupNeutral(ctx); err != nil {
		return tvsched.Result{}, RunInfo{}, err
	}
	res, err := sess.Run(ctx, tvsched.RunOpts{})
	return res, RunInfo{}, err
}

// warmSnapshot returns the snapshot bytes for key: snapshot-cache hit,
// collapse onto an in-flight production, or lead one — a throwaway donor
// session (any scheme/VDD with this key produces the same bytes) warmed at
// the nominal supply and serialized.
func (s *Server) warmSnapshot(ctx context.Context, cfg tvsched.Config, key string) ([]byte, error) {
	s.snapMu.Lock()
	if b, ok := s.snapCache.get(key); ok {
		s.snapMu.Unlock()
		return b, nil
	}
	if c, ok := s.snapFlight[key]; ok {
		s.snapMu.Unlock()
		select {
		case <-c.done:
			return c.data, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &snapCall{done: make(chan struct{})}
	s.snapFlight[key] = c
	s.snapMu.Unlock()

	prodStart := time.Now()
	c.data, c.err = produceSnapshot(ctx, cfg)
	span.FromContext(ctx).RecordChild("snapshot_produce", time.Since(prodStart))
	s.snapMu.Lock()
	if c.err == nil {
		s.snapCache.put(key, c.data)
	}
	delete(s.snapFlight, key)
	s.snapMu.Unlock()
	close(c.done)
	return c.data, c.err
}

// produceSnapshot runs the warmup phase once on a donor session and
// serializes its warm state. The donor carries no observer: warm-state bytes
// are observer-independent, and the observer-off cycle loop is the fast one.
func produceSnapshot(ctx context.Context, cfg tvsched.Config) ([]byte, error) {
	cfg.Observer = nil
	donor, err := tvsched.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := donor.WarmupNeutral(ctx); err != nil {
		return nil, err
	}
	snap, err := donor.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Data, nil
}

// BeginDrain flips /readyz to 503 so load balancers stop routing here. Call
// it before http.Server.Shutdown.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain waits for every in-flight computation to finish or for ctx to
// expire, whichever is first.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Close cancels every in-flight simulation. Use after a failed Drain.
func (s *Server) Close() { s.baseCancel() }

// gaugesLocked republishes the admission gauges; callers hold s.mu.
func (s *Server) gaugesLocked() {
	s.sm.SetQueue(int64(s.pending-s.running), int64(s.running))
}

// result answers one normalized config: cache hit, collapse onto an
// in-flight computation, or lead a new one. admit=false (sweep cells)
// bypasses the queue-full rejection — a sweep is one admitted request whose
// internal fan-out is flow-controlled by the worker pool, so its cells wait
// for capacity instead of bouncing.
//
// parent, when non-nil, is the live request (or sweep-cell) span; the
// admission decision and every wait are recorded as children under it, and
// the detached computation parents its own spans under the same trace via a
// value-copied span context (safe even after the request span ends).
func (s *Server) result(ctx context.Context, cfg tvsched.Config, admit, checkpoint bool, parent *span.ActiveSpan) (body []byte, outcome obs.ServeOutcome, restored bool, status int, err error) {
	digest := cfg.Digest()
	lookupStart := time.Now()
	s.mu.Lock()
	if b, ok := s.cache.get(digest); ok {
		s.mu.Unlock()
		parent.RecordChild("cache_lookup", time.Since(lookupStart), span.Attr{Key: "hit", Value: "true"})
		return b, obs.ServeHit, false, http.StatusOK, nil
	}
	if c, ok := s.flight[digest]; ok {
		s.mu.Unlock()
		parent.RecordChild("cache_lookup", time.Since(lookupStart), span.Attr{Key: "hit", Value: "false"})
		ws := parent.Child("singleflight_wait")
		select {
		case <-c.done:
			ws.End()
			return c.body, obs.ServeShared, c.restored, c.status, c.err
		case <-ctx.Done():
			ws.SetAttr("outcome", "abandoned")
			ws.End()
			return nil, obs.ServeErrored, false, http.StatusServiceUnavailable, ctx.Err()
		}
	}
	if admit && s.pending >= s.cfg.Workers+s.cfg.QueueDepth {
		s.mu.Unlock()
		parent.RecordChild("admission", time.Since(lookupStart), span.Attr{Key: "decision", Value: "rejected"})
		return nil, obs.ServeRejected, false, http.StatusTooManyRequests, ErrBusy
	}
	c := &call{done: make(chan struct{})}
	s.flight[digest] = c
	s.pending++
	s.gaugesLocked()
	s.mu.Unlock()
	parent.RecordChild("admission", time.Since(lookupStart), span.Attr{Key: "decision", Value: "lead"})

	// The computation runs under the server's lifetime, not this request's:
	// followers that arrive later still want the result, and so does the
	// cache. The leader merely waits like any other follower.
	s.wg.Add(1)
	go s.compute(digest, cfg, c, checkpoint, parent.Context())
	select {
	case <-c.done:
		return c.body, obs.ServeMiss, c.restored, c.status, c.err
	case <-ctx.Done():
		return nil, obs.ServeErrored, false, http.StatusServiceUnavailable, ctx.Err()
	}
}

// compute is the singleflight leader body: queue for a worker slot, run the
// simulation, render and cache the report, publish to waiters. parent is the
// leading request's span context (a value copy — the request may be gone by
// the time the computation finishes; the trace link stays valid).
func (s *Server) compute(digest string, cfg tvsched.Config, c *call, checkpoint bool, parent span.Context) {
	defer s.wg.Done()
	var (
		body   []byte
		status = http.StatusOK
		info   RunInfo
		err    error
	)
	qs := s.tracer.StartRoot("queue_wait", parent)
	select {
	case s.sem <- struct{}{}:
		qs.End()
		s.mu.Lock()
		s.running++
		s.gaugesLocked()
		s.mu.Unlock()
		runCtx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RunTimeout)
		ss := s.tracer.StartRoot("simulate", parent)
		ss.SetAttr("digest", digest)
		runCtx = span.NewContext(runCtx, ss)
		start := time.Now()
		var res tvsched.Result
		res, info, err = s.cfg.Runner(runCtx, cfg, checkpoint)
		cancel()
		ss.SetAttr("provenance", provenance(obs.ServeMiss, info.Restored))
		if err != nil {
			ss.SetAttr("error", err.Error())
		}
		ss.End()
		s.sm.ObserveRun(uint64(time.Since(start).Microseconds()))
		s.mu.Lock()
		s.running--
		s.gaugesLocked()
		s.mu.Unlock()
		<-s.sem
		if err == nil {
			es := s.tracer.StartRoot("encode", parent)
			body, err = marshalReport(reportFor(cfg, res))
			es.End()
		}
		if err != nil {
			status = statusFor(err)
		}
	case <-s.baseCtx.Done():
		qs.SetAttr("outcome", "aborted")
		qs.End()
		err = s.baseCtx.Err()
		status = http.StatusServiceUnavailable
	}
	s.mu.Lock()
	if err == nil {
		s.cache.put(digest, body)
	}
	delete(s.flight, digest)
	s.pending--
	s.gaugesLocked()
	s.mu.Unlock()
	c.body, c.status, c.restored, c.err = body, status, info.Restored, err
	close(c.done)
}

// reportFor renders a finished simulation as the run-report/v1 artifact the
// rest of the repo (tvgate, dashboards, EXPERIMENTS.md) already consumes.
// Every field derives from the deterministic result, so the bytes are a
// pure function of the request.
func reportFor(cfg tvsched.Config, res tvsched.Result) *obs.RunReport {
	st := res.Stats
	return &obs.RunReport{
		Schema:       obs.RunReportSchema,
		Tool:         "tvservd",
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Seed:         cfg.Seed,
		Instructions: st.Committed,
		Cycles:       st.Cycles,
		IPC:          st.IPC(),
		TEP:          experiments.TEPAccuracyFrom(&st),
	}
}

// marshalReport renders the response body: compact JSON plus a trailing
// newline. Compact (rather than RunReport.WriteJSON's indented form) so the
// same bytes embed verbatim in NDJSON sweep lines.
func marshalReport(rep *obs.RunReport) ([]byte, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// statusFor maps simulation errors to HTTP statuses: caller mistakes to
// 400, exhausted run budgets and shutdown to 503, model failures to 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, tvsched.ErrUnknownBenchmark),
		errors.Is(err, tvsched.ErrUnknownScheme),
		errors.Is(err, tvsched.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// retryAfter estimates, from the observed mean simulation latency and the
// current backlog, how long a rejected client should wait before retrying.
// Clamped to [1s, 60s]; a cold server (no latency samples yet) says 1s.
func (s *Server) retryAfter() string {
	snap := s.sm.Snapshot()
	s.mu.Lock()
	backlog := s.pending
	s.mu.Unlock()
	secs := int(snap.RunLatency.Mean() / 1e6 * float64(backlog) / float64(s.cfg.Workers))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// decode parses a JSON request body strictly: unknown fields are errors, so
// a typo'd field name fails loudly instead of silently taking a default.
func decode(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// checkPolicy enforces the per-request resource caps.
func (s *Server) checkPolicy(cfg tvsched.Config) error {
	if cfg.Instructions > s.cfg.MaxInstructions {
		return fmt.Errorf("%w: instructions %d over server cap %d",
			ErrBadRequest, cfg.Instructions, s.cfg.MaxInstructions)
	}
	return nil
}

// fail is the single chokepoint every 4xx/5xx response goes through: it
// emits exactly one structured log record (request ID + digest + cause) and
// writes the error body, unless the client is already gone. 4xx logs at
// Warn (the client misbehaved), 5xx at Error (we did).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, reqID, digest string, status int, err error) {
	level := slog.LevelWarn
	if status >= 500 {
		level = slog.LevelError
	}
	s.log.LogAttrs(r.Context(), level, "request failed",
		slog.String("request_id", reqID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("digest", digest),
		slog.Int("status", status),
		slog.String("cause", err.Error()),
	)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfter())
	}
	if r.Context().Err() != nil {
		return // client is gone; nothing to write to
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tracer.StartRoot("run", span.Extract(r))
	defer sp.End()
	reqID := sp.TraceID().String()
	h := w.Header()
	h.Set("X-Request-Id", reqID)
	sp.Context().Inject(h)
	if r.Method != http.MethodPost {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	var req RunRequest
	var cfg tvsched.Config
	err := decode(w, r, &req)
	if err == nil {
		cfg, err = req.Config()
	}
	if err == nil {
		err = s.checkPolicy(cfg)
	}
	if err != nil {
		s.sm.Outcome(obs.ServeBadRequest)
		s.sm.ObserveRequest(obs.RouteRun, obs.ServeBadRequest, uint64(time.Since(start).Microseconds()))
		sp.SetAttr("outcome", "bad_request")
		s.fail(w, r, reqID, "", http.StatusBadRequest, err)
		return
	}
	digest := cfg.Digest()
	sp.SetAttr("digest", digest)
	body, outcome, restored, status, err := s.result(r.Context(), cfg, true, true, sp)
	s.sm.Outcome(outcome)
	s.sm.ObserveRequest(obs.RouteRun, outcome, uint64(time.Since(start).Microseconds()))
	prov := provenance(outcome, restored)
	sp.SetAttr("outcome", prov)
	if err != nil {
		s.fail(w, r, reqID, digest, status, err)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("X-Tvsched-Digest", digest)
	h.Set("X-Tvsched-Cache", outcome.String())
	_, _ = w.Write(body)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "run served",
		slog.String("request_id", reqID),
		slog.String("digest", digest),
		slog.String("cache", prov),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// sweepLine is one NDJSON record of a sweep response.
//
// Ordering contract (pinned by a golden test): the stream carries exactly one
// line per cell, in the cell order SweepRequest.Cells defines — benchmarks ×
// schemes × VDDs × seeds, each axis in its requested order, seeds innermost —
// and Index is the cell's position in that order, ascending from 0 with no
// gaps. Cells simulate concurrently, but emission always waits for the next
// index, so the stream is deterministic end to end (only the per-line Cache
// annotation may vary with scheduling).
type sweepLine struct {
	Index     int             `json:"index"`
	Benchmark string          `json:"benchmark"`
	Scheme    string          `json:"scheme"`
	VDD       float64         `json:"vdd"`
	Seed      uint64          `json:"seed"`
	Digest    string          `json:"digest"`
	Cache     string          `json:"cache"`
	Report    json.RawMessage `json:"report,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// ProgressSchema tags the heartbeat records a progress-enabled sweep stream
// interleaves with its cell lines. Cell lines never carry a schema field, so
// `"schema":"tvsched/progress/v1"` is the discriminator.
const ProgressSchema = "tvsched/progress/v1"

// progressLine is one live-campaign heartbeat: cumulative cell accounting by
// provenance plus an ETA extrapolated from an EWMA of cell latency.
type progressLine struct {
	Schema      string  `json:"schema"`
	Done        int     `json:"done"`
	Total       int     `json:"total"`
	Hit         int     `json:"hit"`
	Shared      int     `json:"shared"`
	Restored    int     `json:"restored"`
	Cold        int     `json:"cold"`
	Errors      int     `json:"errors"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	CellEwmaSec float64 `json:"cell_ewma_sec"`
	EtaSec      float64 `json:"eta_sec"`
}

// progress accumulates per-cell completions for one sweep's heartbeats. Cell
// goroutines write, the emission loop reads; the mutex is the only coupling.
type progress struct {
	mu                                sync.Mutex
	total, done                       int
	hit, shared, restored, cold, errs int
	ewma                              float64 // seconds per cell
}

// observe folds one finished cell in. The EWMA (α=0.3) tracks recent cell
// latency so the ETA adapts as a sweep transitions cold → warm.
func (p *progress) observe(outcome obs.ServeOutcome, restored bool, err error, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	switch {
	case err != nil:
		p.errs++
	case outcome == obs.ServeHit:
		p.hit++
	case outcome == obs.ServeShared:
		p.shared++
	case restored:
		p.restored++
	default:
		p.cold++
	}
	const alpha = 0.3
	if sec := d.Seconds(); p.ewma == 0 {
		p.ewma = sec
	} else {
		p.ewma = alpha*sec + (1-alpha)*p.ewma
	}
}

// line renders the current heartbeat. The ETA assumes the remaining cells run
// at the EWMA latency across min(workers, remaining) lanes.
func (p *progress) line(start time.Time, workers int) *progressLine {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := &progressLine{
		Schema: ProgressSchema,
		Done:   p.done, Total: p.total,
		Hit: p.hit, Shared: p.shared, Restored: p.restored, Cold: p.cold,
		Errors:      p.errs,
		ElapsedSec:  time.Since(start).Seconds(),
		CellEwmaSec: p.ewma,
	}
	if remaining := p.total - p.done; remaining > 0 {
		lanes := workers
		if remaining < lanes {
			lanes = remaining
		}
		l.EtaSec = p.ewma * float64(remaining) / float64(lanes)
	}
	return l
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tracer.StartRoot("sweep", span.Extract(r))
	defer sp.End()
	reqID := sp.TraceID().String()
	h := w.Header()
	h.Set("X-Request-Id", reqID)
	sp.Context().Inject(h)
	if r.Method != http.MethodPost {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	var req SweepRequest
	var cells []RunRequest
	err := decode(w, r, &req)
	if err == nil {
		cells, err = req.Cells()
	}
	if err == nil && len(cells) > s.cfg.MaxSweepCells {
		err = fmt.Errorf("%w: %d cells over server cap %d", ErrBadRequest, len(cells), s.cfg.MaxSweepCells)
	}
	var cfgs []tvsched.Config
	if err == nil {
		cfgs = make([]tvsched.Config, len(cells))
		for i := range cells {
			if cfgs[i], err = cells[i].Config(); err != nil {
				break
			}
			if err = s.checkPolicy(cfgs[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		s.sm.Outcome(obs.ServeBadRequest)
		sp.SetAttr("outcome", "bad_request")
		s.fail(w, r, reqID, "", http.StatusBadRequest, err)
		return
	}
	sp.SetAttr("cells", strconv.Itoa(len(cells)))

	checkpoint := req.Checkpoint == nil || *req.Checkpoint
	prog := &progress{total: len(cells)}
	type cellResult struct {
		body    []byte
		outcome obs.ServeOutcome
		err     error
	}
	results := make([]chan cellResult, len(cells))
	// Fan out, bounded: the pool itself is the throttle (admit=false), the
	// limiter just keeps goroutine count proportional to capacity rather
	// than sweep size. Cell goroutines may outlive this handler when the
	// client disconnects, so they parent their spans under a value copy of
	// the sweep span's context, never the live span.
	sweepCtx := sp.Context()
	limiter := make(chan struct{}, s.cfg.Workers+s.cfg.QueueDepth)
	for i := range cells {
		results[i] = make(chan cellResult, 1)
		go func(i int) {
			limiter <- struct{}{}
			defer func() { <-limiter }()
			cs := s.tracer.StartRoot("cell", sweepCtx)
			cs.SetAttr("digest", cfgs[i].Digest())
			cs.SetAttr("index", strconv.Itoa(i))
			cellStart := time.Now()
			body, outcome, restored, _, err := s.result(r.Context(), cfgs[i], false, checkpoint, cs)
			cs.SetAttr("outcome", provenance(outcome, restored))
			cs.End()
			s.sm.Outcome(outcome)
			s.sm.ObserveRequest(obs.RouteSweep, outcome, uint64(time.Since(cellStart).Microseconds()))
			prog.observe(outcome, restored, err, time.Since(cellStart))
			results[i] <- cellResult{body, outcome, err}
		}(i)
	}

	h.Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false // client is gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	// Heartbeats are strictly opt-in: they carry wall-clock timings, and the
	// default stream must stay a pure function of the request (the
	// determinism contract CI enforces byte-for-byte). A nil ticker channel
	// blocks forever, collapsing the select to plain emission.
	var tick <-chan time.Time
	if req.Progress {
		t := time.NewTicker(s.cfg.HeartbeatInterval)
		defer t.Stop()
		tick = t.C
	}
	for i := range cells {
	emitCell:
		for {
			select {
			case res := <-results[i]:
				line := sweepLine{
					Index:     i,
					Benchmark: cfgs[i].Benchmark,
					Scheme:    cfgs[i].Scheme.String(),
					VDD:       cfgs[i].VDD,
					Seed:      cfgs[i].Seed,
					Digest:    cfgs[i].Digest(),
					Cache:     res.outcome.String(),
				}
				if res.err != nil {
					line.Error = res.err.Error()
				} else {
					line.Report = json.RawMessage(trimNewline(res.body))
				}
				if !emit(&line) {
					return
				}
				break emitCell
			case <-tick:
				if !emit(prog.line(start, s.cfg.Workers)) {
					return
				}
			}
		}
	}
	// A final heartbeat closes the accounting (done == total, ETA 0) so a
	// consumer never has to infer completion from a stale extrapolation.
	if req.Progress {
		if !emit(prog.line(start, s.cfg.Workers)) {
			return
		}
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "sweep served",
		slog.String("request_id", reqID),
		slog.Int("cells", len(cells)),
		slog.Duration("elapsed", time.Since(start)),
	)
}

// handleTrace serves the flight-recorder slice of one request as a Chrome
// trace-event JSON document (loadable in Perfetto or chrome://tracing). The
// request ID is the X-Request-Id a /v1/run or /v1/sweep response carried;
// spans age out of the bounded ring, so an old ID answers 404, never an
// error.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, "", "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	id, ok := span.ParseTraceID(raw)
	if !ok {
		s.fail(w, r, raw, "", http.StatusBadRequest,
			fmt.Errorf("%w: malformed request id (want 32 hex chars)", ErrBadRequest))
		return
	}
	spans := s.tracer.Trace(id)
	if len(spans) == 0 {
		s.fail(w, r, raw, "", http.StatusNotFound,
			errors.New("trace not found: unknown request id, or its spans were evicted"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = span.WriteChromeTrace(w, spans)
}

func trimNewline(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}
