package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tvsched/internal/campaign"
)

// newHTTPServer fronts s without the newTestServer cleanups, for tests that
// restart servers over a shared campaign directory and need to close the
// first life explicitly before starting the second.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}

func postCampaign(t *testing.T, url string, spec campaign.Spec) (*http.Response, campaignStatus) {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/campaign", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st campaignStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode campaign status: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

// waitCampaignState polls the status endpoint until the campaign reaches
// want (or the deadline passes), returning the final status document.
func waitCampaignState(t *testing.T, url, id, want string) campaignStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st campaignStatus
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/campaign/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode campaign status: %v", err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %q (last %q, done %d/%d, error %q)",
		id, want, st.State, st.Done, st.Total, st.Error)
	return st
}

func campaignReport(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/campaign/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("report content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCampaignLifecycle drives the asynchronous campaign API end to end:
// POST admits and answers 202 immediately, status converges to done, the
// report endpoint replays the journal in cell order, and a re-POST of the
// same spec joins the finished campaign (200) without re-simulating.
func TestCampaignLifecycle(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers:     2,
		Runner:      stubRunner(&runs, nil),
		CampaignDir: t.TempDir(),
	})

	spec := campaign.Spec{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Schemes:      []string{"ABS"},
		Seeds:        []uint64{1, 2},
		Instructions: 2000,
	}
	resp, st := postCampaign(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST status %d, want 202", resp.StatusCode)
	}
	if st.Schema != CampaignStatusSchema {
		t.Errorf("status schema %q", st.Schema)
	}
	if st.ID == "" || st.Total != 4 {
		t.Fatalf("status id=%q total=%d", st.ID, st.Total)
	}

	final := waitCampaignState(t, ts.URL, st.ID, campaignDone)
	if final.Done != 4 || final.Error != "" {
		t.Fatalf("done campaign: done=%d error=%q", final.Done, final.Error)
	}
	if final.Progress == nil || final.Progress.Done != 4 || final.Progress.Total != 4 {
		t.Errorf("terminal status progress = %+v", final.Progress)
	}

	report := campaignReport(t, ts.URL, st.ID)
	var lines []campaign.Line
	for _, raw := range bytes.Split(bytes.TrimSuffix(report, []byte("\n")), []byte("\n")) {
		var l campaign.Line
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("bad report line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("%d report lines, want 4", len(lines))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Errorf("line %d carries index %d: report must replay in cell order", i, l.Index)
		}
		if l.Error != "" || len(l.Report) == 0 {
			t.Errorf("cell %d failed: %q", i, l.Error)
		}
	}

	// Idempotent re-POST: same spec, same plan hash, no new executor and no
	// new simulations.
	before := runs.Load()
	resp2, st2 := postCampaign(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-POST status %d, want 200", resp2.StatusCode)
	}
	if st2.ID != st.ID || st2.State != campaignDone {
		t.Fatalf("re-POST joined id=%q state=%q", st2.ID, st2.State)
	}
	if runs.Load() != before {
		t.Fatalf("re-POST re-simulated: %d runs, had %d", runs.Load(), before)
	}
}

// TestCampaignDisabledAndBadRequests pins the refusal paths: no campaign
// directory answers 503, malformed specs and over-cap campaigns answer 400,
// unknown ids answer 404.
func TestCampaignDisabledAndBadRequests(t *testing.T) {
	var runs atomic.Int64
	_, disabled := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, nil)})
	resp, _ := postCampaign(t, disabled.URL, campaign.Spec{Benchmarks: []string{"bzip2"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("campaign without dir: status %d, want 503", resp.StatusCode)
	}

	_, ts := newTestServer(t, Config{
		Workers:          1,
		Runner:           stubRunner(&runs, nil),
		CampaignDir:      t.TempDir(),
		MaxCampaignCells: 2,
	})
	resp, _ = postCampaign(t, ts.URL, campaign.Spec{Benchmarks: []string{"no-such-benchmark"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postCampaign(t, ts.URL, campaign.Spec{Seeds: []uint64{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-cap campaign: status %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/v1/campaign/deadbeef", "/v1/campaign/deadbeef/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestCampaignResumeAcrossRestart is the serve-layer resume contract: a
// second server pointed at the same campaign directory relaunches the
// journal, replays the finished prefix without re-simulating it, executes
// only the missing cells, and serves a report whose journaled prefix is
// byte-identical to what the first run recorded.
func TestCampaignResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := campaign.Spec{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Schemes:      []string{"ABS"},
		Seeds:        []uint64{1, 2},
		Instructions: 2000,
	}

	// First life: run the campaign to completion and keep its report.
	var runsA atomic.Int64
	sA := New(Config{Workers: 2, Runner: stubRunner(&runsA, nil), CampaignDir: dir})
	tsA := newHTTPServer(t, sA)
	_, st := postCampaign(t, tsA.URL, spec)
	waitCampaignState(t, tsA.URL, st.ID, campaignDone)
	reportA := campaignReport(t, tsA.URL, st.ID)
	tsA.Close()
	sA.Close()

	// Second life: ResumeCampaigns finds the finished journal, replays it to
	// a terminal done without a single simulation, and the report is the
	// same bytes.
	var runsB atomic.Int64
	sB := New(Config{Workers: 2, Runner: stubRunner(&runsB, nil), CampaignDir: dir})
	tsB := newHTTPServer(t, sB)
	n, err := sB.ResumeCampaigns()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ResumeCampaigns relaunched %d campaigns, want 1", n)
	}
	waitCampaignState(t, tsB.URL, st.ID, campaignDone)
	if runsB.Load() != 0 {
		t.Fatalf("resuming a finished campaign re-simulated %d cells", runsB.Load())
	}
	reportB := campaignReport(t, tsB.URL, st.ID)
	if !bytes.Equal(reportA, reportB) {
		t.Fatalf("resumed report differs from original:\n%s\nvs\n%s", reportA, reportB)
	}
	tsB.Close()
	sB.Close()
}

// TestCampaignSuspendsOnShutdownThenResumes kills a campaign mid-flight by
// shutting the server down, checks the status reports suspended, and then
// finishes it on a fresh server over the same directory.
func TestCampaignSuspendsOnShutdownThenResumes(t *testing.T) {
	dir := t.TempDir()
	spec := campaign.Spec{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Schemes:      []string{"ABS"},
		Seeds:        []uint64{1, 2},
		Instructions: 2000,
	}

	var runsA atomic.Int64
	gate := make(chan struct{}) // never closed: every simulation hangs
	sA := New(Config{Workers: 2, Runner: stubRunner(&runsA, gate), CampaignDir: dir})
	tsA := newHTTPServer(t, sA)
	resp, st := postCampaign(t, tsA.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", resp.StatusCode)
	}
	sA.Close() // cancels the server context; the executor must suspend
	susp := waitCampaignState(t, tsA.URL, st.ID, campaignSuspended)
	if susp.Error == "" {
		t.Error("suspended status carries no cause")
	}
	tsA.Close()

	var runsB atomic.Int64
	sB := New(Config{Workers: 2, Runner: stubRunner(&runsB, nil), CampaignDir: dir})
	tsB := newHTTPServer(t, sB)
	if n, err := sB.ResumeCampaigns(); err != nil || n != 1 {
		t.Fatalf("ResumeCampaigns = %d, %v", n, err)
	}
	final := waitCampaignState(t, tsB.URL, st.ID, campaignDone)
	if final.Done != 4 || final.Error != "" {
		t.Fatalf("resumed campaign: done=%d error=%q", final.Done, final.Error)
	}
	tsB.Close()
	sB.Close()
}

// TestCampaignResumesPartialJournal pre-seeds a journal with a finished
// prefix, resumes it, and checks only the missing cells execute while the
// prefix replays byte-for-byte.
func TestCampaignResumesPartialJournal(t *testing.T) {
	dir := t.TempDir()
	spec := campaign.Spec{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Schemes:      []string{"ABS"},
		Seeds:        []uint64{1, 2},
		Instructions: 2000,
	}
	plan, err := campaign.NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	s := New(Config{Workers: 2, Runner: stubRunner(&runs, nil), CampaignDir: dir})
	j, err := campaign.OpenJournal(s.journalPath(plan), plan)
	if err != nil {
		t.Fatal(err)
	}
	var seeded [][]byte
	for i := 0; i < 2; i++ {
		cfg := plan.Cell(i).Config
		line, err := json.Marshal(&campaign.Line{
			Index: i, Benchmark: cfg.Benchmark, Scheme: cfg.Scheme.String(),
			VDD: cfg.VDD, Seed: cfg.Seed, Digest: cfg.Digest(),
			Cache: "miss", Report: json.RawMessage(`{"seeded":true}`),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(i, campaign.ClassCold, line); err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, line)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ts := newHTTPServer(t, s)
	defer ts.Close()
	defer s.Close()
	if n, err := s.ResumeCampaigns(); err != nil || n != 1 {
		t.Fatalf("ResumeCampaigns = %d, %v", n, err)
	}
	final := waitCampaignState(t, ts.URL, plan.Hash(), campaignDone)
	if final.Done != 4 || final.Resumed != 2 {
		t.Fatalf("resumed campaign: done=%d resumed=%d, want 4/2", final.Done, final.Resumed)
	}
	if runs.Load() != 2 {
		t.Fatalf("%d simulations after resuming a half-done 4-cell campaign, want 2", runs.Load())
	}
	report := campaignReport(t, ts.URL, plan.Hash())
	reportLines := bytes.Split(bytes.TrimSuffix(report, []byte("\n")), []byte("\n"))
	if len(reportLines) != 4 {
		t.Fatalf("%d report lines, want 4", len(reportLines))
	}
	for i, want := range seeded {
		if !bytes.Equal(reportLines[i], want) {
			t.Errorf("journaled prefix line %d changed on resume:\n got %s\nwant %s", i, reportLines[i], want)
		}
	}
}

// TestSweepRequestPlansLazily pins the /v1/sweep memory fix: planning a
// million-cell sweep request costs O(axes) allocations, not O(cells) —
// the handler no longer materializes the cross product up front.
func TestSweepRequestPlansLazily(t *testing.T) {
	seeds := make([]uint64, 250_000)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	req := SweepRequest{
		Schema:     SweepRequestSchema,
		Benchmarks: []string{"bzip2", "sjeng"},
		Schemes:    []string{"ABS", "FFS"},
		Seeds:      seeds, // 2×2×1×250000 = 1,000,000 cells
	}
	allocs := testing.AllocsPerRun(10, func() {
		plan, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if plan.Total() != 1_000_000 {
			t.Fatalf("Total = %d", plan.Total())
		}
		_ = plan.Cell(999_999)
	})
	if allocs > 200 {
		t.Fatalf("planning a 1M-cell sweep cost %.0f allocations — the handler is eager again", allocs)
	}
}
