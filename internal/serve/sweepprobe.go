package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"tvsched/internal/campaign"
)

// SweepProbeSchema tags the live-telemetry probe artifact (cmd/tvload
// -sweepprobe): a consumer's-eye measurement of the progress/v1 heartbeat
// stream a progress-enabled /v1/sweep emits.
const SweepProbeSchema = "tvsched/sweep-probe/v1"

// SweepProbeConfig parameterizes one heartbeat-observing sweep against a
// running tvservd. The grid is the sweepbench scheme×voltage cross (ten
// cells, one shared warm state) with lighter default phase lengths — the
// probe measures the telemetry, not the checkpoint speedup.
type SweepProbeConfig struct {
	// URL is the server base URL.
	URL string
	// Benchmark names the workload every cell simulates (default bzip2).
	Benchmark string
	// Warmup / Instructions shape each cell (defaults 20000 / 4000).
	Warmup       uint64
	Instructions uint64
	// Seed drives the sweep (default 1).
	Seed uint64
	// Timeout bounds the sweep request (default 10m).
	Timeout time.Duration
}

func (c *SweepProbeConfig) fill() {
	if c.Benchmark == "" {
		c.Benchmark = "bzip2"
	}
	if c.Warmup == 0 {
		c.Warmup = 20000
	}
	if c.Instructions == 0 {
		c.Instructions = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
}

// SweepProbeReport is the machine-readable outcome (schema
// tvsched/sweep-probe/v1). Wall-clock fields vary run to run; the structural
// fields (cells, heartbeat presence, final accounting) are what CI asserts.
type SweepProbeReport struct {
	Schema    string `json:"schema"`
	URL       string `json:"url"`
	RequestID string `json:"request_id"`
	Benchmark string `json:"benchmark"`
	Cells     int    `json:"cells"`
	// Heartbeats counts progress/v1 records seen on the stream (including
	// the closing one).
	Heartbeats int `json:"heartbeats"`
	// TimeToFirstCellNS is the wall time from posting the sweep to the first
	// cell line — the streaming-latency figure a dashboard user feels.
	TimeToFirstCellNS int64 `json:"time_to_first_cell_ns"`
	TotalNS           int64 `json:"total_ns"`
	// FinalDone/FinalTotal echo the closing heartbeat's accounting; a healthy
	// stream ends with the two equal.
	FinalDone  int `json:"final_done"`
	FinalTotal int `json:"final_total"`
	// Provenance breakdown from the closing heartbeat.
	Hit      int `json:"hit"`
	Shared   int `json:"shared"`
	Restored int `json:"restored"`
	Cold     int `json:"cold"`
	Errors   int `json:"errors"`
	// EtaMAESec is the mean absolute error, in seconds, of each mid-stream
	// heartbeat's ETA against the remaining wall time the sweep actually
	// took; EtaSamples counts the heartbeats that prediction was scored on.
	// Zero samples (the sweep finished inside one cadence) reports MAE 0.
	EtaMAESec  float64 `json:"eta_mae_sec"`
	EtaSamples int     `json:"eta_samples"`
}

// RunSweepProbe posts one progress-enabled sweep and measures the telemetry
// stream from the consumer side: time to first cell, heartbeat count, the
// closing heartbeat's accounting, and how well the mid-stream ETAs predicted
// the actual remaining duration.
func RunSweepProbe(ctx context.Context, cfg SweepProbeConfig) (*SweepProbeReport, error) {
	cfg.fill()
	if cfg.URL == "" {
		return nil, fmt.Errorf("sweepprobe: no server URL")
	}
	schemes, vdds := sweepBenchCells()
	req := SweepRequest{
		Schema:       SweepRequestSchema,
		Benchmarks:   []string{cfg.Benchmark},
		Schemes:      schemes,
		VDDs:         vdds,
		Seeds:        []uint64{cfg.Seed},
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Progress:     true,
	}
	blob, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.URL+"/v1/sweep", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := &http.Client{Timeout: cfg.Timeout}
	start := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweepprobe: sweep status %d", resp.StatusCode)
	}

	rep := &SweepProbeReport{
		Schema:    SweepProbeSchema,
		URL:       cfg.URL,
		RequestID: resp.Header.Get("X-Request-Id"),
		Benchmark: cfg.Benchmark,
	}
	// Each mid-stream heartbeat is an (arrival time, predicted ETA) sample;
	// once the stream ends we know the actual remaining time each one was
	// predicting and can score them.
	type etaSample struct {
		at  time.Time
		eta float64
	}
	var samples []etaSample
	var last campaign.ProgressLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		now := time.Now()
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("sweepprobe: bad NDJSON line: %w", err)
		}
		if probe.Schema == ProgressSchema {
			var b campaign.ProgressLine
			if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
				return nil, fmt.Errorf("sweepprobe: bad heartbeat: %w", err)
			}
			rep.Heartbeats++
			if b.Done < b.Total {
				samples = append(samples, etaSample{at: now, eta: b.EtaSec})
			}
			last = b
			continue
		}
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("sweepprobe: bad cell line: %w", err)
		}
		if line.Error != "" {
			return nil, fmt.Errorf("sweepprobe: cell %d failed: %s", line.Index, line.Error)
		}
		if rep.Cells == 0 {
			rep.TimeToFirstCellNS = now.Sub(start).Nanoseconds()
		}
		rep.Cells++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	end := time.Now()
	rep.TotalNS = end.Sub(start).Nanoseconds()
	if want := len(schemes) * len(vdds); rep.Cells != want {
		return nil, fmt.Errorf("sweepprobe: %d cells, want %d", rep.Cells, want)
	}
	if rep.Heartbeats == 0 {
		return nil, fmt.Errorf("sweepprobe: progress-enabled sweep emitted no heartbeats")
	}
	rep.FinalDone, rep.FinalTotal = last.Done, last.Total
	rep.Hit, rep.Shared, rep.Restored, rep.Cold, rep.Errors =
		last.Hit, last.Shared, last.Restored, last.Cold, last.Errors

	var absErr float64
	for _, s := range samples {
		actual := end.Sub(s.at).Seconds()
		absErr += math.Abs(s.eta - actual)
	}
	rep.EtaSamples = len(samples)
	if len(samples) > 0 {
		rep.EtaMAESec = absErr / float64(len(samples))
	}
	return rep, nil
}
