package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tvsched"
	"tvsched/internal/campaign"
)

// slowRunner fakes a simulation taking d of wall time, so heartbeat and
// latency behaviour is observable without a real pipeline.
func slowRunner(d time.Duration) Runner {
	return func(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return tvsched.Result{}, RunInfo{}, ctx.Err()
		}
		st := tvsched.PipeStats{Committed: cfg.Instructions, Cycles: cfg.Instructions*2 + cfg.Seed}
		return tvsched.Result{IPC: st.IPC(), Stats: st}, RunInfo{}, nil
	}
}

// TestTraceEndpoint drives one request through the server and pulls its
// timeline back out of the flight recorder: the X-Request-Id on the response
// must resolve through GET /v1/trace/{id} to a well-formed Chrome trace
// holding the request's spans.
func TestTraceEndpoint(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, nil)})
	resp, _ := postRun(t, ts.URL, RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: 5})
	reqID := resp.Header.Get("X-Request-Id")
	if len(reqID) != 32 {
		t.Fatalf("X-Request-Id %q, want 32 hex chars", reqID)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, reqID) {
		t.Fatalf("response traceparent %q does not carry the request trace %q", tp, reqID)
	}

	tr, err := http.Get(ts.URL + "/v1/trace/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", tr.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(tr.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, body.Bytes())
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Args["trace_id"] != reqID {
			t.Fatalf("event %q on trace %q, want %q", ev.Name, ev.Args["trace_id"], reqID)
		}
	}
	for _, want := range []string{"run", "admission", "queue_wait", "simulate", "encode"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}

	// The degrade surface: malformed ID → 400, unknown ID → 404.
	for _, c := range []struct {
		id   string
		want int
	}{
		{"nothex", http.StatusBadRequest},
		{strings.Repeat("a", 32), http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + "/v1/trace/" + c.id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("trace %q: status %d, want %d", c.id, resp.StatusCode, c.want)
		}
	}
}

// TestSweepHeartbeats opts a sweep into progress records and checks the
// live-campaign contract: at least one mid-stream heartbeat at the configured
// cadence, done monotone non-decreasing with total pinned, non-negative ETA,
// and a final heartbeat that closes the accounting at done == total.
func TestSweepHeartbeats(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:           2,
		HeartbeatInterval: 15 * time.Millisecond,
		Runner:            slowRunner(60 * time.Millisecond),
	})
	sweep := SweepRequest{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Seeds:        []uint64{1, 2},
		Instructions: 1000,
		Progress:     true,
	}
	body := postSweep(t, ts.URL, sweep)

	var beats []campaign.ProgressLine
	var cellIdx []int
	sc := bufio.NewScanner(bytes.NewReader(body))
	lastLineWasBeat := false
	for sc.Scan() {
		var probe struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Schema == ProgressSchema {
			var b campaign.ProgressLine
			if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
				t.Fatal(err)
			}
			beats = append(beats, b)
			lastLineWasBeat = true
			continue
		}
		lastLineWasBeat = false
		var l sweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		cellIdx = append(cellIdx, l.Index)
	}

	// Four 60ms cells on two workers is ≥120ms of stream against a 15ms
	// cadence; at minimum the final heartbeat plus one mid-stream tick.
	if len(beats) < 2 {
		t.Fatalf("%d heartbeats, want at least 2 (one mid-stream + final)", len(beats))
	}
	for i, b := range beats {
		if b.Total != 4 {
			t.Fatalf("heartbeat %d total %d, want constant 4", i, b.Total)
		}
		if i > 0 && b.Done < beats[i-1].Done {
			t.Fatalf("done went backwards: %d then %d", beats[i-1].Done, b.Done)
		}
		if b.EtaSec < 0 || b.CellEwmaSec < 0 || b.ElapsedSec < 0 {
			t.Fatalf("negative timing in heartbeat %d: %+v", i, b)
		}
		if i > 0 && b.ElapsedSec < beats[i-1].ElapsedSec {
			t.Fatalf("elapsed went backwards: %v then %v", beats[i-1].ElapsedSec, b.ElapsedSec)
		}
	}
	last := beats[len(beats)-1]
	if !lastLineWasBeat || last.Done != last.Total || last.EtaSec != 0 {
		t.Fatalf("stream must close with a done==total, eta=0 heartbeat; got %+v (last line a heartbeat: %v)", last, lastLineWasBeat)
	}
	// The cell lines themselves still stream complete and in pinned order.
	if len(cellIdx) != 4 {
		t.Fatalf("%d cell lines, want 4", len(cellIdx))
	}
	for i, idx := range cellIdx {
		if idx != i {
			t.Fatalf("cell order broken: line %d has index %d", i, idx)
		}
	}
}

// TestSweepNoProgressByDefault pins the determinism side of the bargain: a
// sweep that does not opt in gets a stream with no heartbeat records at all,
// even with a tick-happy server.
func TestSweepNoProgressByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:           2,
		HeartbeatInterval: time.Millisecond,
		Runner:            slowRunner(20 * time.Millisecond),
	})
	body := postSweep(t, ts.URL, SweepRequest{
		Benchmarks:   []string{"bzip2", "sjeng"},
		Instructions: 1000,
	})
	sc := bufio.NewScanner(bytes.NewReader(body))
	n := 0
	for sc.Scan() {
		if strings.Contains(sc.Text(), ProgressSchema) {
			t.Fatalf("progress-off stream carries a heartbeat: %s", sc.Text())
		}
		n++
	}
	if n != 2 {
		t.Fatalf("%d lines, want exactly 2 cells", n)
	}
}

// countingLogHandler collects slog records by level so tests can assert the
// one-line-per-error contract.
type countingLogHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *countingLogHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *countingLogHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r.Clone())
	return nil
}
func (h *countingLogHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *countingLogHandler) WithGroup(string) slog.Handler      { return h }

func (h *countingLogHandler) errors() []slog.Record {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []slog.Record
	for _, r := range h.records {
		if r.Level >= slog.LevelWarn {
			out = append(out, r)
		}
	}
	return out
}

// TestErrorPathsLogExactlyOnce audits the serving error surface: every
// 4xx/5xx response emits exactly one structured record, and that record
// carries a request ID, a status and a cause.
func TestErrorPathsLogExactlyOnce(t *testing.T) {
	h := &countingLogHandler{}
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 1, MaxInstructions: 10000,
		Runner: stubRunner(&runs, nil),
		Logger: slog.New(h),
	})

	wantErrs := 0
	// 400s: schema, decode, policy.
	for _, body := range []string{
		`{"schema":"tvsched/run-request/v999"}`,
		`{"benchmak":"bzip2"}`,
		`{"benchmark":"bzip2","instructions":20000}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		wantErrs++
	}
	// 405 on every route; 404 and 400 on the trace endpoint.
	for _, probe := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/run", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/sweep", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/trace/" + strings.Repeat("a", 32), http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/trace/" + strings.Repeat("a", 32), http.StatusNotFound},
		{http.MethodGet, "/v1/trace/zzz", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Fatalf("%s %s: status %d, want %d", probe.method, probe.path, resp.StatusCode, probe.want)
		}
		wantErrs++
	}

	errs := h.errors()
	if len(errs) != wantErrs {
		t.Fatalf("%d warn/error records for %d error responses, want exactly one each", len(errs), wantErrs)
	}
	for _, r := range errs {
		got := map[string]bool{}
		r.Attrs(func(a slog.Attr) bool {
			got[a.Key] = true
			return true
		})
		for _, key := range []string{"request_id", "digest", "status", "cause"} {
			if !got[key] {
				t.Fatalf("error record %q missing %q attr", r.Message, key)
			}
		}
	}

	// And the happy path logs too (at info), with the digest correlated.
	before := len(h.errors())
	resp, _ := postRun(t, ts.URL, RunRequest{Benchmark: "bzip2", Instructions: 1000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if after := len(h.errors()); after != before {
		t.Fatalf("a 200 response emitted a warn/error record")
	}
	h.mu.Lock()
	var served *slog.Record
	for i := range h.records {
		if h.records[i].Message == "run served" {
			served = &h.records[i]
		}
	}
	h.mu.Unlock()
	if served == nil {
		t.Fatal("no 'run served' info record for a 200 response")
	}
	var reqID, digest string
	served.Attrs(func(a slog.Attr) bool {
		switch a.Key {
		case "request_id":
			reqID = a.Value.String()
		case "digest":
			digest = a.Value.String()
		}
		return true
	})
	if len(reqID) != 32 || digest == "" {
		t.Fatalf("served record correlation broken: request_id=%q digest=%q", reqID, digest)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Fatalf("logged request_id %q != response header %q", reqID, got)
	}
	if got := resp.Header.Get("X-Tvsched-Digest"); got != digest {
		t.Fatalf("logged digest %q != response header %q", digest, got)
	}
}
