package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ClusterLoadReportSchema tags the multi-target load artifact (cmd/tvload
// -urls). Documented in EXPERIMENTS.md alongside load-report/v1.
const ClusterLoadReportSchema = "tvsched/cluster-load-report/v1"

// ClusterLoadConfig parameterizes a load run sprayed across every node of a
// tvservd cluster: the same seeded closed-loop mix as LoadConfig, with each
// request's target node drawn (deterministically, from the worker's
// generator) from URLs. Spraying one digest population over all nodes is
// exactly the hostile case the cluster routing exists for — every node sees
// every digest, and the forward/read-through protocol must still collapse
// each digest onto one simulation cluster-wide.
type ClusterLoadConfig struct {
	// URLs are the base URLs of every cluster node (at least one).
	URLs []string
	// Load shapes the request mix; Load.URL is ignored.
	Load LoadConfig
}

// NodeLoadStats is one node's slice of a cluster load run, classified from
// the response headers as the client saw them.
type NodeLoadStats struct {
	URL      string `json:"url"`
	Requests uint64 `json:"requests"`
	Hits     uint64 `json:"hits"`
	Shared   uint64 `json:"shared"`
	// Misses are fresh results (X-Tvsched-Cache: miss); Stolen is the
	// subset whose bytes another node actually produced (X-Tvsched-Source:
	// forward or peer) — the cluster saved this node a simulation.
	Misses   uint64         `json:"misses"`
	Stolen   uint64         `json:"stolen"`
	Rejected uint64         `json:"rejected"`
	Errors   uint64         `json:"errors"`
	Latency  LatencySummary `json:"latency_us"`
}

// ClusterLoadReport is the machine-readable outcome of a multi-target load
// run (schema tvsched/cluster-load-report/v1): the aggregate view plus a
// per-node breakdown, and a client-side byte-consistency check — every
// response body is hashed per digest, and Divergences counts responses that
// disagreed with the first bytes seen for their digest. Determinism makes
// the only acceptable value zero; cmd/tvgate -cluster gates on it.
type ClusterLoadReport struct {
	Schema      string          `json:"schema"`
	Nodes       []NodeLoadStats `json:"nodes"`
	Concurrency int             `json:"concurrency"`
	Requests    int             `json:"requests"`
	Population  int             `json:"population"`
	ZipfS       float64         `json:"zipf_s"`
	Seed        uint64          `json:"seed"`
	DurationSec float64         `json:"duration_sec"`
	// ThroughputRPS is completed requests (any outcome) per second across
	// the whole cluster.
	ThroughputRPS float64 `json:"throughput_rps"`
	Hits          uint64  `json:"hits"`
	Shared        uint64  `json:"shared"`
	Misses        uint64  `json:"misses"`
	Stolen        uint64  `json:"stolen"`
	Rejected      uint64  `json:"rejected"`
	Errors        uint64  `json:"errors"`
	// HitRate counts hits+shared over completed successful requests.
	HitRate float64 `json:"hit_rate"`
	// Divergences counts responses whose bytes disagreed with an earlier
	// response for the same digest — from any node. Must be zero.
	Divergences uint64         `json:"divergences"`
	Latency     LatencySummary `json:"latency_us"`
}

// RunClusterLoad drives the sprayed load and summarizes it per node. The
// mix and the target-node sequence are deterministic given the seed.
func RunClusterLoad(ctx context.Context, cfg ClusterLoadConfig) (*ClusterLoadReport, error) {
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("load: no cluster URLs")
	}
	load := cfg.Load
	load.fill()
	cells := load.population()
	bodies := make([][]byte, len(cells))
	for i, cell := range cells {
		b, err := json.Marshal(cell)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	// One tally per (worker, node) pair keeps the hot path lock-free; the
	// digest→hash consistency map is the only shared write.
	type tally struct {
		reqs, hits, shared, misses, stolen, rejected, errors uint64
		lat                                                  []float64 // µs
	}
	tallies := make([][]tally, load.Concurrency)
	for w := range tallies {
		tallies[w] = make([]tally, len(cfg.URLs))
	}
	var (
		seenMu      sync.Mutex
		seen        = make(map[string]uint64) // digest → first body hash
		divergences uint64
	)
	checkBytes := func(digest string, body []byte) {
		if digest == "" {
			return
		}
		h := fnv.New64a()
		h.Write(body)
		sum := h.Sum64()
		seenMu.Lock()
		if prev, ok := seen[digest]; !ok {
			seen[digest] = sum
		} else if prev != sum {
			divergences++
		}
		seenMu.Unlock()
	}

	var issued int64
	var issuedMu sync.Mutex
	next := func() bool {
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(load.Requests) {
			return false
		}
		issued++
		return true
	}

	client := &http.Client{Timeout: load.Timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < load.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(load.Seed) + int64(w)))
			var zipf *rand.Zipf
			if load.ZipfS > 1 && len(cells) > 1 {
				zipf = rand.NewZipf(rng, load.ZipfS, 1, uint64(len(cells)-1))
			}
			for next() {
				if ctx.Err() != nil {
					return
				}
				idx := 0
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else if len(cells) > 1 {
					idx = rng.Intn(len(cells))
				}
				node := rng.Intn(len(cfg.URLs))
				ta := &tallies[w][node]
				ta.reqs++
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.URLs[node]+"/v1/run", bytes.NewReader(bodies[idx]))
				if err != nil {
					ta.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					ta.errors++
					continue
				}
				body, readErr := io.ReadAll(resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, float64(time.Since(t0).Microseconds()))
				switch {
				case readErr != nil:
					ta.errors++
				case resp.StatusCode == http.StatusTooManyRequests:
					ta.rejected++
				case resp.StatusCode != http.StatusOK:
					ta.errors++
				default:
					checkBytes(resp.Header.Get("X-Tvsched-Digest"), body)
					switch resp.Header.Get("X-Tvsched-Cache") {
					case "hit":
						ta.hits++
					case "shared":
						ta.shared++
					default:
						ta.misses++
						switch resp.Header.Get(SourceHeader) {
						case "forward", "peer":
							ta.stolen++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := &ClusterLoadReport{
		Schema:      ClusterLoadReportSchema,
		Concurrency: load.Concurrency,
		Requests:    load.Requests,
		Population:  load.Population,
		ZipfS:       load.ZipfS,
		Seed:        load.Seed,
		DurationSec: dur.Seconds(),
		Divergences: divergences,
	}
	var allLat []float64
	for n, url := range cfg.URLs {
		ns := NodeLoadStats{URL: url}
		var nodeLat []float64
		for w := range tallies {
			ta := &tallies[w][n]
			ns.Requests += ta.reqs
			ns.Hits += ta.hits
			ns.Shared += ta.shared
			ns.Misses += ta.misses
			ns.Stolen += ta.stolen
			ns.Rejected += ta.rejected
			ns.Errors += ta.errors
			nodeLat = append(nodeLat, ta.lat...)
		}
		ns.Latency = summarize(nodeLat)
		allLat = append(allLat, nodeLat...)
		rep.Hits += ns.Hits
		rep.Shared += ns.Shared
		rep.Misses += ns.Misses
		rep.Stolen += ns.Stolen
		rep.Rejected += ns.Rejected
		rep.Errors += ns.Errors
		rep.Nodes = append(rep.Nodes, ns)
	}
	done := rep.Hits + rep.Shared + rep.Misses + rep.Rejected + rep.Errors
	if dur > 0 {
		rep.ThroughputRPS = float64(done) / dur.Seconds()
	}
	if ok := rep.Hits + rep.Shared + rep.Misses; ok > 0 {
		rep.HitRate = float64(rep.Hits+rep.Shared) / float64(ok)
	}
	rep.Latency = summarize(allLat)
	return rep, nil
}

// WriteJSON emits the report with stable indentation.
func (r *ClusterLoadReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ClusterLoadReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
