package serve

// The serve-side half of the cluster protocol (internal/cluster is the
// transport): where result bytes come from, how a non-owner forwards a run
// to its owner, how the owner reads through its peers before computing, the
// GET /v1/result/{digest} endpoint peers fetch from, and the anti-entropy
// sweep that cross-checks replicated digests byte-for-byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"tvsched"
	"tvsched/internal/cluster"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
	"tvsched/internal/resil"
)

// SourceHeader names where a /v1/run answer's bytes came from: "memory",
// "store", "peer" (owner read it through a peer's cache), "forward" (a
// non-owner routed the run to its owner), or "compute" (a simulation ran
// here). X-Tvsched-Cache stays the coarse hit/shared/miss outcome; this
// header carries the cluster-era refinement tooling like tvload breaks
// steals out with.
const SourceHeader = "X-Tvsched-Source"

// source is where an answer's bytes were obtained.
type source int

const (
	srcNone            source = iota // no bytes (errors, rejections)
	srcCompute                       // simulated on this node
	srcMemory                        // in-memory LRU hit
	srcStore                         // persistent store hit
	srcPeer                          // read through a peer's cache (owner path)
	srcForward                       // forwarded to the digest's owner
	srcComputeDegraded               // simulated here because the owner was unreachable
)

var sourceNames = [...]string{"", "compute", "memory", "store", "peer", "forward", "compute-degraded"}

func (s source) String() string {
	if s < 0 || int(s) >= len(sourceNames) {
		return "unknown"
	}
	return sourceNames[s]
}

// SetPeers joins (or re-shapes) the cluster: this node takes nodeID as its
// hashing identity and routes by rendezvous hashing over itself plus peers.
// Call before serving traffic; calling again swaps the whole ring. With
// AntiEntropyInterval set, the first successful call also starts the
// background divergence sweep (on the server's lifetime context, so Close
// stops it; Drain does not wait for it).
func (s *Server) SetPeers(nodeID string, peers []cluster.Peer) error {
	ring, err := cluster.NewRing(nodeID, peers)
	if err != nil {
		return err
	}
	s.clMu.Lock()
	s.ring = ring
	s.peerClient = cluster.NewClientWith(nodeID, s.cfg.PeerTransport)
	s.clMu.Unlock()
	if s.cfg.AntiEntropyInterval > 0 {
		s.aeOnce.Do(func() { go s.antiEntropyLoop() })
	}
	return nil
}

// ringView returns the current ring, or nil when standalone.
func (s *Server) ringView() *cluster.Ring {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.ring
}

// client returns the peer client paired with the current ring.
func (s *Server) client() *cluster.Client {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.peerClient
}

// requestFor re-serializes a normalized config as the wire request that
// produced it — the form a node forwards to the digest's owner. Because cfg
// is already normalized, the round-trip Config → RunRequest → Config is
// digest-stable: both nodes address the same cache entry.
func requestFor(cfg tvsched.Config) RunRequest {
	return RunRequest{
		Schema:       RunRequestSchema,
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		FaultBias:    cfg.FaultBias,
	}
}

// forwardToOwner routes one run to the node owning its digest and returns
// the owner's bytes. The call is gated by the owner's circuit breaker
// (an open breaker fails fast into degraded local compute, and the one
// half-open probe per cooldown is a real forward) and retried on faults
// where the owner provably did not accept the work — connect errors and
// 5xx-before-body — with seeded decorrelated-jitter backoff inside the
// ForwardTimeout budget. Any terminal failure — transport, non-200, or a
// digest disagreement — reports false and the caller computes locally.
func (s *Server) forwardToOwner(digest string, cfg tvsched.Config, owner cluster.Peer, parent span.Context) ([]byte, bool) {
	fs := s.tracer.StartRoot("forward", parent)
	fs.SetAttr("peer", owner.ID)
	defer fs.End()
	brk := s.breakerFor(owner.ID)
	if !brk.Allow() {
		s.sm.PeerOp(owner.ID, obs.PeerBreakerDenied)
		fs.SetAttr("error", "breaker open")
		return nil, false
	}
	reqBody, err := json.Marshal(requestFor(cfg))
	if err != nil {
		fs.SetAttr("error", err.Error())
		return nil, false
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ForwardTimeout)
	defer cancel()
	var body []byte
	var hdr http.Header
	attempts := 0
	err = resil.Do(ctx, s.retryPolicy(owner.ID, digest), cluster.ForwardRetryable,
		func(ctx context.Context) error {
			attempts++
			if attempts > 1 {
				s.sm.PeerOp(owner.ID, obs.PeerRetry)
			}
			var aerr error
			body, hdr, aerr = s.client().Forward(ctx, owner, reqBody)
			return aerr
		})
	// The breaker watches reachability: any completed exchange — success or
	// a protocol-level disagreement below — is evidence the peer is up.
	brk.Record(err == nil || !cluster.ForwardRetryable(err))
	if err == nil {
		if got := hdr.Get("X-Tvsched-Digest"); got != digest {
			err = fmt.Errorf("owner answered digest %q, want %q (version skew?)", got, digest)
		}
	}
	if err != nil {
		s.sm.PeerOp(owner.ID, obs.PeerForwardErr)
		fs.SetAttr("error", err.Error())
		s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "forward failed, computing locally",
			slog.String("digest", digest),
			slog.String("peer", owner.ID),
			slog.String("cause", err.Error()),
		)
		return nil, false
	}
	s.sm.PeerOp(owner.ID, obs.PeerForward)
	fs.SetAttr("cache", hdr.Get("X-Tvsched-Cache"))
	return body, true
}

// peerReadThrough is the owner's last stop before paying for a simulation:
// ask each peer for its cached bytes of digest. Misses are cheap 404s;
// transport errors are skipped, not surfaced — an unreachable peer only
// means computing something it might have had. Each peer's call is gated by
// its circuit breaker (a dead peer costs nothing once its breaker opens)
// and retried — Fetch is idempotent, so any fault class but a mid-body cut
// retries — within the PeerTimeout budget.
func (s *Server) peerReadThrough(digest string, parent span.Context) ([]byte, bool) {
	ring := s.ringView()
	cl := s.client()
	for _, p := range ring.Peers() {
		brk := s.breakerFor(p.ID)
		if !brk.Allow() {
			s.sm.PeerOp(p.ID, obs.PeerBreakerDenied)
			continue
		}
		ps := s.tracer.StartRoot("peer_fetch", parent)
		ps.SetAttr("peer", p.ID)
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.PeerTimeout)
		var body []byte
		var ok bool
		attempts := 0
		err := resil.Do(ctx, s.retryPolicy(p.ID, digest), cluster.Retryable,
			func(ctx context.Context) error {
				attempts++
				if attempts > 1 {
					s.sm.PeerOp(p.ID, obs.PeerRetry)
				}
				var aerr error
				body, ok, aerr = cl.Fetch(ctx, p, digest)
				return aerr
			})
		cancel()
		brk.Record(err == nil || !cluster.Retryable(err))
		ps.SetAttr("hit", fmt.Sprintf("%v", ok))
		ps.End()
		if ok {
			s.sm.PeerOp(p.ID, obs.PeerFetchHit)
			return body, true
		}
		s.sm.PeerOp(p.ID, obs.PeerFetchMiss)
		if err != nil {
			s.log.LogAttrs(s.baseCtx, slog.LevelDebug, "peer fetch failed",
				slog.String("digest", digest),
				slog.String("peer", p.ID),
				slog.String("cause", err.Error()),
			)
		}
	}
	return nil, false
}

// storePut persists one result and republishes the store gauges.
func (s *Server) storePut(digest string, body []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(digest, body); err != nil {
		s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "store write failed",
			slog.String("digest", digest), slog.String("cause", err.Error()))
		return
	}
	s.sm.StoreOp(obs.StorePut)
	s.sm.SetStoreSize(s.store.Len(), s.store.Bytes())
}

// lookupLocal returns locally held bytes for digest — memory LRU first, then
// the persistent store — without computing, forwarding, or touching the
// result-path store counters (peer probes and anti-entropy drive this
// constantly; counting them as hits/misses would drown the serving signal).
func (s *Server) lookupLocal(digest string) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.cache.get(digest)
	s.mu.Unlock()
	if ok {
		return b, true
	}
	if s.store == nil {
		return nil, false
	}
	b, ok, _ = s.store.Get(digest)
	return b, ok
}

// handleResult is the peer-facing replica endpoint. GET /v1/result/{digest}
// answers locally held bytes or 404, and never computes — the cluster's
// loop-freedom rests on this path being a pure lookup. Misses are routine
// (every read-through probe that precedes a computation lands here), so
// they are not logged or counted as request failures. PUT /v1/result/{digest}
// accepts a replica from a peer — a degraded-mode result coming home to its
// owner, or a repaired replacement for diverged bytes. Either way the digest
// must have the exact 64-hex shape: garbage keys answer 400 before any store
// lookup or write happens.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	if !validDigest(digest) {
		s.fail(w, r, "", digest, http.StatusBadRequest,
			fmt.Errorf("%w: want /v1/result/{digest} with a 64-char lowercase-hex digest", ErrBadRequest))
		return
	}
	switch r.Method {
	case http.MethodGet:
		body, ok := s.lookupLocal(digest)
		if !ok {
			http.Error(w, "result not held locally", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tvsched-Digest", digest)
		_, _ = w.Write(body)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil || len(body) == 0 {
			s.fail(w, r, "", digest, http.StatusBadRequest,
				fmt.Errorf("%w: empty or unreadable replica body", ErrBadRequest))
			return
		}
		s.mu.Lock()
		s.cache.put(digest, body)
		s.mu.Unlock()
		s.storePut(digest, body)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "replica accepted",
			slog.String("digest", digest),
			slog.String("from", r.Header.Get(cluster.ForwardHeader)),
			slog.Int("bytes", len(body)),
		)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.fail(w, r, "", digest, http.StatusMethodNotAllowed, errMethod)
	}
}

// handleAntiEntropy runs one sweep on demand (POST /v1/anti-entropy) and
// answers its accounting as JSON — the hook chaos scenarios use to drive
// repair at a known point and then assert zero remaining divergences.
func (s *Server) handleAntiEntropy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, "", "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	checked, diverged, repaired := s.AntiEntropySweep(r.Context())
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"checked\":%d,\"diverged\":%d,\"repaired\":%d}\n", checked, diverged, repaired)
}

// antiEntropyLoop drives periodic divergence sweeps until the server
// closes. It runs outside s.wg on purpose: Drain waits for in-flight
// results, not for background hygiene.
func (s *Server) antiEntropyLoop() {
	t := time.NewTicker(s.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.AntiEntropySweep(s.baseCtx)
		}
	}
}

// AntiEntropySweep cross-checks up to AntiEntropyBatch locally held digests
// against every peer holding them: replicated bytes must be identical, and
// any mismatch is counted (peer_ops{op="diverged"}) and logged at Error —
// under the determinism contract a divergence is a bug (version skew,
// corruption), never an acceptable inconsistency. A peer not holding a
// digest is fine (replication here is opportunistic, by forwarding and
// read-through), as is an unreachable peer; a peer whose breaker is not
// closed is skipped entirely, so hygiene never steals the half-open probe
// slot from real traffic. With Config.Repair set, each divergence is healed
// on the spot: the digest is re-simulated locally (the deterministic
// oracle) and the disagreeing replica — local, remote, or both — is
// overwritten. The sweep also flushes any replication debt owed to
// reachable peers, catching flapping peers whose breaker-close callback
// fired while they were still down. Returns the number of cross-checks
// performed, how many diverged, and how many divergences were repaired.
func (s *Server) AntiEntropySweep(ctx context.Context) (checked, diverged, repaired int) {
	ring := s.ringView()
	if ring == nil {
		return 0, 0, 0
	}
	cl := s.client()
	for _, p := range ring.Peers() {
		if s.breakerFor(p.ID).State() == resil.Closed {
			s.flushOwed(p.ID)
		}
	}
	for _, digest := range s.localDigests(s.cfg.AntiEntropyBatch) {
		local, ok := s.lookupLocal(digest)
		if !ok {
			continue // evicted since sampling
		}
		for _, p := range ring.Peers() {
			if ctx.Err() != nil {
				return checked, diverged, repaired
			}
			if s.breakerFor(p.ID).State() != resil.Closed {
				continue
			}
			fctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
			remote, ok, err := cl.Fetch(fctx, p, digest)
			cancel()
			if err != nil || !ok {
				continue
			}
			checked++
			if bytes.Equal(local, remote) {
				s.sm.PeerOp(p.ID, obs.PeerCheckOK)
				continue
			}
			diverged++
			s.sm.PeerOp(p.ID, obs.PeerDiverged)
			s.log.LogAttrs(ctx, slog.LevelError, "anti-entropy divergence",
				slog.String("digest", digest),
				slog.String("peer", p.ID),
				slog.Int("local_bytes", len(local)),
				slog.Int("peer_bytes", len(remote)),
			)
			if s.cfg.Repair && s.repairDivergence(ctx, digest, local, remote, p) {
				repaired++
			}
		}
	}
	return checked, diverged, repaired
}

// localDigests samples up to max digests this node holds, memory first
// (hottest results are the likeliest to be replicated), then the store.
func (s *Server) localDigests(max int) []string {
	s.mu.Lock()
	keys := s.cache.keys()
	s.mu.Unlock()
	seen := make(map[string]bool, len(keys))
	out := make([]string, 0, max)
	for _, k := range keys {
		if len(out) >= max {
			return out
		}
		seen[k] = true
		out = append(out, k)
	}
	if s.store != nil {
		for _, k := range s.store.Keys() {
			if len(out) >= max {
				break
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	return out
}
