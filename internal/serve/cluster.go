package serve

// The serve-side half of the cluster protocol (internal/cluster is the
// transport): where result bytes come from, how a non-owner forwards a run
// to its owner, how the owner reads through its peers before computing, the
// GET /v1/result/{digest} endpoint peers fetch from, and the anti-entropy
// sweep that cross-checks replicated digests byte-for-byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"tvsched"
	"tvsched/internal/cluster"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
)

// SourceHeader names where a /v1/run answer's bytes came from: "memory",
// "store", "peer" (owner read it through a peer's cache), "forward" (a
// non-owner routed the run to its owner), or "compute" (a simulation ran
// here). X-Tvsched-Cache stays the coarse hit/shared/miss outcome; this
// header carries the cluster-era refinement tooling like tvload breaks
// steals out with.
const SourceHeader = "X-Tvsched-Source"

// source is where an answer's bytes were obtained.
type source int

const (
	srcNone    source = iota // no bytes (errors, rejections)
	srcCompute               // simulated on this node
	srcMemory                // in-memory LRU hit
	srcStore                 // persistent store hit
	srcPeer                  // read through a peer's cache (owner path)
	srcForward               // forwarded to the digest's owner
)

var sourceNames = [...]string{"", "compute", "memory", "store", "peer", "forward"}

func (s source) String() string {
	if s < 0 || int(s) >= len(sourceNames) {
		return "unknown"
	}
	return sourceNames[s]
}

// SetPeers joins (or re-shapes) the cluster: this node takes nodeID as its
// hashing identity and routes by rendezvous hashing over itself plus peers.
// Call before serving traffic; calling again swaps the whole ring. With
// AntiEntropyInterval set, the first successful call also starts the
// background divergence sweep (on the server's lifetime context, so Close
// stops it; Drain does not wait for it).
func (s *Server) SetPeers(nodeID string, peers []cluster.Peer) error {
	ring, err := cluster.NewRing(nodeID, peers)
	if err != nil {
		return err
	}
	s.clMu.Lock()
	s.ring = ring
	s.peerClient = cluster.NewClient(nodeID)
	s.clMu.Unlock()
	if s.cfg.AntiEntropyInterval > 0 {
		s.aeOnce.Do(func() { go s.antiEntropyLoop() })
	}
	return nil
}

// ringView returns the current ring, or nil when standalone.
func (s *Server) ringView() *cluster.Ring {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.ring
}

// client returns the peer client paired with the current ring.
func (s *Server) client() *cluster.Client {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.peerClient
}

// requestFor re-serializes a normalized config as the wire request that
// produced it — the form a node forwards to the digest's owner. Because cfg
// is already normalized, the round-trip Config → RunRequest → Config is
// digest-stable: both nodes address the same cache entry.
func requestFor(cfg tvsched.Config) RunRequest {
	return RunRequest{
		Schema:       RunRequestSchema,
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Instructions: cfg.Instructions,
		Warmup:       cfg.Warmup,
		Seed:         cfg.Seed,
		FaultBias:    cfg.FaultBias,
	}
}

// forwardToOwner routes one run to the node owning its digest and returns
// the owner's bytes. Any failure — transport, non-200, or a digest
// disagreement — reports false and the caller computes locally.
func (s *Server) forwardToOwner(digest string, cfg tvsched.Config, owner cluster.Peer, parent span.Context) ([]byte, bool) {
	fs := s.tracer.StartRoot("forward", parent)
	fs.SetAttr("peer", owner.ID)
	defer fs.End()
	reqBody, err := json.Marshal(requestFor(cfg))
	if err != nil {
		fs.SetAttr("error", err.Error())
		return nil, false
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ForwardTimeout)
	defer cancel()
	body, hdr, err := s.client().Forward(ctx, owner, reqBody)
	if err == nil {
		if got := hdr.Get("X-Tvsched-Digest"); got != digest {
			err = fmt.Errorf("owner answered digest %q, want %q (version skew?)", got, digest)
		}
	}
	if err != nil {
		s.sm.PeerOp(owner.ID, obs.PeerForwardErr)
		fs.SetAttr("error", err.Error())
		s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "forward failed, computing locally",
			slog.String("digest", digest),
			slog.String("peer", owner.ID),
			slog.String("cause", err.Error()),
		)
		return nil, false
	}
	s.sm.PeerOp(owner.ID, obs.PeerForward)
	fs.SetAttr("cache", hdr.Get("X-Tvsched-Cache"))
	return body, true
}

// peerReadThrough is the owner's last stop before paying for a simulation:
// ask each peer for its cached bytes of digest. Misses are cheap 404s;
// transport errors are skipped, not surfaced — an unreachable peer only
// means computing something it might have had.
func (s *Server) peerReadThrough(digest string, parent span.Context) ([]byte, bool) {
	ring := s.ringView()
	cl := s.client()
	for _, p := range ring.Peers() {
		ps := s.tracer.StartRoot("peer_fetch", parent)
		ps.SetAttr("peer", p.ID)
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.PeerTimeout)
		body, ok, err := cl.Fetch(ctx, p, digest)
		cancel()
		ps.SetAttr("hit", fmt.Sprintf("%v", ok))
		ps.End()
		if ok {
			s.sm.PeerOp(p.ID, obs.PeerFetchHit)
			return body, true
		}
		s.sm.PeerOp(p.ID, obs.PeerFetchMiss)
		if err != nil {
			s.log.LogAttrs(s.baseCtx, slog.LevelDebug, "peer fetch failed",
				slog.String("digest", digest),
				slog.String("peer", p.ID),
				slog.String("cause", err.Error()),
			)
		}
	}
	return nil, false
}

// storePut persists one result and republishes the store gauges.
func (s *Server) storePut(digest string, body []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(digest, body); err != nil {
		s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "store write failed",
			slog.String("digest", digest), slog.String("cause", err.Error()))
		return
	}
	s.sm.StoreOp(obs.StorePut)
	s.sm.SetStoreSize(s.store.Len(), s.store.Bytes())
}

// lookupLocal returns locally held bytes for digest — memory LRU first, then
// the persistent store — without computing, forwarding, or touching the
// result-path store counters (peer probes and anti-entropy drive this
// constantly; counting them as hits/misses would drown the serving signal).
func (s *Server) lookupLocal(digest string) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.cache.get(digest)
	s.mu.Unlock()
	if ok {
		return b, true
	}
	if s.store == nil {
		return nil, false
	}
	b, ok, _ = s.store.Get(digest)
	return b, ok
}

// handleResult is the peer-facing read endpoint: GET /v1/result/{digest}
// answers locally held bytes or 404, and never computes — the cluster's
// loop-freedom rests on this path being a pure lookup. Misses are routine
// (every read-through probe that precedes a computation lands here), so
// they are not logged or counted as request failures.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, "", "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	if digest == "" || strings.Contains(digest, "/") {
		s.fail(w, r, "", digest, http.StatusBadRequest,
			fmt.Errorf("%w: want /v1/result/{digest}", ErrBadRequest))
		return
	}
	body, ok := s.lookupLocal(digest)
	if !ok {
		http.Error(w, "result not held locally", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Tvsched-Digest", digest)
	_, _ = w.Write(body)
}

// antiEntropyLoop drives periodic divergence sweeps until the server
// closes. It runs outside s.wg on purpose: Drain waits for in-flight
// results, not for background hygiene.
func (s *Server) antiEntropyLoop() {
	t := time.NewTicker(s.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.AntiEntropySweep(s.baseCtx)
		}
	}
}

// AntiEntropySweep cross-checks up to AntiEntropyBatch locally held digests
// against every peer holding them: replicated bytes must be identical, and
// any mismatch is counted (peer_ops{op="diverged"}) and logged at Error —
// under the determinism contract a divergence is a bug (version skew,
// corruption), never an acceptable inconsistency. A peer not holding a
// digest is fine (replication here is opportunistic, by forwarding and
// read-through), as is an unreachable peer. Returns the number of
// cross-checks performed and how many diverged.
func (s *Server) AntiEntropySweep(ctx context.Context) (checked, diverged int) {
	ring := s.ringView()
	if ring == nil {
		return 0, 0
	}
	cl := s.client()
	for _, digest := range s.localDigests(s.cfg.AntiEntropyBatch) {
		local, ok := s.lookupLocal(digest)
		if !ok {
			continue // evicted since sampling
		}
		for _, p := range ring.Peers() {
			if ctx.Err() != nil {
				return checked, diverged
			}
			fctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
			remote, ok, err := cl.Fetch(fctx, p, digest)
			cancel()
			if err != nil || !ok {
				continue
			}
			checked++
			if bytes.Equal(local, remote) {
				s.sm.PeerOp(p.ID, obs.PeerCheckOK)
				continue
			}
			diverged++
			s.sm.PeerOp(p.ID, obs.PeerDiverged)
			s.log.LogAttrs(ctx, slog.LevelError, "anti-entropy divergence",
				slog.String("digest", digest),
				slog.String("peer", p.ID),
				slog.Int("local_bytes", len(local)),
				slog.Int("peer_bytes", len(remote)),
			)
		}
	}
	return checked, diverged
}

// localDigests samples up to max digests this node holds, memory first
// (hottest results are the likeliest to be replicated), then the store.
func (s *Server) localDigests(max int) []string {
	s.mu.Lock()
	keys := s.cache.keys()
	s.mu.Unlock()
	seen := make(map[string]bool, len(keys))
	out := make([]string, 0, max)
	for _, k := range keys {
		if len(out) >= max {
			return out
		}
		seen[k] = true
		out = append(out, k)
	}
	if s.store != nil {
		for _, k := range s.store.Keys() {
			if len(out) >= max {
				break
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	return out
}
