package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"tvsched"
)

// LoadConfig parameterizes a closed-loop load run against a tvservd
// instance: each of Concurrency workers keeps exactly one request in
// flight, drawing from a fixed population of distinct request cells with a
// Zipf-skewed popularity so the hot head exercises the cache and the long
// tail exercises the pool. The request mix is fully seeded — the same
// config issues the same request sequence per worker — which makes load
// runs comparable across code changes.
type LoadConfig struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8844".
	URL string
	// Concurrency is the closed-loop worker count (default 8).
	Concurrency int
	// Requests is the total request budget across workers (default 200).
	Requests int
	// Seed drives the request mix (default 1).
	Seed uint64
	// Population is the number of distinct request cells (default 64).
	Population int
	// ZipfS is the Zipf skew exponent; values > 1 skew harder toward the
	// popular head (default 1.3). Values in (0, 1] request a uniform mix
	// (1 is the conventional spelling); 0 means unset and takes the
	// default.
	ZipfS float64
	// Instructions/Warmup/VDD shape each cell's simulation (defaults
	// 20000 / library default / 0.97).
	Instructions uint64
	Warmup       uint64
	VDD          float64
	// Benchmarks and Schemes are cycled through to build the population
	// (defaults: all bundled benchmarks / ABS).
	Benchmarks []string
	Schemes    []string
	// Timeout bounds one request (default 2m).
	Timeout time.Duration
}

func (c *LoadConfig) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.Instructions == 0 {
		c.Instructions = 20000
	}
	if c.VDD == 0 {
		c.VDD = tvsched.VHighFault
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = tvsched.Benchmarks()
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []string{"ABS"}
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
}

// Population expands the config into its distinct request cells, in
// popularity-rank order (cell 0 is the Zipf head). Benchmarks and schemes
// cycle; the seed axis advances once per full cycle so every cell is a
// distinct simulation.
func (c *LoadConfig) population() []RunRequest {
	cells := make([]RunRequest, c.Population)
	for i := range cells {
		cells[i] = RunRequest{
			Schema:       RunRequestSchema,
			Benchmark:    c.Benchmarks[i%len(c.Benchmarks)],
			Scheme:       c.Schemes[i%len(c.Schemes)],
			VDD:          c.VDD,
			Instructions: c.Instructions,
			Warmup:       c.Warmup,
			Seed:         c.Seed + uint64(i/len(c.Benchmarks)),
		}
	}
	return cells
}

// LatencySummary condenses a latency sample set, in microseconds.
type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// LoadReport is the machine-readable outcome of a load run (schema
// tvsched/load-report/v1): offered load, server-observed outcomes as the
// client saw them (via the X-Tvsched-Cache header), and latency
// percentiles. Throughput and latency are wall-clock measurements and vary
// run to run; the request mix itself is deterministic given the seed.
type LoadReport struct {
	Schema      string  `json:"schema"`
	URL         string  `json:"url"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Population  int     `json:"population"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        uint64  `json:"seed"`
	// DurationSec covers first request sent to last response read.
	DurationSec float64 `json:"duration_sec"`
	// ThroughputRPS is completed requests (any outcome) per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Outcome counts, from the response status and cache header.
	Hits     uint64 `json:"hits"`
	Shared   uint64 `json:"shared"`
	Misses   uint64 `json:"misses"`
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	// HitRate is (hits+shared) over completed successful requests.
	HitRate float64        `json:"hit_rate"`
	Latency LatencySummary `json:"latency_us"`
}

// RunLoad drives the load and summarizes it. Every worker owns a private
// seeded generator (Seed+worker), so the issued mix is reproducible for a
// fixed config regardless of scheduling.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	if cfg.URL == "" {
		return nil, fmt.Errorf("load: no server URL")
	}
	cells := cfg.population()
	bodies := make([][]byte, len(cells))
	for i, cell := range cells {
		b, err := json.Marshal(cell)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	type tally struct {
		hits, shared, misses, rejected, errors uint64
		lat                                    []float64 // µs
	}
	tallies := make([]tally, cfg.Concurrency)
	var issued int64
	var issuedMu sync.Mutex
	next := func() bool {
		issuedMu.Lock()
		defer issuedMu.Unlock()
		if issued >= int64(cfg.Requests) {
			return false
		}
		issued++
		return true
	}

	client := &http.Client{Timeout: cfg.Timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ta := &tallies[w]
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(w)))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 && len(cells) > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cells)-1))
			}
			for next() {
				if ctx.Err() != nil {
					return
				}
				idx := 0
				if zipf != nil {
					idx = int(zipf.Uint64())
				} else if len(cells) > 1 {
					idx = rng.Intn(len(cells))
				}
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.URL+"/v1/run", bytes.NewReader(bodies[idx]))
				if err != nil {
					ta.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					ta.errors++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ta.lat = append(ta.lat, float64(time.Since(t0).Microseconds()))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					ta.rejected++
				case resp.StatusCode != http.StatusOK:
					ta.errors++
				default:
					switch resp.Header.Get("X-Tvsched-Cache") {
					case "hit":
						ta.hits++
					case "shared":
						ta.shared++
					default:
						ta.misses++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := &LoadReport{
		Schema:      LoadReportSchema,
		URL:         cfg.URL,
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
		Population:  cfg.Population,
		ZipfS:       cfg.ZipfS,
		Seed:        cfg.Seed,
		DurationSec: dur.Seconds(),
	}
	var lat []float64
	for i := range tallies {
		ta := &tallies[i]
		rep.Hits += ta.hits
		rep.Shared += ta.shared
		rep.Misses += ta.misses
		rep.Rejected += ta.rejected
		rep.Errors += ta.errors
		lat = append(lat, ta.lat...)
	}
	done := rep.Hits + rep.Shared + rep.Misses + rep.Rejected + rep.Errors
	if dur > 0 {
		rep.ThroughputRPS = float64(done) / dur.Seconds()
	}
	if ok := rep.Hits + rep.Shared + rep.Misses; ok > 0 {
		rep.HitRate = float64(rep.Hits+rep.Shared) / float64(ok)
	}
	rep.Latency = summarize(lat)
	return rep, nil
}

// summarize sorts the sample set and reads the percentiles.
func summarize(lat []float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	pick := func(q float64) float64 { return lat[int(q*float64(len(lat)-1))] }
	return LatencySummary{
		Mean: sum / float64(len(lat)),
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
		Max:  lat[len(lat)-1],
	}
}

// WriteJSON emits the report with stable indentation, mirroring
// obs.RunReport.WriteJSON.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = LoadReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
