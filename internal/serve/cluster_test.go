package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"tvsched/internal/cluster"
	"tvsched/internal/obs"
	"tvsched/internal/store"
)

// clusterNode is one member of a two-node test cluster.
type clusterNode struct {
	srv  *Server
	url  string
	runs *atomic.Int64
}

// newTestCluster wires two servers into each other's rings. Stores are
// optional (nil dir disables). Anti-entropy stays manual (interval 0).
func newTestCluster(t *testing.T, storeA, storeB *store.Store) (a, b clusterNode) {
	t.Helper()
	build := func(st *store.Store) clusterNode {
		runs := &atomic.Int64{}
		srv, ts := newTestServer(t, Config{Workers: 2, Store: st, Runner: stubRunner(runs, nil)})
		return clusterNode{srv: srv, url: ts.URL, runs: runs}
	}
	a, b = build(storeA), build(storeB)
	if err := a.srv.SetPeers("a", []cluster.Peer{{ID: "b", URL: b.url}}); err != nil {
		t.Fatal(err)
	}
	if err := b.srv.SetPeers("b", []cluster.Peer{{ID: "a", URL: a.url}}); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// requestOwnedBy scans seeds for a request whose digest the named node owns,
// using the same ring arithmetic the servers route by.
func requestOwnedBy(t *testing.T, owner string) RunRequest {
	t.Helper()
	other := "b"
	if owner == "b" {
		other = "a"
	}
	ring, err := cluster.NewRing(owner, []cluster.Peer{{ID: other}})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 1000; seed++ {
		req := RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: seed}
		cfg, err := req.Config()
		if err != nil {
			t.Fatal(err)
		}
		if _, self := ring.Owner(cfg.Digest()); self {
			return req
		}
	}
	t.Fatal("no seed in [1,1000) hashes to the requested owner")
	return RunRequest{}
}

// TestClusterForwardToOwner posts a run at the node that does NOT own its
// digest and asserts the cluster-wide singleflight: the owner simulates,
// the accepting node forwards, and afterwards both nodes answer the digest
// from local bytes — byte-identical.
func TestClusterForwardToOwner(t *testing.T) {
	a, b := newTestCluster(t, nil, nil)
	req := requestOwnedBy(t, "b") // posting at a must forward to b

	resp, body := postRun(t, a.url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get(SourceHeader); src != "forward" {
		t.Fatalf("%s %q at the non-owner, want forward", SourceHeader, src)
	}
	if a.runs.Load() != 0 || b.runs.Load() != 1 {
		t.Fatalf("runs a=%d b=%d, want the owner (b) to simulate exactly once", a.runs.Load(), b.runs.Load())
	}
	if ops := a.srv.Metrics().Snapshot().PeerOps["b"]; ops[obs.PeerForward] != 1 {
		t.Fatalf("peer_ops forward %d on a, want 1", ops[obs.PeerForward])
	}

	// The forward replicated the bytes: both nodes now serve the digest
	// locally through the peer read endpoint, byte-identical.
	digest := resp.Header.Get("X-Tvsched-Digest")
	var replicas [][]byte
	for _, url := range []string{a.url, b.url} {
		r, err := http.Get(url + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		bs, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/result/%s on %s: status %d", digest, url, r.StatusCode)
		}
		replicas = append(replicas, bs)
	}
	if !bytes.Equal(replicas[0], replicas[1]) || !bytes.Equal(replicas[0], body) {
		t.Fatal("replicated digest is not byte-identical across nodes")
	}

	// A repeat at the non-owner is now a plain memory hit — no second hop.
	resp2, _ := postRun(t, a.url, req)
	if resp2.Header.Get("X-Tvsched-Cache") != "hit" || resp2.Header.Get(SourceHeader) != "memory" {
		t.Fatalf("repeat at non-owner: cache %q source %q, want hit/memory",
			resp2.Header.Get("X-Tvsched-Cache"), resp2.Header.Get(SourceHeader))
	}
}

// TestClusterOwnerReadsThroughPeer makes the owner miss locally while a peer
// holds the bytes, and asserts the owner steals them (fetch_hit) instead of
// re-simulating.
func TestClusterOwnerReadsThroughPeer(t *testing.T) {
	a, b := newTestCluster(t, nil, nil)
	req := requestOwnedBy(t, "a")

	// Prime the NON-owner only: a request carrying the forward header is
	// computed locally without routing (the one-hop rule), which is exactly
	// how b would end up holding bytes a lost — say, across a's restart.
	blob := mustJSON(t, req)
	hreq, _ := http.NewRequest(http.MethodPost, b.url+"/v1/run", bytes.NewReader(blob))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(cluster.ForwardHeader, "test")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	primed, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hresp.Header.Get(SourceHeader) != "compute" {
		t.Fatalf("priming run: status %d source %q", hresp.StatusCode, hresp.Header.Get(SourceHeader))
	}

	resp, body := postRun(t, a.url, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if src := resp.Header.Get(SourceHeader); src != "peer" {
		t.Fatalf("%s %q at the owner, want peer (read-through)", SourceHeader, src)
	}
	if a.runs.Load() != 0 {
		t.Fatalf("owner simulated %d times despite a peer holding the bytes", a.runs.Load())
	}
	if !bytes.Equal(body, primed) {
		t.Fatal("read-through bytes differ from the peer's")
	}
	if ops := a.srv.Metrics().Snapshot().PeerOps["b"]; ops[obs.PeerFetchHit] != 1 {
		t.Fatalf("peer_ops fetch_hit %d on a, want 1", ops[obs.PeerFetchHit])
	}
}

// TestClusterReadyzReportsPeers checks the readiness page names each peer
// with its probe result, and that peer trouble never flips readiness.
func TestClusterReadyzReportsPeers(t *testing.T) {
	a, _ := newTestCluster(t, nil, nil)
	resp, err := http.Get(a.url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("peer b ok")) {
		t.Fatalf("readyz status %d body %q, want 200 with \"peer b ok\"", resp.StatusCode, body)
	}
}

// TestAntiEntropySweep plants both agreeing and diverging replicas and
// checks the sweep counts them apart: identical bytes are check_ok,
// different bytes for one digest are a diverged counter and an Error log.
func TestAntiEntropySweep(t *testing.T) {
	a, b := newTestCluster(t, nil, nil)
	inject := func(n clusterNode, digest string, body []byte) {
		n.srv.mu.Lock()
		n.srv.cache.put(digest, body)
		n.srv.mu.Unlock()
	}
	same := strings.Repeat("aa", 32)
	split := strings.Repeat("bb", 32)
	lonely := strings.Repeat("cc", 32)
	inject(a, same, []byte("agreed\n"))
	inject(b, same, []byte("agreed\n"))
	inject(a, split, []byte("mine\n"))
	inject(b, split, []byte("yours\n"))
	inject(a, lonely, []byte("unreplicated\n")) // only a holds it: skipped

	checked, diverged, repaired := a.srv.AntiEntropySweep(context.Background())
	if checked != 2 || diverged != 1 {
		t.Fatalf("sweep checked=%d diverged=%d, want 2 checked with 1 divergence", checked, diverged)
	}
	if repaired != 0 {
		t.Fatalf("sweep repaired=%d without -repair, want 0", repaired)
	}
	ops := a.srv.Metrics().Snapshot().PeerOps["b"]
	if ops[obs.PeerCheckOK] != 1 || ops[obs.PeerDiverged] != 1 {
		t.Fatalf("peer_ops check_ok=%d diverged=%d, want 1 and 1", ops[obs.PeerCheckOK], ops[obs.PeerDiverged])
	}
}

// TestResultEndpointNeverComputes pins the loop-freedom invariant: the peer
// read endpoint answers 404 for any well-formed digest not held locally —
// it must not fall back to simulating or forwarding — and 400 for anything
// that is not a 64-char lowercase-hex digest at all.
func TestResultEndpointNeverComputes(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, nil)})
	resp, err := http.Get(ts.URL + "/v1/result/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", resp.StatusCode)
	}
	if runs.Load() != 0 {
		t.Fatal("a result lookup triggered a simulation")
	}
	for _, bad := range []string{
		"sha256:deadbeef",                // prefixed, wrong length
		strings.Repeat("0", 63),          // one short
		strings.Repeat("0", 65),          // one long
		strings.Repeat("A", 64),          // uppercase hex
		strings.Repeat("z", 64),          // not hex
		strings.Repeat("0", 60) + "../a", // traversal-looking
	} {
		resp, err := http.Get(ts.URL + "/v1/result/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed digest %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/result/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty digest: status %d, want 400", resp.StatusCode)
	}
}

// TestStoreSurvivesRestart is the tentpole's persistence property: a result
// computed before a "restart" (new Server over the reopened store) is served
// from disk with provenance hit — no recomputation.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: 7}

	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var runs1 atomic.Int64
	s1 := New(Config{Workers: 1, Store: st, Runner: stubRunner(&runs1, nil)})
	ts1 := httptest.NewServer(s1.Handler())
	resp1, body1 := postRun(t, ts1.URL, req)
	if resp1.StatusCode != http.StatusOK || runs1.Load() != 1 {
		t.Fatalf("first run: status %d runs %d", resp1.StatusCode, runs1.Load())
	}
	ts1.Close()
	s1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	var runs2 atomic.Int64
	s2, ts2 := newTestServer(t, Config{Workers: 1, Store: st2, Runner: stubRunner(&runs2, nil)})
	resp2, body2 := postRun(t, ts2.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted run: status %d", resp2.StatusCode)
	}
	if runs2.Load() != 0 {
		t.Fatalf("restarted node recomputed (%d runs) instead of reading its store", runs2.Load())
	}
	if cache := resp2.Header.Get("X-Tvsched-Cache"); cache != "hit" {
		t.Fatalf("store-backed answer carries cache %q, want hit", cache)
	}
	if src := resp2.Header.Get(SourceHeader); src != "store" {
		t.Fatalf("store-backed answer carries source %q, want store", src)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("store-backed answer not byte-identical to the original")
	}
	snap := s2.Metrics().Snapshot()
	if snap.StoreOps[obs.StoreHit] != 1 {
		t.Fatalf("store hit counter %d, want 1", snap.StoreOps[obs.StoreHit])
	}
	if snap.StoreEntries < 1 || snap.StoreBytes <= 0 {
		t.Fatalf("store gauges entries=%d bytes=%d, want populated at startup", snap.StoreEntries, snap.StoreBytes)
	}
}

// TestRunClusterLoad sprays a seeded mix at both nodes and checks the
// cluster-load-report/v1 accounting: every request lands, no divergences,
// the per-node breakdown sums to the aggregate, and cross-node traffic on a
// shared digest population produces stolen responses.
func TestRunClusterLoad(t *testing.T) {
	a, b := newTestCluster(t, nil, nil)
	rep, err := RunClusterLoad(context.Background(), ClusterLoadConfig{
		URLs: []string{a.url, b.url},
		Load: LoadConfig{
			Concurrency:  4,
			Requests:     60,
			Seed:         1,
			Population:   8,
			ZipfS:        1.3,
			Instructions: 1000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ClusterLoadReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ClusterLoadReportSchema)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d, want clean run", rep.Errors, rep.Rejected)
	}
	if rep.Divergences != 0 {
		t.Fatalf("divergences=%d on a deterministic cluster, want 0", rep.Divergences)
	}
	if got := rep.Hits + rep.Shared + rep.Misses; got != 60 {
		t.Fatalf("classified %d responses, want all 60", got)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("%d node entries, want 2", len(rep.Nodes))
	}
	var nodeReqs, nodeStolen uint64
	for _, n := range rep.Nodes {
		nodeReqs += n.Requests
		nodeStolen += n.Stolen
		if n.Requests == 0 {
			t.Fatalf("node %s saw no traffic", n.URL)
		}
	}
	if nodeReqs != 60 || nodeStolen != rep.Stolen {
		t.Fatalf("per-node sums reqs=%d stolen=%d, want 60 and %d", nodeReqs, nodeStolen, rep.Stolen)
	}
	// 8 digests sprayed over 2 nodes: some first touches must land at the
	// non-owner and come back forwarded.
	if rep.Stolen == 0 {
		t.Fatal("no stolen responses despite cross-node traffic on shared digests")
	}
	if rep.Stolen > rep.Misses {
		t.Fatalf("stolen=%d exceeds misses=%d", rep.Stolen, rep.Misses)
	}
	// At most one simulation per digest cluster-wide: the Zipf mix draws
	// from 8 digests, so more than 8 runs means a digest was simulated on
	// both nodes despite the routing.
	if total := a.runs.Load() + b.runs.Load(); total < 1 || total > 8 {
		t.Fatalf("cluster simulated %d times over 8 distinct digests", total)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
