package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tvsched/internal/cluster"
	"tvsched/internal/obs"
	"tvsched/internal/resil"
	"tvsched/internal/resil/chaos"
)

// newResilCluster is newTestCluster with per-node config hooks, for tests
// that need breakers tightened, chaos transports injected, or repair on.
func newResilCluster(t *testing.T, tweakA, tweakB func(*Config)) (a, b clusterNode) {
	t.Helper()
	build := func(tweak func(*Config)) clusterNode {
		runs := &atomic.Int64{}
		cfg := Config{Workers: 2, Runner: stubRunner(runs, nil)}
		if tweak != nil {
			tweak(&cfg)
		}
		srv, ts := newTestServer(t, cfg)
		return clusterNode{srv: srv, url: ts.URL, runs: runs}
	}
	a, b = build(tweakA), build(tweakB)
	if err := a.srv.SetPeers("a", []cluster.Peer{{ID: "b", URL: b.url}}); err != nil {
		t.Fatal(err)
	}
	if err := b.srv.SetPeers("b", []cluster.Peer{{ID: "a", URL: a.url}}); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// requestsOwnedBy returns n distinct requests whose digests the named node
// owns — fresh digests for tests that must avoid local cache hits.
func requestsOwnedBy(t *testing.T, owner string, n int) []RunRequest {
	t.Helper()
	other := "b"
	if owner == "b" {
		other = "a"
	}
	ring, err := cluster.NewRing(owner, []cluster.Peer{{ID: other}})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []RunRequest
	for seed := uint64(1); seed < 10000 && len(reqs) < n; seed++ {
		req := RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: seed}
		cfg, err := req.Config()
		if err != nil {
			t.Fatal(err)
		}
		if _, self := ring.Owner(cfg.Digest()); self {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < n {
		t.Fatalf("only %d of %d requests found for owner %s", len(reqs), n, owner)
	}
	return reqs
}

// TestDegradedServingWhenOwnerDark blacks out every peer call from node a
// with a chaos transport and posts runs a does not own. The forwards fail,
// a computes on the owner's behalf — answering 200 with source
// compute-degraded, never an error — the breaker opens after the configured
// failures so later runs are denied locally instead of re-dialling, the
// debt owed to the owner accrues, and /readyz reports degraded while
// staying 200.
func TestDegradedServingWhenOwnerDark(t *testing.T) {
	tr := chaos.NewTransport(chaos.Plan{
		Seed:      1,
		Blackouts: []chaos.Blackout{{Host: "*", From: 0, To: 1 << 30}},
	}, nil)
	a, b := newResilCluster(t, func(c *Config) {
		c.PeerTransport = tr
		c.PeerRetries = 1
		c.BreakerFailures = 2
		c.BreakerCooldown = time.Hour // stays open for the whole test
		c.ResilSeed = 7
	}, nil)

	reqs := requestsOwnedBy(t, "b", 3)
	var digests []string
	for i, req := range reqs {
		resp, body := postRun(t, a.url, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		if src := resp.Header.Get(SourceHeader); src != "compute-degraded" {
			t.Fatalf("run %d: %s %q, want compute-degraded", i, SourceHeader, src)
		}
		if cache := resp.Header.Get("X-Tvsched-Cache"); cache != "miss" {
			t.Fatalf("run %d: X-Tvsched-Cache %q, want miss", i, cache)
		}
		digests = append(digests, resp.Header.Get("X-Tvsched-Digest"))
	}
	if a.runs.Load() != 3 || b.runs.Load() != 0 {
		t.Fatalf("runs a=%d b=%d, want 3 and 0 (a stood in for b)", a.runs.Load(), b.runs.Load())
	}

	snap := a.srv.Metrics().Snapshot()
	ops := snap.PeerOps["b"]
	if ops[obs.PeerDegraded] != 3 {
		t.Fatalf("peer_ops degraded %d, want 3", ops[obs.PeerDegraded])
	}
	// Failures 1 and 2 opened the breaker; run 3 must have been denied
	// locally, not dialled.
	if ops[obs.PeerBreakerDenied] == 0 {
		t.Fatal("breaker never denied a call despite being open")
	}
	if st := snap.BreakerStates["b"]; st != "open" {
		t.Fatalf("breaker state %q, want open", st)
	}
	if a.srv.breakerFor("b").State() != resil.Open {
		t.Fatal("breaker for b is not open")
	}

	// The debt owed to b holds every degraded digest, deduplicated.
	owed := a.srv.owedTo("b")
	if len(owed) != len(digests) {
		t.Fatalf("owed %d digests, want %d", len(owed), len(digests))
	}

	// Degraded, not dead: /readyz stays 200 but says so on the first line.
	resp, err := http.Get(a.url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200 even when degraded", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "degraded\n") {
		t.Fatalf("readyz body %q, want first line \"degraded\"", body)
	}
	if !strings.Contains(string(body), "peer b unreachable") {
		t.Fatalf("readyz body %q, want a \"peer b unreachable\" line", body)
	}
}

// gateTripper fails every request while down, and delegates to the default
// transport once up — a peer outage with a switch.
type gateTripper struct {
	down atomic.Bool
}

func (g *gateTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.down.Load() {
		return nil, errors.New("gate: connection refused")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestBreakerRecoveryReplicatesOwed walks the full outage arc: the owner
// goes dark, a run is served degraded and its digest owed; the owner comes
// back, a half-open probe forwards for real, the breaker closes, and the
// owed result is pushed to the owner — which afterwards serves the bytes
// this node computed on its behalf.
func TestBreakerRecoveryReplicatesOwed(t *testing.T) {
	gate := &gateTripper{}
	gate.down.Store(true)
	a, b := newResilCluster(t, func(c *Config) {
		c.PeerTransport = gate
		c.PeerRetries = 1
		c.BreakerFailures = 1
		c.BreakerCooldown = 20 * time.Millisecond
		c.BreakerCooldownMax = 50 * time.Millisecond
		c.ResilSeed = 11
	}, nil)

	reqs := requestsOwnedBy(t, "b", 50)

	// Outage: the first run is degraded and opens the breaker (failures=1).
	resp, degradedBody := postRun(t, a.url, reqs[0])
	if src := resp.Header.Get(SourceHeader); src != "compute-degraded" {
		t.Fatalf("%s %q during outage, want compute-degraded", SourceHeader, src)
	}
	owedDigest := resp.Header.Get("X-Tvsched-Digest")
	if a.srv.breakerFor("b").State() != resil.Open {
		t.Fatal("breaker did not open after the configured failure count")
	}

	// Recovery: the peer is reachable again. Keep posting fresh runs until
	// one rides the half-open probe through a real forward.
	gate.down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	forwarded := false
	for i := 1; i < len(reqs) && !forwarded; i++ {
		resp, _ := postRun(t, a.url, reqs[i])
		forwarded = resp.Header.Get(SourceHeader) == "forward"
		if !forwarded {
			if time.Now().After(deadline) {
				t.Fatal("no forward succeeded after recovery; breaker never half-opened")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if st := a.srv.breakerFor("b").State(); st != resil.Closed {
		t.Fatalf("breaker state %v after a successful probe, want closed", st)
	}

	// Closing the breaker flushes the debt: b must end up holding the bytes
	// a computed on its behalf, byte-identical.
	var replica []byte
	for time.Now().Before(deadline) {
		r, err := http.Get(b.url + "/v1/result/" + owedDigest)
		if err != nil {
			t.Fatal(err)
		}
		bs, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			replica = bs
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if replica == nil {
		t.Fatal("owed digest never replicated to the recovered owner")
	}
	if !bytes.Equal(replica, degradedBody) {
		t.Fatal("replicated bytes differ from the degraded response")
	}

	snap := a.srv.Metrics().Snapshot()
	if ops := snap.PeerOps["b"]; ops[obs.PeerReplicated] == 0 {
		t.Fatal("peer_ops replicated is 0 after an owed flush")
	}
	trans := snap.BreakerTransitions["b"]
	if trans["open"] == 0 || trans["half_open"] == 0 || trans["closed"] == 0 {
		t.Fatalf("breaker transitions %v, want open, half_open and closed all recorded", trans)
	}
	if st := snap.BreakerStates["b"]; st != "closed" {
		t.Fatalf("exposed breaker state %q, want closed", st)
	}
}

// TestRepairSweepHealsDivergence corrupts both replicas of a digest whose
// config node a recorded, and checks the -repair sweep re-simulates the
// digest and overwrites both copies with the oracle bytes.
func TestRepairSweepHealsDivergence(t *testing.T) {
	a, b := newResilCluster(t, func(c *Config) { c.Repair = true }, nil)
	req := requestOwnedBy(t, "a")

	resp, oracle := postRun(t, a.url, req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(SourceHeader) != "compute" {
		t.Fatalf("priming run: status %d source %q", resp.StatusCode, resp.Header.Get(SourceHeader))
	}
	digest := resp.Header.Get("X-Tvsched-Digest")

	// Corrupt both replicas — differently, so the sweep sees a divergence
	// and neither copy can masquerade as the truth.
	corrupt := func(n clusterNode, body []byte) {
		n.srv.mu.Lock()
		n.srv.cache.put(digest, body)
		n.srv.mu.Unlock()
	}
	corrupt(a, []byte("torn local replica\n"))
	corrupt(b, []byte("bit-flipped remote replica\n"))

	checked, diverged, repaired := a.srv.AntiEntropySweep(context.Background())
	if checked != 1 || diverged != 1 || repaired != 1 {
		t.Fatalf("sweep checked=%d diverged=%d repaired=%d, want 1/1/1", checked, diverged, repaired)
	}

	// Both nodes now serve the re-simulated oracle bytes.
	for _, n := range []clusterNode{a, b} {
		r, err := http.Get(n.url + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		bs, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK || !bytes.Equal(bs, oracle) {
			t.Fatalf("%s after repair: status %d, bytes match oracle: %v", n.url, r.StatusCode, bytes.Equal(bs, oracle))
		}
	}
	if ops := a.srv.Metrics().Snapshot().PeerOps["b"]; ops[obs.PeerRepaired] != 1 {
		t.Fatalf("peer_ops repaired %d, want 1", ops[obs.PeerRepaired])
	}
}

// TestRepairSkipsUnknownConfig pins the oracle's honesty: a divergence on a
// digest whose config this node never recorded is counted, logged, and left
// alone — repair never guesses which replica to trust.
func TestRepairSkipsUnknownConfig(t *testing.T) {
	a, b := newResilCluster(t, func(c *Config) { c.Repair = true }, nil)
	digest := strings.Repeat("ab", 32)
	inject := func(n clusterNode, body []byte) {
		n.srv.mu.Lock()
		n.srv.cache.put(digest, body)
		n.srv.mu.Unlock()
	}
	inject(a, []byte("mine\n"))
	inject(b, []byte("yours\n"))

	checked, diverged, repaired := a.srv.AntiEntropySweep(context.Background())
	if checked != 1 || diverged != 1 || repaired != 0 {
		t.Fatalf("sweep checked=%d diverged=%d repaired=%d, want 1/1/0 (config unknown)", checked, diverged, repaired)
	}
	r, err := http.Get(b.url + "/v1/result/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if string(bs) != "yours\n" {
		t.Fatalf("peer replica %q was touched despite the config being unknown", bs)
	}
}

// TestReadyzProbesConcurrently points a node at several peers behind one
// dead address and checks the probes run in parallel — the page arrives in
// around one probe timeout, not the sum — and that peer trouble reads
// degraded without flipping the 200.
func TestReadyzProbesConcurrently(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close() // nothing listens here any more

	runs := &atomic.Int64{}
	srv, ts := newTestServer(t, Config{
		Workers:            1,
		Runner:             stubRunner(runs, nil),
		ReadyzProbeTimeout: 200 * time.Millisecond,
	})
	peers := make([]cluster.Peer, 4)
	for i := range peers {
		peers[i] = cluster.Peer{ID: fmt.Sprintf("p%d", i), URL: dead}
	}
	if err := srv.SetPeers("self", peers); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status %d, want 200", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "degraded\n") {
		t.Fatalf("readyz body %q, want first line \"degraded\"", body)
	}
	for i := range peers {
		if !strings.Contains(string(body), fmt.Sprintf("peer p%d ", i)) {
			t.Fatalf("readyz body %q misses a line for peer p%d", body, i)
		}
	}
	// Serial probing of 4 dead peers would take 4 probe timeouts; allow a
	// generous 3x one timeout for scheduling slop.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("readyz took %v against 4 dead peers; probes are not concurrent", elapsed)
	}
}

// TestAntiEntropyEndpoint drives one sweep over HTTP and checks the JSON
// accounting — the hook the chaos harness uses to trigger repair on demand.
func TestAntiEntropyEndpoint(t *testing.T) {
	a, b := newResilCluster(t, nil, nil)
	digest := strings.Repeat("cd", 32)
	inject := func(n clusterNode, body []byte) {
		n.srv.mu.Lock()
		n.srv.cache.put(digest, body)
		n.srv.mu.Unlock()
	}
	inject(a, []byte("x\n"))
	inject(b, []byte("y\n"))

	resp, err := http.Post(a.url+"/v1/anti-entropy", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anti-entropy status %d: %s", resp.StatusCode, body)
	}
	want := `{"checked":1,"diverged":1,"repaired":0}`
	if strings.TrimSpace(string(body)) != want {
		t.Fatalf("anti-entropy body %q, want %s", body, want)
	}

	// GET must not trigger a sweep.
	r, err := http.Get(a.url + "/v1/anti-entropy")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET anti-entropy status %d, want 405", r.StatusCode)
	}
}

// TestResultPutReplicates pins the replication endpoint: a PUT stores the
// bytes (serving them afterwards), an empty body and a malformed digest are
// rejected, and no simulation ever runs.
func TestResultPutReplicates(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, nil)})
	digest := strings.Repeat("ef", 32)

	put := func(path string, body io.Reader) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := put("/v1/result/"+digest, strings.NewReader("replica bytes\n")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d, want 204", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/result/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || string(bs) != "replica bytes\n" {
		t.Fatalf("GET after PUT: status %d body %q", r.StatusCode, bs)
	}
	if resp := put("/v1/result/"+digest, strings.NewReader("")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty PUT status %d, want 400", resp.StatusCode)
	}
	if resp := put("/v1/result/not-a-digest", strings.NewReader("x")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-digest PUT status %d, want 400", resp.StatusCode)
	}
	if runs.Load() != 0 {
		t.Fatal("a replication PUT triggered a simulation")
	}
}
