package serve

import "container/list"

// lruCache is the bounded content-addressed result cache: config digest →
// the exact response bytes served for it, so a hit is byte-identical to the
// miss that populated it. It is deliberately not self-locking — the Server
// serializes access under the same mutex that guards the singleflight
// table, making "cache miss, register flight" one atomic step (two racing
// misses on one digest must resolve to one leader, never two simulations).
type lruCache struct {
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached bytes and refreshes the entry's recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put inserts or refreshes an entry, evicting from the cold end when over
// capacity.
func (c *lruCache) put(key string, body []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }

// keys lists the cached digests hottest-first, without touching recency.
// The anti-entropy sweep samples from this list.
func (c *lruCache) keys() []string {
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}
