package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tvsched/internal/campaign"
)

// CampaignBenchSchema tags the campaign-engine benchmark artifact
// (cmd/tvload -campaignbench); cmd/tvgate -campaign gates it.
const CampaignBenchSchema = "tvsched/campaign-bench/v1"

// CampaignBenchConfig parameterizes one three-pass campaign comparison
// against a running tvservd started with -campaign-dir. The grid is the
// sweepbench scheme×voltage cross (ten cells, one shared warm prefix) with
// the same warmup-heavy default geometry, so the engine's shared-prefix
// execution has something concrete to save.
type CampaignBenchConfig struct {
	// URL is the server base URL.
	URL string
	// Benchmark names the workload every cell simulates (default bzip2).
	Benchmark string
	// Warmup / Instructions shape each cell (defaults 120000 / 8000).
	Warmup       uint64
	Instructions uint64
	// Seed is the independent pass's seed; the engine and cached passes use
	// Seed+1 so the independent pass shares no digests or warm keys with
	// them (default 1).
	Seed uint64
	// Timeout bounds each campaign, admission to completion (default 10m).
	Timeout time.Duration
}

func (c *CampaignBenchConfig) fill() {
	if c.Benchmark == "" {
		c.Benchmark = "bzip2"
	}
	if c.Warmup == 0 {
		c.Warmup = 120000
	}
	if c.Instructions == 0 {
		c.Instructions = 8000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
}

// CampaignBenchReport is the machine-readable outcome (schema
// tvsched/campaign-bench/v1): wall time of the same warm-prefix-heavy grid
// executed three ways. IndependentNS is cell-independent execution (no
// snapshot sharing — every cell pays its own warmup), EngineNS is the
// campaign engine's shared-prefix execution, CachedNS a re-campaign over
// already-computed cells. Speedup = IndependentNS / EngineNS is the
// engine's throughput win; CachedSkipRatio is the fraction of the cached
// pass's cells that cost no simulation (wanted: 1.0).
type CampaignBenchReport struct {
	Schema       string `json:"schema"`
	URL          string `json:"url"`
	Benchmark    string `json:"benchmark"`
	Cells        int    `json:"cells"`
	Warmup       uint64 `json:"warmup"`
	Instructions uint64 `json:"instructions"`
	// The three campaign ids, for cross-checking against server logs.
	IndependentID string `json:"independent_id"`
	EngineID      string `json:"engine_id"`
	CachedID      string `json:"cached_id"`

	IndependentNS   int64   `json:"independent_ns"`
	EngineNS        int64   `json:"engine_ns"`
	CachedNS        int64   `json:"cached_ns"`
	Speedup         float64 `json:"speedup"`
	CachedSkipRatio float64 `json:"cached_skip_ratio"`
}

// campaignBenchStatus mirrors the fields of the serve campaignStatus
// document this benchmark reads. Kept separate so the client side only
// depends on the wire contract.
type campaignBenchStatus struct {
	Schema   string                 `json:"schema"`
	ID       string                 `json:"id"`
	State    string                 `json:"state"`
	Total    int                    `json:"total"`
	Done     int                    `json:"done"`
	Error    string                 `json:"error"`
	Progress *campaign.ProgressLine `json:"progress"`
}

// RunCampaignBench times the same ten-cell warm-prefix-heavy grid as three
// campaigns: cell-independent (checkpoint sharing off), engine (shared
// warm-prefix snapshots, distinct seed so nothing carries over), and cached
// (the engine grid re-POSTed under a different tag, so every cell is
// already in the server's result cache). Campaign tags keep the three plans
// distinct; only the cached pass intentionally shares cell digests with the
// engine pass.
func RunCampaignBench(ctx context.Context, cfg CampaignBenchConfig) (*CampaignBenchReport, error) {
	cfg.fill()
	if cfg.URL == "" {
		return nil, fmt.Errorf("campaignbench: no server URL")
	}
	schemes, vdds := sweepBenchCells()
	client := &http.Client{Timeout: cfg.Timeout}
	off, on := false, true

	pass := func(tag string, seed uint64, checkpoint *bool) (string, time.Duration, *campaign.ProgressLine, error) {
		spec := campaign.Spec{
			Schema:       campaign.SpecSchema,
			Tag:          tag,
			Benchmarks:   []string{cfg.Benchmark},
			Schemes:      schemes,
			VDDs:         vdds,
			Seeds:        []uint64{seed},
			Instructions: cfg.Instructions,
			Warmup:       cfg.Warmup,
			Checkpoint:   checkpoint,
		}
		blob, err := json.Marshal(&spec)
		if err != nil {
			return "", 0, nil, err
		}
		deadline := time.Now().Add(cfg.Timeout)
		start := time.Now()
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.URL+"/v1/campaign", bytes.NewReader(blob))
		if err != nil {
			return "", 0, nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			return "", 0, nil, err
		}
		var st campaignBenchStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return "", 0, nil, fmt.Errorf("campaignbench: campaign %s admission status %d", tag, resp.StatusCode)
		}
		if err != nil {
			return "", 0, nil, fmt.Errorf("campaignbench: campaign %s status: %w", tag, err)
		}
		for st.State == campaignRunning {
			if time.Now().After(deadline) {
				return "", 0, nil, fmt.Errorf("campaignbench: campaign %s still running after %s", tag, cfg.Timeout)
			}
			select {
			case <-ctx.Done():
				return "", 0, nil, ctx.Err()
			case <-time.After(20 * time.Millisecond):
			}
			sresp, err := client.Get(cfg.URL + "/v1/campaign/" + st.ID)
			if err != nil {
				return "", 0, nil, err
			}
			err = json.NewDecoder(sresp.Body).Decode(&st)
			sresp.Body.Close()
			if err != nil {
				return "", 0, nil, fmt.Errorf("campaignbench: campaign %s status: %w", tag, err)
			}
		}
		elapsed := time.Since(start)
		if st.State != campaignDone || st.Error != "" {
			return "", 0, nil, fmt.Errorf("campaignbench: campaign %s ended %s: %s", tag, st.State, st.Error)
		}
		if want := len(schemes) * len(vdds); st.Done != want {
			return "", 0, nil, fmt.Errorf("campaignbench: campaign %s finished %d cells, want %d", tag, st.Done, want)
		}
		return st.ID, elapsed, st.Progress, nil
	}

	indepID, indep, _, err := pass("campaignbench-independent", cfg.Seed, &off)
	if err != nil {
		return nil, err
	}
	engineID, engine, _, err := pass("campaignbench-engine", cfg.Seed+1, &on)
	if err != nil {
		return nil, err
	}
	cachedID, cached, prog, err := pass("campaignbench-cached", cfg.Seed+1, &on)
	if err != nil {
		return nil, err
	}

	rep := &CampaignBenchReport{
		Schema:        CampaignBenchSchema,
		URL:           cfg.URL,
		Benchmark:     cfg.Benchmark,
		Cells:         len(schemes) * len(vdds),
		Warmup:        cfg.Warmup,
		Instructions:  cfg.Instructions,
		IndependentID: indepID,
		EngineID:      engineID,
		CachedID:      cachedID,
		IndependentNS: indep.Nanoseconds(),
		EngineNS:      engine.Nanoseconds(),
		CachedNS:      cached.Nanoseconds(),
	}
	if engine > 0 {
		rep.Speedup = float64(indep) / float64(engine)
	}
	if prog != nil && prog.Done > 0 {
		rep.CachedSkipRatio = float64(prog.Hit+prog.Shared+prog.Stolen) / float64(prog.Done)
	}
	return rep, nil
}
