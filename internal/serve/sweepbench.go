package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tvsched"
)

// SweepBenchSchema tags the checkpointed-sweep benchmark artifact
// (cmd/tvload -sweepbench); cmd/tvgate -sweep consumes it.
const SweepBenchSchema = "tvsched/sweep-bench/v1"

// SweepBenchConfig parameterizes one cold-vs-checkpointed sweep comparison
// against a running tvservd. The workload is deliberately warmup-heavy: a
// sweep's cells share one warm state, so the larger the warmup relative to
// the measured phase, the more a shared checkpoint saves — the default
// geometry (10 cells × 120k warmup / 8k measured) is the EXPERIMENTS.md
// recipe and what the CI throughput gate runs.
type SweepBenchConfig struct {
	// URL is the server base URL.
	URL string
	// Benchmark names the workload every cell simulates (default bzip2).
	Benchmark string
	// Warmup / Instructions shape each cell (defaults 120000 / 8000).
	Warmup       uint64
	Instructions uint64
	// Seed is the cold pass's seed; the checkpointed pass uses Seed+1 so the
	// two passes share neither result-cache digests nor warm keys — each
	// pass does all its own work (default 1).
	Seed uint64
	// Timeout bounds each sweep request (default 10m).
	Timeout time.Duration
}

func (c *SweepBenchConfig) fill() {
	if c.Benchmark == "" {
		c.Benchmark = "bzip2"
	}
	if c.Warmup == 0 {
		c.Warmup = 120000
	}
	if c.Instructions == 0 {
		c.Instructions = 8000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
}

// SweepBenchReport is the machine-readable outcome (schema
// tvsched/sweep-bench/v1). ColdNS and WarmNS are wall-clock and vary run to
// run; Speedup = ColdNS / WarmNS is what the perf gate checks.
type SweepBenchReport struct {
	Schema       string  `json:"schema"`
	URL          string  `json:"url"`
	Benchmark    string  `json:"benchmark"`
	Cells        int     `json:"cells"`
	Warmup       uint64  `json:"warmup"`
	Instructions uint64  `json:"instructions"`
	ColdNS       int64   `json:"cold_ns"`
	WarmNS       int64   `json:"warm_ns"`
	Speedup      float64 `json:"speedup"`
}

// sweepBenchCells is the fixed scheme × voltage grid both passes sweep: all
// five handling schemes at both faulty supplies — ten cells sharing one
// (benchmark, seed) warm state.
func sweepBenchCells() ([]string, []float64) {
	return []string{"Razor", "EP", "ABS", "FFS", "CDS"},
		[]float64{tvsched.VLowFault, tvsched.VHighFault}
}

// RunSweepBench times the same scheme×voltage sweep twice — warm-state
// checkpointing off, then on — and reports the wall-clock speedup. Each pass
// uses its own seed, so neither the result cache nor the snapshot cache
// carries work between them; within the checkpointed pass the first cell
// produces the snapshot and the other nine restore it.
func RunSweepBench(ctx context.Context, cfg SweepBenchConfig) (*SweepBenchReport, error) {
	cfg.fill()
	if cfg.URL == "" {
		return nil, fmt.Errorf("sweepbench: no server URL")
	}
	schemes, vdds := sweepBenchCells()
	client := &http.Client{Timeout: cfg.Timeout}
	pass := func(seed uint64, checkpoint bool) (time.Duration, error) {
		req := SweepRequest{
			Schema:       SweepRequestSchema,
			Benchmarks:   []string{cfg.Benchmark},
			Schemes:      schemes,
			VDDs:         vdds,
			Seeds:        []uint64{seed},
			Instructions: cfg.Instructions,
			Warmup:       cfg.Warmup,
			Checkpoint:   &checkpoint,
		}
		blob, err := json.Marshal(&req)
		if err != nil {
			return 0, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.URL+"/v1/sweep", bytes.NewReader(blob))
		if err != nil {
			return 0, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := client.Do(hreq)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("sweepbench: sweep status %d", resp.StatusCode)
		}
		// Drain line by line and fail on any errored cell: a pass that
		// simulated nothing would otherwise "win" the comparison.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		cells := 0
		for sc.Scan() {
			var line sweepLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return 0, fmt.Errorf("sweepbench: bad NDJSON line: %w", err)
			}
			if line.Error != "" {
				return 0, fmt.Errorf("sweepbench: cell %d failed: %s", line.Index, line.Error)
			}
			cells++
		}
		if err := sc.Err(); err != nil {
			return 0, err
		}
		if want := len(schemes) * len(vdds); cells != want {
			return 0, fmt.Errorf("sweepbench: %d cells, want %d", cells, want)
		}
		return time.Since(start), nil
	}

	cold, err := pass(cfg.Seed, false)
	if err != nil {
		return nil, err
	}
	warm, err := pass(cfg.Seed+1, true)
	if err != nil {
		return nil, err
	}
	rep := &SweepBenchReport{
		Schema:       SweepBenchSchema,
		URL:          cfg.URL,
		Benchmark:    cfg.Benchmark,
		Cells:        len(schemes) * len(vdds),
		Warmup:       cfg.Warmup,
		Instructions: cfg.Instructions,
		ColdNS:       cold.Nanoseconds(),
		WarmNS:       warm.Nanoseconds(),
	}
	if warm > 0 {
		rep.Speedup = float64(cold) / float64(warm)
	}
	return rep, nil
}
