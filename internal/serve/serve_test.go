package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tvsched"
	"tvsched/internal/obs"
)

// stubRunner returns a deterministic fake result derived from the config,
// counting invocations. When gate is non-nil every run blocks on it first,
// so tests can hold simulations in flight.
func stubRunner(runs *atomic.Int64, gate chan struct{}) Runner {
	return func(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error) {
		runs.Add(1)
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return tvsched.Result{}, RunInfo{}, ctx.Err()
			}
		}
		st := tvsched.PipeStats{Committed: cfg.Instructions, Cycles: cfg.Instructions*2 + cfg.Seed}
		return tvsched.Result{IPC: st.IPC(), Stats: st}, RunInfo{}, nil
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func postRun(t *testing.T, url string, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, body.Bytes()
}

// TestSingleflightCollapses hammers one digest from many goroutines while
// the simulation is held in flight, and asserts exactly one underlying run
// happened: the rest collapsed onto it and every response is byte-identical.
// Run under -race this also audits the cache/flight locking.
func TestSingleflightCollapses(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 4, Runner: stubRunner(&runs, gate)})

	const N = 32
	req := RunRequest{Schema: RunRequestSchema, Benchmark: "sjeng", Scheme: "ABS", VDD: 0.97, Instructions: 20000, Seed: 9}
	bodies := make([][]byte, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postRun(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}
	// Hold the gate until the leader is computing, then let everything
	// through; followers either share the flight or hit the cache.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		launched := len(s.flight) > 0
		s.mu.Unlock()
		if launched || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("%d underlying simulations for %d identical requests, want exactly 1", n, N)
	}
	for i := 1; i < N; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	snap := s.Metrics().Snapshot()
	got := snap.Outcomes[obs.ServeHit] + snap.Outcomes[obs.ServeShared] + snap.Outcomes[obs.ServeMiss]
	if got != N || snap.Outcomes[obs.ServeMiss] != 1 {
		t.Fatalf("outcomes hit=%d shared=%d miss=%d, want total %d with exactly 1 miss",
			snap.Outcomes[obs.ServeHit], snap.Outcomes[obs.ServeShared], snap.Outcomes[obs.ServeMiss], N)
	}
}

// TestQueueFullRejects fills the worker pool and the admission queue, then
// asserts the next distinct request is shed with 429 and a Retry-After
// header instead of queueing unboundedly.
func TestQueueFullRejects(t *testing.T) {
	var runs atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Runner: stubRunner(&runs, gate)})

	type res struct {
		resp *http.Response
		body []byte
	}
	results := make(chan res, 2)
	for seed := uint64(1); seed <= 2; seed++ {
		go func(seed uint64) {
			resp, body := postRun(t, ts.URL, RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: seed})
			results <- res{resp, body}
		}(seed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		full := s.pending >= 2
		s.mu.Unlock()
		if full || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postRun(t, ts.URL, RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with full queue, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if snap := s.Metrics().Snapshot(); snap.Outcomes[obs.ServeRejected] != 1 {
		t.Fatalf("rejected counter %d, want 1", snap.Outcomes[obs.ServeRejected])
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.resp.StatusCode != http.StatusOK {
			t.Fatalf("queued request finished with %d: %s", r.resp.StatusCode, r.body)
		}
	}
}

// TestCacheHitByteIdentical posts the same request twice and asserts the
// second response comes from the cache, byte-for-byte equal to the first,
// without a second simulation.
func TestCacheHitByteIdentical(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 2, Runner: stubRunner(&runs, nil)})
	req := RunRequest{Benchmark: "mcf", Scheme: "CDS", VDD: 1.04, Instructions: 5000, Seed: 4}

	r1, b1 := postRun(t, ts.URL, req)
	r2, b2 := postRun(t, ts.URL, req)
	for i, r := range []*http.Response{r1, r2} {
		if r.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.StatusCode)
		}
	}
	if got := r1.Header.Get("X-Tvsched-Cache"); got != "miss" {
		t.Errorf("first response cache header %q, want miss", got)
	}
	if got := r2.Header.Get("X-Tvsched-Cache"); got != "hit" {
		t.Errorf("second response cache header %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	if runs.Load() != 1 {
		t.Fatalf("%d simulations for 2 identical requests", runs.Load())
	}
	if r1.Header.Get("X-Tvsched-Digest") != r2.Header.Get("X-Tvsched-Digest") {
		t.Error("digest header differs between miss and hit")
	}
	var rep obs.RunReport
	if err := json.Unmarshal(b1, &rep); err != nil || rep.Schema != obs.RunReportSchema {
		t.Fatalf("response is not a run report (err=%v): %s", err, b1)
	}
}

// TestSweepNDJSON streams a small sweep and checks cell order, report
// payloads, and that duplicate cells dedupe onto one simulation.
func TestSweepNDJSON(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 2, Runner: stubRunner(&runs, nil)})

	sweep := SweepRequest{
		Schema:       SweepRequestSchema,
		Benchmarks:   []string{"bzip2", "sjeng"},
		Schemes:      []string{"ABS"},
		Seeds:        []uint64{7, 7}, // duplicate on purpose: must dedupe
		Instructions: 2000,
	}
	blob, _ := json.Marshal(sweep)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines []sweepLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l sweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Errorf("line %d carries index %d: sweep must stream in cell order", i, l.Index)
		}
		if l.Error != "" || len(l.Report) == 0 {
			t.Errorf("cell %d failed: %q", i, l.Error)
		}
	}
	// Two distinct digests (bzip2/7, sjeng/7), each simulated once.
	if runs.Load() != 2 {
		t.Fatalf("%d simulations for 4 cells with 2 distinct digests", runs.Load())
	}
	if lines[0].Digest != lines[1].Digest || lines[2].Digest != lines[3].Digest {
		t.Error("duplicate cells did not share a digest")
	}
}

// TestSweepCellOrderGolden pins the sweep ordering contract: the cross
// product iterates benchmarks × schemes × VDDs × seeds, each axis in request
// order, seeds varying fastest — and that order is the NDJSON line order.
func TestSweepCellOrderGolden(t *testing.T) {
	req := SweepRequest{
		Benchmarks: []string{"sjeng", "bzip2"}, // deliberately not sorted
		Schemes:    []string{"CDS", "EP"},
		VDDs:       []float64{0.97, 1.04},
		Seeds:      []uint64{2, 1},
	}
	cells, err := req.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sjeng/CDS/0.97/2", "sjeng/CDS/0.97/1",
		"sjeng/CDS/1.04/2", "sjeng/CDS/1.04/1",
		"sjeng/EP/0.97/2", "sjeng/EP/0.97/1",
		"sjeng/EP/1.04/2", "sjeng/EP/1.04/1",
		"bzip2/CDS/0.97/2", "bzip2/CDS/0.97/1",
		"bzip2/CDS/1.04/2", "bzip2/CDS/1.04/1",
		"bzip2/EP/0.97/2", "bzip2/EP/0.97/1",
		"bzip2/EP/1.04/2", "bzip2/EP/1.04/1",
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		got := fmt.Sprintf("%s/%s/%.2f/%d", c.Benchmark, c.Scheme, c.VDD, c.Seed)
		if got != want[i] {
			t.Fatalf("cell %d is %s, want %s — the sweep ordering contract is pinned; bump the sweep schema if you mean to change it", i, got, want[i])
		}
	}
}

// postSweep posts a sweep and returns the raw NDJSON body.
func postSweep(t *testing.T, url string, req SweepRequest) []byte {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return body.Bytes()
}

// TestSweepCheckpointByteIdentical is the serving-layer acceptance property:
// the same sweep answered by a fresh cold server (checkpoint off) and a fresh
// checkpointing server is byte-identical NDJSON, and the checkpointing server
// actually shared one warm snapshot across the cells. Workers=1 keeps every
// cell a deterministic "miss" so even the cache annotations agree.
func TestSweepCheckpointByteIdentical(t *testing.T) {
	off := false
	sweep := SweepRequest{
		Benchmarks:   []string{"bzip2"},
		Schemes:      []string{"ABS", "FFS", "CDS"},
		VDDs:         []float64{0.97, 1.04},
		Seeds:        []uint64{3},
		Instructions: 2000,
		Warmup:       2000,
	}

	coldSrv, coldTS := newTestServer(t, Config{Workers: 1})
	sweep.Checkpoint = &off
	cold := postSweep(t, coldTS.URL, sweep)

	warmSrv, warmTS := newTestServer(t, Config{Workers: 1})
	sweep.Checkpoint = nil // default: checkpoint on
	warm := postSweep(t, warmTS.URL, sweep)

	if !bytes.Equal(cold, warm) {
		t.Fatalf("checkpointed sweep differs from cold sweep:\n%s\nvs\n%s", warm, cold)
	}
	if n := coldSrv.snapCache.len(); n != 0 {
		t.Fatalf("cold server populated the snapshot cache (%d entries)", n)
	}
	// One benchmark × one seed ⇒ one warm key shared by all six cells.
	if n := warmSrv.snapCache.len(); n != 1 {
		t.Fatalf("snapshot cache holds %d entries, want 1 shared across the sweep", n)
	}
	// Sanity: the stream is real reports in pinned order.
	sc := bufio.NewScanner(bytes.NewReader(warm))
	var i int
	for sc.Scan() {
		var l sweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		if l.Index != i || l.Error != "" || len(l.Report) == 0 {
			t.Fatalf("bad line %d: %+v", i, l)
		}
		i++
	}
	if i != 6 {
		t.Fatalf("%d lines, want 6", i)
	}
}

// TestBadRequests pins the 400 surface: wrong schema, unknown benchmark,
// unknown scheme, unknown JSON field, and an over-cap phase length.
func TestBadRequests(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 1, MaxInstructions: 10000, Runner: stubRunner(&runs, nil)})
	cases := []struct {
		name, body string
	}{
		{"wrong schema", `{"schema":"tvsched/run-request/v999"}`},
		{"unknown benchmark", `{"benchmark":"nope"}`},
		{"unknown scheme", `{"scheme":"nope"}`},
		{"unknown field", `{"benchmak":"bzip2"}`},
		{"over instruction cap", `{"benchmark":"bzip2","instructions":20000}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	if runs.Load() != 0 {
		t.Fatalf("bad requests reached the simulator %d times", runs.Load())
	}
}

// TestRunTimeout bounds a runaway simulation with the server's per-run
// budget and maps the expiry to 503.
func TestRunTimeout(t *testing.T) {
	hang := func(ctx context.Context, cfg tvsched.Config, checkpoint bool) (tvsched.Result, RunInfo, error) {
		<-ctx.Done()
		return tvsched.Result{}, RunInfo{}, ctx.Err()
	}
	_, ts := newTestServer(t, Config{Workers: 1, RunTimeout: 20 * time.Millisecond, Runner: hang})
	resp, body := postRun(t, ts.URL, RunRequest{Benchmark: "bzip2", Instructions: 1000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after run timeout, want 503: %s", resp.StatusCode, body)
	}
}

// TestReadyzDrain checks the readiness flip that fronts graceful shutdown.
func TestReadyzDrain(t *testing.T) {
	var runs atomic.Int64
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, nil)})
	for _, probe := range []struct {
		path string
		want int
	}{{"/healthz", 200}, {"/readyz", 200}} {
		resp, err := http.Get(ts.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Fatalf("%s: status %d, want %d", probe.path, resp.StatusCode, probe.want)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLRUEviction pins the cache's bound and recency behaviour.
func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as the coldest entry")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	c.put("a", []byte("A2")) // refresh-in-place must not grow the cache
	if b, _ := c.get("a"); string(b) != "A2" || c.len() != 2 {
		t.Fatalf("refresh broke: %q len %d", b, c.len())
	}
}

// TestEndToEndSimulation runs one real (tiny) simulation through the full
// stack and checks the report parses and is deterministic across two
// identical servers — the property the cache's byte-identity rests on.
func TestEndToEndSimulation(t *testing.T) {
	req := RunRequest{Benchmark: "bzip2", Scheme: "ABS", VDD: 0.97, Instructions: 2000, Warmup: 500, Seed: 1}
	var bodies [][]byte
	for i := 0; i < 2; i++ {
		_, ts := newTestServer(t, Config{Workers: 1})
		resp, body := postRun(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %d: status %d: %s", i, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("fresh servers disagree on the same request:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	var rep obs.RunReport
	if err := json.Unmarshal(bodies[0], &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "tvservd" || rep.Instructions == 0 || rep.IPC <= 0 || rep.TEP == nil {
		t.Fatalf("degenerate report: %+v", rep)
	}
}

// TestRetryAfterEstimate sanity-checks the backpressure hint stays in its
// documented clamp.
func TestRetryAfterEstimate(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, us := range []uint64{0, 5_000_000, 500_000_000} {
		if us > 0 {
			s.sm.ObserveRun(us)
		}
		ra := s.retryAfter()
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 || secs > 60 {
			t.Fatalf("Retry-After %q outside [1,60]", ra)
		}
	}
}

// TestRetryAfterQueuedOnly pins the estimate's arithmetic: the wait is mean
// latency × queued / workers, where queued excludes the running computations
// — they already hold the worker slots the queue drains into. The old
// formula multiplied by pending (queued + running), telling clients at
// saturation to back off roughly twice as long as the queue justified.
func TestRetryAfterQueuedOnly(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	s.sm.ObserveRun(2_000_000) // mean 2s per simulation
	s.mu.Lock()
	s.pending, s.running = 5, 2 // 3 queued behind 2 running
	s.mu.Unlock()
	// 2s × 3 queued / 2 workers = 3s. The pending-based bug said 5s.
	if got := s.retryAfter(); got != "3" {
		t.Fatalf("Retry-After %q, want \"3\" (mean 2s × 3 queued / 2 workers)", got)
	}
	s.mu.Lock()
	s.pending, s.running = 2, 2 // saturated pool, empty queue
	s.mu.Unlock()
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("Retry-After %q with an empty queue, want the 1s floor", got)
	}
}

// TestCancelVsOverloadStatus pins the split bugfix #2 landed: a client
// cancellation is 499/canceled (the client's doing), a deadline stays
// 503 (the server's).
func TestCancelVsOverloadStatus(t *testing.T) {
	if got := statusFor(context.Canceled); got != StatusClientClosedRequest {
		t.Fatalf("statusFor(Canceled) = %d, want 499", got)
	}
	if got := statusFor(context.DeadlineExceeded); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(DeadlineExceeded) = %d, want 503", got)
	}
	if got := statusFor(fmt.Errorf("wrap: %w", context.Canceled)); got != StatusClientClosedRequest {
		t.Fatalf("wrapped Canceled = %d, want 499", got)
	}
}

// TestClientGoneIsCanceledNotError hangs a simulation, makes the client
// disconnect, and asserts the request lands in the "canceled" outcome with
// an Info-level record — not in the error counters dashboards page on.
func TestClientGoneIsCanceledNotError(t *testing.T) {
	h := &countingLogHandler{}
	var runs atomic.Int64
	gate := make(chan struct{})
	defer close(gate)
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stubRunner(&runs, gate), Logger: slog.New(h)})

	ctx, cancel := context.WithCancel(context.Background())
	blob, _ := json.Marshal(RunRequest{Benchmark: "bzip2", Instructions: 1000, Seed: 42})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(blob))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the request is in flight, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled client request unexpectedly succeeded")
	}

	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().Snapshot().Outcomes[obs.ServeCanceled] == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := s.Metrics().Snapshot()
	if snap.Outcomes[obs.ServeCanceled] != 1 {
		t.Fatalf("canceled outcome %d, want 1 (outcomes: %v)", snap.Outcomes[obs.ServeCanceled], snap.Outcomes)
	}
	if snap.Outcomes[obs.ServeErrored] != 0 {
		t.Fatalf("client hang-up counted as a server error (%d)", snap.Outcomes[obs.ServeErrored])
	}
	if errs := h.errors(); len(errs) != 0 {
		t.Fatalf("client hang-up logged at warn/error: %v", errs[0].Message)
	}
}

// TestSnapshotFollowerReleads is the regression for bugfix #1: a snapshot
// leader that dies of its own context (its client hung up mid-warmup) must
// not publish that error to followers whose contexts are live — they
// re-enter and lead the production themselves.
func TestSnapshotFollowerReleads(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	var produces atomic.Int64
	s.snapProduce = func(ctx context.Context, cfg tvsched.Config) ([]byte, error) {
		if produces.Add(1) == 1 {
			<-ctx.Done() // the doomed leader: blocks until its client leaves
			return nil, ctx.Err()
		}
		return []byte("warm"), nil
	}
	cfg, err := (&RunRequest{Benchmark: "bzip2", Instructions: 1000}).Config()
	if err != nil {
		t.Fatal(err)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.warmSnapshot(leaderCtx, cfg, "k")
		leaderErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.snapMu.Lock()
		inFlight := len(s.snapFlight) > 0
		s.snapMu.Unlock()
		if inFlight || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	followerRes := make(chan []byte, 1)
	go func() {
		b, err := s.warmSnapshot(context.Background(), cfg, "k")
		if err != nil {
			t.Errorf("follower inherited the leader's death: %v", err)
		}
		followerRes <- b
	}()
	time.Sleep(20 * time.Millisecond) // let the follower join the flight
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error %v, want context.Canceled", err)
	}
	select {
	case b := <-followerRes:
		if string(b) != "warm" {
			t.Fatalf("follower got %q, want the re-led production", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower wedged after the leader's context died")
	}
	if b, ok := s.snapCache.get("k"); !ok || string(b) != "warm" {
		t.Fatalf("snapshot cache not populated by the re-led production (ok=%v)", ok)
	}
}

// TestLRUClampAndKeys pins the max<1 clamp and the hottest-first keys order
// the anti-entropy sampler reads.
func TestLRUClampAndKeys(t *testing.T) {
	c := newLRU(0) // nonsense bound clamps to 1
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if c.len() != 1 {
		t.Fatalf("len %d after clamped insert, want 1", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("clamped cache kept two entries")
	}

	c = newLRU(3)
	c.put("a", nil)
	c.put("b", nil)
	c.put("c", nil)
	if got := c.keys(); len(got) != 3 || got[0] != "c" || got[1] != "b" || got[2] != "a" {
		t.Fatalf("keys %v, want hottest-first [c b a]", got)
	}
	c.get("a") // refresh: a is hottest now
	if got := c.keys(); got[0] != "a" {
		t.Fatalf("keys %v after refresh, want a first", got)
	}
}

// TestSweepThrashesTinySnapshotCache squeezes a multi-WarmKey sweep through
// a snapshot cache bounded to one entry: the keys evict each other
// (thrash), but every cell still completes — the regression here would be a
// wedge, with cells waiting forever on snapshot flights that keep being
// evicted.
func TestSweepThrashesTinySnapshotCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4, SnapshotEntries: 1})
	sweep := SweepRequest{
		Benchmarks:   []string{"bzip2", "sjeng", "mcf"}, // three distinct warm keys
		Schemes:      []string{"ABS", "EP"},
		Instructions: 1000,
		Warmup:       1000,
	}
	body := postSweep(t, ts.URL, sweep)
	sc := bufio.NewScanner(bytes.NewReader(body))
	n := 0
	for sc.Scan() {
		var l sweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		if l.Error != "" || len(l.Report) == 0 {
			t.Fatalf("cell %d failed under snapshot thrash: %q", l.Index, l.Error)
		}
		n++
	}
	if n != 6 {
		t.Fatalf("%d cells, want 6", n)
	}
	if got := srv.snapCache.len(); got != 1 {
		t.Fatalf("snapshot cache len %d, want the bound of 1", got)
	}
}
