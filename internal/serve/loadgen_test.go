package serve

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestRunLoadAccounting drives the generator against a stub-backed server
// and checks the books balance: every request accounted for exactly once,
// the Zipf mix repeat-heavy enough that the cache absorbs most of it, and
// percentiles ordered.
func TestRunLoadAccounting(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Workers: 4, Runner: stubRunner(&runs, nil)})

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:         ts.URL,
		Concurrency: 4,
		Requests:    300,
		Population:  16,
		ZipfS:       1.3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := rep.Hits + rep.Shared + rep.Misses + rep.Rejected + rep.Errors
	if total != 300 {
		t.Fatalf("accounted %d of 300 requests: %+v", total, rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d against an idle stub server", rep.Errors, rep.Rejected)
	}
	// The population bounds distinct simulations; the Zipf mix must revisit.
	if rep.Misses > uint64(rep.Population) {
		t.Fatalf("%d misses for a population of %d: cache not engaged", rep.Misses, rep.Population)
	}
	if runs.Load() > int64(rep.Population) {
		t.Fatalf("%d simulations for %d distinct cells", runs.Load(), rep.Population)
	}
	if rep.HitRate <= 0.5 {
		t.Fatalf("hit rate %.2f too low for a Zipf 1.3 mix over 16 cells", rep.HitRate)
	}
	l := rep.Latency
	if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.Max) || l.Mean <= 0 {
		t.Fatalf("percentiles out of order: %+v", l)
	}
	if rep.ThroughputRPS <= 0 || rep.DurationSec <= 0 {
		t.Fatalf("degenerate throughput: %+v", rep)
	}
	if rep.Schema != LoadReportSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
}

// TestLoadPopulationDeterminism pins that the population derivation and the
// per-worker mix depend only on the config, so a load run names the same
// simulations on every machine.
func TestLoadPopulationDeterminism(t *testing.T) {
	cfg := LoadConfig{Population: 8, Benchmarks: []string{"bzip2", "sjeng"}, Schemes: []string{"ABS", "EP"}}
	cfg.fill()
	a, b := cfg.population(), cfg.population()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Benchmarks and schemes cycle independently; seeds advance per
	// benchmark cycle so every cell is distinct.
	seen := map[string]bool{}
	for _, cell := range a {
		c, err := cell.Config()
		if err != nil {
			t.Fatal(err)
		}
		d := c.Digest()
		if seen[d] {
			t.Fatalf("duplicate digest in population: %+v", cell)
		}
		seen[d] = true
	}
}
