package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"tvsched/internal/campaign"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
)

// CampaignStatusSchema tags the status document POST /v1/campaign and
// GET /v1/campaign/{id} answer with.
const CampaignStatusSchema = "tvsched/campaign-status/v1"

// errCampaignsDisabled reports a campaign request against a server started
// without a campaign directory — there is nowhere to journal, so the resume
// contract cannot be honoured.
var errCampaignsDisabled = errors.New("campaign API disabled: server started without a campaign directory")

// The campaign lifecycle states a status answer reports. A campaign is
// "running" while its executor walks cells, "done" when every cell is
// journaled (individual cells may still have failed — see the error count),
// "suspended" when the server shut down (or the run was canceled) with cells
// pending — the journal holds the finished prefix and a re-POST or restart
// resumes it — and "failed" when the campaign machinery itself broke.
const (
	campaignRunning   = "running"
	campaignDone      = "done"
	campaignSuspended = "suspended"
	campaignFailed    = "failed"
)

// campaignStatus is the status document for one campaign.
type campaignStatus struct {
	Schema string `json:"schema"`
	// ID is the plan hash — the campaign's identity and its journal's name.
	ID    string `json:"id"`
	State string `json:"state"`
	Tag   string `json:"tag,omitempty"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
	// Resumed is how many cells the current run replayed from the journal
	// instead of executing.
	Resumed int    `json:"resumed"`
	Error   string `json:"error,omitempty"`
	// Progress is a live tvsched/progress/v1 heartbeat — the same record a
	// progress-enabled sweep stream interleaves.
	Progress *campaign.ProgressLine `json:"progress"`
}

// campaignRun is one admitted campaign: the plan, its journal, live progress
// accounting, and the lifecycle state the status endpoint reports.
type campaignRun struct {
	id     string
	plan   *campaign.Plan
	j      *campaign.Journal
	prog   *campaign.Progress
	lanes  int
	start  time.Time
	cancel func()
	done   chan struct{} // closed when the executor goroutine returns

	mu     sync.Mutex
	state  string
	errMsg string
}

// status renders the campaign's status document.
func (c *campaignRun) status() campaignStatus {
	c.mu.Lock()
	state, errMsg := c.state, c.errMsg
	c.mu.Unlock()
	done, resumed, _ := c.prog.Snapshot()
	return campaignStatus{
		Schema:   CampaignStatusSchema,
		ID:       c.id,
		State:    state,
		Tag:      c.plan.Spec().Tag,
		Total:    c.plan.Total(),
		Done:     done,
		Resumed:  resumed,
		Error:    errMsg,
		Progress: c.prog.Line(c.start, c.lanes),
	}
}

// journalPath is where the plan's journal lives: the plan hash is both the
// campaign id and the file name, so a re-POST of the same spec finds its
// journal with no registry.
func (s *Server) journalPath(plan *campaign.Plan) string {
	return filepath.Join(s.cfg.CampaignDir, plan.Hash()+".tvcj")
}

// startCampaign admits one campaign, idempotently by plan hash: an already
// running (or finished) campaign is returned as-is, a suspended or failed one
// is relaunched on its journal, and an unknown one opens (or resumes) its
// journal and starts executing. created reports whether this call launched an
// executor.
func (s *Server) startCampaign(plan *campaign.Plan) (*campaignRun, bool, error) {
	id := plan.Hash()
	s.campMu.Lock()
	defer s.campMu.Unlock()
	if c, ok := s.campaigns[id]; ok {
		c.mu.Lock()
		state := c.state
		c.mu.Unlock()
		if state == campaignRunning || state == campaignDone {
			return c, false, nil
		}
		// Suspended or failed: relaunch on the same journal. The old run's
		// executor has returned, so its journal handle is safe to retire.
		_ = c.j.Close()
	}
	j, err := campaign.OpenJournal(s.journalPath(plan), plan)
	if err != nil {
		return nil, false, err
	}
	return s.launchLocked(plan, j), true, nil
}

// launchLocked registers and starts one campaign executor. Callers hold
// s.campMu; the journal is owned by the run from here on.
func (s *Server) launchLocked(plan *campaign.Plan, j *campaign.Journal) *campaignRun {
	c := &campaignRun{
		id:    plan.Hash(),
		plan:  plan,
		j:     j,
		prog:  campaign.NewProgress(plan.Total()),
		lanes: s.cfg.Workers,
		start: time.Now(),
		done:  make(chan struct{}),
		state: campaignRunning,
	}
	s.campaigns[c.id] = c
	event := obs.CampaignStarted
	if j.DoneCount() > 0 {
		event = obs.CampaignResumed
	}
	s.sm.CampaignEvent(event)
	s.sm.AddCampaignsActive(1)
	s.log.LogAttrs(s.baseCtx, slog.LevelInfo, "campaign "+event.String(),
		slog.String("campaign", c.id),
		slog.Int("cells", plan.Total()),
		slog.Int("journaled", j.DoneCount()),
	)
	go s.runCampaign(c)
	return c
}

// runCampaign is the executor goroutine behind one campaign: journaled cells
// replay, the rest run through the server's result pipeline on the bounded
// worker pool. The campaign runs under the server's lifetime, not any
// request's — the POST that admitted it answered long ago. The report stream
// goes nowhere (the journal is the record; GET …/report replays it); only the
// lifecycle transition and the journal survive this function.
func (s *Server) runCampaign(c *campaignRun) {
	ctx, cancel := s.campaignContext()
	c.cancel = cancel
	defer cancel()
	sp := s.tracer.StartRoot("campaign", span.Context{})
	sp.SetAttr("campaign", c.id)
	sp.SetAttr("cells", strconv.Itoa(c.plan.Total()))
	runner := s.cellRunner(obs.RouteCampaign, sp.Context(), c.plan.Checkpoint())
	stats, err := campaign.Execute(ctx, c.plan, c.j, runner, io.Discard, campaign.Options{
		Workers:  s.cfg.Workers + s.cfg.QueueDepth,
		Lanes:    s.cfg.Workers,
		Progress: c.prog,
		Start:    c.start,
		OnCell: func(cell campaign.Cell, res campaign.CellResult, d time.Duration) {
			s.sm.CampaignCell(res.Class.String())
		},
	})
	// Execute syncs on success; make the suspend path just as durable.
	_ = c.j.Sync()

	state, event := campaignDone, obs.CampaignCompleted
	errMsg := ""
	switch {
	case err == nil:
		if n := stats.Errors(); n > 0 {
			errMsg = fmt.Sprintf("%d of %d cells failed", n, stats.Total)
		}
	case isCtxErr(err):
		state, event = campaignSuspended, obs.CampaignSuspended
		errMsg = err.Error()
	default:
		state, event = campaignFailed, obs.CampaignFailed
		errMsg = err.Error()
	}
	c.mu.Lock()
	c.state, c.errMsg = state, errMsg
	c.mu.Unlock()
	sp.SetAttr("state", state)
	sp.End()
	s.sm.CampaignEvent(event)
	s.sm.AddCampaignsActive(-1)
	s.log.LogAttrs(s.baseCtx, slog.LevelInfo, "campaign "+state,
		slog.String("campaign", c.id),
		slog.Int("done", stats.Done),
		slog.Int("replayed", stats.Replayed),
		slog.Int("errors", stats.Errors()),
		slog.Duration("elapsed", stats.Elapsed),
	)
	close(c.done)
}

// campaignContext derives the executor's context: the server's lifetime, not
// any request's. Campaigns survive their admitting request and stop only on
// shutdown (suspended, resumable) or their own completion.
func (s *Server) campaignContext() (context.Context, context.CancelFunc) {
	return context.WithCancel(s.baseCtx)
}

// ResumeCampaigns scans the campaign directory and relaunches every journal
// found there: unfinished campaigns pick up exactly where they stopped
// (journaled cells replay, pending cells execute), finished ones replay to a
// terminal "done" so their status and report stay queryable. Call once at
// startup, after New and before serving traffic. Unreadable journals are
// logged and skipped, never fatal — one corrupt file must not take down the
// daemon. Returns how many campaigns were relaunched.
func (s *Server) ResumeCampaigns() (int, error) {
	if s.cfg.CampaignDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.CampaignDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, os.MkdirAll(s.cfg.CampaignDir, 0o755)
		}
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tvcj") {
			continue
		}
		path := filepath.Join(s.cfg.CampaignDir, e.Name())
		j, plan, err := campaign.LoadJournal(path)
		if err != nil {
			s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "campaign journal skipped",
				slog.String("path", path), slog.String("cause", err.Error()))
			continue
		}
		s.campMu.Lock()
		if _, ok := s.campaigns[plan.Hash()]; ok {
			s.campMu.Unlock()
			j.Close()
			continue
		}
		s.launchLocked(plan, j)
		s.campMu.Unlock()
		n++
	}
	return n, nil
}

func (s *Server) handleCampaignPost(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.StartRoot("campaign_admit", span.Extract(r))
	defer sp.End()
	reqID := sp.TraceID().String()
	h := w.Header()
	h.Set("X-Request-Id", reqID)
	sp.Context().Inject(h)
	if r.Method != http.MethodPost {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	if s.cfg.CampaignDir == "" {
		sp.SetAttr("outcome", "disabled")
		s.fail(w, r, reqID, "", http.StatusServiceUnavailable, errCampaignsDisabled)
		return
	}
	var spec campaign.Spec
	var plan *campaign.Plan
	err := decode(w, r, &spec)
	if err == nil {
		if plan, err = campaign.NewPlan(spec); err != nil {
			err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if err == nil && plan.Total() > s.cfg.MaxCampaignCells {
		err = fmt.Errorf("%w: %d cells over server cap %d", ErrBadRequest, plan.Total(), s.cfg.MaxCampaignCells)
	}
	if err == nil {
		err = s.checkPolicy(plan.Cell(0).Config)
	}
	if err != nil {
		s.sm.Outcome(obs.ServeBadRequest)
		sp.SetAttr("outcome", "bad_request")
		s.fail(w, r, reqID, "", http.StatusBadRequest, err)
		return
	}
	sp.SetAttr("campaign", plan.Hash())
	c, created, err := s.startCampaign(plan)
	if err != nil {
		sp.SetAttr("outcome", "error")
		s.fail(w, r, reqID, plan.Hash(), http.StatusInternalServerError, err)
		return
	}
	sp.SetAttr("outcome", map[bool]string{true: "launched", false: "joined"}[created])
	h.Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusAccepted)
	}
	_ = json.NewEncoder(w).Encode(c.status())
}

// handleCampaignGet answers GET /v1/campaign/{id} (status document) and
// GET /v1/campaign/{id}/report (the journaled NDJSON prefix — for a finished
// campaign, the full report, byte-identical to what an uninterrupted
// synchronous run would have streamed).
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, "", "", http.StatusMethodNotAllowed, errMethod)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaign/")
	id, sub, _ := strings.Cut(rest, "/")
	s.campMu.Lock()
	c, ok := s.campaigns[id]
	s.campMu.Unlock()
	if !ok {
		s.fail(w, r, id, "", http.StatusNotFound, errors.New("unknown campaign id"))
		return
	}
	switch sub {
	case "":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.status())
	case "report":
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		total := c.plan.Total()
		for i := 0; i < total; i++ {
			_, line, ok, err := c.j.ReadLine(i)
			if err != nil || !ok {
				// The journal is a strict prefix of the report: the first
				// missing cell ends what this run can serve so far.
				return
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	default:
		s.fail(w, r, id, "", http.StatusNotFound,
			fmt.Errorf("unknown campaign resource %q (want status or report)", sub))
	}
}
