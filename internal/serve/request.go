package serve

import (
	"errors"
	"fmt"

	"tvsched"
	"tvsched/internal/campaign"
)

// The wire schemas this package speaks. Like obs.RunReportSchema, these are
// matched exactly before any field semantics are trusted; bump on breaking
// change. They are documented in EXPERIMENTS.md alongside run-report/v1 and
// storm-report/v1.
const (
	// RunRequestSchema tags one simulation request (POST /v1/run).
	RunRequestSchema = "tvsched/run-request/v1"
	// SweepRequestSchema tags a cross-product sweep (POST /v1/sweep).
	SweepRequestSchema = "tvsched/sweep-request/v1"
	// LoadReportSchema tags the load generator's artifact (cmd/tvload).
	LoadReportSchema = "tvsched/load-report/v1"
)

// ErrBadRequest reports a request the server refuses to simulate: wrong
// schema, unknown benchmark or scheme, or out-of-policy phase lengths.
// Handlers map it to HTTP 400.
var ErrBadRequest = errors.New("bad request")

// RunRequest is the wire form of one simulation request. Zero fields take
// the library defaults (tvsched.Config.Normalized), so an omitted field and
// its explicit default address the same cache entry.
type RunRequest struct {
	// Schema must be RunRequestSchema (or empty, which assumes it).
	Schema string `json:"schema,omitempty"`
	// Benchmark is a workload name from tvsched.Benchmarks().
	Benchmark string `json:"benchmark,omitempty"`
	// Scheme is the handling scheme name ("Razor", "EP", "ABS", "FFS",
	// "CDS"); empty means Razor, matching the library zero value.
	Scheme string `json:"scheme,omitempty"`
	// VDD is the supply voltage (0 means nominal 1.10 V).
	VDD float64 `json:"vdd,omitempty"`
	// Instructions and Warmup are the phase lengths in committed
	// instructions.
	Instructions uint64 `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"`
	// Seed drives all deterministic randomness; responses are
	// byte-deterministic given the request, so two posts of the same
	// request always return identical bodies.
	Seed uint64 `json:"seed,omitempty"`
	// FaultBias multiplies the fault model's near-critical fraction.
	FaultBias float64 `json:"fault_bias,omitempty"`
}

// Config validates the request and converts it to a normalized simulation
// config. All failures wrap ErrBadRequest.
func (r *RunRequest) Config() (tvsched.Config, error) {
	if r.Schema != "" && r.Schema != RunRequestSchema {
		return tvsched.Config{}, fmt.Errorf("%w: schema %q, want %q", ErrBadRequest, r.Schema, RunRequestSchema)
	}
	cfg := tvsched.Config{
		Benchmark:    r.Benchmark,
		VDD:          r.VDD,
		Instructions: r.Instructions,
		Warmup:       r.Warmup,
		Seed:         r.Seed,
		FaultBias:    r.FaultBias,
	}
	if r.Scheme != "" {
		s, err := tvsched.ParseScheme(r.Scheme)
		if err != nil {
			return tvsched.Config{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		cfg.Scheme = s
	}
	cfg = cfg.Normalized()
	if _, ok := tvsched.Profile(cfg.Benchmark); !ok {
		return tvsched.Config{}, fmt.Errorf("%w: unknown benchmark %q", ErrBadRequest, cfg.Benchmark)
	}
	return cfg, nil
}

// SweepRequest is the wire form of a batch sweep: the cross product of the
// listed axes, each cell an independent (and independently cached)
// simulation. Empty axes default to a single element: bzip2 / ABS /
// 0.97 V / seed 1.
type SweepRequest struct {
	// Schema must be SweepRequestSchema (or empty, which assumes it).
	Schema     string    `json:"schema,omitempty"`
	Benchmarks []string  `json:"benchmarks,omitempty"`
	Schemes    []string  `json:"schemes,omitempty"`
	VDDs       []float64 `json:"vdds,omitempty"`
	Seeds      []uint64  `json:"seeds,omitempty"`
	// Instructions, Warmup and FaultBias apply to every cell.
	Instructions uint64  `json:"instructions,omitempty"`
	Warmup       uint64  `json:"warmup,omitempty"`
	FaultBias    float64 `json:"fault_bias,omitempty"`
	// Checkpoint, when absent or true, lets cells restore the server's
	// shared warm-state snapshot for their WarmKey instead of each
	// re-simulating the warmup phase; false forces every cell to warm up
	// from scratch. Responses are byte-identical either way (all server runs
	// use neutral warmup) — the flag trades warmup CPU for snapshot-cache
	// memory, and exists mainly so benchmarks and CI can compare the paths.
	Checkpoint *bool `json:"checkpoint,omitempty"`
	// Progress, when true, interleaves tvsched/progress/v1 heartbeat records
	// (cells done/total, per-provenance counts, EWMA-based ETA) with the cell
	// lines, at the server's heartbeat cadence, plus one final heartbeat after
	// the last cell. Off by default: heartbeats carry wall-clock timings, so
	// only streams that opt in trade away byte-determinism.
	Progress bool `json:"progress,omitempty"`
}

// Plan converts the request into a lazy campaign plan — the one cross-product
// enumerator the whole repo shares (internal/campaign). The plan is O(axes) in
// memory no matter how many cells it describes; handleSweep bounds the cell
// count against the server cap, and plan.Cell(i) materializes one cell at a
// time. The cell order is campaign's canonical order, which is exactly the
// order this endpoint has always promised: benchmarks × schemes × VDDs ×
// seeds, each axis as requested, seeds varying fastest. All failures wrap
// ErrBadRequest.
func (s *SweepRequest) Plan() (*campaign.Plan, error) {
	if s.Schema != "" && s.Schema != SweepRequestSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadRequest, s.Schema, SweepRequestSchema)
	}
	plan, err := campaign.NewPlan(campaign.Spec{
		Benchmarks:   s.Benchmarks,
		Schemes:      s.Schemes,
		VDDs:         s.VDDs,
		Seeds:        s.Seeds,
		Instructions: s.Instructions,
		Warmup:       s.Warmup,
		FaultBias:    s.FaultBias,
		Checkpoint:   s.Checkpoint,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return plan, nil
}

// Cells expands the sweep into per-cell run requests, in the deterministic
// benchmark-major order Plan documents. It materializes every cell — clients
// that only need the order one cell at a time should walk Plan().Cell(i)
// instead.
func (s *SweepRequest) Cells() ([]RunRequest, error) {
	plan, err := s.Plan()
	if err != nil {
		return nil, err
	}
	cells := make([]RunRequest, 0, plan.Total())
	for i := 0; i < plan.Total(); i++ {
		cfg := plan.Cell(i).Config
		cells = append(cells, RunRequest{
			Schema:       RunRequestSchema,
			Benchmark:    cfg.Benchmark,
			Scheme:       cfg.Scheme.String(),
			VDD:          cfg.VDD,
			Seed:         cfg.Seed,
			Instructions: s.Instructions,
			Warmup:       s.Warmup,
			FaultBias:    s.FaultBias,
		})
	}
	return cells, nil
}
