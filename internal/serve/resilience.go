package serve

// The resilience layer under the cluster protocol: per-peer circuit
// breakers gating every peer call, the replication debt a node accrues when
// it computes on behalf of an unreachable owner (degraded mode), and the
// anti-entropy repair oracle that re-simulates a diverged digest to decide
// which replica is wrong. The philosophy mirrors the paper's: tolerate the
// violation (serve degraded, pay a bounded penalty) instead of provisioning
// for a healthy cluster, and detect-and-recover (re-simulate, overwrite)
// instead of guessing which copy to trust.

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/fnv"
	"io"
	"log/slog"

	"tvsched"
	"tvsched/internal/cluster"
	"tvsched/internal/obs"
	"tvsched/internal/obs/span"
	"tvsched/internal/resil"
	"tvsched/internal/rng"
)

// owedMax bounds the replication debt remembered per peer. Beyond it the
// oldest digests are dropped — anti-entropy plus peer read-through will
// still converge the replicas, just without the fast path.
const owedMax = 256

// breakerFor returns (creating on first use) the circuit breaker guarding
// peerID. Each peer's probe schedule is seeded from ResilSeed and the peer's
// name, so a chaos scenario replays the same breaker timeline run after run
// while distinct peers stay decorrelated.
func (s *Server) breakerFor(peerID string) *resil.Breaker {
	s.brkMu.Lock()
	defer s.brkMu.Unlock()
	if b, ok := s.breakers[peerID]; ok {
		return b
	}
	h := fnv.New64a()
	io.WriteString(h, peerID)
	b := resil.NewBreaker(resil.BreakerConfig{
		Failures:    s.cfg.BreakerFailures,
		Cooldown:    s.cfg.BreakerCooldown,
		CooldownMax: s.cfg.BreakerCooldownMax,
		Seed:        rng.Mix(s.cfg.ResilSeed ^ h.Sum64()),
		OnTransition: func(from, to resil.State) {
			s.sm.BreakerTransition(peerID, to.String())
			s.log.LogAttrs(s.baseCtx, slog.LevelWarn, "peer breaker transition",
				slog.String("peer", peerID),
				slog.String("from", from.String()),
				slog.String("to", to.String()),
			)
			if to == resil.Closed {
				// The peer is back: deliver any results computed on its
				// behalf while it was away. Detached — the transition fires
				// inside a request's forward path.
				go s.flushOwed(peerID)
			}
		},
	})
	s.breakers[peerID] = b
	return b
}

// retryPolicy builds the bounded backoff for one peer operation on digest.
// Seeding by (ResilSeed, peer, digest) makes every retry schedule a pure
// function of the scenario, like the breaker's.
func (s *Server) retryPolicy(peerID, digest string) resil.RetryPolicy {
	h := fnv.New64a()
	io.WriteString(h, peerID)
	h.Write([]byte{0})
	io.WriteString(h, digest)
	return resil.RetryPolicy{
		Attempts: s.cfg.PeerRetries,
		Base:     s.cfg.PeerRetryBase,
		Seed:     rng.Mix(s.cfg.ResilSeed ^ h.Sum64()),
	}
}

// owe records that peerID should eventually receive this node's bytes for
// digest — the debt a degraded-mode computation leaves behind. Bounded and
// deduplicated; dropping debt is safe (anti-entropy still converges).
func (s *Server) owe(peerID, digest string) {
	s.owedMu.Lock()
	defer s.owedMu.Unlock()
	list := s.owed[peerID]
	for _, d := range list {
		if d == digest {
			return
		}
	}
	if len(list) >= owedMax {
		list = list[1:]
	}
	s.owed[peerID] = append(list, digest)
}

// owedTo snapshots and clears the debt owed to peerID.
func (s *Server) owedTo(peerID string) []string {
	s.owedMu.Lock()
	defer s.owedMu.Unlock()
	digests := s.owed[peerID]
	delete(s.owed, peerID)
	return digests
}

// flushOwed pushes every owed digest to peerID. Failures re-enter the debt
// so the next breaker-close or anti-entropy pass tries again.
func (s *Server) flushOwed(peerID string) {
	digests := s.owedTo(peerID)
	if len(digests) == 0 {
		return
	}
	ring := s.ringView()
	if ring == nil {
		return
	}
	var peer cluster.Peer
	found := false
	for _, p := range ring.Peers() {
		if p.ID == peerID {
			peer, found = p, true
			break
		}
	}
	if !found {
		return // the ring was re-shaped; the debt is moot
	}
	cl := s.client()
	for _, digest := range digests {
		body, ok := s.lookupLocal(digest)
		if !ok {
			continue // evicted since; nothing to deliver
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.PeerTimeout)
		err := cl.Push(ctx, peer, digest, body)
		cancel()
		if err != nil {
			s.owe(peerID, digest)
			s.log.LogAttrs(s.baseCtx, slog.LevelDebug, "owed replication failed, will retry",
				slog.String("peer", peerID), slog.String("digest", digest),
				slog.String("cause", err.Error()))
			return // the peer flapped; stop hammering, keep the rest owed
		}
		s.sm.PeerOp(peerID, obs.PeerReplicated)
		s.log.LogAttrs(s.baseCtx, slog.LevelInfo, "degraded result replicated to owner",
			slog.String("peer", peerID), slog.String("digest", digest))
	}
}

// recordConfig remembers the request that produced digest, so the repair
// oracle can re-simulate it later. Only computation leaders record (the hit
// path never pays the marshal), and the memory is a bounded LRU.
func (s *Server) recordConfig(digest string, cfg tvsched.Config) {
	b, err := json.Marshal(requestFor(cfg))
	if err != nil {
		return
	}
	s.cfgMu.Lock()
	s.knownCfgs.put(digest, b)
	s.cfgMu.Unlock()
}

// configFor recovers the config behind digest, if this node ever led its
// computation. The digest is a one-way hash, so this bounded memory is the
// only road back from a digest to something re-simulable.
func (s *Server) configFor(digest string) (tvsched.Config, bool) {
	s.cfgMu.Lock()
	b, ok := s.knownCfgs.get(digest)
	s.cfgMu.Unlock()
	if !ok {
		return tvsched.Config{}, false
	}
	var req RunRequest
	if err := json.Unmarshal(b, &req); err != nil {
		return tvsched.Config{}, false
	}
	cfg, err := req.Config()
	if err != nil {
		return tvsched.Config{}, false
	}
	return cfg, true
}

// repairDivergence heals one byte-divergence between this node and peer by
// re-simulating the digest locally — determinism makes the fresh simulation
// a ground-truth oracle — and overwriting whichever replica disagrees with
// it (possibly both). Reports whether any replica was repaired. Requires
// the config behind the digest to be known here; an unknown config is
// logged and skipped, never guessed at.
func (s *Server) repairDivergence(ctx context.Context, digest string, local, remote []byte, peer cluster.Peer) bool {
	cfg, ok := s.configFor(digest)
	if !ok {
		s.log.LogAttrs(ctx, slog.LevelWarn, "cannot repair divergence: config unknown on this node",
			slog.String("digest", digest), slog.String("peer", peer.ID))
		return false
	}
	oracle, status, _, err := s.runLocal(digest, cfg, true, span.Context{})
	if err != nil || status != 200 {
		s.log.LogAttrs(ctx, slog.LevelWarn, "repair re-simulation failed",
			slog.String("digest", digest), slog.Int("status", status),
			slog.String("cause", errString(err)))
		return false
	}
	if d := cfg.Digest(); d != digest {
		// The recorded config no longer hashes to the digest — version skew
		// between record and replay. Overwriting anything would be guessing.
		s.log.LogAttrs(ctx, slog.LevelError, "repair oracle digest mismatch",
			slog.String("digest", digest), slog.String("recomputed", d))
		return false
	}
	repaired := false
	if !bytes.Equal(local, oracle) {
		s.mu.Lock()
		s.cache.put(digest, oracle)
		s.mu.Unlock()
		s.storePut(digest, oracle)
		repaired = true
		s.log.LogAttrs(ctx, slog.LevelWarn, "local replica repaired from oracle",
			slog.String("digest", digest))
	}
	if !bytes.Equal(remote, oracle) {
		pctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
		err := s.client().Push(pctx, peer, digest, oracle)
		cancel()
		if err != nil {
			s.log.LogAttrs(ctx, slog.LevelWarn, "peer replica repair push failed",
				slog.String("digest", digest), slog.String("peer", peer.ID),
				slog.String("cause", err.Error()))
		} else {
			repaired = true
			s.log.LogAttrs(ctx, slog.LevelWarn, "peer replica repaired from oracle",
				slog.String("digest", digest), slog.String("peer", peer.ID))
		}
	}
	if repaired {
		s.sm.PeerOp(peer.ID, obs.PeerRepaired)
	}
	return repaired
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// validDigest reports whether d has the exact shape of a config digest —
// 64 lowercase hex characters (hex SHA-256 of the canonical config JSON).
// Peer endpoints answer 400 for anything else instead of doing store
// lookups on garbage keys.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
