package dvfs

import (
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/pipeline"
	"tvsched/internal/workload"
)

func newPipe(t *testing.T, scheme core.Scheme, vdd float64, seed uint64) *pipeline.Pipeline {
	t.Helper()
	prof, ok := workload.ByName("bzip2")
	if !ok {
		t.Fatal("profile missing")
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = scheme
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	fc := fault.DefaultConfig(seed)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		t.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(20000); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPolicyValidate(t *testing.T) {
	good := DefaultPolicy()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{TargetLo: 0.05, TargetHi: 0.01, StepV: 0.01, VMin: 0.9, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0, VMin: 0.9, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0.01, VMin: 1.2, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0.01, VMin: 0.9, VMax: 1.1, Window: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
	if _, err := New(nil, 1.1, bad[0]); err == nil {
		t.Error("governor accepted invalid policy")
	}
}

func TestGovernorWalksDownFromNominal(t *testing.T) {
	// Starting fault-free at 1.10V, the governor must discover the unused
	// margin and walk the voltage down into the target band.
	p := newPipe(t, core.ABS, fault.VNominal, 3)
	g, err := New(p, fault.VNominal, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trace, st, err := g.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 {
		t.Fatal("no progress")
	}
	if len(trace) != 25 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[0].VDD != fault.VNominal {
		t.Fatalf("first window at %v", trace[0].VDD)
	}
	settled := Settled(trace, 5)
	if settled >= fault.VNominal-0.02 {
		t.Fatalf("governor never undervolted: settled %v", settled)
	}
	// The settled fault rate must sit in or near the target band.
	last := trace[len(trace)-1]
	if last.FaultRate > 0.08 {
		t.Fatalf("settled fault rate %v far above band", last.FaultRate)
	}
}

func TestGovernorStepsUpWhenHot(t *testing.T) {
	// Starting deep in the high-fault regime with a tight band, the
	// governor must raise the voltage.
	pol := DefaultPolicy()
	pol.TargetLo, pol.TargetHi = 0.001, 0.005
	p := newPipe(t, core.ABS, fault.VHighFault, 5)
	g, err := New(p, fault.VHighFault, pol)
	if err != nil {
		t.Fatal(err)
	}
	trace, _, err := g.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if Settled(trace, 3) <= fault.VHighFault {
		t.Fatalf("governor never stepped up: %+v", trace[len(trace)-1])
	}
}

func TestGovernorDeterministic(t *testing.T) {
	run := func() []Sample {
		p := newPipe(t, core.ABS, fault.VNominal, 7)
		g, _ := New(p, fault.VNominal, DefaultPolicy())
		trace, _, err := g.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGovernorRespectsClamp(t *testing.T) {
	pol := DefaultPolicy()
	pol.VMin = 1.05
	p := newPipe(t, core.ABS, fault.VNominal, 9)
	g, _ := New(p, fault.VNominal, pol)
	trace, _, err := g.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range trace {
		if s.VDD < pol.VMin-1e-9 || s.VDD > pol.VMax+1e-9 {
			t.Fatalf("voltage escaped clamp: %v", s.VDD)
		}
	}
}

func TestSettledEdges(t *testing.T) {
	if Settled(nil, 5) != 0 {
		t.Fatal("empty trace")
	}
	tr := []Sample{{VDD: 1.0}, {VDD: 1.1}}
	if got := Settled(tr, 10); got != 1.05 {
		t.Fatalf("Settled over-short trace = %v", got)
	}
}
