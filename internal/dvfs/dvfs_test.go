package dvfs

import (
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/hazard"
	"tvsched/internal/pipeline"
	"tvsched/internal/workload"
)

func newPipe(t *testing.T, scheme core.Scheme, vdd float64, seed uint64) *pipeline.Pipeline {
	t.Helper()
	prof, ok := workload.ByName("bzip2")
	if !ok {
		t.Fatal("profile missing")
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = scheme
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	fc := fault.DefaultConfig(seed)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		t.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(20000); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPolicyValidate(t *testing.T) {
	good := DefaultPolicy()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{TargetLo: 0.05, TargetHi: 0.01, StepV: 0.01, VMin: 0.9, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0, VMin: 0.9, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0.01, VMin: 1.2, VMax: 1.1, Window: 100},
		{TargetLo: 0.01, TargetHi: 0.02, StepV: 0.01, VMin: 0.9, VMax: 1.1, Window: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
	if _, err := New(nil, 1.1, bad[0]); err == nil {
		t.Error("governor accepted invalid policy")
	}
}

func TestGovernorWalksDownFromNominal(t *testing.T) {
	// Starting fault-free at 1.10V, the governor must discover the unused
	// margin and walk the voltage down into the target band.
	p := newPipe(t, core.ABS, fault.VNominal, 3)
	g, err := New(p, fault.VNominal, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	trace, st, err := g.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed == 0 {
		t.Fatal("no progress")
	}
	if len(trace) != 25 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[0].VDD != fault.VNominal {
		t.Fatalf("first window at %v", trace[0].VDD)
	}
	settled := Settled(trace, 5)
	if settled >= fault.VNominal-0.02 {
		t.Fatalf("governor never undervolted: settled %v", settled)
	}
	// The settled fault rate must sit in or near the target band.
	last := trace[len(trace)-1]
	if last.FaultRate > 0.08 {
		t.Fatalf("settled fault rate %v far above band", last.FaultRate)
	}
}

func TestGovernorStepsUpWhenHot(t *testing.T) {
	// Starting deep in the high-fault regime with a tight band, the
	// governor must raise the voltage.
	pol := DefaultPolicy()
	pol.TargetLo, pol.TargetHi = 0.001, 0.005
	p := newPipe(t, core.ABS, fault.VHighFault, 5)
	g, err := New(p, fault.VHighFault, pol)
	if err != nil {
		t.Fatal(err)
	}
	trace, _, err := g.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if Settled(trace, 3) <= fault.VHighFault {
		t.Fatalf("governor never stepped up: %+v", trace[len(trace)-1])
	}
}

func TestGovernorDeterministic(t *testing.T) {
	run := func() []Sample {
		p := newPipe(t, core.ABS, fault.VNominal, 7)
		g, _ := New(p, fault.VNominal, DefaultPolicy())
		trace, _, err := g.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGovernorRespectsClamp(t *testing.T) {
	pol := DefaultPolicy()
	pol.VMin = 1.05
	p := newPipe(t, core.ABS, fault.VNominal, 9)
	g, _ := New(p, fault.VNominal, pol)
	trace, _, err := g.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range trace {
		if s.VDD < pol.VMin-1e-9 || s.VDD > pol.VMax+1e-9 {
			t.Fatalf("voltage escaped clamp: %v", s.VDD)
		}
	}
}

func TestSettledEdges(t *testing.T) {
	if Settled(nil, 5) != 0 {
		t.Fatal("empty trace")
	}
	tr := []Sample{{VDD: 1.0}, {VDD: 1.1}}
	if got := Settled(tr, 10); got != 1.05 {
		t.Fatalf("Settled over-short trace = %v", got)
	}
}

// droopTrace runs a governed ABS machine through a mid-run voltage droop
// (+mag delay for ~10 control windows) and returns the per-window trace.
func droopTrace(t *testing.T, mag float64, windows int) ([]Sample, Policy) {
	t.Helper()
	p := newPipe(t, core.ABS, fault.VNominal, 11)
	p.SetHazard(hazard.MustNew(1, hazard.Event{
		Kind: hazard.Droop, Start: 300000, Attack: 20000, Hold: 200000, Release: 20000,
		Mag: mag,
	}))
	pol := DefaultPolicy()
	g, err := New(p, fault.VNominal, pol)
	if err != nil {
		t.Fatal(err)
	}
	trace, _, err := g.Run(windows)
	if err != nil {
		t.Fatal(err)
	}
	return trace, pol
}

// TestGovernorRidesOutDroop pins the governor's transient response: settle
// below nominal, absorb a +10% delay droop by stepping the supply up, and —
// once the droop releases — return to within one step of the pre-droop
// setpoint. The whole excursion must stay hysteretic: a bounded number of
// direction reversals, not rail-to-rail thrash.
func TestGovernorRidesOutDroop(t *testing.T) {
	trace, pol := droopTrace(t, 0.10, 45)

	// The droop announces itself as the first far-above-band window.
	firstHot := -1
	for i, s := range trace {
		if s.FaultRate > 2*pol.TargetHi {
			firstHot = i
			break
		}
	}
	if firstHot < 5 {
		t.Fatalf("droop arrived before the governor settled (window %d)", firstHot)
	}
	vPre := Settled(trace[:firstHot], 3)
	if vPre >= fault.VNominal-0.02 {
		t.Fatalf("governor never undervolted before the droop: %v", vPre)
	}

	// The droop must push the supply up by at least two steps.
	vMax := 0.0
	for _, s := range trace[firstHot:] {
		if s.VDD > vMax {
			vMax = s.VDD
		}
	}
	if vMax < vPre+2*pol.StepV-1e-9 {
		t.Fatalf("governor did not respond to the droop: peak %v from setpoint %v", vMax, vPre)
	}

	// After the release, the walk must come back to the pre-droop setpoint.
	if vEnd := trace[len(trace)-1].VDD; vEnd > vPre+pol.StepV+1e-9 || vEnd < vPre-pol.StepV-1e-9 {
		t.Fatalf("setpoint did not recover: pre-droop %v, final %v", vPre, vEnd)
	}

	// Hysteresis: settling dither plus one droop round trip, not thrash.
	reversals, dir := 0, 0
	for i := 1; i < len(trace); i++ {
		d := 0
		if trace[i].VDD > trace[i-1].VDD+1e-9 {
			d = 1
		} else if trace[i].VDD < trace[i-1].VDD-1e-9 {
			d = -1
		}
		if d != 0 && dir != 0 && d != dir {
			reversals++
		}
		if d != 0 {
			dir = d
		}
	}
	if reversals > 8 {
		t.Fatalf("governor thrashed through %d direction reversals:\n%+v", reversals, trace)
	}
}

// TestGovernorSaturatesCleanlyAtClamp: while a deep droop holds the fault
// rate above the band at the VMax rail, the governor must sit still at the
// clamp — no dithering against a limit it cannot exceed.
func TestGovernorSaturatesCleanlyAtClamp(t *testing.T) {
	trace, pol := droopTrace(t, 0.20, 40)
	sawClampedHot := false
	for i := 0; i < len(trace)-1; i++ {
		s := trace[i]
		if s.VDD >= pol.VMax-1e-9 && s.FaultRate > pol.TargetHi {
			sawClampedHot = true
			if next := trace[i+1].VDD; next < pol.VMax-1e-9 {
				t.Fatalf("window %d: governor stepped off the clamp while still hot (fr %v): %v",
					i, s.FaultRate, next)
			}
		}
	}
	if !sawClampedHot {
		t.Fatal("deep droop never saturated the governor at VMax; deepen the scenario")
	}
}
