// Package dvfs implements a closed-loop error-rate-driven voltage governor —
// the classic companion to timing-speculative designs (Razor's "self-tuning
// DVS" [Das et al., JSSC'06]) and the online realization of the operating-
// point headroom the paper's introduction motivates. The governor samples
// the machine's violation rate over fixed instruction windows and walks the
// supply voltage toward a target band: below the band there is unused timing
// margin (step down, save energy); above it the handling overhead grows
// (step up). With violation-aware scheduling the tolerable band is far wider
// than with stall- or replay-based handling, so the governor settles lower.
package dvfs

import (
	"fmt"

	"tvsched/internal/pipeline"
)

// Policy parameterizes the control loop.
type Policy struct {
	// TargetLo and TargetHi bound the per-window fault rate (fraction of
	// committed instructions) the governor steers into.
	TargetLo, TargetHi float64
	// StepV is the voltage step per adjustment (volts).
	StepV float64
	// VMin and VMax clamp the walk.
	VMin, VMax float64
	// Window is the sample length in committed instructions.
	Window uint64
}

// DefaultPolicy targets the paper's low-fault-rate regime (1-3% violations),
// stepping 10 mV per 20k-instruction window within [0.95, 1.10] V.
func DefaultPolicy() Policy {
	return Policy{
		TargetLo: 0.01, TargetHi: 0.03,
		StepV: 0.010,
		VMin:  0.95, VMax: 1.10,
		Window: 20000,
	}
}

// Validate reports parameter errors.
func (p *Policy) Validate() error {
	if p.TargetLo < 0 || p.TargetHi <= p.TargetLo {
		return fmt.Errorf("dvfs: bad target band [%v, %v]", p.TargetLo, p.TargetHi)
	}
	if p.StepV <= 0 || p.VMin >= p.VMax || p.Window == 0 {
		return fmt.Errorf("dvfs: bad step/range/window")
	}
	return nil
}

// Sample records one control window.
type Sample struct {
	Window    int
	VDD       float64
	FaultRate float64
	IPC       float64
}

// Governor drives one pipeline instance.
type Governor struct {
	p   *pipeline.Pipeline
	pol Policy
	vdd float64
}

// New wraps a pipeline that was constructed at startVDD.
func New(p *pipeline.Pipeline, startVDD float64, pol Policy) (*Governor, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Governor{p: p, pol: pol, vdd: startVDD}, nil
}

// VDD returns the current supply voltage.
func (g *Governor) VDD() float64 { return g.vdd }

// Run executes windows control windows, adjusting the voltage after each,
// and returns the per-window trace plus the final cumulative statistics.
func (g *Governor) Run(windows int) ([]Sample, pipeline.Stats, error) {
	var (
		trace []Sample
		prev  pipeline.Stats
		st    pipeline.Stats
		err   error
	)
	for w := 0; w < windows; w++ {
		st, err = g.p.Run(g.pol.Window)
		if err != nil {
			return trace, st, err
		}
		committed := st.Committed - prev.Committed
		faults := st.Faults - prev.Faults
		cycles := st.Cycles - prev.Cycles
		prev = st

		fr := 0.0
		if committed > 0 {
			fr = float64(faults) / float64(committed)
		}
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(committed) / float64(cycles)
		}
		trace = append(trace, Sample{Window: w, VDD: g.vdd, FaultRate: fr, IPC: ipc})

		// Walk the supply toward the target band.
		switch {
		case fr < g.pol.TargetLo && g.vdd > g.pol.VMin:
			g.vdd -= g.pol.StepV
			if g.vdd < g.pol.VMin {
				g.vdd = g.pol.VMin
			}
			g.p.SetVDD(g.vdd)
		case fr > g.pol.TargetHi && g.vdd < g.pol.VMax:
			g.vdd += g.pol.StepV
			if g.vdd > g.pol.VMax {
				g.vdd = g.pol.VMax
			}
			g.p.SetVDD(g.vdd)
		}
	}
	return trace, st, nil
}

// Settled reports the mean voltage over the last k windows of a trace — the
// governor's operating point once transients die out.
func Settled(trace []Sample, k int) float64 {
	if len(trace) == 0 {
		return 0
	}
	if k > len(trace) {
		k = len(trace)
	}
	sum := 0.0
	for _, s := range trace[len(trace)-k:] {
		sum += s.VDD
	}
	return sum / float64(k)
}
