package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("derived streams with different keys coincide")
	}
	// Deriving the same key twice must give the same stream.
	d1 := parent.Derive(9)
	d2 := parent.Derive(9)
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
}

func TestMixBijectiveSample(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[s.Intn(7)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(5)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Norm variance %v too far from 1", variance)
	}
}

func TestGaussianScaling(t *testing.T) {
	s := New(6)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.05 {
		t.Fatalf("Gaussian(10,2) mean %v", mean)
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.TruncGaussian(0, 5, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncGaussian escaped bounds: %v", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(8)
	p := 0.25
	n := 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / float64(n)
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	s := New(9)
	if v := s.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	if v := s.Geometric(0); v <= 0 {
		t.Fatalf("Geometric(0) = %d, want large positive", v)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(10)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[s.Zipf(100, 0.9)]++
	}
	if counts[0] < counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100000 {
		t.Fatalf("Zipf lost samples: %d", total)
	}
}

func TestZipfSmallN(t *testing.T) {
	s := New(11)
	if v := s.Zipf(1, 0.9); v != 0 {
		t.Fatalf("Zipf(1) = %d", v)
	}
	if v := s.Zipf(0, 0.9); v != 0 {
		t.Fatalf("Zipf(0) = %d", v)
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Exp(4)
	}
	if mean := sum / float64(n); math.Abs(mean-4) > 0.1 {
		t.Fatalf("Exp(4) mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	out := make([]int, 32)
	s.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

// Property: Uint64n(n) is always < n for any nonzero n.
func TestUint64nProperty(t *testing.T) {
	s := New(14)
	f := func(n uint64, _ uint8) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mix is a function (same input, same output) and differs for
// consecutive inputs.
func TestMixProperty(t *testing.T) {
	f := func(z uint64) bool {
		return Mix(z) == Mix(z) && Mix(z) != Mix(z+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Derive with the same key from the same parent state agrees.
func TestDeriveProperty(t *testing.T) {
	f := func(seed, key uint64) bool {
		a := New(seed).Derive(key)
		b := New(seed).Derive(key)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Norm()
	}
	_ = sink
}
