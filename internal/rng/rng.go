// Package rng provides a small, fast, deterministic random number generator
// used throughout the simulator. Determinism matters: every experiment in the
// paper reproduction must produce identical results across runs and machines,
// so we avoid math/rand's global state and version-dependent algorithms.
//
// The core generator is SplitMix64 (Steele, Lea, Flood; JPDC 2014), which has
// a 64-bit state, passes BigCrush when used as described, and — crucially for
// us — supports cheap stateless "hash-like" evaluation: Derive builds an
// independent stream from a seed and a key, which the fault model uses to
// assign stable per-(PC,stage) path delays.
package rng

import "math"

// Source is a deterministic pseudo-random source with SplitMix64 state.
// The zero value is a valid source seeded with 0.
type Source struct {
	state uint64
	// spare holds a cached second Gaussian variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns a new Source whose stream is a deterministic function of the
// parent seed and key, statistically independent of the parent stream.
func (s *Source) Derive(key uint64) *Source {
	return New(Mix(s.state ^ Mix(key)))
}

// Seed resets the source to the given seed and discards any cached state.
func (s *Source) Seed(seed uint64) {
	s.state = seed
	s.hasSpare = false
}

// Mix is the SplitMix64 finalizer: a bijective 64-bit mixing function. It is
// exported so callers can build stable hashes of composite keys, e.g.
// Mix(pc)^Mix(stage), without constructing a Source.
func Mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, 64-bit variant.
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the high bits to avoid modulo bias.
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Norm returns a standard normal variate (mean 0, stddev 1) via Box-Muller.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		s.spare = r * math.Sin(theta)
		s.hasSpare = true
		return r * math.Cos(theta)
	}
}

// Gaussian returns a normal variate with the given mean and stddev.
func (s *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// TruncGaussian returns a normal variate truncated to [lo, hi] by rejection;
// after 64 rejected draws it clamps, which keeps pathological parameters from
// hanging the simulator.
func (s *Source) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := s.Gaussian(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Geometric returns a geometric variate with success probability p: the
// number of failures before the first success, in {0, 1, 2, ...}.
func (s *Source) Geometric(p float64) int {
	if p <= 0 {
		return 1 << 20 // effectively infinite but bounded
	}
	if p >= 1 {
		return 0
	}
	u := s.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Log(1-u) / math.Log(1-p))
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Zipf returns a value in [0, n) following an approximate Zipf distribution
// with exponent theta (0 < theta): low indices are much more likely. This is
// the classic inverse-CDF approximation used by YCSB-style generators; it is
// used to model instruction working-set skew (hot loops vs cold code).
func (s *Source) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse transform on the continuous approximation of the Zipf CDF.
	u := s.Float64()
	if theta == 1 {
		theta = 1.0001 // avoid the harmonic singularity
	}
	oneMinus := 1 - theta
	zeta := (math.Pow(float64(n), oneMinus) - 1) / oneMinus
	x := math.Pow(u*zeta*oneMinus+1, 1/oneMinus) - 1
	idx := int(x)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Perm fills out with a random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
