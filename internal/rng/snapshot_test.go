package rng

import (
	"testing"

	"tvsched/internal/snap"
)

// TestSnapshotRoundTrip restores a source mid-stream — including with a
// cached Box-Muller spare pending — and requires the restored stream to be
// identical to the original.
func TestSnapshotRoundTrip(t *testing.T) {
	s := New(42)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	s.Norm() // leaves hasSpare set

	var w snap.Writer
	s.AppendState(&w)

	var s2 Source
	if err := s2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := s.Norm(), s2.Norm(); a != b {
			t.Fatalf("streams diverged at draw %d: %v vs %v", i, a, b)
		}
		if a, b := s.Uint64(), s2.Uint64(); a != b {
			t.Fatalf("streams diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestSnapshotTruncated(t *testing.T) {
	var s Source
	if err := s.ReadState(snap.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
