package rng

import "tvsched/internal/snap"

// AppendState serializes the source's full state — including the cached
// Box-Muller spare, without which a restored stream would diverge from the
// original on the next Norm call.
func (s *Source) AppendState(w *snap.Writer) {
	w.U64(s.state)
	w.F64(s.spare)
	w.Bool(s.hasSpare)
}

// ReadState restores state written by AppendState.
func (s *Source) ReadState(r *snap.Reader) error {
	s.state = r.U64()
	s.spare = r.F64()
	s.hasSpare = r.Bool()
	return r.Err()
}
