// Package sim is the session layer between the public facade / experiment
// harness and the pipeline model: one Session owns one simulated machine
// through its lifecycle — construct, warm up, optionally checkpoint or
// restore warm state, then measure (DESIGN.md §13).
//
// Two warmup modes exist and the distinction carries the checkpoint design:
//
//   - Warmup runs the warmup phase at the session's configured supply. This
//     is the historical behaviour; the deprecated facade entry points wrap it
//     and stay byte-identical to their pre-Session output.
//   - WarmupNeutral runs the warmup phase at the nominal supply (VNominal)
//     and defers the retarget to the configured (scheme already fixed at
//     construction) supply until Run begins. At VNominal no instruction
//     violates timing, so the warm state is provably independent of both the
//     handling scheme and the eventual measurement supply — the TEP table
//     stays empty, criticality marks are no-ops, and every issue-selection
//     policy orders identical candidate sets identically. One neutral warm
//     checkpoint therefore serves every (scheme, VDD) cell of a sweep, which
//     is what Snapshot/Restore and the serving layer's snapshot cache build
//     on.
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"tvsched/internal/asm"
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/tep"
	"tvsched/internal/workload"
)

// Config describes one simulation session.
type Config struct {
	// Benchmark names a bundled workload profile; ignored when Profile is
	// non-nil or the session is built with NewAsm.
	Benchmark string
	// Profile, when non-nil, is a custom workload profile used instead of
	// the named benchmark.
	Profile *workload.Profile
	// Scheme is the handling scheme under test.
	Scheme core.Scheme
	// VDD is the measurement supply voltage.
	VDD float64
	// Warmup is the warmup phase length in committed instructions.
	Warmup uint64
	// Seed drives all deterministic randomness.
	Seed uint64
	// FaultBias is the fault-model susceptibility multiplier used by asm
	// sessions. Benchmark/profile sessions always use the profile's
	// calibrated bias (matching the historical facade behaviour).
	FaultBias float64
	// Observer, when non-nil, receives the event stream (warmup included).
	Observer obs.Observer
	// PhaseHook, when non-nil, is called after each lifecycle phase
	// completes with the phase name ("warmup", "warmup_neutral", "restore",
	// "run") and its wall-clock duration. Pure observability: the hook sees
	// host time, never simulated time, and cannot perturb the simulation —
	// the serving layer uses it to attribute request latency to pipeline
	// phases (DESIGN.md §14).
	PhaseHook func(phase string, d time.Duration)
	// Debug enables per-cycle invariant checking.
	Debug bool
	// Machine, when non-nil, overrides the simulated machine configuration
	// (its Scheme, MispredictRate, Seed, Observer, Debug and Supervisor
	// fields are overwritten from this Config).
	Machine *pipeline.Config
	// Supervisor, when non-nil, attaches the graceful-degradation
	// supervisor. Supervised sessions cannot be checkpointed.
	Supervisor *core.SupervisorPolicy
}

// machineConfig assembles the pipeline configuration for this session.
func (c *Config) machineConfig(mispredict float64) pipeline.Config {
	pcfg := pipeline.DefaultConfig()
	if c.Machine != nil {
		pcfg = *c.Machine
	}
	pcfg.Scheme = c.Scheme
	pcfg.MispredictRate = mispredict
	pcfg.Seed = c.Seed
	pcfg.Observer = c.Observer
	pcfg.Debug = c.Debug
	pcfg.Supervisor = c.Supervisor
	return pcfg
}

// Session is one simulated machine through its lifecycle. Not safe for
// concurrent use.
type Session struct {
	cfg  Config
	prof workload.Profile // zero for asm sessions
	p    *pipeline.Pipeline

	warmed     bool // a warmup phase has completed
	neutral    bool // the warm state was produced at the nominal supply
	retargeted bool // the measurement supply is in force
	measured   bool // Run has been called; checkpointing is over
}

// New builds a session over a bundled benchmark (cfg.Benchmark) or custom
// profile (cfg.Profile).
func New(cfg Config) (*Session, error) {
	var prof workload.Profile
	if cfg.Profile != nil {
		prof = *cfg.Profile
	} else {
		p, err := workload.Lookup(cfg.Benchmark)
		if err != nil {
			return nil, err
		}
		prof = p
	}
	gen, err := workload.NewGenerator(prof, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fc := fault.DefaultConfig(cfg.Seed)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg.machineConfig(prof.MispredictRate), gen, fault.New(fc), cfg.VDD)
	if err != nil {
		return nil, err
	}
	p.PrefillData(gen.WarmRegion())
	return &Session{cfg: cfg, prof: prof, p: p, retargeted: true}, nil
}

// NewAsm builds a session whose instruction stream comes from a kernel in
// the repository's mini assembly: the program is assembled, executed
// architecturally, and the committed stream drives the pipeline. init, when
// non-nil, seeds registers and memory first. Asm sessions cannot be
// checkpointed (the interpreter's architectural state is not serialized).
func NewAsm(cfg Config, source string, init func(m *asm.Machine)) (*Session, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	m := asm.NewMachine(prog)
	if init != nil {
		init(m)
	}
	fc := fault.DefaultConfig(cfg.Seed)
	fc.Bias = cfg.FaultBias
	p, err := pipeline.New(cfg.machineConfig(0), m, fault.New(fc), cfg.VDD)
	if err != nil {
		return nil, err
	}
	return &Session{cfg: cfg, p: p, retargeted: true}, nil
}

// Warmup simulates cfg.Warmup committed instructions at the configured
// supply and discards statistics, keeping micro-architectural state. This is
// the historical warmup; its machine state depends on (scheme, VDD), so it
// cannot feed the shared snapshot cache — use WarmupNeutral for that.
func (s *Session) Warmup(ctx context.Context) error {
	defer s.phase("warmup")()
	if err := s.p.WarmupContext(ctx, s.cfg.Warmup); err != nil {
		return err
	}
	s.warmed = true
	s.neutral = s.cfg.VDD == fault.VNominal
	return nil
}

// phase times one lifecycle phase for the PhaseHook; use as
// `defer s.phase("name")()`. With no hook attached it costs two calls and
// no clock reads.
func (s *Session) phase(name string) func() {
	if s.cfg.PhaseHook == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.cfg.PhaseHook(name, time.Since(start)) }
}

// WarmupNeutral simulates the warmup phase at the nominal supply regardless
// of cfg.VDD, deferring the retarget to Run. The resulting warm state is
// scheme- and VDD-independent (see the package comment), so Snapshot may
// share it across sweep cells.
func (s *Session) WarmupNeutral(ctx context.Context) error {
	defer s.phase("warmup_neutral")()
	s.p.SetVDD(fault.VNominal)
	if err := s.p.WarmupContext(ctx, s.cfg.Warmup); err != nil {
		return err
	}
	s.warmed = true
	s.neutral = true
	s.retargeted = s.cfg.VDD == fault.VNominal
	return nil
}

// Snapshot serializes the session's warm state. Only a neutral warm state
// may be snapshotted — it is the only state whose bytes are valid for every
// (scheme, VDD) cell under the same WarmKey — and only before measurement
// begins.
func (s *Session) Snapshot() ([]byte, error) {
	if !s.warmed || s.measured {
		return nil, fmt.Errorf("sim: snapshot is only valid between warmup and the first Run")
	}
	if !s.neutral {
		return nil, fmt.Errorf("sim: snapshot requires a neutral warm state (WarmupNeutral, or warmup at the nominal supply)")
	}
	return s.p.SnapshotState()
}

// Restore loads a warm state produced by Snapshot into this freshly built
// session, replacing its (not yet run) cold state. The snapshot must come
// from a session with the same benchmark, seed, warmup and machine geometry
// — WarmKey captures exactly this compatibility class; the pipeline
// additionally verifies geometry field by field. After Restore the session
// behaves as if WarmupNeutral had just completed.
func (s *Session) Restore(snapshot []byte) error {
	defer s.phase("restore")()
	if s.warmed || s.measured {
		return fmt.Errorf("sim: restore is only valid on a fresh session")
	}
	if err := s.p.RestoreState(snapshot); err != nil {
		return err
	}
	s.warmed = true
	s.neutral = true
	s.retargeted = s.cfg.VDD == fault.VNominal
	return nil
}

// Run simulates n committed instructions at the configured (scheme, VDD)
// operating point — applying the deferred retarget if the warm state is
// neutral — and returns the statistics accumulated since the warm boundary.
func (s *Session) Run(ctx context.Context, n uint64) (pipeline.Stats, error) {
	defer s.phase("run")()
	if !s.retargeted {
		s.p.SetVDD(s.cfg.VDD)
		s.retargeted = true
	}
	s.measured = true
	return s.p.RunContext(ctx, n)
}

// SetObserver attaches (or detaches) the event observer mid-lifecycle, e.g.
// to start tracing only after warmup.
func (s *Session) SetObserver(o obs.Observer) { s.p.SetObserver(o) }

// SetHazard attaches (or detaches) a transient-hazard timeline.
func (s *Session) SetHazard(h fault.Hazard) { s.p.SetHazard(h) }

// SetVDD retargets the supply mid-run (closed-loop DVFS experiments).
func (s *Session) SetVDD(v float64) {
	s.p.SetVDD(v)
	s.retargeted = true
}

// Scheme returns the handling scheme currently in force (cfg.Scheme unless
// the supervisor escalated).
func (s *Session) Scheme() core.Scheme { return s.p.Scheme() }

// Supervisor exposes the graceful-degradation supervisor (nil when
// unsupervised).
func (s *Session) Supervisor() *core.Supervisor { return s.p.Supervisor() }

// TEPStats exposes predictor activity counters.
func (s *Session) TEPStats() tep.Stats { return s.p.TEPStats() }

// Env exposes the operating environment (diagnostics).
func (s *Session) Env() *fault.Env { return s.p.Env() }

// WarmKey is the content address of the neutral warm state a session with
// these parameters would produce: sessions with equal WarmKeys produce
// byte-identical Snapshots, and a Snapshot may be restored into any session
// with the same WarmKey regardless of its (scheme, VDD). The key covers the
// snapshot wire version, the full profile identity, the seed, the warmup
// length, and every machine-configuration field except the scheme; it
// excludes VDD and the measurement length.
func WarmKey(cfg Config) string {
	var prof workload.Profile
	if cfg.Profile != nil {
		prof = *cfg.Profile
	} else if p, err := workload.Lookup(cfg.Benchmark); err == nil {
		prof = p
	}
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "tvsched/warm-state/v%d\n", pipeline.SnapshotVersion)
	fmt.Fprintf(&b, "profile=%+v\n", prof)
	fmt.Fprintf(&b, "seed=%d warmup=%d\n", cfg.Seed, cfg.Warmup)
	mc := cfg.machineConfig(prof.MispredictRate)
	fmt.Fprintf(&b, "machine={w=%d fd=%d fq=%d rob=%d iq=%d lq=%d sq=%d phys=%d alus=%d/%d/%d replay=%d/%d full=%t mp=%s ct=%d tep=%d/%d l1i=%d/%d/%d/%d l1d=%d/%d/%d/%d l2=%d/%d/%d/%d mem=%d sample=%d}\n",
		mc.Width, mc.FrontDepth, mc.FrontQ, mc.ROBSize, mc.IQSize, mc.LQSize, mc.SQSize,
		mc.NumPhys, mc.SimpleALUs, mc.ComplexALUs, mc.MemPorts,
		mc.ReplayBubble, mc.ReplayLatency, mc.FullFlushReplay, num(mc.MispredictRate), mc.CT,
		mc.TEP.Entries, mc.TEP.HistoryBits,
		mc.Hierarchy.L1I.SizeBytes, mc.Hierarchy.L1I.Ways, mc.Hierarchy.L1I.LineBytes, mc.Hierarchy.L1I.Latency,
		mc.Hierarchy.L1D.SizeBytes, mc.Hierarchy.L1D.Ways, mc.Hierarchy.L1D.LineBytes, mc.Hierarchy.L1D.Latency,
		mc.Hierarchy.L2.SizeBytes, mc.Hierarchy.L2.Ways, mc.Hierarchy.L2.LineBytes, mc.Hierarchy.L2.Latency,
		mc.Hierarchy.MemLatency, mc.SamplePeriod)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
