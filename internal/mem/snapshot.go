package mem

import (
	"fmt"

	"tvsched/internal/snap"
)

// AppendState serializes the cache's tag/LRU state sparsely: per set, only
// the valid lines (way index, tag, LRU stamp). Lines are never invalidated
// outside Reset, so invalid ways are always the zero value and need no
// bytes. Statistics are not serialized — snapshots are taken at the warmup
// boundary, where the pipeline zeroes them anyway.
func (c *Cache) AppendState(w *snap.Writer) {
	w.U64(c.stamp)
	for si := range c.sets {
		set := c.sets[si]
		n := 0
		for wi := range set {
			if set[wi].valid {
				n++
			}
		}
		w.U8(uint8(n))
		for wi := range set {
			if set[wi].valid {
				w.U8(uint8(wi))
				w.U64(set[wi].tag)
				w.U64(set[wi].lru)
			}
		}
	}
}

// ReadState restores state written by AppendState into a cache of identical
// geometry (the caller validates geometry via the config digest before
// getting here; this method still bounds-checks the encoded way indices).
// Statistics are zeroed.
func (c *Cache) ReadState(r *snap.Reader) error {
	c.stamp = r.U64()
	for si := range c.sets {
		set := c.sets[si]
		for wi := range set {
			set[wi] = line{}
		}
		n := int(r.U8())
		if n > len(set) {
			return fmt.Errorf("%w: %s set %d has %d valid ways of %d",
				snap.ErrCorrupt, c.cfg.Name, si, n, len(set))
		}
		for k := 0; k < n; k++ {
			wi := int(r.U8())
			if wi >= len(set) {
				return fmt.Errorf("%w: %s way index %d out of range", snap.ErrCorrupt, c.cfg.Name, wi)
			}
			set[wi] = line{tag: r.U64(), lru: r.U64(), valid: true}
		}
	}
	c.Stats = CacheStats{}
	return r.Err()
}

// AppendState serializes all three cache levels.
func (h *Hierarchy) AppendState(w *snap.Writer) {
	h.L1I.AppendState(w)
	h.L1D.AppendState(w)
	h.L2.AppendState(w)
}

// ReadState restores all three cache levels.
func (h *Hierarchy) ReadState(r *snap.Reader) error {
	if err := h.L1I.ReadState(r); err != nil {
		return err
	}
	if err := h.L1D.ReadState(r); err != nil {
		return err
	}
	return h.L2.ReadState(r)
}
