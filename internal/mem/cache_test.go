package mem

import (
	"testing"
	"testing/quick"
)

func smallCfg() CacheConfig {
	return CacheConfig{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "a", SizeBytes: 0, Ways: 1, LineBytes: 64, Latency: 1},
		{Name: "b", SizeBytes: 1000, Ways: 2, LineBytes: 64, Latency: 1}, // not divisible
		{Name: "c", SizeBytes: 1024, Ways: 2, LineBytes: 48, Latency: 1}, // line not pow2
		{Name: "d", SizeBytes: 3072, Ways: 2, LineBytes: 64, Latency: 1}, // sets not pow2
		{Name: "e", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 0}, // latency
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s accepted", c.Name)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := NewCache(smallCfg())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1030) { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Fatal("next-line cold access hit")
	}
	if c.Stats.Accesses != 4 || c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets of 64B lines: addresses that map to set 0 are
	// multiples of 8*64 = 512.
	c := NewCache(smallCfg())
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, evicts b (LRU)
	if !c.Probe(a) {
		t.Fatal("a evicted, should have been retained")
	}
	if c.Probe(b) {
		t.Fatal("b retained, should have been evicted")
	}
	if !c.Probe(d) {
		t.Fatal("d not present after fill")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := NewCache(smallCfg())
	c.Access(0x40)
	st := c.Stats
	c.Probe(0x40)
	c.Probe(0xdeadbeef)
	if c.Stats != st {
		t.Fatal("Probe changed stats")
	}
}

func TestReset(t *testing.T) {
	c := NewCache(smallCfg())
	c.Access(0x40)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats not cleared")
	}
	if c.Probe(0x40) {
		t.Fatal("lines not invalidated")
	}
}

func TestMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Fatal("empty stats must have 0 miss rate")
	}
	s = CacheStats{Accesses: 10, Hits: 7, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Fatalf("MissRate = %v", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	// Cold: L1 miss + L2 miss => 1 + 25 + 240.
	if lat := h.DataAccess(0x10000); lat != 1+25+240 {
		t.Fatalf("cold data latency %d", lat)
	}
	// Now resident in both levels: 1 cycle.
	if lat := h.DataAccess(0x10000); lat != 1 {
		t.Fatalf("hot data latency %d", lat)
	}
	// Instruction side independent of data side.
	if lat := h.InstAccess(0x10000); lat != 1+25 {
		t.Fatalf("inst access should hit L2 after data fill: %d", lat)
	}
	if lat := h.InstAccess(0x10000); lat != 1 {
		t.Fatalf("hot inst latency %d", lat)
	}
}

func TestHierarchyL2Shared(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.DataAccess(0x40000) // fills L1D and L2
	// Evict from tiny... L1 is 32KB 4-way: fill one set beyond capacity.
	// Set index bits: 32KB/(4*64) = 128 sets; stride 128*64 = 8192 maps to
	// the same L1D set.
	base := uint64(0x40000)
	for i := 1; i <= 4; i++ {
		h.DataAccess(base + uint64(i)*8192)
	}
	// base should now miss in L1D but hit in the much larger L2.
	if lat := h.DataAccess(base); lat != 1+25 {
		t.Fatalf("expected L2 hit latency 26, got %d", lat)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	h.DataAccess(0x123456)
	h.Reset()
	if lat := h.DataAccess(0x123456); lat != 1+25+240 {
		t.Fatalf("after reset expected cold latency, got %d", lat)
	}
}

// Property: Access is idempotent on the hit path — two back-to-back accesses
// to the same address, the second always hits.
func TestAccessTwiceHitsProperty(t *testing.T) {
	c := NewCache(smallCfg())
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses == accesses at all times.
func TestStatsBalanceProperty(t *testing.T) {
	c := NewCache(smallCfg())
	f := func(addrs []uint64) bool {
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Stats.Hits+c.Stats.Misses == c.Stats.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: an N-way set never holds more than N distinct lines mapping to it
// — equivalently, accessing the same W lines of one set repeatedly always
// hits after the first round (no thrashing below capacity).
func TestWithinWaysNoThrash(t *testing.T) {
	c := NewCache(smallCfg()) // 2-way
	a, b := uint64(0), uint64(512)
	c.Access(a)
	c.Access(b)
	for i := 0; i < 100; i++ {
		if !c.Access(a) || !c.Access(b) {
			t.Fatal("working set within associativity thrashed")
		}
	}
}

func BenchmarkDataAccess(b *testing.B) {
	h := NewHierarchy(DefaultHierarchy())
	for i := 0; i < b.N; i++ {
		h.DataAccess(uint64(i) * 64)
	}
}
