// Package mem implements the two-level cache hierarchy used by the
// architectural simulation (§4.2 of the paper): split 32 KB 4-way L1
// instruction and data caches with single-cycle latency, a unified 8 MB
// 16-way L2 reached in 25 cycles, and main memory at 240 cycles. The model is
// a timing model: it tracks tags and replacement, and returns access
// latencies; it does not store data (the simulator is trace-driven).
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// Latency is the hit latency in cycles, charged on every access that
	// reaches this level.
	Latency int
}

// Validate reports configuration errors (non-power-of-two geometry, etc.).
func (c *CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: %s: non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Latency < 1 {
		return fmt.Errorf("mem: %s: latency must be >= 1", c.Name)
	}
	return nil
}

// CacheStats accumulates per-level access counts.
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s *CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp; larger is more recent
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      [][]line
	setMask   uint64
	lineShift uint
	stamp     uint64
	Stats     CacheStats
}

// NewCache builds a cache from cfg. It panics on invalid configuration —
// configurations are program constants, not runtime input.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		setMask: uint64(numSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Access looks up addr, updating LRU state, and fills the line on a miss
// (allocate-on-miss for both reads and writes, write-back semantics are
// immaterial to a timing-only model). It returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.stamp++
	c.Stats.Accesses++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(popcount(c.setMask))
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			c.Stats.Hits++
			return true
		}
		if set[i].lru < set[victim].lru || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	// Prefer an invalid way outright.
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
	c.Stats.Misses++
	return false
}

// Probe reports whether addr currently hits without disturbing LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(popcount(c.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stamp = 0
	c.Stats = CacheStats{}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// HierarchyConfig describes the full memory system of §4.2.
type HierarchyConfig struct {
	L1I, L1D, L2 CacheConfig
	// MemLatency is the main-memory access time in cycles.
	MemLatency int
}

// DefaultHierarchy returns the paper's memory system: 32KB 4-way split L1 at
// 1 cycle, 8MB 16-way L2 at 25 cycles, 240-cycle main memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:        CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 1},
		L1D:        CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 1},
		L2:         CacheConfig{Name: "L2", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, Latency: 25},
		MemLatency: 240,
	}
}

// Hierarchy is the assembled two-level memory system.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	cfg HierarchyConfig
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I: NewCache(cfg.L1I),
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		cfg: cfg,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// DataAccess performs a data-side access (load or store address) and returns
// the total latency in cycles: L1D hit time, plus L2 on an L1 miss, plus main
// memory on an L2 miss.
func (h *Hierarchy) DataAccess(addr uint64) int {
	lat := h.L1D.Config().Latency
	if h.L1D.Access(addr) {
		return lat
	}
	lat += h.L2.Config().Latency
	if h.L2.Access(addr) {
		return lat
	}
	return lat + h.cfg.MemLatency
}

// InstAccess performs an instruction-fetch access and returns total latency.
func (h *Hierarchy) InstAccess(addr uint64) int {
	lat := h.L1I.Config().Latency
	if h.L1I.Access(addr) {
		return lat
	}
	lat += h.L2.Config().Latency
	if h.L2.Access(addr) {
		return lat
	}
	return lat + h.cfg.MemLatency
}

// Prefill installs the address range [base, base+size) into the L2 cache,
// line by line, without touching the L1s or statistics beyond the L2's own
// counters. It models a measured phase whose working set was touched earlier
// in the program's execution (SimPoint phases never start from a cold
// machine).
func (h *Hierarchy) Prefill(base, size uint64) {
	line := uint64(h.L2.Config().LineBytes)
	for a := base &^ (line - 1); a < base+size; a += line {
		h.L2.Access(a)
	}
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}
