package mem

import (
	"testing"

	"tvsched/internal/rng"
	"tvsched/internal/snap"
)

// TestHierarchySnapshotRoundTrip exercises a hierarchy with a mixed access
// pattern, snapshots it, restores into a fresh hierarchy of the same
// geometry, and requires identical hit/miss behaviour afterwards.
func TestHierarchySnapshotRoundTrip(t *testing.T) {
	cfg := DefaultHierarchy()
	h := NewHierarchy(cfg)
	src := rng.New(3)
	addr := func() uint64 { return uint64(src.Intn(1<<22)) &^ 7 }
	for i := 0; i < 20000; i++ {
		if src.Bool(0.2) {
			h.InstAccess(addr())
		} else {
			h.DataAccess(addr())
		}
	}

	var w snap.Writer
	h.AppendState(&w)
	h2 := NewHierarchy(cfg)
	if err := h2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	// Restore zeroes statistics (the warmup-boundary contract); zero the
	// original's too so both accumulate from the same point below.
	h.L1I.Stats, h.L1D.Stats, h.L2.Stats = CacheStats{}, CacheStats{}, CacheStats{}

	for i := 0; i < 20000; i++ {
		a := addr()
		if src.Bool(0.2) {
			if l1, l2 := h.InstAccess(a), h2.InstAccess(a); l1 != l2 {
				t.Fatalf("InstAccess(%#x) diverged at %d: %d vs %d", a, i, l1, l2)
			}
		} else {
			if l1, l2 := h.DataAccess(a), h2.DataAccess(a); l1 != l2 {
				t.Fatalf("DataAccess(%#x) diverged at %d: %d vs %d", a, i, l1, l2)
			}
		}
	}
	// Post-restore stats must agree too (both started from zero).
	if h.L1D.Stats != h2.L1D.Stats || h.L2.Stats != h2.L2.Stats || h.L1I.Stats != h2.L1I.Stats {
		t.Fatal("post-restore statistics diverged")
	}
}

func TestCacheSnapshotCorrupt(t *testing.T) {
	c := NewCache(DefaultHierarchy().L1D)
	if err := c.ReadState(snap.NewReader([]byte{0, 1, 2})); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// An out-of-range way count must be rejected.
	var w snap.Writer
	w.U64(1)  // stamp
	w.U8(200) // way count far above associativity
	c2 := NewCache(DefaultHierarchy().L1D)
	if err := c2.ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("bogus way count accepted")
	}
}
