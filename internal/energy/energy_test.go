package energy

import (
	"testing"

	"tvsched/internal/isa"
	"tvsched/internal/pipeline"
)

func sampleStats() *pipeline.Stats {
	st := &pipeline.Stats{
		Cycles:     100000,
		Committed:  150000,
		Fetched:    151000,
		Dispatched: 151000,
		Selected:   151000,
		Broadcasts: 120000,
	}
	st.ExecByClass[isa.IntALU] = 75000
	st.ExecByClass[isa.Branch] = 18000
	st.ExecByClass[isa.IntMul] = 3000
	st.ExecByClass[isa.IntDiv] = 300
	st.ExecByClass[isa.Load] = 38000
	st.ExecByClass[isa.Store] = 16700
	st.L1D.Accesses = 40000
	st.L1D.Misses = 1500
	st.L1I.Accesses = 10000
	st.L2.Accesses = 1600
	st.L2.Misses = 100
	return st
}

func TestComputePositive(t *testing.T) {
	r := Compute(Default45nm(), sampleStats())
	if r.DynamicPJ <= 0 || r.StaticPJ <= 0 {
		t.Fatalf("non-positive energy: %+v", r)
	}
	if r.TotalPJ() != r.DynamicPJ+r.StaticPJ {
		t.Fatal("total mismatch")
	}
}

func TestStaticFractionReasonable(t *testing.T) {
	// Leakage+clock should be roughly a third of total energy — this is the
	// property that makes ED overheads ~1.3x performance overheads, as in
	// Table 1's Razor and EP tuples.
	r := Compute(Default45nm(), sampleStats())
	frac := r.StaticPJ / r.TotalPJ()
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("static fraction %v outside [0.2, 0.5]", frac)
	}
}

func TestEPI(t *testing.T) {
	r := Compute(Default45nm(), sampleStats())
	epi := r.EPI()
	if epi < 20 || epi > 200 {
		t.Fatalf("energy per instruction %v pJ implausible for 45nm-class core", epi)
	}
	empty := Result{}
	if empty.EPI() != 0 {
		t.Fatal("EPI of empty result")
	}
}

func TestEDPScalesQuadraticallyWithDelayAtFixedPower(t *testing.T) {
	st := sampleStats()
	base := Compute(Default45nm(), st)
	slow := *st
	slow.Cycles *= 2
	r2 := Compute(Default45nm(), &slow)
	// Doubling cycles doubles static energy and doubles delay: EDP grows by
	// more than 2x but less than 4x (dynamic part unchanged).
	ratio := r2.EDP() / base.EDP()
	if ratio <= 2 || ratio >= 4 {
		t.Fatalf("EDP ratio %v outside (2, 4)", ratio)
	}
}

func TestStallCyclesRaiseEDMoreThanPerf(t *testing.T) {
	// A scheme that adds 10% cycles with no extra dynamic work (EP-like)
	// must show ED overhead strictly greater than its performance overhead.
	st := sampleStats()
	base := Compute(Default45nm(), st)
	stalled := *st
	stalled.Cycles = st.Cycles * 110 / 100
	r := Compute(Default45nm(), &stalled)
	edOv := Overhead(r, base)
	perfOv := 0.10
	if edOv <= perfOv {
		t.Fatalf("ED overhead %v not above perf overhead %v", edOv, perfOv)
	}
	if edOv > perfOv*1.8 {
		t.Fatalf("ED overhead %v implausibly high for 10%% stall", edOv)
	}
}

func TestConfinedEventsCostEnergy(t *testing.T) {
	st := sampleStats()
	base := Compute(Default45nm(), st)
	vte := *st
	vte.ConfinedEvents = 10000
	r := Compute(Default45nm(), &vte)
	if r.DynamicPJ <= base.DynamicPJ {
		t.Fatal("confined events must add dynamic energy")
	}
}

func TestReplaysCostEnergy(t *testing.T) {
	st := sampleStats()
	base := Compute(Default45nm(), st)
	rz := *st
	rz.Replays = 5000
	r := Compute(Default45nm(), &rz)
	if r.DynamicPJ <= base.DynamicPJ {
		t.Fatal("replays must add dynamic energy")
	}
}

func TestOverheadZeroBaseline(t *testing.T) {
	if Overhead(Result{DynamicPJ: 1}, Result{}) != 0 {
		t.Fatal("zero baseline should give zero overhead")
	}
}

func TestOverheadIdentity(t *testing.T) {
	r := Compute(Default45nm(), sampleStats())
	if ov := Overhead(r, r); ov != 0 {
		t.Fatalf("self overhead %v", ov)
	}
}

func TestScaleToVoltage(t *testing.T) {
	r := Compute(Default45nm(), sampleStats())
	low := ScaleToVoltage(r, 0.97, 1.10)
	if low.DynamicPJ >= r.DynamicPJ || low.StaticPJ >= r.StaticPJ {
		t.Fatal("lower voltage must reduce both energy components")
	}
	ratio := low.DynamicPJ / r.DynamicPJ
	want := (0.97 / 1.10) * (0.97 / 1.10)
	if ratio < want*0.999 || ratio > want*1.001 {
		t.Fatalf("dynamic scaling %v, want %v", ratio, want)
	}
	// Leakage scales faster than dynamic.
	if low.StaticPJ/r.StaticPJ >= ratio {
		t.Fatal("leakage must scale super-quadratically")
	}
	same := ScaleToVoltage(r, 1.10, 1.10)
	if same != r {
		t.Fatal("identity scaling changed the result")
	}
}
