// Package energy implements the energy accounting behind the paper's
// energy-efficiency results (§4.1, §5): per-event dynamic energies are
// combined with architectural usage counts from the pipeline simulation, plus
// cycle-proportional leakage and clock-tree energy, in the same way the paper
// combines architectural usage information with power characteristics from
// synthesized hardware. Energy efficiency is reported as energy-delay
// product (ED), matching §5.1.
//
// The per-event constants are 45nm-class estimates. Their absolute values
// matter less than two structural properties the paper's numbers exhibit:
// (a) static (leakage+clock) energy is roughly a third of total energy, so
// stall-heavy schemes see ED overheads ~1.3x their performance overheads
// (compare the Razor and EP perf/ED tuples in Table 1); and (b) the VTE
// schemes spend a little extra dynamic energy per confined event (the
// two-cycle CAM windows), so their ED advantage is slightly smaller than
// their performance advantage (Figure 5 vs Figure 4).
package energy

import (
	"tvsched/internal/isa"
	"tvsched/internal/pipeline"
)

// Params gives per-event dynamic energies in picojoules and per-cycle static
// energies.
type Params struct {
	// Front end, per instruction.
	FetchDecode float64
	Rename      float64
	IQWrite     float64

	// OoO engine, per event.
	WakeupBroadcast float64 // CAM tag broadcast + match
	Select          float64 // per grant
	RegRead         float64

	// Execution, per operation.
	ALUOp float64
	MulOp float64
	DivOp float64
	AGen  float64

	// Memory hierarchy, per access reaching the level.
	L1Access   float64
	L2Access   float64
	DRAMAccess float64

	// Completion, per retired instruction.
	WritebackRetire float64

	// Violation handling extras.
	ConfinedExtra float64 // second CAM cycle / recirculation per confined event
	ReplayExtra   float64 // recovery control + re-execution per replay

	// Static, per cycle.
	Leakage float64
	Clock   float64
}

// Default45nm returns the calibration used throughout the reproduction.
func Default45nm() Params {
	return Params{
		FetchDecode:     8,
		Rename:          3,
		IQWrite:         4,
		WakeupBroadcast: 6,
		Select:          2,
		RegRead:         4,
		ALUOp:           10,
		MulOp:           28,
		DivOp:           80,
		AGen:            6,
		L1Access:        18,
		L2Access:        180,
		DRAMAccess:      1800,
		WritebackRetire: 5,
		ConfinedExtra:   8,
		ReplayExtra:     60,
		Leakage:         18,
		Clock:           16,
	}
}

// Result is the energy accounting of one simulation.
type Result struct {
	// DynamicPJ and StaticPJ are the two energy components in picojoules.
	DynamicPJ float64
	StaticPJ  float64
	// Cycles is the run length the static energy was integrated over.
	Cycles uint64
	// Committed is the instruction count.
	Committed uint64
}

// TotalPJ returns total energy.
func (r *Result) TotalPJ() float64 { return r.DynamicPJ + r.StaticPJ }

// EPI returns energy per committed instruction in picojoules.
func (r *Result) EPI() float64 {
	if r.Committed == 0 {
		return 0
	}
	return r.TotalPJ() / float64(r.Committed)
}

// EDP returns the energy-delay product in picojoule-cycles, the paper's
// energy-efficiency metric (§5.1).
func (r *Result) EDP() float64 { return r.TotalPJ() * float64(r.Cycles) }

// Compute derives the energy result from a simulation's statistics.
func Compute(p Params, st *pipeline.Stats) Result {
	var dyn float64

	dyn += float64(st.Fetched) * p.FetchDecode
	dyn += float64(st.Dispatched) * (p.Rename + p.IQWrite)
	dyn += float64(st.Selected) * (p.Select + p.RegRead)
	dyn += float64(st.Broadcasts) * p.WakeupBroadcast

	dyn += float64(st.ExecByClass[isa.IntALU]) * p.ALUOp
	dyn += float64(st.ExecByClass[isa.Branch]) * p.ALUOp
	dyn += float64(st.ExecByClass[isa.IntMul]) * p.MulOp
	dyn += float64(st.ExecByClass[isa.IntDiv]) * p.DivOp
	dyn += float64(st.ExecByClass[isa.Load]+st.ExecByClass[isa.Store]) * p.AGen

	dyn += float64(st.L1I.Accesses+st.L1D.Accesses) * p.L1Access
	dyn += float64(st.L2.Accesses) * p.L2Access
	dyn += float64(st.L2.Misses) * p.DRAMAccess

	dyn += float64(st.Committed) * p.WritebackRetire
	dyn += float64(st.ConfinedEvents) * p.ConfinedExtra
	dyn += float64(st.Replays) * p.ReplayExtra

	static := float64(st.Cycles) * (p.Leakage + p.Clock)

	return Result{
		DynamicPJ: dyn,
		StaticPJ:  static,
		Cycles:    st.Cycles,
		Committed: st.Committed,
	}
}

// Overhead returns the relative ED overhead of r versus a fault-free
// baseline: EDP(r)/EDP(base) − 1.
func Overhead(r, base Result) float64 {
	if base.EDP() == 0 {
		return 0
	}
	return r.EDP()/base.EDP() - 1
}

// ScaleToVoltage rescales an energy result computed with the nominal-voltage
// constants to a different supply: dynamic energy scales as (V/Vnom)²
// (CV²f switching) and leakage roughly as (V/Vnom)³ (DIBL-dominated
// subthreshold leakage at 45nm). This is what makes aggressive supply
// scaling attractive despite rising fault rates — the trade the paper's
// introduction motivates and internal/adapt quantifies.
func ScaleToVoltage(r Result, vdd, vnom float64) Result {
	ratio := vdd / vnom
	r.DynamicPJ *= ratio * ratio
	r.StaticPJ *= ratio * ratio * ratio
	return r
}
