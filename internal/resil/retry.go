package resil

import (
	"context"
	"time"

	"tvsched/internal/rng"
)

// RetryPolicy bounds a retried operation: at most Attempts tries, separated
// by decorrelated-jitter backoff, never outliving the caller's context
// deadline — the deadline is the budget the retries must fit inside, so a
// caller that promised its own client an answer by T never blows that
// promise waiting out a backoff.
type RetryPolicy struct {
	// Attempts is the total number of tries, first call included
	// (default 3).
	Attempts int
	// Base is the first backoff (default 50ms).
	Base time.Duration
	// Max caps each backoff draw (default 2s).
	Max time.Duration
	// Seed drives the jitter stream; the backoff sequence is a pure
	// function of it.
	Seed uint64
}

func (p *RetryPolicy) fill() {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
}

// Backoff is one seeded decorrelated-jitter sequence: each delay is drawn
// as base + U[0,1)·3·prev, clamped to [base, max] ("decorrelated jitter",
// Brooker's formulation), so consecutive delays grow unevenly instead of
// marching in lockstep with every other retrying caller.
type Backoff struct {
	base, max, prev time.Duration
	src             *rng.Source
}

// NewBackoff builds the sequence for one logical operation.
func (p RetryPolicy) NewBackoff() *Backoff {
	p.fill()
	return &Backoff{base: p.Base, max: p.Max, src: rng.New(p.Seed)}
}

// Next draws the next delay.
func (b *Backoff) Next() time.Duration {
	d := b.base
	if b.prev > 0 {
		d += time.Duration(b.src.Float64() * 3 * float64(b.prev))
	} else {
		d += time.Duration(b.src.Float64() * float64(b.base))
	}
	if d > b.max {
		d = b.max
	}
	b.prev = d
	return d
}

// Do runs attempt up to p.Attempts times, sleeping a jittered backoff
// between tries. It retries only errors retryable reports true for (a nil
// retryable retries everything), and stops early — returning the last
// error — when the context is done or its deadline cannot fit the next
// backoff plus one more try. A nil error returns immediately.
func Do(ctx context.Context, p RetryPolicy, retryable func(error) bool, attempt func(ctx context.Context) error) error {
	p.fill()
	bo := p.NewBackoff()
	var err error
	for i := 0; i < p.Attempts; i++ {
		if ctx.Err() != nil {
			if err == nil {
				err = ctx.Err()
			}
			return err
		}
		if err = attempt(ctx); err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if i == p.Attempts-1 {
			break
		}
		d := bo.Next()
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return err // the budget cannot fit the sleep, let alone the retry
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}
