package resil

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a settable clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func breakerAt(c *fakeClock, seed uint64) *Breaker {
	return NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second, CooldownMax: 10 * time.Second, Seed: seed, Now: c.now})
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	c := newFakeClock()
	b := breakerAt(c, 1)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state %v after 2 failures (threshold 3), want closed", b.State())
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %v after 3rd failure, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before its probe time")
	}
	// A success interleaved with failures resets the consecutive count.
	c2 := newFakeClock()
	b2 := breakerAt(c2, 1)
	b2.Record(false)
	b2.Record(false)
	b2.Record(true)
	b2.Record(false)
	b2.Record(false)
	if b2.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	c := newFakeClock()
	b := breakerAt(c, 1)
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	// Jittered cooldown is in [1s, 2s): past 2s the probe must be due.
	c.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after the cooldown elapsed")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v after the probe left, want half_open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller got through while the probe was out")
	}
	// Probe fails: re-open with a fresh (longer) schedule.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state %v after a failed probe, want open", b.State())
	}
	// Probe succeeds next time: closed.
	c.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after the grown cooldown elapsed")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state %v after a successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied a call")
	}
}

// TestBreakerScheduleDeterministic pins the probe schedule to the seed: two
// breakers walked through the same outcome sequence schedule identical probe
// times, and a different seed schedules different ones.
func TestBreakerScheduleDeterministic(t *testing.T) {
	walk := func(seed uint64) []time.Duration {
		c := newFakeClock()
		b := breakerAt(c, seed)
		var cooldowns []time.Duration
		for round := 0; round < 5; round++ {
			for i := 0; i < 3; i++ {
				b.Record(false)
			}
			b.mu.Lock()
			cooldowns = append(cooldowns, b.probeAt.Sub(c.t))
			b.mu.Unlock()
			c.advance(b.cfg.CooldownMax)
			if !b.Allow() {
				t.Fatal("probe denied after max cooldown")
			}
			b.Record(true) // close again for the next round
		}
		return cooldowns
	}
	a1, a2, other := walk(7), walk(7), walk(8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at round %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical probe schedule")
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	c := newFakeClock()
	var seen []string
	b := NewBreaker(BreakerConfig{
		Failures: 1, Cooldown: time.Second, Seed: 1, Now: c.now,
		OnTransition: func(from, to State) { seen = append(seen, from.String()+">"+to.String()) },
	})
	b.Record(false)
	c.advance(3 * time.Second)
	b.Allow()
	b.Record(true)
	want := []string{"closed>open", "open>half_open", "half_open>closed"}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions %v, want %v", seen, want)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 3}
	b1, b2 := p.NewBackoff(), p.NewBackoff()
	prevGrewOnce := false
	var prev time.Duration
	for i := 0; i < 20; i++ {
		d1, d2 := b1.Next(), b2.Next()
		if d1 != d2 {
			t.Fatalf("draw %d: same seed gave %v vs %v", i, d1, d2)
		}
		if d1 < p.Base || d1 > p.Max {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d1, p.Base, p.Max)
		}
		if d1 > prev {
			prevGrewOnce = true
		}
		prev = d1
	}
	if !prevGrewOnce {
		t.Fatal("backoff never grew")
	}
}

func TestDoRetriesAndStops(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1}
	transient := errors.New("transient")
	fatal := errors.New("fatal")
	retryable := func(err error) bool { return errors.Is(err, transient) }

	// Succeeds on the last allowed attempt.
	calls := 0
	err := Do(context.Background(), p, retryable, func(context.Context) error {
		calls++
		if calls < 3 {
			return transient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}

	// Exhausts the budget and reports the last error.
	calls = 0
	err = Do(context.Background(), p, retryable, func(context.Context) error { calls++; return transient })
	if !errors.Is(err, transient) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want transient after exactly 3 attempts", err, calls)
	}

	// A non-retryable error stops immediately.
	calls = 0
	err = Do(context.Background(), p, retryable, func(context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want fatal after 1 attempt", err, calls)
	}
}

// TestDoHonorsDeadlineBudget pins the budget rule: when the remaining
// deadline cannot fit the next backoff, Do returns the last real error
// instead of sleeping through (and past) the caller's promise.
func TestDoHonorsDeadlineBudget(t *testing.T) {
	transient := errors.New("transient")
	p := RetryPolicy{Attempts: 10, Base: 200 * time.Millisecond, Max: 300 * time.Millisecond, Seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	calls := 0
	err := Do(ctx, p, nil, func(context.Context) error { calls++; return transient })
	if !errors.Is(err, transient) {
		t.Fatalf("err=%v, want the attempt's error, not the context's", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1 (no backoff fits a 50ms budget)", calls)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Do slept %v past a 50ms budget", elapsed)
	}

	// A context canceled before the first attempt surfaces the context error.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := Do(canceled, p, nil, func(context.Context) error { return transient }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}
