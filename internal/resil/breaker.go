// Package resil is the fault-tolerance layer under the cluster's peer
// client: a per-peer circuit breaker and a bounded retry policy with
// decorrelated-jitter backoff. The serving fleet applies the paper's core
// stance — tolerate violations instead of provisioning for a healthy
// worst case — to the distributed layer: a slow, flaky or dead peer must
// cost bounded latency and a degraded-mode answer, never an error.
//
// Everything time-shaped is seeded and deterministic: the breaker's probe
// schedule and the retry backoff sequence are pure functions of their seed
// (internal/rng SplitMix64 streams), so two runs of the same chaos scenario
// make the same decisions in the same order. Wall-clock only decides when a
// scheduled transition is due, via a clock seam tests replace.
package resil

import (
	"sync"
	"time"

	"tvsched/internal/rng"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed passes every call through; consecutive failures are counted.
	Closed State = iota
	// Open fails fast: every call is denied until the scheduled probe time.
	Open
	// HalfOpen lets exactly one probe call through; its outcome decides
	// whether the breaker closes again or re-opens with a longer cooldown.
	HalfOpen
	// NumStates is the number of breaker states.
	NumStates
)

var stateNames = [NumStates]string{"closed", "open", "half_open"}

// String names the state (also the metrics label value).
func (s State) String() string {
	if s < 0 || s >= NumStates {
		return "unknown"
	}
	return stateNames[s]
}

// BreakerConfig parameterizes a Breaker. Zero fields take the documented
// defaults.
type BreakerConfig struct {
	// Failures is how many consecutive failures open the breaker (default 3).
	Failures int
	// Cooldown is the base open→probe delay (default 2s). Each re-opening
	// grows the actual cooldown by decorrelated jitter up to CooldownMax, so
	// repeated probes against a dead peer back off instead of hammering it.
	Cooldown time.Duration
	// CooldownMax caps the jittered cooldown (default 30s).
	CooldownMax time.Duration
	// Seed drives the cooldown jitter stream. The schedule — the sequence of
	// cooldown durations across re-openings — is a pure function of the seed.
	Seed uint64
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. It is called
	// outside the breaker's lock, in transition order per breaker.
	OnTransition func(from, to State)
}

func (c *BreakerConfig) fill() {
	if c.Failures <= 0 {
		c.Failures = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.CooldownMax <= 0 {
		c.CooldownMax = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Breaker is a circuit breaker guarding one peer. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int           // consecutive failures while Closed
	probeAt  time.Time     // when Open, the scheduled probe time
	cooldown time.Duration // last cooldown drawn (the jitter recurrence input)
	src      *rng.Source
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg, src: rng.New(cfg.Seed)}
}

// State returns the breaker's current position. An Open breaker whose probe
// time has arrived still reports Open — the transition to HalfOpen happens
// on the Allow call that takes the probe slot, so state observation never
// races a probe into existence.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. While Open it returns false
// until the scheduled probe time, then flips to HalfOpen and returns true
// for exactly one caller (the probe); everyone else keeps failing fast until
// that probe's Record settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true
	case HalfOpen:
		b.mu.Unlock()
		return false // a probe is already out
	default: // Open
		if b.cfg.Now().Before(b.probeAt) {
			b.mu.Unlock()
			return false
		}
		fn := b.transitionLocked(HalfOpen)
		b.mu.Unlock()
		if fn != nil {
			fn()
		}
		return true
	}
}

// Record folds one call outcome in. A success closes the breaker from any
// state (evidence the peer is back); a failure counts toward the threshold
// while Closed, re-opens immediately from HalfOpen (the probe failed), and
// re-arms the cooldown while Open (a straggler failing after the breaker
// already opened must not pull the probe earlier).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	var fn func()
	if ok {
		b.failures = 0
		if b.state != Closed {
			b.cooldown = 0 // healthy again: next opening starts from base
			fn = b.transitionLocked(Closed)
		}
	} else {
		switch b.state {
		case Closed:
			b.failures++
			if b.failures >= b.cfg.Failures {
				b.armLocked()
				fn = b.transitionLocked(Open)
			}
		case HalfOpen:
			b.armLocked()
			fn = b.transitionLocked(Open)
		case Open:
			// Already open: no new schedule draw, the probe stays put.
		}
	}
	b.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// armLocked draws the next cooldown from the seeded schedule and sets the
// probe time. Decorrelated jitter (base + U[0,1)·3·prev, clamped to
// [base, max]) spreads repeated probes without synchronizing them across
// peers, and the draw sequence is deterministic per seed.
func (b *Breaker) armLocked() {
	next := b.cfg.Cooldown
	if b.cooldown > 0 {
		next += time.Duration(b.src.Float64() * 3 * float64(b.cooldown))
	} else {
		// First opening: jitter within one base interval.
		next += time.Duration(b.src.Float64() * float64(b.cfg.Cooldown))
	}
	if next > b.cfg.CooldownMax {
		next = b.cfg.CooldownMax
	}
	b.cooldown = next
	b.probeAt = b.cfg.Now().Add(next)
	b.failures = 0
}

// transitionLocked moves to the new state and returns the callback to run
// after the lock is released (nil when no observer is installed).
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	b.state = to
	if b.cfg.OnTransition == nil || from == to {
		return nil
	}
	fn := b.cfg.OnTransition
	return func() { fn(from, to) }
}
