package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// verdictFor replays one request through a fresh client and classifies the
// outcome.
func verdictFor(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		if errors.Is(err, ErrBlackout) {
			return "blackout"
		}
		if errors.Is(err, ErrRefused) {
			return "refused"
		}
		t.Fatalf("unexpected transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return "503"
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return "cut"
		}
		t.Fatalf("unexpected body error: %v", err)
	}
	return "ok"
}

func TestZeroPlanIsPassThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello from the real server")
	}))
	defer srv.Close()
	tr := NewTransport(Plan{Seed: 1}, nil)
	client := &http.Client{Transport: tr}
	for i := 0; i < 10; i++ {
		if v := verdictFor(t, client, srv.URL); v != "ok" {
			t.Fatalf("request %d: verdict %q from an inactive plan", i, v)
		}
	}
	if (Plan{}).Active() {
		t.Fatal("zero plan reports active")
	}
	c := tr.Counts()
	if c.Requests != 10 || c.Refusals+c.FiveXX+c.Cuts+c.Blackouts+c.Latencies != 0 {
		t.Fatalf("counts %+v after pass-through traffic", c)
	}
}

// TestFaultSequenceDeterministic pins the core contract: the verdict for
// request k to a host is a pure function of (seed, host, k), so two
// transports with the same plan replay the identical fault sequence — and a
// different seed produces a different one.
func TestFaultSequenceDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789abcdef0123456789abcdef")
	}))
	defer srv.Close()

	walk := func(seed uint64) []string {
		plan := Plan{Seed: seed, RefuseP: 0.2, FiveXXP: 0.2, CutP: 0.2}
		client := &http.Client{Transport: NewTransport(plan, nil)}
		var verdicts []string
		for i := 0; i < 40; i++ {
			verdicts = append(verdicts, verdictFor(t, client, srv.URL))
		}
		return verdicts
	}
	a1, a2, other := walk(42), walk(42), walk(43)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("request %d: same seed gave %q vs %q", i, a1[i], a2[i])
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault sequence")
	}
	// With P=0.2 each over 40 requests, every fault class should have fired
	// at least once; a silent class means the draws are miswired.
	seen := map[string]bool{}
	for _, v := range a1 {
		seen[v] = true
	}
	for _, want := range []string{"ok", "refused", "503", "cut"} {
		if !seen[want] {
			t.Fatalf("fault class %q never fired in 40 draws at P=0.2 (saw %v)", want, seen)
		}
	}
}

func TestBlackoutWindow(t *testing.T) {
	var arrived atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrived.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	plan := Plan{Seed: 1, Blackouts: []Blackout{{Host: host, From: 3, To: 7}}}
	tr := NewTransport(plan, nil)
	client := &http.Client{Transport: tr}
	for i := 0; i < 10; i++ {
		v := verdictFor(t, client, srv.URL)
		inWindow := i >= 3 && i < 7
		if inWindow && v != "blackout" {
			t.Fatalf("request %d: verdict %q inside the blackout window", i, v)
		}
		if !inWindow && v != "ok" {
			t.Fatalf("request %d: verdict %q outside the blackout window", i, v)
		}
	}
	if got := arrived.Load(); got != 6 {
		t.Fatalf("%d requests reached the server, want 6 (10 minus the [3,7) window)", got)
	}
	if c := tr.Counts(); c.Blackouts != 4 {
		t.Fatalf("Blackouts count %d, want 4", c.Blackouts)
	}

	// A blackout against a different host never fires.
	other := NewTransport(Plan{Seed: 1, Blackouts: []Blackout{{Host: "elsewhere:1", From: 0, To: 100}}}, nil)
	if v := verdictFor(t, &http.Client{Transport: other}, srv.URL); v != "ok" {
		t.Fatalf("verdict %q under a blackout scoped to another host", v)
	}
	// An empty host matches everything.
	all := NewTransport(Plan{Seed: 1, Blackouts: []Blackout{{From: 0, To: 100}}}, nil)
	if v := verdictFor(t, &http.Client{Transport: all}, srv.URL); v != "blackout" {
		t.Fatalf("verdict %q under a wildcard blackout", v)
	}
}

func TestSynthesized503NeverReachesServer(t *testing.T) {
	var arrived atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrived.Add(1)
	}))
	defer srv.Close()
	client := &http.Client{Transport: NewTransport(Plan{Seed: 1, FiveXXP: 1}, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading the synthetic body: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || len(body) == 0 {
		t.Fatalf("status %d body %q, want a readable 503", resp.StatusCode, body)
	}
	if arrived.Load() != 0 {
		t.Fatal("a synthesized 503 let the request through to the server")
	}
}

func TestMidBodyCut(t *testing.T) {
	payload := "this body will be severed halfway through transfer"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	client := &http.Client{Transport: NewTransport(Plan{Seed: 1, CutP: 1}, nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d before the cut, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read error %v, want io.ErrUnexpectedEOF", err)
	}
	if len(body) == 0 || len(body) >= len(payload) {
		t.Fatalf("read %d bytes before the cut, want a strict partial of %d", len(body), len(payload))
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,refuse=0.05,5xx=0.1,cut=0.02,latency=0.2:50ms,blackout=127.0.0.1:8902@5:40,blackout=*@100:110")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.RefuseP != 0.05 || p.FiveXXP != 0.1 || p.CutP != 0.02 {
		t.Fatalf("parsed probabilities wrong: %+v", p)
	}
	if p.LatencyP != 0.2 || p.LatencyMax != 50*time.Millisecond {
		t.Fatalf("parsed latency wrong: %+v", p)
	}
	want := []Blackout{{Host: "127.0.0.1:8902", From: 5, To: 40}, {Host: "", From: 100, To: 110}}
	if len(p.Blackouts) != 2 || p.Blackouts[0] != want[0] || p.Blackouts[1] != want[1] {
		t.Fatalf("parsed blackouts %+v, want %+v", p.Blackouts, want)
	}
	if !p.Active() {
		t.Fatal("parsed plan reports inactive")
	}

	if p, err := ParsePlan(""); err != nil || p.Active() {
		t.Fatalf("empty spec: plan %+v err %v, want inactive zero plan", p, err)
	}
	for _, bad := range []string{
		"refuse=1.5",         // probability out of range
		"latency=0.1",        // missing duration
		"blackout=5:40",      // missing @
		"blackout=h@40:5",    // inverted window
		"nonsense",           // not key=value
		"warp=0.1",           // unknown key
		"seed=not-a-number",  // bad integer
		"blackout=h@one:two", // bad window bounds
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted garbage", bad)
		}
	}
}

func TestStoreFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	orig := []byte("0123456789abcdef")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := TearTail(path, 6); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "0123456789" {
		t.Fatalf("after TearTail(6): %q", got)
	}
	if err := TearTail(path, 1000); err != nil {
		t.Fatal(err)
	}
	if got, _ = os.ReadFile(path); len(got) != 0 {
		t.Fatalf("over-long tear left %d bytes", len(got))
	}
	if err := TearTail(path, -1); err == nil {
		t.Fatal("negative tear accepted")
	}

	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, -1, 7); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if got[0] != orig[0]^1 || got[len(got)-1] != orig[len(orig)-1]^0x80 {
		t.Fatalf("FlipBit result %q", got)
	}
	if len(got) != len(orig) {
		t.Fatalf("FlipBit changed the length: %d", len(got))
	}
	if err := FlipBit(path, int64(len(orig)), 0); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if err := FlipBit(path, 0, 8); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
}
