// Package chaos is the fault-injection harness for the serving cluster: an
// http.RoundTripper that injects latency, connection refusals, synthesized
// 5xx responses, mid-body cuts, and per-peer blackout windows — plus crash
// faults for the store's append log (torn tails, flipped bits). It exists so
// the recovery paths in internal/resil, internal/serve and internal/store
// are exercised in-process and in CI, not just reasoned about.
//
// Every decision is deterministic: fault draws are a pure function of
// (seed, host, request index), where the index counts requests per host in
// arrival order. Concurrent requests may interleave, but request k to host h
// always sees the same verdict, so a chaos scenario replays the same faults
// run after run. Blackout windows are expressed on the request index — the
// same timeline idiom internal/hazard uses for droop events — rather than
// wall clock, for the same reason.
//
// A zero Plan injects nothing and the transport is a pass-through, so chaos
// plumbing can stay permanently installed and cost nothing when idle.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tvsched/internal/rng"
)

// ErrRefused is the synthetic connect failure: the request never left the
// transport, as if the peer's port refused the connection. Callers classify
// it (via errors.Is through url.Error wrapping) as a connect-class fault,
// which is always safe to retry.
var ErrRefused = errors.New("chaos: connection refused")

// ErrBlackout marks a refusal caused by a blackout window. It unwraps to
// ErrRefused so retry classification treats both the same.
var ErrBlackout = fmt.Errorf("chaos: peer blacked out: %w", ErrRefused)

// Blackout refuses every request to Host whose per-host request index n
// satisfies From <= n < To. An empty Host matches every host.
type Blackout struct {
	Host     string
	From, To int
}

// Plan is one chaos scenario. Probabilities are per-request and evaluated
// in precedence order: blackout, refuse, 5xx, then (on requests that really
// go out) latency and mid-body cut.
type Plan struct {
	// Seed drives every fault draw. Two transports with equal plans make
	// identical per-(host, index) decisions.
	Seed uint64
	// RefuseP is the probability of a synthetic connection refusal.
	RefuseP float64
	// FiveXXP is the probability of a synthesized 503 (headers arrive,
	// status is an error — the "5xx before body" class).
	FiveXXP float64
	// CutP is the probability the response body is severed halfway through
	// (io.ErrUnexpectedEOF mid-read — the class Forward must NOT retry).
	CutP float64
	// LatencyP is the probability of injected latency; LatencyMax bounds the
	// uniform draw.
	LatencyP   float64
	LatencyMax time.Duration
	// Blackouts are per-host refusal windows on the request-index timeline.
	Blackouts []Blackout
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.RefuseP > 0 || p.FiveXXP > 0 || p.CutP > 0 || p.LatencyP > 0 || len(p.Blackouts) > 0
}

// Counts is a snapshot of injected faults.
type Counts struct {
	Requests  int64 // total requests seen
	Blackouts int64 // refused by a blackout window
	Refusals  int64 // refused by RefuseP
	FiveXX    int64 // synthesized 503s
	Cuts      int64 // bodies severed mid-read
	Latencies int64 // latency injections
}

// Transport is the chaos RoundTripper. Install it under an http.Client (or
// hand it to serve.Config.PeerTransport) wrapping the real transport.
type Transport struct {
	plan Plan
	next http.RoundTripper

	mu  sync.Mutex
	idx map[string]int // per-host request index, next to assign

	requests, blackouts, refusals, fiveXX, cuts, latencies atomic.Int64
}

// NewTransport wraps next (nil means http.DefaultTransport) with the plan.
func NewTransport(plan Plan, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{plan: plan, next: next, idx: make(map[string]int)}
}

// Counts snapshots the injected-fault tallies.
func (t *Transport) Counts() Counts {
	return Counts{
		Requests:  t.requests.Load(),
		Blackouts: t.blackouts.Load(),
		Refusals:  t.refusals.Load(),
		FiveXX:    t.fiveXX.Load(),
		Cuts:      t.cuts.Load(),
		Latencies: t.latencies.Load(),
	}
}

// take assigns the next request index for host.
func (t *Transport) take(host string) int {
	t.mu.Lock()
	n := t.idx[host]
	t.idx[host] = n + 1
	t.mu.Unlock()
	return n
}

func hashHost(host string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, host)
	return h.Sum64()
}

// RoundTrip injects the plan's faults for this (host, index) pair, then
// delegates to the wrapped transport for requests that survive.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	n := t.take(host)
	t.requests.Add(1)

	for _, b := range t.plan.Blackouts {
		if (b.Host == "" || b.Host == "*" || b.Host == host) && n >= b.From && n < b.To {
			t.blackouts.Add(1)
			return nil, ErrBlackout
		}
	}

	// One source per (seed, host, index): draws are position-independent of
	// every other request, so concurrency cannot reorder verdicts. The draw
	// order below is fixed — changing one probability never shifts another
	// fault's dice.
	src := rng.New(t.plan.Seed).Derive(hashHost(host)).Derive(uint64(n))
	refuse := src.Float64()
	fiveXX := src.Float64()
	cut := src.Float64()
	lat := src.Float64()
	latFrac := src.Float64()

	if refuse < t.plan.RefuseP {
		t.refusals.Add(1)
		return nil, ErrRefused
	}
	if fiveXX < t.plan.FiveXXP {
		t.fiveXX.Add(1)
		body := "chaos: injected 503\n"
		resp := &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	}
	if lat < t.plan.LatencyP && t.plan.LatencyMax > 0 {
		t.latencies.Add(1)
		d := time.Duration(latFrac * float64(t.plan.LatencyMax))
		timer := time.NewTimer(d)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if cut < t.plan.CutP {
		t.cuts.Add(1)
		after := resp.ContentLength / 2
		if after < 1 {
			after = 1
		}
		resp.Body = &cutBody{rc: resp.Body, remaining: after}
	}
	return resp, nil
}

// cutBody severs a response body after remaining bytes, surfacing
// io.ErrUnexpectedEOF exactly as a dropped connection mid-transfer would.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// ParsePlan parses the compact flag syntax used by tvservd -chaos:
//
//	seed=42,refuse=0.05,5xx=0.1,cut=0.02,latency=0.2:50ms,blackout=HOST@FROM:TO
//
// Fields are comma-separated and order-free; blackout may repeat; HOST may
// be * (or empty) for all hosts and may contain colons (host:port), which is
// why the window is attached with @. An empty string parses to the zero
// (inactive) plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "refuse":
			p.RefuseP, err = parseProb(val)
		case "5xx":
			p.FiveXXP, err = parseProb(val)
		case "cut":
			p.CutP, err = parseProb(val)
		case "latency":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: latency %q is not P:DURATION", val)
			}
			if p.LatencyP, err = parseProb(probStr); err != nil {
				break
			}
			p.LatencyMax, err = time.ParseDuration(durStr)
		case "blackout":
			var b Blackout
			if b, err = parseBlackout(val); err == nil {
				p.Blackouts = append(p.Blackouts, b)
			}
		default:
			return Plan{}, fmt.Errorf("chaos: unknown field %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("chaos: field %q: %w", field, err)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", v)
	}
	return v, nil
}

func parseBlackout(s string) (Blackout, error) {
	host, window, ok := strings.Cut(s, "@")
	if !ok {
		return Blackout{}, fmt.Errorf("blackout %q is not HOST@FROM:TO", s)
	}
	if host == "*" {
		host = ""
	}
	fromStr, toStr, ok := strings.Cut(window, ":")
	if !ok {
		return Blackout{}, fmt.Errorf("blackout window %q is not FROM:TO", window)
	}
	from, err := strconv.Atoi(fromStr)
	if err != nil {
		return Blackout{}, err
	}
	to, err := strconv.Atoi(toStr)
	if err != nil {
		return Blackout{}, err
	}
	if from < 0 || to < from {
		return Blackout{}, fmt.Errorf("blackout window [%d, %d) is not a valid half-open range", from, to)
	}
	return Blackout{Host: host, From: from, To: to}, nil
}
