package chaos

import (
	"fmt"
	"os"
)

// Store crash faults. These mutate a store log file the way real crashes
// and media errors do — a torn tail from a crash mid-append, a flipped bit
// from corruption under an intact length frame — so store.Open's rebuild
// and truncation accounting can be tested against the honest artifacts.

// TearTail truncates n bytes off the end of the file at path, simulating a
// crash that interrupted the final append. Tearing more bytes than the file
// holds truncates it to empty.
func TearTail(path string, n int64) error {
	if n < 0 {
		return fmt.Errorf("chaos: TearTail of %d bytes", n)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipBit flips bit (0–7) of the byte at offset off, corrupting content
// under an intact framing so CRC verification — not length checks — must
// catch it. A negative off counts back from the end of the file, so
// FlipBit(path, -1, 0) hits the last byte.
func FlipBit(path string, off int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("chaos: FlipBit bit %d out of range", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if off < 0 {
		off += fi.Size()
	}
	if off < 0 || off >= fi.Size() {
		return fmt.Errorf("chaos: FlipBit offset %d outside file of %d bytes", off, fi.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << bit
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}
