package obs

import (
	"expvar"
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"tvsched/internal/isa"
)

// Hist is a log2-bucketed histogram of uint64 samples: bucket 0 counts
// zeros, bucket i counts values in [2^(i-1), 2^i), and the last bucket is
// open-ended. Sixteen buckets cover every quantity the pipeline produces
// (occupancies, delays, burst lengths, squash counts).
type Hist struct {
	Count   uint64
	Sum     uint64
	Buckets [17]uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	b := bits.Len64(v)
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
}

// Mean returns the sample mean.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the non-empty buckets as "[lo,hi):count" pairs.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f", h.Count, h.Mean())
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, " [0]:%d", c)
		case i == len(h.Buckets)-1:
			fmt.Fprintf(&b, " [%d,+inf):%d", 1<<(i-1), c)
		default:
			fmt.Fprintf(&b, " [%d,%d):%d", 1<<(i-1), 1<<i, c)
		}
	}
	return b.String()
}

// Sample is one point of the occupancy time series.
type Sample struct {
	Cycle uint64 // machine cycle of the sample
	IQ    uint64 // issue-queue occupancy
	ROB   uint64 // reorder-buffer occupancy
}

// metricsAcc is the lock-free accumulable core of the registry: everything
// Metrics counts except the decimating time series. Metrics embeds one
// (guarded by its mutex) and MetricsShard owns a private one, so the two
// paths share the event-consuming logic exactly.
type metricsAcc struct {
	counts      [NumKinds]uint64
	violByStage [isa.NumStages]uint64
	truePos     uint64
	falsePos    uint64
	iqOcc       Hist
	robOcc      Hist
	bcastDelay  Hist
	bursts      Hist
	lastViol    uint64
	burstLen    uint64
}

// event consumes one event. Callers serialize access.
func (a *metricsAcc) event(e Event, burstGap uint64) {
	a.counts[e.Kind]++
	switch e.Kind {
	case KindViolationPredicted:
		a.violByStage[e.Stage]++
		if e.A != 0 {
			a.truePos++
		} else {
			a.falsePos++
		}
		a.noteViolation(e.Cycle, burstGap)
	case KindViolationActual:
		a.violByStage[e.Stage]++
		a.noteViolation(e.Cycle, burstGap)
	case KindDelayedBroadcast:
		a.bcastDelay.Observe(e.A)
	case KindSample:
		a.iqOcc.Observe(e.A)
		a.robOcc.Observe(e.B)
	}
}

// noteViolation grows the current fault burst or closes it and starts a new
// one.
func (a *metricsAcc) noteViolation(cycle, burstGap uint64) {
	if a.burstLen > 0 && cycle >= a.lastViol && cycle-a.lastViol <= burstGap {
		a.burstLen++
	} else {
		if a.burstLen > 0 {
			a.bursts.Observe(a.burstLen)
		}
		a.burstLen = 1
	}
	a.lastViol = cycle
}

// merge folds o into a. The open burst of o must be closed first.
func (a *metricsAcc) merge(o *metricsAcc) {
	for k := range a.counts {
		a.counts[k] += o.counts[k]
	}
	for s := range a.violByStage {
		a.violByStage[s] += o.violByStage[s]
	}
	a.truePos += o.truePos
	a.falsePos += o.falsePos
	a.iqOcc.merge(&o.iqOcc)
	a.robOcc.merge(&o.robOcc)
	a.bcastDelay.merge(&o.bcastDelay)
	a.bursts.merge(&o.bursts)
}

// merge adds o's samples into h.
func (h *Hist) merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Metrics is the event-consuming metrics registry: per-kind counters,
// per-stage violation counts, prediction accuracy, occupancy and delay
// histograms, fault-burst sizing, and a bounded occupancy time series that
// decimates itself (doubling its stride) as the run grows, so memory stays
// O(cap) for arbitrarily long simulations.
//
// All methods are safe for concurrent use, so one registry can aggregate
// across the parallel simulations of an experiments suite. When every event
// of a simulation funnels through the shared mutex the parallel suite
// serializes on it; use Shard to give each pipeline a lock-free accumulator
// merged at run end instead.
type Metrics struct {
	// BurstGap is the maximum cycle gap between two violations that still
	// counts as the same fault burst (default 16). Set before use.
	BurstGap uint64

	mu sync.Mutex
	metricsAcc
	series    []Sample
	seriesCap int
	stride    uint64
	sampleIdx uint64
}

// NewMetrics builds an empty registry with a 1024-point time-series budget.
func NewMetrics() *Metrics {
	return &Metrics{BurstGap: 16, seriesCap: 1024, stride: 1}
}

// Event implements Observer.
func (m *Metrics) Event(e Event) {
	m.mu.Lock()
	m.metricsAcc.event(e, m.BurstGap)
	if e.Kind == KindSample {
		m.recordSample(Sample{Cycle: e.Cycle, IQ: e.A, ROB: e.B})
	}
	m.mu.Unlock()
}

// MetricsShard is a per-pipeline accumulator split off a Metrics registry
// (see Sharder). Event is lock-free except for occupancy samples, which
// pass through to the parent's decimating time series (one lock per
// SamplePeriod cycles, not one per event). Not safe for concurrent use;
// give each pipeline its own shard.
type MetricsShard struct {
	parent *Metrics
	acc    metricsAcc
}

// Shard implements Sharder: it returns a lock-free accumulator whose Flush
// folds into m.
func (m *Metrics) Shard() ShardObserver {
	return &MetricsShard{parent: m}
}

// Event implements Observer.
func (s *MetricsShard) Event(e Event) {
	s.acc.event(e, s.parent.BurstGap)
	if e.Kind == KindSample {
		p := s.parent
		p.mu.Lock()
		p.recordSample(Sample{Cycle: e.Cycle, IQ: e.A, ROB: e.B})
		p.mu.Unlock()
	}
}

// Flush closes the shard's open fault burst, folds everything into the
// parent registry, and resets the shard for reuse.
func (s *MetricsShard) Flush() {
	if s.acc.burstLen > 0 {
		s.acc.bursts.Observe(s.acc.burstLen)
		s.acc.burstLen = 0
	}
	p := s.parent
	p.mu.Lock()
	p.metricsAcc.merge(&s.acc)
	p.mu.Unlock()
	s.acc = metricsAcc{}
}

// recordSample appends to the decimating time series. Called with mu held.
func (m *Metrics) recordSample(s Sample) {
	if m.sampleIdx%m.stride == 0 {
		if len(m.series) == m.seriesCap {
			kept := m.series[:0]
			for i := 0; i < m.seriesCap; i += 2 {
				kept = append(kept, m.series[i])
			}
			m.series = kept
			m.stride *= 2
		}
		if m.sampleIdx%m.stride == 0 {
			m.series = append(m.series, s)
		}
	}
	m.sampleIdx++
}

// Count returns the number of events of the given kind seen so far.
func (m *Metrics) Count(k Kind) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[k]
}

// Counts returns a snapshot of all per-kind event counters.
func (m *Metrics) Counts() [NumKinds]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts
}

// ViolationsByStage returns per-stage violation counts (predicted handled +
// unpredicted actual).
func (m *Metrics) ViolationsByStage() [isa.NumStages]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violByStage
}

// Accuracy returns the TEP's handled true positives and false positives.
func (m *Metrics) Accuracy() (truePos, falsePos uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.truePos, m.falsePos
}

// IQOccupancy returns the issue-queue occupancy histogram.
func (m *Metrics) IQOccupancy() Hist { m.mu.Lock(); defer m.mu.Unlock(); return m.iqOcc }

// ROBOccupancy returns the reorder-buffer occupancy histogram.
func (m *Metrics) ROBOccupancy() Hist { m.mu.Lock(); defer m.mu.Unlock(); return m.robOcc }

// BroadcastDelays returns the delayed-tag-broadcast histogram (cycles).
func (m *Metrics) BroadcastDelays() Hist { m.mu.Lock(); defer m.mu.Unlock(); return m.bcastDelay }

// FaultBursts returns the fault-burst size histogram, including the burst
// still open at the time of the call.
func (m *Metrics) FaultBursts() Hist {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.bursts
	if m.burstLen > 0 {
		h.Observe(m.burstLen)
	}
	return h
}

// Series returns a copy of the occupancy time series. Points are evenly
// strided over the run; the stride doubles whenever the budget fills.
func (m *Metrics) Series() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.series))
	copy(out, m.series)
	return out
}

// Summary renders a human-readable digest of the registry.
func (m *Metrics) Summary() string {
	m.mu.Lock()
	counts := m.counts
	viol := m.violByStage
	tp, fp := m.truePos, m.falsePos
	iq, rob, bd := m.iqOcc, m.robOcc, m.bcastDelay
	m.mu.Unlock()
	bursts := m.FaultBursts()

	var b strings.Builder
	b.WriteString("observability metrics\n")
	for k := Kind(0); k < NumKinds; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-20s %12d\n", k, counts[k])
	}
	any := false
	for s := isa.Stage(0); s < isa.NumStages; s++ {
		if viol[s] > 0 {
			if !any {
				b.WriteString("  violations by stage:\n")
				any = true
			}
			fmt.Fprintf(&b, "    %-10s %12d\n", s, viol[s])
		}
	}
	fmt.Fprintf(&b, "  prediction: %d true positives, %d false positives\n", tp, fp)
	fmt.Fprintf(&b, "  IQ occupancy:      %s\n", iq.String())
	fmt.Fprintf(&b, "  ROB occupancy:     %s\n", rob.String())
	fmt.Fprintf(&b, "  broadcast delays:  %s\n", bd.String())
	fmt.Fprintf(&b, "  fault bursts:      %s\n", bursts.String())
	return b.String()
}

// expvarMu serializes Publish calls; expvar panics on duplicate names, so
// registration is check-then-publish under this lock.
var expvarMu sync.Mutex

// Publish exposes the registry under prefix on the process's expvar page
// (/debug/vars once any HTTP server serves the default mux). Values are
// computed live at scrape time. Publishing the same prefix twice is a
// no-op, so re-runs within one process are safe.
func (m *Metrics) Publish(prefix string) {
	pub := func(name string, f func() interface{}) {
		expvarMu.Lock()
		defer expvarMu.Unlock()
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(f))
		}
	}
	pub(prefix+".events", func() interface{} {
		counts := m.Counts()
		out := make(map[string]uint64, NumKinds)
		for k := Kind(0); k < NumKinds; k++ {
			out[k.String()] = counts[k]
		}
		return out
	})
	pub(prefix+".violations_by_stage", func() interface{} {
		viol := m.ViolationsByStage()
		out := make(map[string]uint64)
		for s := isa.Stage(0); s < isa.NumStages; s++ {
			if viol[s] > 0 {
				out[s.String()] = viol[s]
			}
		}
		return out
	})
	pub(prefix+".occupancy", func() interface{} {
		iq, rob := m.IQOccupancy(), m.ROBOccupancy()
		return map[string]float64{
			"iq_mean":  iq.Mean(),
			"rob_mean": rob.Mean(),
			"samples":  float64(iq.Count),
		}
	})
	pub(prefix+".prediction", func() interface{} {
		tp, fp := m.Accuracy()
		return map[string]uint64{"true_positives": tp, "false_positives": fp}
	})
}
