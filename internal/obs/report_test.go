package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportRoundTrip(t *testing.T) {
	in := &RunReport{
		Tool:         "tvsim",
		Benchmark:    "sjeng",
		Scheme:       "ABS",
		VDD:          0.97,
		Seed:         7,
		Instructions: 50000,
		Cycles:       80000,
		IPC:          0.625,
		TEP:          &TEPAccuracy{TruePositives: 10, FalsePositives: 2, Unpredicted: 1, Coverage: 10.0 / 11, Precision: 10.0 / 12},
		SchemeOverheads: []SchemeOverhead{
			{Scheme: "ABS", VDD: 0.97, PerfPct: 0.6, EDPct: 1.2},
			{Scheme: "EP", VDD: 0.97, PerfPct: 3.3, EDPct: 6.5},
		},
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if in.Schema != RunReportSchema {
		t.Fatal("WriteJSON did not stamp the schema")
	}
	out, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tool != in.Tool || out.Seed != in.Seed || out.IPC != in.IPC ||
		*out.TEP != *in.TEP || len(out.SchemeOverheads) != 2 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if o, ok := out.Overhead("EP", 0.97); !ok || o.PerfPct != 3.3 {
		t.Fatalf("Overhead lookup: %+v, %v", o, ok)
	}
}

func TestReadRunReportRejectsWrongSchema(t *testing.T) {
	_, err := ReadRunReport(strings.NewReader(`{"schema":"something/else/v9","tool":"x"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
	if _, err := ReadRunReport(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
