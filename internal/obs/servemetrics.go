package obs

import (
	"sync"
)

// ServeOutcome classifies how the serving layer answered one request.
type ServeOutcome int

// The serving outcomes, in severity order. Hit/Shared/Miss are successes
// (cache hit, collapsed onto an in-flight computation, fresh simulation);
// Rejected is admission-queue backpressure (HTTP 429); BadRequest is a
// malformed or out-of-policy request (400); Canceled is a client that hung
// up while its request waited (the client's doing, not server overload);
// Errored is everything else.
const (
	ServeHit ServeOutcome = iota
	ServeShared
	ServeMiss
	ServeRejected
	ServeBadRequest
	ServeErrored
	ServeCanceled
	NumServeOutcomes
)

var serveOutcomeNames = [NumServeOutcomes]string{
	"hit", "shared", "miss", "rejected", "bad_request", "error", "canceled",
}

// String returns the Prometheus label value for the outcome.
func (o ServeOutcome) String() string {
	if o < 0 || o >= NumServeOutcomes {
		return "unknown"
	}
	return serveOutcomeNames[o]
}

// ServeRoute classifies which serving endpoint handled a request, so latency
// histograms can be split per route as well as per cache outcome (a /v1/run
// cache hit and a cold /v1/sweep cell live in different distributions).
type ServeRoute int

// The labelled routes. RouteOther absorbs anything unclassified so the
// registry can never lose a sample.
const (
	RouteRun ServeRoute = iota
	RouteSweep
	RouteTrace
	RouteCampaign
	RouteOther
	NumServeRoutes
)

var serveRouteNames = [NumServeRoutes]string{"run", "sweep", "trace", "campaign", "other"}

// String returns the Prometheus label value for the route.
func (r ServeRoute) String() string {
	if r < 0 || r >= NumServeRoutes {
		return "unknown"
	}
	return serveRouteNames[r]
}

// PeerOp classifies one operation against a cluster peer, labelled per
// peer in the exposition so a sick node is visible by name.
type PeerOp int

// The peer operations. FetchHit/FetchMiss are read-through lookups against
// a peer's cache; Forward/ForwardErr are runs routed to their owning node;
// CheckOK/Diverged are anti-entropy cross-checks — Diverged means two nodes
// hold different bytes for one digest, which the determinism contract makes
// a bug, never an acceptable inconsistency. The resilience ops: Retry is one
// extra attempt against a peer after a retryable failure, BreakerDenied is a
// call refused locally because the peer's circuit breaker was open, Degraded
// is a run this node computed on behalf of an unreachable owner, Replicated
// is a degraded result delivered to its owner once the breaker closed, and
// Repaired is a diverged replica overwritten with re-simulated oracle bytes.
const (
	PeerFetchHit PeerOp = iota
	PeerFetchMiss
	PeerForward
	PeerForwardErr
	PeerCheckOK
	PeerDiverged
	PeerRetry
	PeerBreakerDenied
	PeerDegraded
	PeerReplicated
	PeerRepaired
	NumPeerOps
)

var peerOpNames = [NumPeerOps]string{
	"fetch_hit", "fetch_miss", "forward", "forward_error", "check_ok", "diverged",
	"retry", "breaker_denied", "degraded", "replicated", "repaired",
}

// String returns the Prometheus label value for the peer operation.
func (o PeerOp) String() string {
	if o < 0 || o >= NumPeerOps {
		return "unknown"
	}
	return peerOpNames[o]
}

// CampaignEvent classifies one lifecycle transition of an asynchronous
// campaign (POST /v1/campaign or a journal resumed at startup).
type CampaignEvent int

// The campaign lifecycle events: Started is a fresh campaign admitted,
// Resumed is a journal picked back up (after a restart or a suspension),
// Completed/Failed are terminal, and Suspended means the server shut down
// (or the run was canceled) with cells still pending — the journal keeps
// the finished prefix for the next resume.
const (
	CampaignStarted CampaignEvent = iota
	CampaignResumed
	CampaignCompleted
	CampaignSuspended
	CampaignFailed
	NumCampaignEvents
)

var campaignEventNames = [NumCampaignEvents]string{
	"started", "resumed", "completed", "suspended", "failed",
}

// String returns the Prometheus label value for the campaign event.
func (e CampaignEvent) String() string {
	if e < 0 || e >= NumCampaignEvents {
		return "unknown"
	}
	return campaignEventNames[e]
}

// StoreOp classifies one access to the persistent result store.
type StoreOp int

// The store operations: Hit/Miss are lookups on the result path, Put is a
// persisted result (fresh, forwarded, or read through from a peer).
const (
	StoreHit StoreOp = iota
	StoreMiss
	StorePut
	NumStoreOps
)

var storeOpNames = [NumStoreOps]string{"hit", "miss", "put"}

// String returns the Prometheus label value for the store operation.
func (o StoreOp) String() string {
	if o < 0 || o >= NumStoreOps {
		return "unknown"
	}
	return storeOpNames[o]
}

// ServeMetrics is the serving-layer registry behind cmd/tvservd: request
// outcomes (cache hit / singleflight share / miss / rejection / error),
// queue-depth and in-flight gauges maintained by the server, log2 latency
// histograms in microseconds for whole requests and for the underlying
// simulations, plus — when the node is clustered — per-peer operation
// counters and persistent-store counters/gauges. It is safe for concurrent
// use and renders in the Prometheus text format through
// Exposition.WithServe, alongside whatever pipeline Metrics/CPIStack the
// same exposition carries.
type ServeMetrics struct {
	mu         sync.Mutex
	outcomes   [NumServeOutcomes]uint64
	queueDepth int64
	inFlight   int64
	// reqLat is the whole-request latency in µs, split route × cache
	// outcome so p50/p99 can be read hit-vs-cold per endpoint.
	reqLat [NumServeRoutes][NumServeOutcomes]Hist
	runLat Hist // underlying simulation latency, µs (misses only)

	peerOps      map[string]*[NumPeerOps]uint64
	storeOps     [NumStoreOps]uint64
	storeEntries int64
	storeBytes   int64

	// Circuit-breaker telemetry, per peer: transition counts into each state
	// and the current state (a label-valued gauge in the exposition).
	breakerTrans map[string]map[string]uint64
	breakerState map[string]string

	// Campaign telemetry: lifecycle events, per-class cell counts (class is
	// the campaign provenance label — hit/shared/restored/cold/stolen/error),
	// and the number of campaigns executing right now.
	campaignEvents  [NumCampaignEvents]uint64
	campaignCells   map[string]uint64
	campaignsActive int64
}

// NewServeMetrics builds an empty serving registry.
func NewServeMetrics() *ServeMetrics { return &ServeMetrics{} }

// Outcome records one answered request.
func (s *ServeMetrics) Outcome(o ServeOutcome) {
	if o < 0 || o >= NumServeOutcomes {
		return
	}
	s.mu.Lock()
	s.outcomes[o]++
	s.mu.Unlock()
}

// SetQueue publishes the admission gauges: queued is the number of admitted
// computations waiting for a worker, inFlight the number executing now.
func (s *ServeMetrics) SetQueue(queued, inFlight int64) {
	s.mu.Lock()
	s.queueDepth, s.inFlight = queued, inFlight
	s.mu.Unlock()
}

// ObserveRequest records one whole-request latency in microseconds, under
// the route that served it and the cache outcome it resolved to.
func (s *ServeMetrics) ObserveRequest(route ServeRoute, outcome ServeOutcome, us uint64) {
	if route < 0 || route >= NumServeRoutes {
		route = RouteOther
	}
	if outcome < 0 || outcome >= NumServeOutcomes {
		outcome = ServeErrored
	}
	s.mu.Lock()
	s.reqLat[route][outcome].Observe(us)
	s.mu.Unlock()
}

// ObserveRun records one underlying simulation latency in microseconds.
func (s *ServeMetrics) ObserveRun(us uint64) {
	s.mu.Lock()
	s.runLat.Observe(us)
	s.mu.Unlock()
}

// PeerOp records one operation against the named peer.
func (s *ServeMetrics) PeerOp(peer string, op PeerOp) {
	if op < 0 || op >= NumPeerOps || peer == "" {
		return
	}
	s.mu.Lock()
	if s.peerOps == nil {
		s.peerOps = make(map[string]*[NumPeerOps]uint64)
	}
	ops := s.peerOps[peer]
	if ops == nil {
		ops = new([NumPeerOps]uint64)
		s.peerOps[peer] = ops
	}
	ops[op]++
	s.mu.Unlock()
}

// BreakerTransition records one circuit-breaker state change for the named
// peer: a transition counter into the new state, plus the current state.
func (s *ServeMetrics) BreakerTransition(peer, to string) {
	if peer == "" || to == "" {
		return
	}
	s.mu.Lock()
	if s.breakerTrans == nil {
		s.breakerTrans = make(map[string]map[string]uint64)
		s.breakerState = make(map[string]string)
	}
	m := s.breakerTrans[peer]
	if m == nil {
		m = make(map[string]uint64)
		s.breakerTrans[peer] = m
	}
	m[to]++
	s.breakerState[peer] = to
	s.mu.Unlock()
}

// CampaignEvent records one campaign lifecycle transition.
func (s *ServeMetrics) CampaignEvent(e CampaignEvent) {
	if e < 0 || e >= NumCampaignEvents {
		return
	}
	s.mu.Lock()
	s.campaignEvents[e]++
	s.mu.Unlock()
}

// CampaignCell records one executed campaign cell under its provenance class
// label (hit/shared/restored/cold/stolen/error).
func (s *ServeMetrics) CampaignCell(class string) {
	if class == "" {
		return
	}
	s.mu.Lock()
	if s.campaignCells == nil {
		s.campaignCells = make(map[string]uint64)
	}
	s.campaignCells[class]++
	s.mu.Unlock()
}

// AddCampaignsActive moves the running-campaigns gauge by delta.
func (s *ServeMetrics) AddCampaignsActive(delta int64) {
	s.mu.Lock()
	s.campaignsActive += delta
	s.mu.Unlock()
}

// StoreOp records one persistent-store access.
func (s *ServeMetrics) StoreOp(op StoreOp) {
	if op < 0 || op >= NumStoreOps {
		return
	}
	s.mu.Lock()
	s.storeOps[op]++
	s.mu.Unlock()
}

// SetStoreSize publishes the persistent store's size gauges.
func (s *ServeMetrics) SetStoreSize(entries int, bytes int64) {
	s.mu.Lock()
	s.storeEntries, s.storeBytes = int64(entries), bytes
	s.mu.Unlock()
}

// ServeSnapshot is a consistent copy of the registry.
type ServeSnapshot struct {
	Outcomes     [NumServeOutcomes]uint64
	QueueDepth   int64
	InFlight     int64
	ReqLatency   [NumServeRoutes][NumServeOutcomes]Hist
	RunLatency   Hist
	PeerOps      map[string][NumPeerOps]uint64
	StoreOps     [NumStoreOps]uint64
	StoreEntries int64
	StoreBytes   int64
	// BreakerTransitions counts breaker state entries per peer, keyed
	// peer → state name; BreakerStates is each peer's current state.
	BreakerTransitions map[string]map[string]uint64
	BreakerStates      map[string]string
	// CampaignEvents counts campaign lifecycle transitions, CampaignCells
	// executed cells per provenance class, CampaignsActive the campaigns
	// running right now.
	CampaignEvents  [NumCampaignEvents]uint64
	CampaignCells   map[string]uint64
	CampaignsActive int64
}

// ReqLatencyTotal folds the route × outcome latency matrix into one
// histogram (the pre-split aggregate view).
func (s *ServeSnapshot) ReqLatencyTotal() Hist {
	var total Hist
	for r := range s.ReqLatency {
		for o := range s.ReqLatency[r] {
			h := &s.ReqLatency[r][o]
			total.Count += h.Count
			total.Sum += h.Sum
			for b := range h.Buckets {
				total.Buckets[b] += h.Buckets[b]
			}
		}
	}
	return total
}

// Snapshot copies the registry under its lock.
func (s *ServeMetrics) Snapshot() ServeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ServeSnapshot{
		Outcomes:        s.outcomes,
		QueueDepth:      s.queueDepth,
		InFlight:        s.inFlight,
		ReqLatency:      s.reqLat,
		RunLatency:      s.runLat,
		StoreOps:        s.storeOps,
		StoreEntries:    s.storeEntries,
		StoreBytes:      s.storeBytes,
		CampaignEvents:  s.campaignEvents,
		CampaignsActive: s.campaignsActive,
	}
	if len(s.campaignCells) > 0 {
		snap.CampaignCells = make(map[string]uint64, len(s.campaignCells))
		for class, n := range s.campaignCells {
			snap.CampaignCells[class] = n
		}
	}
	if len(s.peerOps) > 0 {
		snap.PeerOps = make(map[string][NumPeerOps]uint64, len(s.peerOps))
		for peer, ops := range s.peerOps {
			snap.PeerOps[peer] = *ops
		}
	}
	if len(s.breakerTrans) > 0 {
		snap.BreakerTransitions = make(map[string]map[string]uint64, len(s.breakerTrans))
		for peer, m := range s.breakerTrans {
			mc := make(map[string]uint64, len(m))
			for state, n := range m {
				mc[state] = n
			}
			snap.BreakerTransitions[peer] = mc
		}
		snap.BreakerStates = make(map[string]string, len(s.breakerState))
		for peer, st := range s.breakerState {
			snap.BreakerStates[peer] = st
		}
	}
	return snap
}
