package obs

import (
	"sync"
)

// ServeOutcome classifies how the serving layer answered one request.
type ServeOutcome int

// The serving outcomes, in severity order. Hit/Shared/Miss are successes
// (cache hit, collapsed onto an in-flight computation, fresh simulation);
// Rejected is admission-queue backpressure (HTTP 429); BadRequest is a
// malformed or out-of-policy request (400); Errored is everything else.
const (
	ServeHit ServeOutcome = iota
	ServeShared
	ServeMiss
	ServeRejected
	ServeBadRequest
	ServeErrored
	NumServeOutcomes
)

var serveOutcomeNames = [NumServeOutcomes]string{
	"hit", "shared", "miss", "rejected", "bad_request", "error",
}

// String returns the Prometheus label value for the outcome.
func (o ServeOutcome) String() string {
	if o < 0 || o >= NumServeOutcomes {
		return "unknown"
	}
	return serveOutcomeNames[o]
}

// ServeRoute classifies which serving endpoint handled a request, so latency
// histograms can be split per route as well as per cache outcome (a /v1/run
// cache hit and a cold /v1/sweep cell live in different distributions).
type ServeRoute int

// The labelled routes. RouteOther absorbs anything unclassified so the
// registry can never lose a sample.
const (
	RouteRun ServeRoute = iota
	RouteSweep
	RouteTrace
	RouteOther
	NumServeRoutes
)

var serveRouteNames = [NumServeRoutes]string{"run", "sweep", "trace", "other"}

// String returns the Prometheus label value for the route.
func (r ServeRoute) String() string {
	if r < 0 || r >= NumServeRoutes {
		return "unknown"
	}
	return serveRouteNames[r]
}

// ServeMetrics is the serving-layer registry behind cmd/tvservd: request
// outcomes (cache hit / singleflight share / miss / rejection / error),
// queue-depth and in-flight gauges maintained by the server, and log2
// latency histograms in microseconds for whole requests and for the
// underlying simulations. It is safe for concurrent use and renders in the
// Prometheus text format through Exposition.WithServe, alongside whatever
// pipeline Metrics/CPIStack the same exposition carries.
type ServeMetrics struct {
	mu         sync.Mutex
	outcomes   [NumServeOutcomes]uint64
	queueDepth int64
	inFlight   int64
	// reqLat is the whole-request latency in µs, split route × cache
	// outcome so p50/p99 can be read hit-vs-cold per endpoint.
	reqLat [NumServeRoutes][NumServeOutcomes]Hist
	runLat Hist // underlying simulation latency, µs (misses only)
}

// NewServeMetrics builds an empty serving registry.
func NewServeMetrics() *ServeMetrics { return &ServeMetrics{} }

// Outcome records one answered request.
func (s *ServeMetrics) Outcome(o ServeOutcome) {
	if o < 0 || o >= NumServeOutcomes {
		return
	}
	s.mu.Lock()
	s.outcomes[o]++
	s.mu.Unlock()
}

// SetQueue publishes the admission gauges: queued is the number of admitted
// computations waiting for a worker, inFlight the number executing now.
func (s *ServeMetrics) SetQueue(queued, inFlight int64) {
	s.mu.Lock()
	s.queueDepth, s.inFlight = queued, inFlight
	s.mu.Unlock()
}

// ObserveRequest records one whole-request latency in microseconds, under
// the route that served it and the cache outcome it resolved to.
func (s *ServeMetrics) ObserveRequest(route ServeRoute, outcome ServeOutcome, us uint64) {
	if route < 0 || route >= NumServeRoutes {
		route = RouteOther
	}
	if outcome < 0 || outcome >= NumServeOutcomes {
		outcome = ServeErrored
	}
	s.mu.Lock()
	s.reqLat[route][outcome].Observe(us)
	s.mu.Unlock()
}

// ObserveRun records one underlying simulation latency in microseconds.
func (s *ServeMetrics) ObserveRun(us uint64) {
	s.mu.Lock()
	s.runLat.Observe(us)
	s.mu.Unlock()
}

// ServeSnapshot is a consistent copy of the registry.
type ServeSnapshot struct {
	Outcomes   [NumServeOutcomes]uint64
	QueueDepth int64
	InFlight   int64
	ReqLatency [NumServeRoutes][NumServeOutcomes]Hist
	RunLatency Hist
}

// ReqLatencyTotal folds the route × outcome latency matrix into one
// histogram (the pre-split aggregate view).
func (s *ServeSnapshot) ReqLatencyTotal() Hist {
	var total Hist
	for r := range s.ReqLatency {
		for o := range s.ReqLatency[r] {
			h := &s.ReqLatency[r][o]
			total.Count += h.Count
			total.Sum += h.Sum
			for b := range h.Buckets {
				total.Buckets[b] += h.Buckets[b]
			}
		}
	}
	return total
}

// Snapshot copies the registry under its lock.
func (s *ServeMetrics) Snapshot() ServeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServeSnapshot{
		Outcomes:   s.outcomes,
		QueueDepth: s.queueDepth,
		InFlight:   s.inFlight,
		ReqLatency: s.reqLat,
		RunLatency: s.runLat,
	}
}
