package obs

import (
	"sync"
)

// ServeOutcome classifies how the serving layer answered one request.
type ServeOutcome int

// The serving outcomes, in severity order. Hit/Shared/Miss are successes
// (cache hit, collapsed onto an in-flight computation, fresh simulation);
// Rejected is admission-queue backpressure (HTTP 429); BadRequest is a
// malformed or out-of-policy request (400); Errored is everything else.
const (
	ServeHit ServeOutcome = iota
	ServeShared
	ServeMiss
	ServeRejected
	ServeBadRequest
	ServeErrored
	NumServeOutcomes
)

var serveOutcomeNames = [NumServeOutcomes]string{
	"hit", "shared", "miss", "rejected", "bad_request", "error",
}

// String returns the Prometheus label value for the outcome.
func (o ServeOutcome) String() string {
	if o < 0 || o >= NumServeOutcomes {
		return "unknown"
	}
	return serveOutcomeNames[o]
}

// ServeMetrics is the serving-layer registry behind cmd/tvservd: request
// outcomes (cache hit / singleflight share / miss / rejection / error),
// queue-depth and in-flight gauges maintained by the server, and log2
// latency histograms in microseconds for whole requests and for the
// underlying simulations. It is safe for concurrent use and renders in the
// Prometheus text format through Exposition.WithServe, alongside whatever
// pipeline Metrics/CPIStack the same exposition carries.
type ServeMetrics struct {
	mu         sync.Mutex
	outcomes   [NumServeOutcomes]uint64
	queueDepth int64
	inFlight   int64
	reqLat     Hist // whole-request latency, µs (all outcomes)
	runLat     Hist // underlying simulation latency, µs (misses only)
}

// NewServeMetrics builds an empty serving registry.
func NewServeMetrics() *ServeMetrics { return &ServeMetrics{} }

// Outcome records one answered request.
func (s *ServeMetrics) Outcome(o ServeOutcome) {
	if o < 0 || o >= NumServeOutcomes {
		return
	}
	s.mu.Lock()
	s.outcomes[o]++
	s.mu.Unlock()
}

// SetQueue publishes the admission gauges: queued is the number of admitted
// computations waiting for a worker, inFlight the number executing now.
func (s *ServeMetrics) SetQueue(queued, inFlight int64) {
	s.mu.Lock()
	s.queueDepth, s.inFlight = queued, inFlight
	s.mu.Unlock()
}

// ObserveRequest records one whole-request latency in microseconds.
func (s *ServeMetrics) ObserveRequest(us uint64) {
	s.mu.Lock()
	s.reqLat.Observe(us)
	s.mu.Unlock()
}

// ObserveRun records one underlying simulation latency in microseconds.
func (s *ServeMetrics) ObserveRun(us uint64) {
	s.mu.Lock()
	s.runLat.Observe(us)
	s.mu.Unlock()
}

// ServeSnapshot is a consistent copy of the registry.
type ServeSnapshot struct {
	Outcomes   [NumServeOutcomes]uint64
	QueueDepth int64
	InFlight   int64
	ReqLatency Hist
	RunLatency Hist
}

// Snapshot copies the registry under its lock.
func (s *ServeMetrics) Snapshot() ServeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServeSnapshot{
		Outcomes:   s.outcomes,
		QueueDepth: s.queueDepth,
		InFlight:   s.inFlight,
		ReqLatency: s.reqLat,
		RunLatency: s.runLat,
	}
}
