package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tvsched/internal/isa"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenEvents is a small deterministic stream covering every rendered
// view: lanes, violations, counters, commit (with and without the
// NeverIssued sentinel), and a kept default-branch kind.
func goldenEvents() []Event {
	return []Event{
		{Kind: KindIssue, Cycle: 10, Seq: 1, PC: 0x400, Class: isa.Load, Lane: 2, A: 36, B: 36},
		{Kind: KindViolationPredicted, Cycle: 11, Seq: 2, PC: 0x404, Stage: isa.Execute, A: 1, B: RespConfined},
		{Kind: KindViolationPredicted, Cycle: 12, Seq: 3, PC: 0x408, Stage: isa.Execute, A: 0, B: RespConfined},
		{Kind: KindViolationActual, Cycle: 13, Seq: 4, PC: 0x40c, Stage: isa.Writeback},
		{Kind: KindReplay, Cycle: 14, Seq: 4, PC: 0x40c, Stage: isa.Writeback, A: 3, B: 8},
		{Kind: KindFlush, Cycle: 15, Stage: isa.Writeback, A: 6, B: 3},
		{Kind: KindSlotFreeze, Cycle: 16, Lane: 1, A: 17},
		{Kind: KindSample, Cycle: 20, A: 12, B: 48},
		{Kind: KindRetire, Cycle: 21, Seq: 1, PC: 0x400, Class: isa.Load, A: 10},
		{Kind: KindRetire, Cycle: 22, Seq: 5, PC: 0x410, Class: isa.IntALU, A: NeverIssued},
	}
}

// TestChromeTracerGolden pins the exact serialized trace for a fixed event
// sequence and checks it parses as valid Chrome trace-event JSON.
func TestChromeTracerGolden(t *testing.T) {
	tr := NewChromeTracer()
	for _, e := range goldenEvents() {
		tr.Event(e)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden file (rerun with -update-golden if intended)\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}

	// The golden bytes must be a well-formed trace: required keys present,
	// known phases only, retire events honouring the NeverIssued contract.
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  *int           `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &trace); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}
	phases := map[string]int{}
	var selected, unselected int
	for _, e := range trace.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil {
			t.Fatalf("trace event missing required field: %+v", e)
		}
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
		phases[e.Ph]++
		if e.Ph == "i" && len(e.Name) > 6 && e.Name[:6] == "retire" {
			if _, ok := e.Args["selected"]; ok {
				selected++
			} else {
				unselected++
			}
		}
	}
	if phases["M"] != 4 || phases["X"] != 1 || phases["C"] != 1 {
		t.Fatalf("unexpected phase counts: %v", phases)
	}
	if selected != 1 || unselected != 1 {
		t.Fatalf("retire events: %d with selected, %d without (want 1 and 1)", selected, unselected)
	}
}

// TestChromeTracerConcurrent hammers one shared tracer from many pipelines
// worth of goroutines — with concurrent scrapes mixed in — and checks the
// result is complete and parseable. Run with -race, this is the regression
// test for sharing a tracer across parallel simulations.
func TestChromeTracerConcurrent(t *testing.T) {
	const (
		writers      = 8
		perGoroutine = 400
	)
	tr := NewChromeTracer()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * perGoroutine
			for i := uint64(0); i < perGoroutine; i++ {
				tr.Event(Event{Kind: KindRetire, Cycle: base + i, Seq: base + i, A: base + i})
				if i%128 == 0 {
					// Interleave a reader mid-stream: WriteTo snapshots
					// under the lock and must not race the writers.
					if _, err := tr.WriteTo(io.Discard); err != nil {
						t.Error(err)
					}
					tr.Dropped()
				}
			}
		}(g)
	}
	wg.Wait()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	instants := 0
	for _, e := range trace.TraceEvents {
		if e.Ph == "i" {
			instants++
		}
	}
	if want := writers * perGoroutine; instants != want || tr.Dropped() != 0 {
		t.Fatalf("recorded %d retire instants (dropped %d), want %d", instants, tr.Dropped(), want)
	}
}
