package obs

import (
	"bufio"
	"strings"
	"sync"
	"testing"
)

func populatedServeMetrics() *ServeMetrics {
	s := NewServeMetrics()
	for i := 0; i < 10; i++ {
		s.Outcome(ServeHit)
	}
	s.Outcome(ServeShared)
	s.Outcome(ServeShared)
	s.Outcome(ServeMiss)
	s.Outcome(ServeRejected)
	s.Outcome(ServeBadRequest)
	s.SetQueue(3, 2)
	for _, us := range []uint64{0, 90, 1500, 1500} {
		s.ObserveRequest(RouteRun, ServeHit, us)
	}
	s.ObserveRequest(RouteSweep, ServeMiss, 250000)
	s.ObserveRun(250000)
	s.Outcome(ServeCanceled)
	s.PeerOp("b", PeerForward)
	s.PeerOp("b", PeerForward)
	s.PeerOp("b", PeerFetchHit)
	s.PeerOp("c", PeerCheckOK)
	s.StoreOp(StoreHit)
	s.StoreOp(StoreMiss)
	s.StoreOp(StorePut)
	s.StoreOp(StorePut)
	s.SetStoreSize(7, 4096)
	return s
}

// TestServeExpositionFormat renders a serving registry through the shared
// exposition and checks every line against the same text-format grammar the
// pipeline metrics are held to, plus the family set the serving layer
// promises (queue depth, in-flight, outcome counters, latency histograms).
func TestServeExpositionFormat(t *testing.T) {
	var b strings.Builder
	e := NewExposition("tvservd", nil, nil).WithServe(populatedServeMetrics())
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line does not match the exposition grammar: %q", line)
		}
	}

	for _, want := range []string{
		`tvservd_serve_requests_total{result="hit"} 10`,
		`tvservd_serve_requests_total{result="shared"} 2`,
		`tvservd_serve_requests_total{result="miss"} 1`,
		`tvservd_serve_requests_total{result="rejected"} 1`,
		`tvservd_serve_requests_total{result="bad_request"} 1`,
		`tvservd_serve_requests_total{result="error"} 0`,
		`tvservd_serve_requests_total{result="canceled"} 1`,
		`tvservd_serve_peer_ops_total{peer="b",op="forward"} 2`,
		`tvservd_serve_peer_ops_total{peer="b",op="fetch_hit"} 1`,
		`tvservd_serve_peer_ops_total{peer="b",op="diverged"} 0`,
		`tvservd_serve_peer_ops_total{peer="c",op="check_ok"} 1`,
		`tvservd_serve_store_ops_total{op="hit"} 1`,
		`tvservd_serve_store_ops_total{op="put"} 2`,
		"tvservd_serve_store_entries 7",
		"tvservd_serve_store_bytes 4096",
		"tvservd_serve_queue_depth 3",
		"tvservd_serve_in_flight 2",
		`tvservd_serve_request_latency_us_count{route="run",result="hit"} 4`,
		`tvservd_serve_request_latency_us_count{route="sweep",result="miss"} 1`,
		"tvservd_serve_run_latency_us_count 1",
		`tvservd_serve_request_latency_us_bucket{route="run",result="hit",le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestServeMetricsConcurrency hammers the registry from many goroutines so
// the race detector can see any unlocked path.
func TestServeMetricsConcurrency(t *testing.T) {
	s := NewServeMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Outcome(ServeOutcome(i % int(NumServeOutcomes)))
				s.ObserveRequest(ServeRoute(i%int(NumServeRoutes)), ServeOutcome(i%int(NumServeOutcomes)), uint64(i))
				s.ObserveRun(uint64(i))
				s.SetQueue(int64(g), int64(i%4))
				s.PeerOp("p", PeerOp(i%int(NumPeerOps)))
				s.StoreOp(StoreOp(i % int(NumStoreOps)))
				s.SetStoreSize(i, int64(i))
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	var total uint64
	for _, c := range snap.Outcomes {
		total += c
	}
	if total != 8000 {
		t.Fatalf("outcome total %d, want 8000", total)
	}
	if req := snap.ReqLatencyTotal(); req.Count != 8000 || snap.RunLatency.Count != 8000 {
		t.Fatalf("latency counts %d/%d, want 8000", req.Count, snap.RunLatency.Count)
	}
}
