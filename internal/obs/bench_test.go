package obs

import (
	"sync"
	"testing"
)

// benchEvent is a representative hot-path event (counter bump + violation
// accounting, no sampling passthrough).
var benchEvent = Event{Kind: KindViolationPredicted, Cycle: 1000, PC: 0x400, Stage: 5, A: 1, B: RespConfined}

// pump drives n events into obs from g goroutines, mk building one observer
// handle per goroutine (the shared registry itself, or a private shard).
func pump(b *testing.B, g int, n int, mk func() Observer, flush func(Observer)) {
	b.Helper()
	var wg sync.WaitGroup
	per := n / g
	for i := 0; i < g; i++ {
		wg.Add(1)
		o := mk()
		go func(o Observer) {
			defer wg.Done()
			e := benchEvent
			for j := 0; j < per; j++ {
				e.Cycle++
				o.Event(e)
			}
			if flush != nil {
				flush(o)
			}
		}(o)
	}
	wg.Wait()
}

// BenchmarkMetricsEventParallel pits the mutex-shared Metrics registry
// against per-goroutine shards at an explicit 8-way parallelism (the
// acceptance criterion for the sharded registry; on a single-core runner
// the shard win shrinks to the uncontended-lock delta, so read the numbers
// together with GOMAXPROCS).
func BenchmarkMetricsEventParallel(b *testing.B) {
	const goroutines = 8
	b.Run("mutex", func(b *testing.B) {
		m := NewMetrics()
		b.ReportAllocs()
		pump(b, goroutines, b.N, func() Observer { return m }, nil)
	})
	b.Run("sharded", func(b *testing.B) {
		m := NewMetrics()
		b.ReportAllocs()
		pump(b, goroutines, b.N,
			func() Observer { return m.Shard() },
			func(o Observer) { o.(ShardObserver).Flush() })
	})
}

// BenchmarkCPIStackEventParallel is the same comparison for the profiler.
func BenchmarkCPIStackEventParallel(b *testing.B) {
	const goroutines = 8
	b.Run("mutex", func(b *testing.B) {
		s := NewCPIStack(CPIStackConfig{})
		b.ReportAllocs()
		pump(b, goroutines, b.N, func() Observer { return s }, nil)
	})
	b.Run("sharded", func(b *testing.B) {
		s := NewCPIStack(CPIStackConfig{})
		b.ReportAllocs()
		pump(b, goroutines, b.N,
			func() Observer { return s.Shard() },
			func(o Observer) { o.(ShardObserver).Flush() })
	})
}

// BenchmarkCPIStackEvent is the single-threaded enabled-path cost of the
// profiler per event, the number the observability overhead budget quotes.
func BenchmarkCPIStackEvent(b *testing.B) {
	s := NewCPIStack(CPIStackConfig{})
	sh := s.Shard()
	b.ReportAllocs()
	e := benchEvent
	for i := 0; i < b.N; i++ {
		e.Cycle++
		sh.Event(e)
	}
	sh.Flush()
}
