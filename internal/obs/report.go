package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// RunReportSchema identifies the RunReport JSON layout; bump on breaking
// change. Downstream tooling (cmd/tvgate, CI perf gates, dashboards)
// matches on it before trusting field semantics.
const RunReportSchema = "tvsched/run-report/v1"

// RunReport is the machine-readable outcome of a simulation run (or an
// aggregate over a suite of runs): identity, throughput, the CPI stack,
// TEP accuracy, and per-scheme overheads. tvsim -report writes one per
// run; tvbench -json writes one per experiment as BENCH_<exp>.json. The
// schema is documented in EXPERIMENTS.md.
type RunReport struct {
	// Schema is RunReportSchema.
	Schema string `json:"schema"`
	// Tool is the producing command ("tvsim", "tvbench", ...).
	Tool string `json:"tool"`
	// Experiment names the experiment for suite-level reports ("table1",
	// "fig4", ...); empty for single runs.
	Experiment string `json:"experiment,omitempty"`
	// Benchmark / Scheme / VDD identify a single run; for aggregate
	// reports Benchmark is "all" and Scheme/VDD are empty.
	Benchmark string  `json:"benchmark,omitempty"`
	Scheme    string  `json:"scheme,omitempty"`
	VDD       float64 `json:"vdd,omitempty"`
	// Seed is the simulation seed (reports are deterministic given it).
	Seed uint64 `json:"seed"`
	// Instructions and Cycles cover the measured span; IPC = their ratio
	// (for aggregates, the ratio of sums).
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	// CPIStack is the cycle-accounting decomposition (omitted when no
	// profiler was attached).
	CPIStack *CPIStackReport `json:"cpi_stack,omitempty"`
	// TEP reports prediction accuracy.
	TEP *TEPAccuracy `json:"tep,omitempty"`
	// SchemeOverheads carries per-scheme performance/energy-delay
	// overheads versus the fault-free baseline (suite reports only).
	SchemeOverheads []SchemeOverhead `json:"scheme_overheads,omitempty"`
}

// TEPAccuracy summarizes timing-error-predictor quality over a run.
type TEPAccuracy struct {
	// TruePositives / FalsePositives count predicted-and-handled
	// violations by whether the instruction actually violated.
	TruePositives  uint64 `json:"true_positives"`
	FalsePositives uint64 `json:"false_positives"`
	// Unpredicted counts violations that escaped to replay recovery.
	Unpredicted uint64 `json:"unpredicted"`
	// Coverage is TruePositives over all actual violations; Precision is
	// TruePositives over all positive predictions.
	Coverage  float64 `json:"coverage"`
	Precision float64 `json:"precision"`
}

// SchemeOverhead is one scheme's measured overhead at one supply voltage,
// averaged across benchmarks, relative to fault-free execution.
type SchemeOverhead struct {
	Scheme string  `json:"scheme"`
	VDD    float64 `json:"vdd"`
	// PerfPct and EDPct are percentages (2.5 means 2.5% overhead).
	PerfPct float64 `json:"perf_pct"`
	EDPct   float64 `json:"ed_pct"`
}

// WriteJSON emits the report with stable indentation.
func (r *RunReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = RunReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRunReport parses a RunReport and verifies its schema tag.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema != RunReportSchema {
		return nil, fmt.Errorf("run report: schema %q, want %q", r.Schema, RunReportSchema)
	}
	return &r, nil
}

// Overhead returns the SchemeOverhead entry for (scheme, vdd), matching
// vdd within 1e-9.
func (r *RunReport) Overhead(scheme string, vdd float64) (SchemeOverhead, bool) {
	for _, o := range r.SchemeOverheads {
		if o.Scheme == scheme && o.VDD > vdd-1e-9 && o.VDD < vdd+1e-9 {
			return o, true
		}
	}
	return SchemeOverhead{}, false
}
