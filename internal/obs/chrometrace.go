package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Chrome trace-event process ids: one synthetic "process" per view so
// Perfetto groups the lanes sensibly.
const (
	pidLanes      = 1 // per-lane instruction occupancy (X slices)
	pidViolations = 2 // violation / replay / flush instants, one row per stage
	pidCounters   = 3 // IQ/ROB occupancy counter track
	pidCommit     = 4 // retire instants
)

// ChromeTracer converts the event stream into the Chrome trace-event JSON
// format (the "JSON Array Format" of the trace-event spec), loadable in
// chrome://tracing and https://ui.perfetto.dev. One simulated cycle maps to
// one microsecond of trace time.
//
// Instructions appear as duration slices on their functional-unit lane
// (select to retire-ready), violations/replays/flushes as instant events on
// a per-stage row, occupancy samples as a counter track, and retires as
// instants on a commit row. Fetch/dispatch and TEP events are dropped by
// default to keep traces compact; flip Keep to include them.
//
// The tracer retains at most Limit events (default 400k) and counts the
// overflow in Dropped; it is safe for concurrent use.
type ChromeTracer struct {
	// Keep selects which event kinds are recorded. NewChromeTracer enables
	// the occupancy/violation/commit views and disables the very hot
	// front-end and TEP kinds.
	Keep [NumKinds]bool
	// Limit bounds the retained trace events.
	Limit int

	mu      sync.Mutex
	events  []chromeEvent
	dropped uint64
}

// chromeEvent is one trace-event record. Ts/Dur are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NewChromeTracer builds a tracer with the default view selection.
func NewChromeTracer() *ChromeTracer {
	t := &ChromeTracer{Limit: 400000}
	for _, k := range []Kind{
		KindIssue, KindViolationPredicted, KindViolationActual,
		KindReplay, KindFlush, KindSlotFreeze, KindSample, KindRetire,
	} {
		t.Keep[k] = true
	}
	return t
}

// Dropped returns how many kept-kind events exceeded Limit and were
// discarded.
func (t *ChromeTracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Event implements Observer.
func (t *ChromeTracer) Event(e Event) {
	if !t.Keep[e.Kind] {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.Limit {
		t.dropped++
		return
	}
	switch e.Kind {
	case KindIssue:
		dur := uint64(1)
		if e.B > e.Cycle {
			dur = e.B - e.Cycle
		}
		t.events = append(t.events, chromeEvent{
			Name: fmt.Sprintf("%s pc=%#x", e.Class, e.PC),
			Ph:   "X", Ts: e.Cycle, Dur: dur,
			Pid: pidLanes, Tid: int(e.Lane),
			Args: map[string]uint64{"seq": e.Seq, "depReady": e.A, "complete": e.B},
		})
	case KindViolationPredicted:
		name := "predicted " + e.Stage.String()
		if e.A == 0 {
			name = "false-positive " + e.Stage.String()
		}
		t.instant(name, e.Cycle, pidViolations, int(e.Stage), map[string]uint64{"seq": e.Seq, "pc": e.PC})
	case KindViolationActual:
		t.instant("unpredicted "+e.Stage.String(), e.Cycle, pidViolations, int(e.Stage),
			map[string]uint64{"seq": e.Seq, "pc": e.PC})
	case KindReplay:
		t.instant("replay "+e.Stage.String(), e.Cycle, pidViolations, int(e.Stage),
			map[string]uint64{"seq": e.Seq, "bubble": e.A})
	case KindFlush:
		t.instant("flush", e.Cycle, pidViolations, int(e.Stage), map[string]uint64{"squashed": e.A})
	case KindSlotFreeze:
		t.instant("slot-freeze", e.Cycle, pidLanes, int(e.Lane), map[string]uint64{"until": e.A})
	case KindSample:
		t.events = append(t.events, chromeEvent{
			Name: "occupancy", Ph: "C", Ts: e.Cycle,
			Pid: pidCounters, Tid: 0,
			Args: map[string]uint64{"iq": e.A, "rob": e.B},
		})
	case KindRetire:
		args := map[string]uint64{"seq": e.Seq}
		if e.A != NeverIssued {
			// Cycle 0 is a valid select time; NeverIssued marks the absence.
			args["selected"] = e.A
		}
		t.instant(fmt.Sprintf("retire %s pc=%#x", e.Class, e.PC), e.Cycle, pidCommit, 0, args)
	default:
		t.instant(e.Kind.String(), e.Cycle, pidCommit, 1,
			map[string]uint64{"seq": e.Seq, "pc": e.PC, "a": e.A, "b": e.B})
	}
}

// instant appends a thread-scoped instant event. Called with mu held.
func (t *ChromeTracer) instant(name string, ts uint64, pid, tid int, args map[string]uint64) {
	t.events = append(t.events, chromeEvent{
		Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args,
	})
}

// WriteTo serializes the trace as a single JSON object. The tracer remains
// usable afterwards (events are not consumed).
func (t *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	evs := make([]chromeEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()

	cw := &countingWriter{w: w}
	// Metadata records need string args, which the compact chromeEvent
	// cannot hold; emit the envelope by hand around the marshalled events.
	if _, err := io.WriteString(cw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return cw.n, err
	}
	meta := []struct {
		pid  int
		name string
	}{
		{pidLanes, "pipeline lanes (issue occupancy)"},
		{pidViolations, "timing violations (rows = pipe stage)"},
		{pidCounters, "occupancy counters"},
		{pidCommit, "commit"},
	}
	for i, m := range meta {
		if i > 0 {
			if _, err := io.WriteString(cw, ","); err != nil {
				return cw.n, err
			}
		}
		rec := map[string]interface{}{
			"name": "process_name", "ph": "M", "pid": m.pid, "tid": 0,
			"args": map[string]string{"name": m.name},
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(b); err != nil {
			return cw.n, err
		}
	}
	for _, e := range evs {
		if _, err := io.WriteString(cw, ","); err != nil {
			return cw.n, err
		}
		b, err := json.Marshal(e)
		if err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(b); err != nil {
			return cw.n, err
		}
	}
	if _, err := io.WriteString(cw, "]}\n"); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
