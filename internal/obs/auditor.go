package obs

import (
	"errors"
	"fmt"
	"sync"
)

// Expected is the counter-side view an Auditor reconciles the event stream
// against. pipeline.Stats.Expected builds one (obs cannot import pipeline,
// so the bridge lives on the Stats side); tests may also construct it by
// hand to audit synthetic streams.
type Expected struct {
	// Cycles bounds the per-cycle event kinds and the sample cadence.
	Cycles uint64
	// Fetched..Committed are the progress counters; each must equal its
	// event-kind count exactly.
	Fetched, Dispatched, Selected, Committed uint64
	// PredictedViolations is PredictedFaults + FalsePositives: every TEP
	// positive emits one KindViolationPredicted whether or not it was right.
	PredictedViolations uint64
	// ActualViolations is the Mispredicted counter (unpredicted violations
	// that reached replay recovery).
	ActualViolations uint64
	// Replays, SquashedInsts cover both replay styles; squash counts arrive
	// as KindFlush.A payloads.
	Replays, SquashedInsts uint64
	// SlotFreezes, GlobalStalls, FrontStalls, DispatchStalls are the
	// stall-side counters (DispatchStalls is the sum over blocking causes).
	SlotFreezes, GlobalStalls, FrontStalls, DispatchStalls uint64
	// SumIQOcc, SumROBOcc are the every-cycle occupancy sums; they are
	// reconciled against the KindSample series when SamplePeriod == 1.
	SumIQOcc, SumROBOcc uint64
	// SamplePeriod is the configured KindSample cadence (0 disables the
	// sample-count check; 1 additionally reconciles the occupancy sums).
	SamplePeriod uint64
	// SupervisorTransitions is the supervisor's escalations + de-escalations
	// + watchdog fires; each must have emitted one KindSupervisor event.
	SupervisorTransitions uint64
}

// Auditor is an Observer that accumulates the event stream into per-kind
// counts and payload sums, then reconciles them against the simulator's own
// Stats counters via Reconcile. The two accounting paths — counter increments
// in the pipeline and event emissions beside them — are maintained
// independently, so any drift between them is a simulator bug; the Auditor
// exists to make that drift loud. Safe for concurrent use.
type Auditor struct {
	mu     sync.Mutex
	counts [NumKinds]uint64

	sumIQ, sumROB uint64 // KindSample payload sums
	fetchStall    uint64 // KindFetch.B: icache stall cycles charged to fetches
	squashed      uint64 // KindFlush.A: instructions squashed by flushes

	padGlobal, replayGlobal uint64 // KindGlobalStall cause split
	padFront, replayFront   uint64 // KindFrontStall cause split

	lastRetire uint64 // last KindRetire seq, for program-order checking
	retireErr  error  // first retire-order violation observed

	lastSupLevel uint64 // last KindSupervisor.B, for chain checking
	supErr       error  // first supervisor-chain violation observed
}

// NewAuditor returns an empty Auditor.
func NewAuditor() *Auditor { return &Auditor{} }

// Event implements Observer.
func (a *Auditor) Event(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Kind >= NumKinds {
		if a.retireErr == nil {
			a.retireErr = fmt.Errorf("audit: unknown event kind %d at cycle %d", e.Kind, e.Cycle)
		}
		return
	}
	a.counts[e.Kind]++
	switch e.Kind {
	case KindSample:
		a.sumIQ += e.A
		a.sumROB += e.B
	case KindFetch:
		a.fetchStall += e.B
	case KindFlush:
		a.squashed += e.A
	case KindGlobalStall:
		if e.A == StallCauseReplay {
			a.replayGlobal++
		} else {
			a.padGlobal++
		}
	case KindFrontStall:
		if e.A == StallCauseReplay {
			a.replayFront++
		} else {
			a.padFront++
		}
	case KindRetire:
		if a.counts[KindRetire] > 1 && e.Seq <= a.lastRetire && a.retireErr == nil {
			a.retireErr = fmt.Errorf("audit: retire out of program order: seq %d after %d at cycle %d",
				e.Seq, a.lastRetire, e.Cycle)
		}
		a.lastRetire = e.Seq
	case KindSupervisor:
		// Transitions chain: each event leaves from the level the previous
		// one arrived at. The first event may start anywhere (the stream
		// may attach mid-run); a self-loop (A == B) is also a bug — the
		// supervisor only emits on an actual level change.
		if a.supErr == nil {
			switch {
			case e.A == e.B:
				a.supErr = fmt.Errorf("audit: supervisor self-transition %d->%d at cycle %d",
					e.A, e.B, e.Cycle)
			case a.counts[KindSupervisor] > 1 && e.A != a.lastSupLevel:
				a.supErr = fmt.Errorf("audit: supervisor chain broken: %d->%d after level %d at cycle %d",
					e.A, e.B, a.lastSupLevel, e.Cycle)
			}
		}
		a.lastSupLevel = e.B
	}
}

// Reset discards everything accumulated so far. Call it when the simulator's
// counters are themselves reset (after warmup) so both accounting paths cover
// the same cycles.
func (a *Auditor) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts = [NumKinds]uint64{}
	a.sumIQ, a.sumROB = 0, 0
	a.fetchStall, a.squashed = 0, 0
	a.padGlobal, a.replayGlobal = 0, 0
	a.padFront, a.replayFront = 0, 0
	a.lastRetire, a.retireErr = 0, nil
	a.lastSupLevel, a.supErr = 0, nil
}

// Count returns the number of events of kind k observed.
func (a *Auditor) Count(k Kind) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if k >= NumKinds {
		return 0
	}
	return a.counts[k]
}

// GlobalStallCauses returns the KindGlobalStall cycle counts split by cause.
func (a *Auditor) GlobalStallCauses() (pad, replay uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.padGlobal, a.replayGlobal
}

// FrontStallCauses returns the KindFrontStall cycle counts split by cause.
func (a *Auditor) FrontStallCauses() (pad, replay uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.padFront, a.replayFront
}

// Reconcile checks the accumulated event stream against the counter-side
// expectations and returns an error joining every rule that failed (nil when
// the two accounting paths agree). The rules:
//
//   - progress events match their counters exactly: KindFetch == Fetched,
//     KindDispatch == Dispatched, KindIssue == Selected,
//     KindRetire == Committed
//   - violation machinery matches: KindViolationPredicted ==
//     PredictedFaults+FalsePositives, KindViolationActual == Mispredicted,
//     KindReplay == Replays, KindSlotFreeze == SlotFreezes
//   - stall cycles match: KindGlobalStall == GlobalStalls, KindFrontStall ==
//     FrontStalls, KindDispatchStall == the summed dispatch-blocking causes
//   - flushes are a subset of replays, and their A payloads sum to
//     SquashedInsts
//   - retires arrive in program order
//   - supervisor transitions match SupervisorTransitions, never self-loop,
//     and chain (each event departs from the level the previous one reached)
//   - icache stall cycles charged on KindFetch.B never exceed total Cycles
//     (stale pre-reset residue, e.g. leaked across a warmup, breaks this)
//   - with SamplePeriod == 1 the KindSample series is one sample per cycle
//     and its payload sums equal SumIQOcc/SumROBOcc exactly; with a coarser
//     period the sample count must still match the cadence ±1
func (a *Auditor) Reconcile(exp Expected) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("audit: "+format, args...))
	}
	eq := func(k Kind, want uint64, counter string) {
		if got := a.counts[k]; got != want {
			fail("%v events %d, %s says %d", k, got, counter, want)
		}
	}
	eq(KindFetch, exp.Fetched, "Fetched")
	eq(KindDispatch, exp.Dispatched, "Dispatched")
	eq(KindIssue, exp.Selected, "Selected")
	eq(KindRetire, exp.Committed, "Committed")
	eq(KindViolationPredicted, exp.PredictedViolations, "PredictedFaults+FalsePositives")
	eq(KindViolationActual, exp.ActualViolations, "Mispredicted")
	eq(KindReplay, exp.Replays, "Replays")
	eq(KindSlotFreeze, exp.SlotFreezes, "SlotFreezes")
	eq(KindGlobalStall, exp.GlobalStalls, "GlobalStalls")
	eq(KindFrontStall, exp.FrontStalls, "FrontStalls")
	eq(KindDispatchStall, exp.DispatchStalls, "StallROB+StallIQ+StallLSQ+StallPhys")
	eq(KindSupervisor, exp.SupervisorTransitions, "SupEscalations+SupDeescalations+SupWatchdogFires")

	if a.counts[KindFlush] > exp.Replays {
		fail("%d flushes exceed %d replays", a.counts[KindFlush], exp.Replays)
	}
	if a.squashed != exp.SquashedInsts {
		fail("flush payloads sum to %d squashed, SquashedInsts says %d", a.squashed, exp.SquashedInsts)
	}
	if a.retireErr != nil {
		errs = append(errs, a.retireErr)
	}
	if a.supErr != nil {
		errs = append(errs, a.supErr)
	}
	if a.fetchStall > exp.Cycles {
		fail("icache stall cycles %d exceed total cycles %d (stale pendingIFetch residue?)",
			a.fetchStall, exp.Cycles)
	}

	switch {
	case exp.SamplePeriod == 1:
		if a.counts[KindSample] != exp.Cycles {
			fail("%d samples for %d cycles at period 1", a.counts[KindSample], exp.Cycles)
		}
		if a.sumIQ != exp.SumIQOcc {
			fail("sampled IQ occupancy sums to %d, SumIQOcc says %d", a.sumIQ, exp.SumIQOcc)
		}
		if a.sumROB != exp.SumROBOcc {
			fail("sampled ROB occupancy sums to %d, SumROBOcc says %d", a.sumROB, exp.SumROBOcc)
		}
	case exp.SamplePeriod > 1:
		want := exp.Cycles / exp.SamplePeriod
		if got := a.counts[KindSample]; got+1 < want || got > want+1 {
			fail("%d samples for %d cycles at period %d", got, exp.Cycles, exp.SamplePeriod)
		}
	}

	return errors.Join(errs...)
}
