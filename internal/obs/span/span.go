// Package span is a lightweight, allocation-conscious request tracer for the
// serving path (DESIGN.md §14). It is deliberately much smaller than an
// OpenTelemetry SDK: a span is a named wall-clock interval with a parent link
// and a handful of string attributes, and the tracer keeps finished spans in
// a fixed ring buffer — a flight recorder, not an export pipeline. Recent
// request timelines can be pulled back out by trace ID and rendered as
// Chrome/Perfetto trace-event JSON (the same format the PR 1 cycle-level
// exporter speaks), and every span's duration feeds a per-name log2 histogram
// that obs.Exposition renders into /metrics.
//
// Identity follows the W3C Trace Context model: 16-byte trace IDs and 8-byte
// span IDs, carried on HTTP in the `traceparent` header (traceparent.go), so
// a caller that already participates in a distributed trace sees tvservd's
// spans parented under its own.
//
// Concurrency: a Tracer is safe for concurrent use; an ActiveSpan is owned by
// one goroutine at a time and must not be touched after End. Active spans are
// pooled and the ring is preallocated, so steady-state tracing allocates only
// attribute strings.
package span

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"tvsched/internal/obs"
)

// maxAttrs bounds the attributes one span can carry; SetAttr beyond the
// bound drops the attribute (observability must degrade, never fail).
const maxAttrs = 8

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one finished named interval. Value type: the tracer's ring holds
// spans inline, and Trace() hands out copies.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a local root with no remote parent
	Name   string
	Start  time.Time
	Dur    time.Duration
	attrs  [maxAttrs]Attr
	nattrs int
}

// Attrs returns the span's attributes (a view; do not retain across tracer
// operations).
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(key string) string {
	for i := 0; i < s.nattrs; i++ {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value
		}
	}
	return ""
}

// Tracer is the flight recorder: it mints IDs, pools active spans, keeps the
// last Capacity finished spans in a ring, and aggregates per-name duration
// histograms (microseconds). The zero value is not usable; build with
// NewTracer. A nil *Tracer is safe: StartRoot returns a nil *ActiveSpan,
// whose methods all no-op — tracing off costs two nil checks.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span // preallocated to capacity
	next  int    // ring write cursor
	n     int    // filled entries (≤ cap)
	total uint64 // spans ever recorded
	rng   *rand.Rand
	hists map[string]*obs.Hist
	pool  sync.Pool
	clock func() time.Time
}

// NewTracer builds a flight recorder retaining the last capacity finished
// spans (default 4096 when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	t := &Tracer{
		ring:  make([]Span, 0, capacity),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		hists: make(map[string]*obs.Hist),
		clock: time.Now,
	}
	t.pool.New = func() any { return new(ActiveSpan) }
	return t
}

// newIDs mints a fresh trace/span ID pair (trace zeroed when tid is false).
func (t *Tracer) newIDs(tid bool) (TraceID, SpanID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var tr TraceID
	var sp SpanID
	if tid {
		for tr.IsZero() {
			t.rng.Read(tr[:])
		}
	}
	for sp.IsZero() {
		t.rng.Read(sp[:])
	}
	return tr, sp
}

// ActiveSpan is a span being measured. Obtain one from StartRoot or Child,
// annotate with SetAttr, finish with End — after which the ActiveSpan must
// not be used (it returns to the tracer's pool). All methods are safe on a
// nil receiver.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartRoot opens a request root span. A non-zero parent context (extracted
// from an incoming traceparent header) continues the remote trace: the root
// adopts its trace ID and is parented under the remote span. A zero context
// mints a fresh trace ID.
func (t *Tracer) StartRoot(name string, parent Context) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*ActiveSpan)
	s.t = t
	s.span = Span{Name: name, Start: t.clock()}
	if parent.Trace.IsZero() {
		s.span.Trace, s.span.ID = t.newIDs(true)
	} else {
		s.span.Trace = parent.Trace
		s.span.Parent = parent.Span
		_, s.span.ID = t.newIDs(false)
	}
	return s
}

// Child opens a span parented under s, on the same trace.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	c := s.t.pool.Get().(*ActiveSpan)
	c.t = s.t
	c.span = Span{Trace: s.span.Trace, Parent: s.span.ID, Name: name, Start: s.t.clock()}
	_, c.span.ID = s.t.newIDs(false)
	return c
}

// SetAttr annotates the span. Attributes beyond the per-span bound are
// dropped; setting an existing key overwrites it.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := 0; i < s.span.nattrs; i++ {
		if s.span.attrs[i].Key == key {
			s.span.attrs[i].Value = value
			return
		}
	}
	if s.span.nattrs < maxAttrs {
		s.span.attrs[s.span.nattrs] = Attr{Key: key, Value: value}
		s.span.nattrs++
	}
}

// RecordChild records an already-measured child interval ending now — the
// shape phase-timing callbacks produce (the phase ran, took d, and is over).
func (s *ActiveSpan) RecordChild(name string, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.t.clock()
	sp := Span{
		Trace: s.span.Trace, Parent: s.span.ID,
		Name: name, Start: end.Add(-d), Dur: d,
	}
	_, sp.ID = s.t.newIDs(false)
	for _, a := range attrs {
		if sp.nattrs < maxAttrs {
			sp.attrs[sp.nattrs] = a
			sp.nattrs++
		}
	}
	s.t.record(&sp)
}

// Context returns the span's trace context, injectable into outgoing
// headers. Zero on a nil span.
func (s *ActiveSpan) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.span.Trace, Span: s.span.ID, Flags: 0x01}
}

// TraceID returns the span's trace ID (zero on nil).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.span.Trace
}

// End finishes the span, records it into the ring and its name's duration
// histogram, and recycles the ActiveSpan.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.span.Dur = s.t.clock().Sub(s.span.Start)
	s.t.record(&s.span)
	t := s.t
	*s = ActiveSpan{}
	t.pool.Put(s)
}

// record appends one finished span to the ring (evicting the oldest at
// capacity) and feeds its duration histogram.
func (t *Tracer) record(sp *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *sp)
	} else {
		t.ring[t.next] = *sp
	}
	t.next = (t.next + 1) % cap(t.ring)
	if t.n < cap(t.ring) {
		t.n++
	}
	t.total++
	h := t.hists[sp.Name]
	if h == nil {
		h = &obs.Hist{}
		t.hists[sp.Name] = h
	}
	h.Observe(uint64(sp.Dur / time.Microsecond))
}

// Trace returns copies of the retained spans belonging to the given trace,
// oldest first. Empty when the trace never existed or has been evicted.
func (t *Tracer) Trace(id TraceID) []Span {
	if t == nil || id.IsZero() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	// Ring order: oldest entry is at next when full, index 0 otherwise.
	start := 0
	if t.n == cap(t.ring) {
		start = t.next
	}
	for i := 0; i < t.n; i++ {
		sp := &t.ring[(start+i)%cap(t.ring)]
		if sp.Trace == id {
			out = append(out, *sp)
		}
	}
	return out
}

// Stats reports the recorder's occupancy: spans retained now, ring capacity,
// and spans evicted since construction.
func (t *Tracer) Stats() (retained, capacity int, evicted uint64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n, cap(t.ring), t.total - uint64(t.n)
}

// DurationHists snapshots the per-name span-duration histograms
// (microseconds), sorted by name — the shape obs.Exposition.WithSpans
// renders into /metrics.
func (t *Tracer) DurationHists() []obs.NamedHist {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]obs.NamedHist, 0, len(t.hists))
	for name, h := range t.hists {
		out = append(out, obs.NamedHist{Name: name, Hist: *h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
