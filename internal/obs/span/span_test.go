package span

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceparentRoundTrip pins the W3C propagation loop end to end: a
// context injected into headers, extracted from the request, and adopted by
// StartRoot yields a root span on the remote trace parented under the remote
// span — and its own children chain correctly below it.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(64)

	// The "remote caller": a fresh root whose context goes onto the wire.
	remote := tr.StartRoot("caller", Context{})
	remoteCtx := remote.Context()
	h := http.Header{}
	remoteCtx.Inject(h)
	hv := h.Get("traceparent")
	if hv == "" {
		t.Fatal("Inject wrote no traceparent header")
	}
	want := fmt.Sprintf("00-%s-%s-01", remoteCtx.Trace.String(), remoteCtx.Span.String())
	if hv != want {
		t.Fatalf("traceparent %q, want %q", hv, want)
	}

	// The "server": extract from an incoming request, continue the trace.
	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	req.Header.Set("traceparent", hv)
	got := Extract(req)
	if got != remoteCtx {
		t.Fatalf("Extract round-trip: got %+v, want %+v", got, remoteCtx)
	}
	root := tr.StartRoot("run", got)
	if root.TraceID() != remoteCtx.Trace {
		t.Fatalf("root did not adopt the remote trace: %s vs %s", root.TraceID(), remoteCtx.Trace)
	}
	rootID := root.Context().Span
	child := root.Child("simulate")
	childID := child.Context().Span
	child.End()
	root.End()
	remote.End()

	spans := tr.Trace(remoteCtx.Trace)
	if len(spans) != 3 {
		t.Fatalf("trace holds %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if sp := byName["run"]; sp.Parent != remoteCtx.Span || sp.ID != rootID {
		t.Fatalf("server root parented under %s, want remote span %s", sp.Parent, remoteCtx.Span)
	}
	if sp := byName["simulate"]; sp.Parent != rootID || sp.ID != childID {
		t.Fatalf("child parented under %s, want server root %s", sp.Parent, rootID)
	}
}

// TestParseTraceparentRejects pins the malformed-header surface: every bad
// value degrades to "no context" rather than an error.
func TestParseTraceparentRejects(t *testing.T) {
	for _, v := range []string{
		"",
		"garbage",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unknown version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01", // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",  // short span
	} {
		if c, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", v, c)
		}
	}
	good := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	c, ok := ParseTraceparent(good)
	if !ok || c.Trace.String() != "0af7651916cd43dd8448eb211c80319c" ||
		c.Span.String() != "b7ad6b7169203331" || c.Flags != 0x01 {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v", good, c, ok)
	}
	if c.Traceparent() != good {
		t.Fatalf("re-render %q, want %q", c.Traceparent(), good)
	}
}

// TestParseTraceID pins the request-ID form /v1/trace accepts.
func TestParseTraceID(t *testing.T) {
	id, ok := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if !ok || id.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("valid trace ID rejected: %v %v", id, ok)
	}
	for _, s := range []string{"", "0af7", strings.Repeat("0", 32), strings.Repeat("z", 32)} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted", s)
		}
	}
}

// TestRingEviction fills a small flight recorder far past capacity — from
// many goroutines, so -race audits the ring locking — and checks the bound
// holds, eviction counts add up, and old traces age out cleanly.
func TestRingEviction(t *testing.T) {
	const capacity, workers, perWorker = 8, 4, 50
	tr := NewTracer(capacity)

	first := tr.StartRoot("early", Context{})
	firstTrace := first.TraceID()
	first.End()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartRoot("work", Context{})
				sp.SetAttr("i", "x")
				sp.RecordChild("phase", time.Microsecond)
				sp.End()
			}
		}()
	}
	wg.Wait()

	retained, capGot, evicted := tr.Stats()
	if capGot != capacity || retained != capacity {
		t.Fatalf("retained %d of cap %d, want full ring of %d", retained, capGot, capacity)
	}
	const total = 1 + workers*perWorker*2 // root + (work+phase) each
	if evicted != total-capacity {
		t.Fatalf("evicted %d, want %d", evicted, total-capacity)
	}
	if got := tr.Trace(firstTrace); len(got) != 0 {
		t.Fatalf("evicted trace still retrievable: %d spans", len(got))
	}

	// The duration histograms aggregate everything ever recorded, not just
	// what the ring still holds.
	var workCount uint64
	for _, nh := range tr.DurationHists() {
		if nh.Name == "work" {
			workCount = nh.Hist.Count
		}
	}
	if workCount != workers*perWorker {
		t.Fatalf("work histogram count %d, want %d", workCount, workers*perWorker)
	}
}

// TestTraceOldestFirst pins the retrieval order contract WriteChromeTrace
// leans on.
func TestTraceOldestFirst(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartRoot("a", Context{})
	id := root.TraceID()
	root.RecordChild("b", time.Millisecond)
	root.RecordChild("c", time.Millisecond)
	root.End()
	spans := tr.Trace(id)
	if len(spans) != 3 || spans[0].Name != "b" || spans[1].Name != "c" || spans[2].Name != "a" {
		names := make([]string, len(spans))
		for i, sp := range spans {
			names[i] = sp.Name
		}
		t.Fatalf("trace order %v, want [b c a] (record order)", names)
	}
}

// TestAttrBounds pins the degrade-don't-fail attribute contract.
func TestAttrBounds(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartRoot("r", Context{})
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	sp.SetAttr("k0", "v2") // overwrite must not consume a slot
	id := sp.TraceID()
	sp.End()
	got := tr.Trace(id)[0]
	if len(got.Attrs()) != maxAttrs {
		t.Fatalf("%d attrs retained, want bound %d", len(got.Attrs()), maxAttrs)
	}
	if got.Attr("k0") != "v2" {
		t.Fatalf("overwrite lost: k0=%q", got.Attr("k0"))
	}
	if got.Attr(fmt.Sprintf("k%d", maxAttrs)) != "" {
		t.Fatal("attr beyond the bound was retained")
	}
}

// TestNilSafety pins the tracing-off contract: a nil tracer and nil spans
// no-op through the whole surface.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x", Context{})
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.SetAttr("k", "v")
	sp.RecordChild("c", time.Second)
	c := sp.Child("y")
	c.End()
	sp.End()
	if got := sp.Context(); !got.Trace.IsZero() {
		t.Fatal("nil span has a context")
	}
	if got := tr.Trace(TraceID{1}); got != nil {
		t.Fatal("nil tracer returned spans")
	}
	if r, c, e := tr.Stats(); r != 0 || c != 0 || e != 0 {
		t.Fatal("nil tracer has stats")
	}
	if tr.DurationHists() != nil {
		t.Fatal("nil tracer has histograms")
	}
}

// TestWriteChromeTrace checks the exported document is valid trace-event
// JSON: X slices, microsecond timestamps opening at 0, IDs and attrs in args.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartRoot("run", Context{})
	root.SetAttr("digest", "abc123")
	id := root.TraceID()
	root.RecordChild("simulate", 2*time.Millisecond)
	root.End()

	var b strings.Builder
	if _, err := WriteChromeTrace(&b, tr.Trace(id)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	sawZeroTs := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 1 {
			t.Fatalf("bad slice %+v", ev)
		}
		if ev.Ts == 0 {
			sawZeroTs = true
		}
		if ev.Args["trace_id"] != id.String() || ev.Args["span_id"] == "" {
			t.Fatalf("slice missing identity args: %+v", ev)
		}
		if ev.Name == "run" && ev.Args["digest"] != "abc123" {
			t.Fatalf("attr lost in export: %+v", ev)
		}
		if ev.Name == "simulate" && ev.Args["parent_id"] == "" {
			t.Fatalf("child slice missing parent_id: %+v", ev)
		}
	}
	if !sawZeroTs {
		t.Fatal("no slice opens at ts=0; timestamps must be epoch-relative")
	}
}
