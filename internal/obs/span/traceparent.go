package span

import (
	"encoding/hex"
	"net/http"
)

// TraceID is a W3C Trace Context trace-id: 16 bytes, hex-encoded on the
// wire, never all-zero.
type TraceID [16]byte

// IsZero reports the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form — the request ID the serving
// layer logs and the /v1/trace endpoint accepts.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID decodes the 32-char hex form; ok is false for anything else
// (wrong length, non-hex, all-zero).
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanID is a W3C Trace Context parent-id: 8 bytes, hex-encoded, never
// all-zero.
type SpanID [8]byte

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context is a propagated trace position: which trace, which span is the
// parent, and the sampling flags. The zero Context means "no trace context".
type Context struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// traceparentHeader is the W3C Trace Context header name.
const traceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value,
// version 00: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
// Unknown versions, malformed fields and all-zero IDs are rejected (ok
// false) — a bad header degrades to a fresh local trace, never an error.
func ParseTraceparent(v string) (Context, bool) {
	if len(v) < 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return Context{}, false
	}
	var c Context
	if _, err := hex.Decode(c.Trace[:], []byte(v[3:35])); err != nil || c.Trace.IsZero() {
		return Context{}, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(v[36:52])); err != nil || c.Span.IsZero() {
		return Context{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(v[53:55])); err != nil {
		return Context{}, false
	}
	c.Flags = flags[0]
	return c, true
}

// Traceparent renders the context as a version-00 traceparent value.
func (c Context) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hexAppend(buf, c.Trace[:])
	buf = append(buf, '-')
	buf = hexAppend(buf, c.Span[:])
	buf = append(buf, '-')
	buf = hexAppend(buf, []byte{c.Flags})
	return string(buf)
}

func hexAppend(dst, src []byte) []byte {
	const digits = "0123456789abcdef"
	for _, b := range src {
		dst = append(dst, digits[b>>4], digits[b&0xf])
	}
	return dst
}

// Extract reads the trace context from an incoming request's traceparent
// header; the zero Context when absent or malformed.
func Extract(r *http.Request) Context {
	c, _ := ParseTraceparent(r.Header.Get(traceparentHeader))
	return c
}

// Inject writes the context as a traceparent header (no-op for the zero
// context). Used on responses — so clients learn the request's trace ID even
// when they sent none — and on any outbound call that should stay in-trace.
func (c Context) Inject(h http.Header) {
	if c.Trace.IsZero() {
		return
	}
	h.Set(traceparentHeader, c.Traceparent())
}
