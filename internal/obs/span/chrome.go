package span

import (
	"context"
	"encoding/json"
	"io"
	"time"
)

// ctxKey carries an *ActiveSpan through a context.Context, so layers that
// only see a ctx (the Runner seam, phase hooks) can attach child spans
// without a signature change.
type ctxKey struct{}

// NewContext returns ctx carrying s.
func NewContext(ctx context.Context, s *ActiveSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil — and nil is fully
// usable (every ActiveSpan method no-ops on nil).
func FromContext(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}

// chromeSpanEvent is one "X" (complete) trace-event record; Ts/Dur are
// microseconds. Same dialect as the cycle-level exporter in internal/obs,
// with string args for the span attributes.
type chromeSpanEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the spans (one request's timeline, as returned by
// Tracer.Trace) as Chrome trace-event JSON loadable in chrome://tracing and
// ui.perfetto.dev. Timestamps are microseconds relative to the earliest span
// start, so the trace opens at t=0. All spans share one pid/tid: the viewers
// nest overlapping "X" slices by time containment, which renders the
// parent/child structure as a flame graph without explicit stack tracking.
// Parent/child identity additionally travels in the args (span/parent IDs).
func WriteChromeTrace(w io.Writer, spans []Span) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return cw.n, err
	}
	var epoch time.Time
	for i := range spans {
		if i == 0 || spans[i].Start.Before(epoch) {
			epoch = spans[i].Start
		}
	}
	for i := range spans {
		sp := &spans[i]
		args := map[string]string{
			"trace_id": sp.Trace.String(),
			"span_id":  sp.ID.String(),
		}
		if !sp.Parent.IsZero() {
			args["parent_id"] = sp.Parent.String()
		}
		for _, a := range sp.Attrs() {
			args[a.Key] = a.Value
		}
		dur := sp.Dur.Microseconds()
		if dur < 1 {
			dur = 1 // zero-width slices are invisible in the viewers
		}
		ev := chromeSpanEvent{
			Name: sp.Name, Ph: "X",
			Ts:  sp.Start.Sub(epoch).Microseconds(),
			Dur: dur, Pid: 1, Tid: 1, Args: args,
		}
		if i > 0 {
			if _, err := io.WriteString(cw, ","); err != nil {
				return cw.n, err
			}
		}
		b, err := json.Marshal(&ev)
		if err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(b); err != nil {
			return cw.n, err
		}
	}
	if _, err := io.WriteString(cw, "]}\n"); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
