package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"tvsched/internal/isa"
)

// Exposition renders a Metrics registry and/or a CPIStack profiler in the
// Prometheus text exposition format (version 0.0.4, the format `promtool
// check metrics` accepts), so a running tvbench/tvsim/tvpaths can be
// scraped like any other service. Counters become `_total` series, the
// log2 Hist buckets become proper cumulative histogram `_bucket`/`_sum`/
// `_count` series (bucket upper bounds are 0, 1, 3, 7, … 2^i−1 — the
// largest integer each log2 bucket can hold — then +Inf), and the CPI
// stack becomes a gauge vector labelled by component.
//
// Values are read live at scrape time under the registries' locks; with a
// sharded parallel suite, a scrape sees everything flushed so far.
type Exposition struct {
	ns      string
	metrics *Metrics
	stack   *CPIStack
	serve   *ServeMetrics
	spans   func() []NamedHist
}

// NamedHist is one labelled histogram of a family — the shape span-duration
// sources hand the exposition (internal/obs/span.Tracer.DurationHists).
type NamedHist struct {
	Name string
	Hist Hist
}

// NewExposition builds an exposition over the given sources (either may be
// nil). ns prefixes every metric name; it is sanitized to the Prometheus
// name charset and defaults to "tvsched".
func NewExposition(ns string, m *Metrics, s *CPIStack) *Exposition {
	if ns == "" {
		ns = "tvsched"
	}
	var b strings.Builder
	for i, r := range ns {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return &Exposition{ns: b.String(), metrics: m, stack: s}
}

// WithServe adds a serving-layer registry (queue depth, in-flight, cache
// hit/miss outcomes, latency histograms) to the exposition and returns it,
// so cmd/tvservd can chain the call onto NewExposition. A nil registry is
// ignored.
func (e *Exposition) WithServe(s *ServeMetrics) *Exposition {
	e.serve = s
	return e
}

// WithSpans adds request-scoped span-duration histograms to the exposition:
// source is called at scrape time and each NamedHist renders as a
// `<ns>_span_duration_us` histogram labelled span="<name>". A nil source is
// ignored. The flight-recorder tracer's DurationHists method matches.
func (e *Exposition) WithSpans(source func() []NamedHist) *Exposition {
	e.spans = source
	return e
}

// Handler serves the exposition over HTTP (mount at /metrics).
func (e *Exposition) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = e.WriteTo(w)
	})
}

// WriteTo renders the exposition text.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if e.metrics != nil {
		if err := e.writeMetrics(cw); err != nil {
			return cw.n, err
		}
	}
	if e.stack != nil {
		if err := e.writeStack(cw); err != nil {
			return cw.n, err
		}
	}
	if e.serve != nil {
		if err := e.writeServe(cw); err != nil {
			return cw.n, err
		}
	}
	if e.spans != nil {
		if err := e.writeSpans(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// head emits the HELP/TYPE preamble of one metric family.
func head(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

func (e *Exposition) writeMetrics(w io.Writer) error {
	m := e.metrics
	name := e.ns + "_events_total"
	if err := head(w, name, "Pipeline events by kind.", "counter"); err != nil {
		return err
	}
	counts := m.Counts()
	for k := Kind(0); k < NumKinds; k++ {
		if _, err := fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k.String(), counts[k]); err != nil {
			return err
		}
	}

	name = e.ns + "_violations_total"
	if err := head(w, name, "Timing violations (predicted handled + unpredicted) by pipe stage.", "counter"); err != nil {
		return err
	}
	viol := m.ViolationsByStage()
	for s := isa.Stage(0); s < isa.NumStages; s++ {
		if _, err := fmt.Fprintf(w, "%s{stage=%q} %d\n", name, s.String(), viol[s]); err != nil {
			return err
		}
	}

	name = e.ns + "_tep_predictions_total"
	if err := head(w, name, "Handled TEP predictions by outcome.", "counter"); err != nil {
		return err
	}
	tp, fp := m.Accuracy()
	if _, err := fmt.Fprintf(w, "%s{outcome=\"true_positive\"} %d\n%s{outcome=\"false_positive\"} %d\n",
		name, tp, name, fp); err != nil {
		return err
	}

	hists := []struct {
		name, help string
		h          Hist
	}{
		{e.ns + "_iq_occupancy", "Issue-queue occupancy samples.", m.IQOccupancy()},
		{e.ns + "_rob_occupancy", "Reorder-buffer occupancy samples.", m.ROBOccupancy()},
		{e.ns + "_broadcast_delay_cycles", "Delayed tag-broadcast lengths in cycles.", m.BroadcastDelays()},
		{e.ns + "_fault_burst_length", "Violations per fault burst.", m.FaultBursts()},
	}
	for _, hh := range hists {
		if err := writeHist(w, hh.name, hh.help, &hh.h); err != nil {
			return err
		}
	}
	return nil
}

// writeHist renders one log2 Hist as a cumulative Prometheus histogram.
// Bucket i of Hist counts integer values in [2^(i-1), 2^i), so its exact
// upper bound is 2^i−1; the final open-ended bucket folds into +Inf.
func writeHist(w io.Writer, name, help string, h *Hist) error {
	if err := head(w, name, help, "histogram"); err != nil {
		return err
	}
	return writeHistSeries(w, name, "", h)
}

// writeHistSeries renders the bucket/sum/count series of one histogram,
// without the family header, merging the extra labels (`k="v",…` form, no
// braces) into each series — so several labelled histograms can share one
// family.
func writeHistSeries(w io.Writer, name, labels string, h *Hist) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i < len(h.Buckets)-1; i++ {
		cum += h.Buckets[i]
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count); err != nil {
		return err
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
		name, labels, h.Sum, name, labels, h.Count)
	return err
}

func (e *Exposition) writeServe(w io.Writer) error {
	snap := e.serve.Snapshot()

	name := e.ns + "_serve_requests_total"
	if err := head(w, name, "Serving-layer requests by outcome (hit/shared/miss/rejected/bad_request/error).", "counter"); err != nil {
		return err
	}
	for o := ServeOutcome(0); o < NumServeOutcomes; o++ {
		if _, err := fmt.Fprintf(w, "%s{result=%q} %d\n", name, o.String(), snap.Outcomes[o]); err != nil {
			return err
		}
	}

	gauges := []struct {
		name, help string
		v          int64
	}{
		{e.ns + "_serve_queue_depth", "Admitted simulations waiting for a worker.", snap.QueueDepth},
		{e.ns + "_serve_in_flight", "Simulations executing right now.", snap.InFlight},
	}
	for _, g := range gauges {
		if err := head(w, g.name, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.v); err != nil {
			return err
		}
	}

	// Request latency is one family split route × cache outcome; only
	// populated cells are rendered so an idle server stays compact.
	name = e.ns + "_serve_request_latency_us"
	if err := head(w, name, "Whole-request latency in microseconds by route and cache outcome.", "histogram"); err != nil {
		return err
	}
	for r := ServeRoute(0); r < NumServeRoutes; r++ {
		for o := ServeOutcome(0); o < NumServeOutcomes; o++ {
			h := &snap.ReqLatency[r][o]
			if h.Count == 0 {
				continue
			}
			labels := fmt.Sprintf("route=%q,result=%q", r.String(), o.String())
			if err := writeHistSeries(w, name, labels, h); err != nil {
				return err
			}
		}
	}

	if err := writeHist(w, e.ns+"_serve_run_latency_us",
		"Underlying simulation latency in microseconds (cache misses only).", &snap.RunLatency); err != nil {
		return err
	}

	// Cluster peer operations, one family labelled peer × op. Rendered only
	// when any peer has been touched, so a solo node stays compact.
	if len(snap.PeerOps) > 0 {
		name = e.ns + "_serve_peer_ops_total"
		if err := head(w, name, "Cluster peer operations (fetch_hit/fetch_miss/forward/forward_error/check_ok/diverged/retry/breaker_denied/degraded/replicated/repaired) by peer.", "counter"); err != nil {
			return err
		}
		peers := make([]string, 0, len(snap.PeerOps))
		for p := range snap.PeerOps {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			ops := snap.PeerOps[p]
			for o := PeerOp(0); o < NumPeerOps; o++ {
				if _, err := fmt.Fprintf(w, "%s{peer=%q,op=%q} %d\n", name, p, o.String(), ops[o]); err != nil {
					return err
				}
			}
		}
	}

	// Circuit-breaker telemetry, rendered only once a breaker has moved.
	if len(snap.BreakerTransitions) > 0 {
		name = e.ns + "_serve_breaker_transitions_total"
		if err := head(w, name, "Circuit-breaker state entries (closed/open/half_open) by peer.", "counter"); err != nil {
			return err
		}
		peers := make([]string, 0, len(snap.BreakerTransitions))
		for p := range snap.BreakerTransitions {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			states := make([]string, 0, len(snap.BreakerTransitions[p]))
			for st := range snap.BreakerTransitions[p] {
				states = append(states, st)
			}
			sort.Strings(states)
			for _, st := range states {
				if _, err := fmt.Fprintf(w, "%s{peer=%q,to=%q} %d\n", name, p, st, snap.BreakerTransitions[p][st]); err != nil {
					return err
				}
			}
		}
		name = e.ns + "_serve_breaker_state"
		if err := head(w, name, "Current circuit-breaker state per peer (1 = the labelled state).", "gauge"); err != nil {
			return err
		}
		for _, p := range peers {
			if st, ok := snap.BreakerStates[p]; ok {
				if _, err := fmt.Fprintf(w, "%s{peer=%q,state=%q} 1\n", name, p, st); err != nil {
					return err
				}
			}
		}
	}

	// Campaign lifecycle counters, per-class cell counters, and the active
	// gauge, rendered only once a campaign has been admitted.
	var campaignTouched uint64
	for _, c := range snap.CampaignEvents {
		campaignTouched += c
	}
	if campaignTouched > 0 {
		name = e.ns + "_serve_campaigns_total"
		if err := head(w, name, "Campaign lifecycle events (started/resumed/completed/suspended/failed).", "counter"); err != nil {
			return err
		}
		for ev := CampaignEvent(0); ev < NumCampaignEvents; ev++ {
			if _, err := fmt.Fprintf(w, "%s{event=%q} %d\n", name, ev.String(), snap.CampaignEvents[ev]); err != nil {
				return err
			}
		}
		if len(snap.CampaignCells) > 0 {
			name = e.ns + "_serve_campaign_cells_total"
			if err := head(w, name, "Campaign cells executed, by provenance class (hit/shared/restored/cold/stolen/error).", "counter"); err != nil {
				return err
			}
			classes := make([]string, 0, len(snap.CampaignCells))
			for c := range snap.CampaignCells {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				if _, err := fmt.Fprintf(w, "%s{class=%q} %d\n", name, c, snap.CampaignCells[c]); err != nil {
					return err
				}
			}
		}
		name = e.ns + "_serve_campaigns_active"
		if err := head(w, name, "Campaigns executing right now.", "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.CampaignsActive); err != nil {
			return err
		}
	}

	// Persistent-store counters and gauges, rendered only once the store
	// has been touched.
	var storeTouched uint64
	for _, c := range snap.StoreOps {
		storeTouched += c
	}
	if storeTouched > 0 || snap.StoreEntries > 0 {
		name = e.ns + "_serve_store_ops_total"
		if err := head(w, name, "Persistent result-store accesses (hit/miss/put).", "counter"); err != nil {
			return err
		}
		for o := StoreOp(0); o < NumStoreOps; o++ {
			if _, err := fmt.Fprintf(w, "%s{op=%q} %d\n", name, o.String(), snap.StoreOps[o]); err != nil {
				return err
			}
		}
		gauges := []struct {
			name, help string
			v          int64
		}{
			{e.ns + "_serve_store_entries", "Live entries in the persistent result store.", snap.StoreEntries},
			{e.ns + "_serve_store_bytes", "Live bytes in the persistent result store (record overhead included).", snap.StoreBytes},
		}
		for _, g := range gauges {
			if err := head(w, g.name, g.help, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSpans renders the span-duration histograms as one family labelled by
// span name.
func (e *Exposition) writeSpans(w io.Writer) error {
	name := e.ns + "_span_duration_us"
	if err := head(w, name, "Request-scoped span durations in microseconds by span name.", "histogram"); err != nil {
		return err
	}
	for _, nh := range e.spans() {
		if err := writeHistSeries(w, name, fmt.Sprintf("span=%q", nh.Name), &nh.Hist); err != nil {
			return err
		}
	}
	return nil
}

func (e *Exposition) writeStack(w io.Writer) error {
	rep := e.stack.Report()

	name := e.ns + "_cycles_total"
	if err := head(w, name, "Observed machine cycles.", "counter"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", name, rep.Cycles); err != nil {
		return err
	}
	name = e.ns + "_instructions_total"
	if err := head(w, name, "Committed instructions.", "counter"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", name, rep.Committed); err != nil {
		return err
	}
	name = e.ns + "_cpi"
	if err := head(w, name, "Cycles per committed instruction.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", name, rep.CPI); err != nil {
		return err
	}
	name = e.ns + "_cpi_stack"
	if err := head(w, name, "CPI stack decomposition by component (components sum to the CPI).", "gauge"); err != nil {
		return err
	}
	for _, c := range rep.Components {
		if _, err := fmt.Fprintf(w, "%s{component=%q} %g\n", name, c.Name, c.CPI); err != nil {
			return err
		}
	}
	name = e.ns + "_violation_cpi"
	if err := head(w, name, "Violation-attributed share of the CPI.", "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %g\n", name, rep.ViolationCPI)
	return err
}
