// Package obs is the cycle-level observability layer of the simulator: a
// typed pipeline-event stream (Observer), a metrics registry consuming it
// (Metrics), and a Chrome trace-event exporter (ChromeTracer) rendering
// per-instruction pipeline occupancy for chrome://tracing / Perfetto.
//
// The design goal is zero overhead when disabled: the pipeline holds a
// plain Observer interface value and fires events only behind nil checks,
// so the uninstrumented hot loop pays a handful of predictable branches and
// nothing else (bench_test.go's BenchmarkObserverOverhead guards this).
// Event values are passed by value and must not retain pointers, so firing
// an event never allocates.
package obs

import "tvsched/internal/isa"

// Kind enumerates the typed pipeline events. The per-kind payload fields
// (A, B) are documented next to each constant; unlisted Event fields are
// zero for that kind.
type Kind uint8

const (
	// KindFetch: an instruction entered the front end (first fetch or
	// replay re-fetch). Cycle/Seq/PC/Class are set.
	KindFetch Kind = iota
	// KindDispatch: the instruction was renamed and entered the ROB/IQ.
	KindDispatch
	// KindIssue: the instruction won selection and was scheduled on Lane.
	// A is the cycle its tag broadcast wakes dependents (depReadyAt);
	// B is the cycle it becomes ready to retire (completeAt).
	KindIssue
	// KindViolationPredicted: the TEP predicted a violation in Stage and
	// the scheme handled it early (confined / front stall / global stall).
	// A is 1 for a true positive (the instruction actually violates there),
	// 0 for a false positive.
	KindViolationPredicted
	// KindViolationActual: an unpredicted timing violation was detected in
	// Stage; replay recovery follows.
	KindViolationActual
	// KindReplay: a replay recovery was triggered (Razor shadow-latch or
	// in-order recirculation). Stage is the faulty stage; A is the
	// whole-pipeline bubble charged, in cycles.
	KindReplay
	// KindFlush: architectural flush-and-refetch recovery squashed the
	// errant instruction and everything younger. A is the number of
	// squashed ROB entries.
	KindFlush
	// KindSlotFreeze: the FUSR froze an issue slot behind a faulty
	// instruction (§3.2.3/§3.3). Lane is the frozen lane; A is the first
	// cycle the lane is usable again.
	KindSlotFreeze
	// KindDelayedBroadcast: a producer's tag broadcast was delayed by
	// confined violation handling (§3.2.2). A is the delay in cycles.
	KindDelayedBroadcast
	// KindRetire: the instruction committed. Cycle/Seq/PC/Class are set;
	// A is the cycle it was selected for issue (0 for never-issued classes).
	KindRetire
	// KindSample: periodic occupancy sample (every Config.SamplePeriod
	// cycles). A is the issue-queue occupancy, B the ROB occupancy.
	KindSample
	// KindTEPPredict: the TEP returned a positive prediction for PC in
	// Stage (sensor-gated lookups that hit a saturated counter).
	KindTEPPredict
	// KindTEPTrain: the TEP trained on an actual violation for PC in
	// Stage. A is the saturating-counter value after training.
	KindTEPTrain
	// NumKinds is the number of event kinds.
	NumKinds
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindDispatch:
		return "dispatch"
	case KindIssue:
		return "issue"
	case KindViolationPredicted:
		return "violation-predicted"
	case KindViolationActual:
		return "violation-actual"
	case KindReplay:
		return "replay"
	case KindFlush:
		return "flush"
	case KindSlotFreeze:
		return "slot-freeze"
	case KindDelayedBroadcast:
		return "delayed-broadcast"
	case KindRetire:
		return "retire"
	case KindSample:
		return "sample"
	case KindTEPPredict:
		return "tep-predict"
	case KindTEPTrain:
		return "tep-train"
	default:
		return "kind(?)"
	}
}

// Event is one typed pipeline event. Cycle is the machine cycle the event
// fired in (0 for component-level events that have no cycle view, e.g. TEP
// events); Seq identifies the dynamic instruction; A and B carry kind-
// specific payload (see the Kind constants).
type Event struct {
	Kind  Kind
	Stage isa.Stage
	Class isa.Class
	Lane  int16
	Cycle uint64
	Seq   uint64
	PC    uint64
	A, B  uint64
}

// Observer receives pipeline events. Events are fired synchronously from
// the simulation loop of one pipeline; an observer shared between pipelines
// running in parallel (e.g. an experiments.Suite prefetch) must be safe for
// concurrent use — Metrics is, ChromeTracer is.
type Observer interface {
	Event(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Event implements Observer.
func (f ObserverFunc) Event(e Event) { f(e) }

// multi fans one event stream out to several observers.
type multi []Observer

func (m multi) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// Multi combines observers into one; nil entries are dropped. It returns
// nil when nothing remains (preserving the disabled fast path) and the
// observer itself when only one remains.
func Multi(os ...Observer) Observer {
	var kept multi
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}
