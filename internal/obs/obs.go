// Package obs is the cycle-level observability layer of the simulator: a
// typed pipeline-event stream (Observer), a metrics registry consuming it
// (Metrics), and a Chrome trace-event exporter (ChromeTracer) rendering
// per-instruction pipeline occupancy for chrome://tracing / Perfetto.
//
// The design goal is zero overhead when disabled: the pipeline holds a
// plain Observer interface value and fires events only behind nil checks,
// so the uninstrumented hot loop pays a handful of predictable branches and
// nothing else (bench_test.go's BenchmarkObserverOverhead guards this).
// Event values are passed by value and must not retain pointers, so firing
// an event never allocates.
package obs

import "tvsched/internal/isa"

// Kind enumerates the typed pipeline events. The per-kind payload fields
// (A, B) are documented next to each constant; unlisted Event fields are
// zero for that kind.
type Kind uint8

const (
	// KindFetch: an instruction entered the front end (first fetch or
	// replay re-fetch). Cycle/Seq/PC/Class are set. A is 1 when the
	// instruction is a branch that pays the misprediction loop (fetch
	// blocks until it resolves — on every fetch, including replay
	// re-fetches). B is the number of instruction-cache stall cycles the
	// front end paid immediately before this fetch (0 on an L1I hit).
	KindFetch Kind = iota
	// KindDispatch: the instruction was renamed and entered the ROB/IQ.
	KindDispatch
	// KindIssue: the instruction won selection and was scheduled on Lane.
	// A is the cycle its tag broadcast wakes dependents (depReadyAt);
	// B is the cycle it becomes ready to retire (completeAt). For loads,
	// C is the data-access latency charged by the memory hierarchy (1 on
	// an L1D hit or store-to-load forward), so cycle accounting can
	// classify L2 and DRAM misses; 0 for every other class.
	KindIssue
	// KindViolationPredicted: the TEP predicted a violation in Stage and
	// the scheme handled it early (confined / front stall / global stall).
	// A is 1 for a true positive (the instruction actually violates there),
	// 0 for a false positive. B is the micro-architectural response the
	// scheme chose (the Resp* payload codes, mirroring core.Action).
	KindViolationPredicted
	// KindViolationActual: an unpredicted timing violation was detected in
	// Stage; replay recovery follows.
	KindViolationActual
	// KindReplay: a replay recovery was triggered (Razor shadow-latch or
	// in-order recirculation). Stage is the faulty stage; A is the
	// whole-pipeline bubble charged, in cycles; B is the errant
	// instruction's private extra replay latency in cycles; C is any
	// recovery cost in issue slots that produces no stall-cycle events
	// (the fetch-path replay bubble).
	KindReplay
	// KindFlush: architectural flush-and-refetch recovery squashed the
	// errant instruction and everything younger. A is the number of
	// squashed ROB entries; B is the refetch bubble in cycles.
	KindFlush
	// KindSlotFreeze: the FUSR froze an issue slot behind a faulty
	// instruction (§3.2.3/§3.3). Lane is the frozen lane; A is the first
	// cycle the lane is usable again.
	KindSlotFreeze
	// KindDelayedBroadcast: a producer's tag broadcast was delayed by
	// confined violation handling (§3.2.2). A is the delay in cycles.
	KindDelayedBroadcast
	// KindRetire: the instruction committed. Cycle/Seq/PC/Class are set;
	// A is the cycle it was selected for issue, or the NeverIssued
	// sentinel (^uint64(0)) when it committed without passing through the
	// select stage. (A=0 used to be ambiguous between "selected at cycle
	// 0" and "never issued"; the sentinel removes the ambiguity.)
	KindRetire
	// KindSample: periodic occupancy sample (every Config.SamplePeriod
	// cycles). A is the issue-queue occupancy, B the ROB occupancy.
	KindSample
	// KindTEPPredict: the TEP returned a positive prediction for PC in
	// Stage (sensor-gated lookups that hit a saturated counter).
	KindTEPPredict
	// KindTEPTrain: the TEP trained on an actual violation for PC in
	// Stage. A is the saturating-counter value after training.
	KindTEPTrain
	// KindDispatchStall: dispatch blocked for the rest of this cycle on a
	// full back-end resource. A is the cause (the DispatchStall* payload
	// codes: ROB, IQ, LSQ, physical registers); B is the dispatch budget
	// left unused this cycle (lost dispatch slots). At most one fires per
	// cycle — the first blocking resource wins, matching the Stall*
	// statistics counters.
	KindDispatchStall
	// KindFrontStall: the in-order engine (rename/dispatch/retire)
	// recirculated for this cycle while the OoO engine kept running
	// (§2.2). A is the cause (StallCausePad for a predicted-violation
	// padding cycle, StallCauseReplay for an in-order replay-recovery
	// bubble). One event per stalled cycle.
	KindFrontStall
	// KindGlobalStall: the whole pipeline froze for this cycle. A is the
	// cause (StallCausePad for an EP-style predicted-violation stall,
	// StallCauseReplay for a replay-recovery bubble). One event per
	// stalled cycle.
	KindGlobalStall
	// KindSupervisor: the graceful-degradation supervisor changed
	// escalation level. A is the level before the transition, B the level
	// after, C the reason (the SupReason* payload codes, mirroring
	// core.SupReason — internal/pipeline pins the correspondence with a
	// test). Consecutive events chain: each event's A equals the previous
	// event's B, which the Auditor verifies.
	KindSupervisor
	// NumKinds is the number of event kinds.
	NumKinds
)

// NeverIssued is the KindRetire.A sentinel for instructions that committed
// without passing through the select stage.
const NeverIssued = ^uint64(0)

// Payload codes for KindViolationPredicted.B: the response the handling
// scheme chose. The values mirror core.Action (obs cannot import core);
// internal/pipeline pins the correspondence with a test.
const (
	// RespNone: no handling (unused by emission sites, present for
	// completeness of the core.Action mirror).
	RespNone uint64 = iota
	// RespConfined: VTE confined handling — the instruction occupies its
	// stage one extra cycle and only its dependents wait.
	RespConfined
	// RespGlobalStall: EP-style whole-pipeline padding stall.
	RespGlobalStall
	// RespFrontStall: in-order-engine stall; the OoO engine keeps running.
	RespFrontStall
	// RespReplay: replay recovery.
	RespReplay
)

// Payload codes for KindGlobalStall.A and KindFrontStall.A: why the cycle
// was lost.
const (
	// StallCausePad: a predicted-violation padding stall (EP global stall
	// or in-order-engine stall).
	StallCausePad uint64 = iota
	// StallCauseReplay: a replay-recovery bubble after an unpredicted
	// violation.
	StallCauseReplay
)

// Payload codes for KindDispatchStall.A: the back-end resource that blocked
// dispatch.
const (
	// DispatchStallROB: reorder buffer full.
	DispatchStallROB uint64 = iota
	// DispatchStallIQ: issue queue full.
	DispatchStallIQ
	// DispatchStallLSQ: load or store queue full.
	DispatchStallLSQ
	// DispatchStallPhys: out of physical registers.
	DispatchStallPhys
)

// Payload codes for KindSupervisor.C: why the supervisor changed level. The
// values mirror core.SupReason (obs cannot import core); internal/pipeline
// pins the correspondence with a test.
const (
	// SupReasonNone: no transition (unused by emission sites, present for
	// completeness of the core.SupReason mirror).
	SupReasonNone uint64 = iota
	// SupReasonUnpredRate: the unpredicted-violation rate crossed the
	// escalation threshold.
	SupReasonUnpredRate
	// SupReasonPrecision: TEP precision collapsed below the threshold.
	SupReasonPrecision
	// SupReasonWatchdog: the no-forward-progress watchdog fired.
	SupReasonWatchdog
	// SupReasonQuiet: hysteresis de-escalation after quiet windows.
	SupReasonQuiet
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindDispatch:
		return "dispatch"
	case KindIssue:
		return "issue"
	case KindViolationPredicted:
		return "violation-predicted"
	case KindViolationActual:
		return "violation-actual"
	case KindReplay:
		return "replay"
	case KindFlush:
		return "flush"
	case KindSlotFreeze:
		return "slot-freeze"
	case KindDelayedBroadcast:
		return "delayed-broadcast"
	case KindRetire:
		return "retire"
	case KindSample:
		return "sample"
	case KindTEPPredict:
		return "tep-predict"
	case KindTEPTrain:
		return "tep-train"
	case KindDispatchStall:
		return "dispatch-stall"
	case KindFrontStall:
		return "front-stall"
	case KindGlobalStall:
		return "global-stall"
	case KindSupervisor:
		return "supervisor"
	default:
		return "kind(?)"
	}
}

// Event is one typed pipeline event. Cycle is the machine cycle the event
// fired in (0 for component-level events that have no cycle view, e.g. TEP
// events); Seq identifies the dynamic instruction; A, B and C carry kind-
// specific payload (see the Kind constants).
type Event struct {
	Kind    Kind
	Stage   isa.Stage
	Class   isa.Class
	Lane    int16
	Cycle   uint64
	Seq     uint64
	PC      uint64
	A, B, C uint64
}

// Observer receives pipeline events. Events are fired synchronously from
// the simulation loop of one pipeline; an observer shared between pipelines
// running in parallel (e.g. an experiments.Suite prefetch) must be safe for
// concurrent use — Metrics is, ChromeTracer is.
type Observer interface {
	Event(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Event implements Observer.
func (f ObserverFunc) Event(e Event) { f(e) }

// ShardObserver is a single-goroutine accumulator split off a shared
// registry. The pipeline fires events into it lock-free; Flush folds the
// accumulated state back into the parent (under the parent's lock) and
// leaves the shard empty, ready for reuse. A shard must not be shared
// between goroutines.
type ShardObserver interface {
	Observer
	Flush()
}

// Sharder is implemented by registries that can hand out per-pipeline
// shards, so a parallel experiments suite pays one lock acquisition per
// simulation instead of one per event. Metrics and CPIStack implement it;
// Multi-combined observers shard component-wise.
type Sharder interface {
	Shard() ShardObserver
}

// multi fans one event stream out to several observers.
type multi []Observer

func (m multi) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// Shard implements Sharder component-wise: observers that shard are
// replaced by a fresh shard, the rest pass through unsharded (they must
// then be safe for concurrent use, as before).
func (m multi) Shard() ShardObserver {
	out := make(multiShard, len(m))
	for i, o := range m {
		if s, ok := o.(Sharder); ok {
			out[i] = s.Shard()
		} else {
			out[i] = o
		}
	}
	return out
}

// multiShard is the per-pipeline fan-out produced by multi.Shard.
type multiShard []Observer

func (m multiShard) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// Flush folds every component shard back into its parent.
func (m multiShard) Flush() {
	for _, o := range m {
		if f, ok := o.(ShardObserver); ok {
			f.Flush()
		}
	}
}

// Multi combines observers into one; nil entries are dropped. It returns
// nil when nothing remains (preserving the disabled fast path) and the
// observer itself when only one remains.
func Multi(os ...Observer) Observer {
	var kept multi
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}
