package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tvsched/internal/isa"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.Contains(s, "?") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 1, 3, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count != 6 {
		t.Fatalf("count %d", h.Count)
	}
	if h.Buckets[0] != 1 { // the zero
		t.Fatalf("zero bucket %d", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // the ones
		t.Fatalf("ones bucket %d", h.Buckets[1])
	}
	if h.Buckets[len(h.Buckets)-1] != 1 { // the huge value lands in the open bucket
		t.Fatalf("open bucket %d", h.Buckets[len(h.Buckets)-1])
	}
	if h.Mean() == 0 {
		t.Fatal("mean not computed")
	}
	if !strings.Contains(h.String(), "n=6") {
		t.Fatalf("String: %s", h.String())
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewMetrics()
	m.Event(Event{Kind: KindIssue, Cycle: 10})
	m.Event(Event{Kind: KindViolationPredicted, Stage: isa.Execute, Cycle: 11, A: 1})
	m.Event(Event{Kind: KindViolationPredicted, Stage: isa.Execute, Cycle: 12, A: 0})
	m.Event(Event{Kind: KindViolationActual, Stage: isa.Memory, Cycle: 100})
	m.Event(Event{Kind: KindSample, Cycle: 64, A: 12, B: 40})
	m.Event(Event{Kind: KindDelayedBroadcast, Cycle: 13, A: 1})

	if got := m.Count(KindIssue); got != 1 {
		t.Fatalf("issue count %d", got)
	}
	viol := m.ViolationsByStage()
	if viol[isa.Execute] != 2 || viol[isa.Memory] != 1 {
		t.Fatalf("violations by stage %v", viol)
	}
	tp, fp := m.Accuracy()
	if tp != 1 || fp != 1 {
		t.Fatalf("accuracy %d/%d", tp, fp)
	}
	if m.IQOccupancy().Count != 1 || m.ROBOccupancy().Count != 1 {
		t.Fatal("occupancy histograms not fed")
	}
	if m.BroadcastDelays().Sum != 1 {
		t.Fatal("broadcast delay not fed")
	}
	// Two violations 1 cycle apart form one burst of 2; the third, 88
	// cycles later, opens a new burst (still open, counted by FaultBursts).
	bursts := m.FaultBursts()
	if bursts.Count != 2 {
		t.Fatalf("burst count %d (%s)", bursts.Count, bursts.String())
	}
	if bursts.Sum != 3 {
		t.Fatalf("burst sum %d", bursts.Sum)
	}
	if !strings.Contains(m.Summary(), "violation-predicted") {
		t.Fatalf("summary missing counters:\n%s", m.Summary())
	}
}

func TestMetricsSeriesDecimation(t *testing.T) {
	m := NewMetrics()
	m.seriesCap = 8
	for i := uint64(0); i < 1000; i++ {
		m.Event(Event{Kind: KindSample, Cycle: i * 64, A: i % 32, B: i % 128})
	}
	s := m.Series()
	if len(s) == 0 || len(s) > 8 {
		t.Fatalf("series length %d exceeds budget", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].Cycle <= s[i-1].Cycle {
			t.Fatalf("series not increasing at %d: %+v", i, s)
		}
	}
	if s[0].Cycle != 0 {
		t.Fatalf("first sample lost: %+v", s[0])
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b int
	oa := ObserverFunc(func(Event) { a++ })
	ob := ObserverFunc(func(Event) { b++ })
	if Multi(nil, nil) != nil {
		t.Fatal("all-nil Multi must be nil")
	}
	m := Multi(oa, nil, ob)
	m.Event(Event{Kind: KindFetch})
	m.Event(Event{Kind: KindRetire})
	if a != 2 || b != 2 {
		t.Fatalf("fan-out broken: %d %d", a, b)
	}
}

// perfettoShape is the subset of the trace-event format Perfetto requires:
// a traceEvents array whose records carry name/ph/ts/pid/tid.
type perfettoShape struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func TestChromeTracerOutput(t *testing.T) {
	tr := NewChromeTracer()
	tr.Event(Event{Kind: KindIssue, Cycle: 5, Seq: 1, PC: 0x40, Class: isa.IntALU, Lane: 2, A: 7, B: 9})
	tr.Event(Event{Kind: KindViolationPredicted, Cycle: 6, Seq: 1, Stage: isa.Execute, A: 1})
	tr.Event(Event{Kind: KindViolationActual, Cycle: 7, Seq: 2, Stage: isa.Memory})
	tr.Event(Event{Kind: KindReplay, Cycle: 8, Seq: 2, Stage: isa.Memory, A: 3})
	tr.Event(Event{Kind: KindSample, Cycle: 64, A: 10, B: 50})
	tr.Event(Event{Kind: KindRetire, Cycle: 12, Seq: 1, PC: 0x40, Class: isa.IntALU})
	tr.Event(Event{Kind: KindFetch, Cycle: 1}) // dropped by default Keep

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var shape perfettoShape
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	kinds := map[string]int{}
	for _, e := range shape.TraceEvents {
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			t.Fatalf("unknown phase %q", e.Ph)
		}
		kinds[e.Ph]++
	}
	if kinds["X"] != 1 || kinds["C"] != 1 || kinds["M"] == 0 {
		t.Fatalf("event phases %v", kinds)
	}
	if kinds["i"] != 4 { // predicted, actual, replay, retire
		t.Fatalf("instants %d", kinds["i"])
	}
	if strings.Contains(buf.String(), `"fetch"`) {
		t.Fatal("Keep filter ignored")
	}
}

func TestChromeTracerLimit(t *testing.T) {
	tr := NewChromeTracer()
	tr.Limit = 3
	for i := 0; i < 10; i++ {
		tr.Event(Event{Kind: KindRetire, Cycle: uint64(i)})
	}
	if d := tr.Dropped(); d != 7 {
		t.Fatalf("dropped %d", d)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var shape perfettoShape
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatal(err)
	}
}
