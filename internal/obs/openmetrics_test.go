package obs

import (
	"bufio"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expositionLine matches the Prometheus text format 0.0.4 grammar subset we
// emit: `name{label="value",...} number` with optional labels.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|\+Inf)$`)

func populatedExposition(t *testing.T) *Exposition {
	t.Helper()
	m := NewMetrics()
	s := NewCPIStack(CPIStackConfig{})
	for i := uint64(1); i <= 100; i++ {
		e := Event{Kind: KindRetire, Cycle: i, PC: i % 16}
		m.Event(e)
		s.Event(e)
		if i%3 == 0 {
			v := Event{Kind: KindViolationPredicted, Cycle: i, PC: i % 16, A: i % 2, B: RespConfined}
			m.Event(v)
			s.Event(v)
		}
		if i%5 == 0 {
			m.Event(Event{Kind: KindSample, Cycle: i, A: i % 32, B: i % 128})
			m.Event(Event{Kind: KindDelayedBroadcast, Cycle: i, A: i % 4})
		}
	}
	return NewExposition("tvsched", m, s)
}

func TestExpositionFormat(t *testing.T) {
	var b strings.Builder
	if _, err := populatedExposition(t).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	helped := map[string]bool{} // family -> saw HELP+TYPE before samples
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			helped[f[2]] = true
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line does not match the exposition grammar: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if !helped[name] && !helped[family] {
			t.Fatalf("sample %q has no preceding HELP/TYPE preamble", name)
		}
		if !strings.HasPrefix(name, "tvsched_") {
			t.Fatalf("metric %q missing namespace prefix", name)
		}
	}

	for _, want := range []string{
		"tvsched_events_total", "tvsched_violations_total",
		"tvsched_tep_predictions_total", "tvsched_iq_occupancy_bucket",
		"tvsched_cpi_stack", "tvsched_violation_cpi",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %s:\n%s", want, out)
		}
	}
}

// TestExpositionHistogramCumulative checks the histogram contract promtool
// enforces: bucket counts monotonically non-decreasing in le order, and the
// +Inf bucket equal to _count.
func TestExpositionHistogramCumulative(t *testing.T) {
	var b strings.Builder
	if _, err := populatedExposition(t).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	bucketRe := regexp.MustCompile(`^(tvsched_[a-z_]+)_bucket\{le="([^"]+)"\} (\d+)$`)
	countRe := regexp.MustCompile(`^(tvsched_[a-z_]+)_count (\d+)$`)
	lastVal := map[string]uint64{}
	lastLE := map[string]float64{}
	infVal := map[string]uint64{}
	countVal := map[string]uint64{}
	for _, line := range strings.Split(b.String(), "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			fam := m[1]
			v, _ := strconv.ParseUint(m[3], 10, 64)
			le := math.Inf(1)
			if m[2] != "+Inf" {
				le, _ = strconv.ParseFloat(m[2], 64)
			} else {
				infVal[fam] = v
			}
			if v < lastVal[fam] {
				t.Fatalf("%s: bucket le=%q count %d below previous %d", fam, m[2], v, lastVal[fam])
			}
			if prev, ok := lastLE[fam]; ok && le <= prev {
				t.Fatalf("%s: bucket bounds not increasing (%v after %v)", fam, le, prev)
			}
			lastVal[fam], lastLE[fam] = v, le
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			countVal[m[1]], _ = strconv.ParseUint(m[2], 10, 64)
		}
	}
	if len(infVal) == 0 {
		t.Fatal("no histogram families found")
	}
	for fam, inf := range infVal {
		if countVal[fam] != inf {
			t.Fatalf("%s: +Inf bucket %d != _count %d", fam, inf, countVal[fam])
		}
	}
}

func TestExpositionHandler(t *testing.T) {
	srv := httptest.NewServer(populatedExposition(t).Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "tvsched_events_total") {
		t.Fatal("handler served no metrics")
	}
}

func TestExpositionNamespaceSanitized(t *testing.T) {
	e := NewExposition("9bad-ns.x", nil, nil)
	if e.ns != "_bad_ns_x" {
		t.Fatalf("sanitized ns = %q", e.ns)
	}
	if NewExposition("", nil, nil).ns != "tvsched" {
		t.Fatal("empty ns did not default")
	}
	// nil sources: still a valid (empty) exposition.
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil || b.Len() != 0 {
		t.Fatalf("empty exposition: %q, %v", b.String(), err)
	}
}
