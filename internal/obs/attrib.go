package obs

import "sort"

// This file is the per-PC penalty attribution side of the cycle-accounting
// profiler (cpistack.go): for every static instruction that triggered
// violation handling, how many issue slots did the handling cost, and how
// often was the prediction right? Together with the aggregate CPI stack it
// makes the paper's confinement claim checkable per PC: under a confined
// scheme the hottest violating PCs should carry a few slots per event,
// under Error Padding a full issue-width's worth.

// PCStat accumulates violation-handling costs for one static instruction.
type PCStat struct {
	// PC is the static instruction address.
	PC uint64 `json:"pc"`
	// Events counts violation-handling activations at this PC: predicted
	// handlings (true or false positive) plus unpredicted replays.
	Events uint64 `json:"events"`
	// TruePos and FalsePos split the predicted handlings by whether the
	// instruction actually violated.
	TruePos  uint64 `json:"true_positives"`
	FalsePos uint64 `json:"false_positives"`
	// PenaltySlots is the violation-induced penalty charged to this PC, in
	// issue slots (divide by the machine width for cycles). See the
	// CPIStack documentation for the per-response charging rules.
	PenaltySlots uint64 `json:"penalty_slots"`
}

// attrib is the attribution table. Zero value is ready to use.
type attrib struct {
	m map[uint64]*PCStat
}

// at returns (allocating if needed) the entry for pc.
func (a *attrib) at(pc uint64) *PCStat {
	if a.m == nil {
		a.m = make(map[uint64]*PCStat)
	}
	s := a.m[pc]
	if s == nil {
		s = &PCStat{PC: pc}
		a.m[pc] = s
	}
	return s
}

// merge folds o into a.
func (a *attrib) merge(o *attrib) {
	for pc, os := range o.m {
		s := a.at(pc)
		s.Events += os.Events
		s.TruePos += os.TruePos
		s.FalsePos += os.FalsePos
		s.PenaltySlots += os.PenaltySlots
	}
}

// top returns the n entries with the largest penalty, ties broken by PC for
// determinism. n <= 0 returns everything.
func (a *attrib) top(n int) []PCStat {
	out := make([]PCStat, 0, len(a.m))
	for _, s := range a.m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PenaltySlots != out[j].PenaltySlots {
			return out[i].PenaltySlots > out[j].PenaltySlots
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
