package obs

import "testing"

// TestMetricsSeriesDecimationInvariants pins the recordSample contract for
// any run length: the series never exceeds its budget, the kept points are
// evenly strided by a power-of-two multiple of the sample period, the first
// sample of the run survives every halving, and the series always reaches
// (within one stride) the end of the run.
func TestMetricsSeriesDecimationInvariants(t *testing.T) {
	const period = 64 // cycles between emitted samples
	for _, n := range []uint64{1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 4096, 5000} {
		m := NewMetrics()
		m.seriesCap = 8
		for i := uint64(0); i < n; i++ {
			m.Event(Event{Kind: KindSample, Cycle: (i + 1) * period, A: i, B: 2 * i})
		}
		s := m.Series()

		if len(s) == 0 || len(s) > m.seriesCap {
			t.Fatalf("n=%d: series length %d outside (0, %d]", n, len(s), m.seriesCap)
		}
		if s[0].Cycle != period {
			t.Fatalf("n=%d: first sample at cycle %d, want %d", n, s[0].Cycle, period)
		}
		if len(s) > 1 {
			gap := s[1].Cycle - s[0].Cycle
			for i := 1; i < len(s); i++ {
				if got := s[i].Cycle - s[i-1].Cycle; got != gap {
					t.Fatalf("n=%d: uneven stride at %d: gap %d, want %d", n, i, got, gap)
				}
			}
			stride := gap / period
			if gap%period != 0 || stride&(stride-1) != 0 {
				t.Fatalf("n=%d: stride %d cycles is not a power-of-two multiple of the period", n, gap)
			}
			// The tail is never more than one stride behind the run's end.
			last, end := s[len(s)-1].Cycle, n*period
			if end-last >= gap {
				t.Fatalf("n=%d: last kept sample at %d, run end %d, stride %d", n, last, end, gap)
			}
		}
	}
}
