package obs

import (
	"fmt"
	"strings"
	"sync"

	"tvsched/internal/isa"
)

// CPIStack is the cycle-accounting profiler: it consumes the typed event
// stream and decomposes every issue-width slot of the run into a CPI stack,
// so an aggregate IPC delta becomes an explanation — how many cycles went
// to branch redirects, cache misses, dispatch back-pressure, and (the
// paper's subject) each flavour of timing-violation handling. A parallel
// per-PC attribution table (attrib.go) localizes the violation penalty to
// static instructions with a true/false-positive split.
//
// Accounting is slot-based: a run of C cycles on a W-wide machine offers
// C·W issue slots. Each penalty source claims slots per the rules below;
// the base component is the residual, so the components sum to the total
// CPI exactly by construction. If the (deliberately simple) penalty rules
// oversubscribe the run — overlapping miss latencies can — every penalty
// component is scaled down proportionally, base is zero, and the report is
// flagged Saturated.
//
// Charging rules (slots):
//   - branch-mispredict: MispredictPenalty·W per mispredicted-branch fetch
//     (the front end redirects once per fetch of such a branch).
//   - icache-miss: W per instruction-fetch stall cycle (KindFetch.B).
//   - dcache-l2 / dcache-dram: W per cycle of the union of outstanding
//     load-miss windows (overlapped misses are not double-charged; the
//     component of the miss that extends the window gets the credit).
//   - dispatch-rob/iq/lsq/phys: the unused dispatch budget of each blocked
//     dispatch cycle (KindDispatchStall.B).
//   - violation-confined: 1 per confined handling — the faulty instruction
//     holds its stage one extra cycle; nothing else stops.
//   - slot-freeze: 1 per FUSR slot freeze.
//   - delayed-broadcast: the broadcast delay in cycles (dependents of one
//     producer wake late) per KindDelayedBroadcast.
//   - replay-bubble: W per replay-caused stall cycle (global or front,
//     StallCauseReplay), plus the errant instruction's extra replay
//     latency (KindReplay.B), plus squashed work on flush (KindFlush).
//   - ep-global-stall: W per predicted-violation whole-pipeline stall
//     cycle (StallCausePad).
//   - front-stall: W per predicted-violation in-order-engine stall cycle.
//
// The violation-attributed components are the last six; their sum is the
// measured confinement cost the paper's Figures 4/8 argue about.
//
// CPIStack is safe for concurrent use; for parallel suites prefer Shard,
// which gives each pipeline a lock-free accumulator merged at Flush.
type CPIStack struct {
	cfg CPIStackConfig
	mu  sync.Mutex
	acc cpiAcc
}

// CPIStackConfig parameterizes the accounting. The zero value of any field
// is replaced by the Core-1 default at construction.
type CPIStackConfig struct {
	// Width is the machine's issue width W (default 4).
	Width int
	// MispredictPenalty is the redirect cost in cycles charged per fetch
	// of a mispredicted branch (default 10, the Core-1 fetch-to-execute
	// loop).
	MispredictPenalty uint64
	// L1DLatency is the data-access latency of an L1D hit in cycles
	// (default 1); load accesses at or under it carry no miss penalty.
	L1DLatency uint64
	// L2DLatency is the total data-access latency of an L2 hit (default
	// 26); loads between the two thresholds charge dcache-l2, anything
	// slower charges dcache-dram.
	L2DLatency uint64
	// TopPCs bounds the attribution table in reports (default 20).
	TopPCs int
}

// fill applies defaults.
func (c *CPIStackConfig) fill() {
	if c.Width <= 0 {
		c.Width = 4
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 10
	}
	if c.L1DLatency == 0 {
		c.L1DLatency = 1
	}
	if c.L2DLatency == 0 {
		c.L2DLatency = 26
	}
	if c.TopPCs <= 0 {
		c.TopPCs = 20
	}
}

// NewCPIStack builds a profiler; zero config fields take Core-1 defaults.
func NewCPIStack(cfg CPIStackConfig) *CPIStack {
	cfg.fill()
	return &CPIStack{cfg: cfg}
}

// CPIComponent indexes the stack components.
type CPIComponent int

// The CPI stack components, in report order. CPIBase is the residual;
// components from CPIConfined onward are violation-attributed.
const (
	CPIBase CPIComponent = iota
	CPIBranchMispredict
	CPIICacheMiss
	CPIDCacheL2
	CPIDCacheDRAM
	CPIDispatchROB
	CPIDispatchIQ
	CPIDispatchLSQ
	CPIDispatchPhys
	CPIConfined
	CPISlotFreeze
	CPIDelayedBroadcast
	CPIReplayBubble
	CPIEPGlobalStall
	CPIFrontStall
	NumCPIComponents
)

// String names the component.
func (c CPIComponent) String() string {
	names := [NumCPIComponents]string{
		"base", "branch-mispredict", "icache-miss", "dcache-l2",
		"dcache-dram", "dispatch-rob", "dispatch-iq", "dispatch-lsq",
		"dispatch-phys", "violation-confined", "slot-freeze",
		"delayed-broadcast", "replay-bubble", "ep-global-stall",
		"front-stall",
	}
	if c < 0 || c >= NumCPIComponents {
		return "component(?)"
	}
	return names[c]
}

// Violation reports whether the component is violation-attributed.
func (c CPIComponent) Violation() bool { return c >= CPIConfined }

// cpiAcc is the accumulable state shared by the locked CPIStack path and
// the lock-free CPIShard path.
type cpiAcc struct {
	slots     [NumCPIComponents]uint64
	committed uint64
	// cycles holds cycle spans already closed (flushed shards); minCycle/
	// maxCycle track the live span. minCycle==0 means no live events yet
	// (machine cycles start at 1).
	cycles             uint64
	minCycle, maxCycle uint64
	// memBusyUntil sweeps the union of outstanding load-miss windows.
	memBusyUntil uint64
	pcs          attrib
}

// event consumes one event. Callers serialize access.
func (a *cpiAcc) event(cfg *CPIStackConfig, e Event) {
	if e.Cycle != 0 {
		if a.minCycle == 0 {
			a.minCycle = e.Cycle
		}
		if e.Cycle > a.maxCycle {
			a.maxCycle = e.Cycle
		}
	}
	w := uint64(cfg.Width)
	switch e.Kind {
	case KindRetire:
		a.committed++
	case KindFetch:
		if e.A != 0 {
			a.slots[CPIBranchMispredict] += cfg.MispredictPenalty * w
		}
		a.slots[CPIICacheMiss] += e.B * w
	case KindIssue:
		if e.Class == isa.Load && e.C > cfg.L1DLatency {
			// Miss window: the access completes at depReadyAt (A) and
			// extends a hit by C−L1DLatency cycles. Charge only the part
			// of [A−penalty, A) not already covered by an earlier miss,
			// so overlapped (MLP) misses are counted once.
			penalty := e.C - cfg.L1DLatency
			comp := CPIDCacheL2
			if e.C > cfg.L2DLatency {
				comp = CPIDCacheDRAM
			}
			if e.A > a.memBusyUntil {
				start := e.A - penalty
				if start < a.memBusyUntil {
					start = a.memBusyUntil
				}
				a.slots[comp] += (e.A - start) * w
				a.memBusyUntil = e.A
			}
		}
	case KindViolationPredicted:
		s := a.pcs.at(e.PC)
		s.Events++
		if e.A != 0 {
			s.TruePos++
		} else {
			s.FalsePos++
		}
		switch e.B {
		case RespConfined:
			// One extra stage cycle; the matching slot freeze and any
			// broadcast delay are charged by their own events, but belong
			// to this PC.
			a.slots[CPIConfined]++
			s.PenaltySlots += 2
		case RespGlobalStall, RespFrontStall:
			// The stall cycle itself arrives as a KindGlobalStall /
			// KindFrontStall event (bucket accounting); attribute its
			// width worth of slots to the PC here, where the PC is known.
			s.PenaltySlots += w
		}
	case KindReplay:
		s := a.pcs.at(e.PC)
		s.Events++
		s.PenaltySlots += e.A*w + e.B
		// Bucket side: bubble cycles normally arrive as StallCauseReplay
		// stall events (selective and in-order recovery), so only the errant
		// instruction's private replay latency (B) and any direct slots with
		// no stall events of their own (C, the fetch-path bubble) are
		// charged here.
		a.slots[CPIReplayBubble] += e.B + e.C
	case KindFlush:
		// Architectural replay: squashed instructions are wasted slots,
		// and the re-fetch bubble (B cycles) stalls the whole front end.
		a.slots[CPIReplayBubble] += e.A + e.B*w
	case KindSlotFreeze:
		a.slots[CPISlotFreeze]++
	case KindDelayedBroadcast:
		a.slots[CPIDelayedBroadcast] += e.A
		a.pcs.at(e.PC).PenaltySlots += e.A
	case KindDispatchStall:
		comp := CPIDispatchROB
		switch e.A {
		case DispatchStallIQ:
			comp = CPIDispatchIQ
		case DispatchStallLSQ:
			comp = CPIDispatchLSQ
		case DispatchStallPhys:
			comp = CPIDispatchPhys
		}
		a.slots[comp] += e.B
	case KindGlobalStall:
		if e.A == StallCauseReplay {
			a.slots[CPIReplayBubble] += w
		} else {
			a.slots[CPIEPGlobalStall] += w
		}
	case KindFrontStall:
		if e.A == StallCauseReplay {
			a.slots[CPIReplayBubble] += w
		} else {
			a.slots[CPIFrontStall] += w
		}
	}
}

// span returns the total observed cycles: closed spans plus the live one.
func (a *cpiAcc) span() uint64 {
	s := a.cycles
	if a.minCycle != 0 {
		s += a.maxCycle - a.minCycle + 1
	}
	return s
}

// closeSpan folds the live cycle span into cycles and resets the sweep, so
// the accumulator can be merged into another timeline.
func (a *cpiAcc) closeSpan() {
	a.cycles = a.span()
	a.minCycle, a.maxCycle = 0, 0
	a.memBusyUntil = 0
}

// merge folds o (whose span must be closed) into a.
func (a *cpiAcc) merge(o *cpiAcc) {
	for i := range a.slots {
		a.slots[i] += o.slots[i]
	}
	a.committed += o.committed
	a.cycles += o.cycles
	a.pcs.merge(&o.pcs)
}

// Event implements Observer (mutex-guarded; shareable across pipelines).
func (s *CPIStack) Event(e Event) {
	s.mu.Lock()
	s.acc.event(&s.cfg, e)
	s.mu.Unlock()
}

// Config returns the effective (default-filled) configuration.
func (s *CPIStack) Config() CPIStackConfig { return s.cfg }

// CPIShard is a per-pipeline lock-free accumulator (see Sharder). Not safe
// for concurrent use; give each pipeline its own.
type CPIShard struct {
	parent *CPIStack
	acc    cpiAcc
}

// Shard implements Sharder.
func (s *CPIStack) Shard() ShardObserver {
	return &CPIShard{parent: s}
}

// Event implements Observer.
func (sh *CPIShard) Event(e Event) {
	sh.acc.event(&sh.parent.cfg, e)
}

// Flush closes the shard's cycle span (each pipeline has its own timeline,
// so spans add) and folds everything into the parent profiler, leaving the
// shard empty for reuse.
func (sh *CPIShard) Flush() {
	sh.acc.closeSpan()
	p := sh.parent
	p.mu.Lock()
	p.acc.merge(&sh.acc)
	p.mu.Unlock()
	sh.acc = cpiAcc{}
}

// CPIComponentValue is one rendered stack component.
type CPIComponentValue struct {
	Name  string  `json:"name"`
	Slots float64 `json:"slots"`
	CPI   float64 `json:"cpi"`
}

// CPIStackReport is the rendered CPI stack. Components always sum to CPI
// (base is the residual; see the CPIStack documentation).
type CPIStackReport struct {
	Width     int    `json:"width"`
	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	// CPI is cycles per committed instruction over the observed span.
	CPI        float64             `json:"cpi"`
	Components []CPIComponentValue `json:"components"`
	// ViolationCPI sums the violation-attributed components; and
	// ViolationCycles is the same cost expressed in whole-machine cycles
	// (slots divided by width) — the paper's confinement cost.
	ViolationCPI    float64 `json:"violation_cpi"`
	ViolationCycles float64 `json:"violation_cycles"`
	// Saturated flags a run whose penalty rules oversubscribed the
	// observed cycles; penalties were rescaled and base is zero.
	Saturated bool `json:"saturated,omitempty"`
	// TopPCs is the per-PC violation-penalty attribution (largest first).
	TopPCs []PCStat `json:"top_pcs,omitempty"`
}

// Report renders the stack. Flush any outstanding shards first, or their
// events are not included.
func (s *CPIStack) Report() CPIStackReport {
	s.mu.Lock()
	defer s.mu.Unlock()

	w := uint64(s.cfg.Width)
	cycles := s.acc.span()
	rep := CPIStackReport{
		Width:     s.cfg.Width,
		Cycles:    cycles,
		Committed: s.acc.committed,
		TopPCs:    s.acc.pcs.top(s.cfg.TopPCs),
	}
	if s.acc.committed == 0 || cycles == 0 {
		return rep
	}
	totalSlots := float64(cycles * w)
	denom := float64(w) * float64(s.acc.committed)

	var raw [NumCPIComponents]float64
	var penaltySum float64
	for c := CPIComponent(1); c < NumCPIComponents; c++ {
		raw[c] = float64(s.acc.slots[c])
		penaltySum += raw[c]
	}
	if penaltySum > totalSlots {
		scale := totalSlots / penaltySum
		for c := CPIComponent(1); c < NumCPIComponents; c++ {
			raw[c] *= scale
		}
		raw[CPIBase] = 0
		rep.Saturated = true
	} else {
		raw[CPIBase] = totalSlots - penaltySum
	}

	rep.CPI = float64(cycles) / float64(s.acc.committed)
	for c := CPIComponent(0); c < NumCPIComponents; c++ {
		cpi := raw[c] / denom
		rep.Components = append(rep.Components, CPIComponentValue{
			Name: c.String(), Slots: raw[c], CPI: cpi,
		})
		if c.Violation() {
			rep.ViolationCPI += cpi
			rep.ViolationCycles += raw[c] / float64(w)
		}
	}
	return rep
}

// Sum returns the sum of the component CPIs (equals CPI up to float
// rounding; the acceptance tests pin the bound).
func (r *CPIStackReport) Sum() float64 {
	var s float64
	for _, c := range r.Components {
		s += c.CPI
	}
	return s
}

// Format renders the report as a human-readable table with proportional
// bars (the tvsim -cpistack view).
func (r *CPIStackReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI stack: W=%d  cycles=%d  committed=%d  CPI=%.4f  IPC=%.4f\n",
		r.Width, r.Cycles, r.Committed, r.CPI, safeInv(r.CPI))
	if r.Saturated {
		b.WriteString("  (saturated: penalty rules oversubscribed the run; rescaled, base=0)\n")
	}
	const width = 40
	for _, c := range r.Components {
		frac := 0.0
		if r.CPI > 0 {
			frac = c.CPI / r.CPI
		}
		fmt.Fprintf(&b, "  %-20s %8.4f %6.1f%% %s\n",
			c.Name, c.CPI, 100*frac, strings.Repeat("#", int(frac*width+0.5)))
	}
	fmt.Fprintf(&b, "  violation-attributed CPI %.4f (%.1f%% of cycles, %.0f cycles)\n",
		r.ViolationCPI, 100*safeDiv(r.ViolationCPI, r.CPI), r.ViolationCycles)
	if len(r.TopPCs) > 0 {
		b.WriteString("  top PCs by violation penalty (slots; TP/FP = prediction accuracy):\n")
		for _, pc := range r.TopPCs {
			fmt.Fprintf(&b, "    pc=%#08x %10d slots %8d events  TP %-7d FP %d\n",
				pc.PC, pc.PenaltySlots, pc.Events, pc.TruePos, pc.FalsePos)
		}
	}
	return b.String()
}

func safeInv(v float64) float64 {
	if v == 0 {
		return 0
	}
	return 1 / v
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
