package obs

import (
	"math"
	"strings"
	"testing"

	"tvsched/internal/isa"
)

func TestCPIComponentStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := CPIComponent(0); c < NumCPIComponents; c++ {
		s := c.String()
		if s == "" || strings.Contains(s, "?") {
			t.Fatalf("component %d has no name", c)
		}
		if seen[s] {
			t.Fatalf("duplicate component name %q", s)
		}
		seen[s] = true
	}
	if CPIBase.Violation() || CPIDCacheDRAM.Violation() {
		t.Fatal("non-violation components flagged")
	}
	for c := CPIConfined; c < NumCPIComponents; c++ {
		if !c.Violation() {
			t.Fatalf("%v not violation-attributed", c)
		}
	}
}

// stackSlots reads a component's raw slot count out of a report.
func stackSlots(t *testing.T, rep CPIStackReport, c CPIComponent) float64 {
	t.Helper()
	for _, cv := range rep.Components {
		if cv.Name == c.String() {
			return cv.Slots
		}
	}
	t.Fatalf("component %v missing from report", c)
	return 0
}

func TestCPIStackCharging(t *testing.T) {
	s := NewCPIStack(CPIStackConfig{Width: 4, MispredictPenalty: 10, L1DLatency: 1, L2DLatency: 26})
	// A 100-cycle span: first and last events pin it.
	s.Event(Event{Kind: KindFetch, Cycle: 1})
	s.Event(Event{Kind: KindRetire, Cycle: 100})

	s.Event(Event{Kind: KindFetch, Cycle: 2, A: 1, B: 3})                       // mispredict + 3 icache stall cycles
	s.Event(Event{Kind: KindIssue, Cycle: 5, Class: isa.Load, A: 40, C: 11})    // L2 miss: 10-cycle window
	s.Event(Event{Kind: KindIssue, Cycle: 6, Class: isa.Load, A: 45, C: 11})    // overlaps: only [40,45) uncovered
	s.Event(Event{Kind: KindIssue, Cycle: 7, Class: isa.Load, A: 90, C: 50})    // DRAM miss, full 49-cycle window
	s.Event(Event{Kind: KindDispatchStall, Cycle: 8, A: DispatchStallIQ, B: 4}) // 4 unused slots
	s.Event(Event{Kind: KindViolationPredicted, Cycle: 9, PC: 0x40, A: 1, B: RespConfined})
	s.Event(Event{Kind: KindSlotFreeze, Cycle: 9})
	s.Event(Event{Kind: KindDelayedBroadcast, Cycle: 10, PC: 0x40, A: 2})
	s.Event(Event{Kind: KindReplay, Cycle: 11, PC: 0x44, A: 3, B: 8, C: 0}) // bubble arrives via stall events
	s.Event(Event{Kind: KindGlobalStall, Cycle: 12, A: StallCauseReplay})   // 1 of the 3 bubble cycles
	s.Event(Event{Kind: KindGlobalStall, Cycle: 13, A: StallCausePad})      // EP padding stall
	s.Event(Event{Kind: KindFrontStall, Cycle: 14, A: StallCausePad})       // in-order padding stall
	s.Event(Event{Kind: KindFlush, Cycle: 15, A: 6, B: 3})                  // 6 squashed + 3-cycle refetch bubble

	rep := s.Report()
	if rep.Cycles != 100 || rep.Committed != 1 {
		t.Fatalf("span: cycles=%d committed=%d", rep.Cycles, rep.Committed)
	}
	want := map[CPIComponent]float64{
		CPIBranchMispredict: 40,           // 10 cycles x W
		CPIICacheMiss:       12,           // 3 cycles x W
		CPIDCacheL2:         (10 + 5) * 4, // [30,40) then the uncovered [40,45)
		CPIDCacheDRAM:       45 * 4,       // [45,90) after the union sweep
		CPIDispatchIQ:       4,
		CPIConfined:         1,
		CPISlotFreeze:       1,
		CPIDelayedBroadcast: 2,
		CPIReplayBubble:     8 + 4 + 6 + 12, // private replay + 1 stall cycle x W + squashed + refetch x W
		CPIEPGlobalStall:    4,
		CPIFrontStall:       4,
	}
	for c, w := range want {
		if got := stackSlots(t, rep, c); got != w {
			t.Errorf("%v slots = %v, want %v", c, got, w)
		}
	}
	if rep.Saturated {
		t.Fatal("unexpected saturation")
	}
	// Per-PC attribution: 0x40 got confined (2) + broadcast delay (2);
	// 0x44 got the replay (3x4 + 8).
	var got40, got44 uint64
	for _, pc := range rep.TopPCs {
		switch pc.PC {
		case 0x40:
			got40 = pc.PenaltySlots
		case 0x44:
			got44 = pc.PenaltySlots
		}
	}
	if got40 != 4 || got44 != 20 {
		t.Fatalf("attribution: pc40=%d pc44=%d (want 4, 20)", got40, got44)
	}
}

func TestCPIStackSumMatchesCPI(t *testing.T) {
	s := NewCPIStack(CPIStackConfig{})
	// A pseudo-random but deterministic stream.
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { x ^= x << 13; x ^= x >> 7; x ^= x << 17; return x }
	for i := uint64(1); i <= 5000; i++ {
		switch next() % 8 {
		case 0:
			s.Event(Event{Kind: KindRetire, Cycle: i})
		case 1:
			s.Event(Event{Kind: KindFetch, Cycle: i, A: next() % 2, B: next() % 4})
		case 2:
			s.Event(Event{Kind: KindIssue, Cycle: i, Class: isa.Load, A: i + 30, C: 1 + next()%40})
		case 3:
			s.Event(Event{Kind: KindDispatchStall, Cycle: i, A: next() % 4, B: 1 + next()%4})
		case 4:
			s.Event(Event{Kind: KindViolationPredicted, Cycle: i, PC: next() % 64, A: next() % 2, B: RespConfined})
		case 5:
			s.Event(Event{Kind: KindReplay, Cycle: i, PC: next() % 64, A: 3, B: 8})
		case 6:
			s.Event(Event{Kind: KindGlobalStall, Cycle: i, A: next() % 2})
		case 7:
			s.Event(Event{Kind: KindSlotFreeze, Cycle: i})
		}
	}
	rep := s.Report()
	if rep.Committed == 0 {
		t.Fatal("no retires in stream")
	}
	if d := math.Abs(rep.Sum() - rep.CPI); d > 1e-9 {
		t.Fatalf("components sum %.12f != CPI %.12f (diff %g)", rep.Sum(), rep.CPI, d)
	}
}

func TestCPIStackSaturation(t *testing.T) {
	s := NewCPIStack(CPIStackConfig{Width: 4})
	s.Event(Event{Kind: KindRetire, Cycle: 1})
	s.Event(Event{Kind: KindRetire, Cycle: 10}) // 10-cycle span = 40 slots
	for i := 0; i < 100; i++ {
		s.Event(Event{Kind: KindGlobalStall, Cycle: 5, A: StallCausePad}) // 400 slots of penalty
	}
	rep := s.Report()
	if !rep.Saturated {
		t.Fatal("oversubscribed run not flagged")
	}
	if base := stackSlots(t, rep, CPIBase); base != 0 {
		t.Fatalf("saturated base = %v", base)
	}
	if d := math.Abs(rep.Sum() - rep.CPI); d > 1e-9 {
		t.Fatalf("saturated components sum %.12f != CPI %.12f", rep.Sum(), rep.CPI)
	}
}

func TestCPIStackShardEquivalence(t *testing.T) {
	mk := func() []Event {
		var evs []Event
		for i := uint64(1); i <= 200; i++ {
			evs = append(evs,
				Event{Kind: KindRetire, Cycle: i},
				Event{Kind: KindViolationPredicted, Cycle: i, PC: i % 8, A: 1, B: RespConfined},
				Event{Kind: KindSlotFreeze, Cycle: i})
		}
		return evs
	}
	direct := NewCPIStack(CPIStackConfig{})
	for _, e := range mk() {
		direct.Event(e)
	}
	sharded := NewCPIStack(CPIStackConfig{})
	sh := sharded.Shard()
	for _, e := range mk() {
		sh.Event(e)
	}
	sh.Flush()
	a, b := direct.Report(), sharded.Report()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.CPI != b.CPI {
		t.Fatalf("shard changed totals: %+v vs %+v", a, b)
	}
	for i := range a.Components {
		if a.Components[i] != b.Components[i] {
			t.Fatalf("component %s differs: %+v vs %+v",
				a.Components[i].Name, a.Components[i], b.Components[i])
		}
	}
	if len(a.TopPCs) != len(b.TopPCs) {
		t.Fatalf("attribution size differs: %d vs %d", len(a.TopPCs), len(b.TopPCs))
	}
	for i := range a.TopPCs {
		if a.TopPCs[i] != b.TopPCs[i] {
			t.Fatalf("attribution differs at %d: %+v vs %+v", i, a.TopPCs[i], b.TopPCs[i])
		}
	}

	// Two shards over disjoint halves of two independent pipelines: spans
	// add, totals match the union.
	split := NewCPIStack(CPIStackConfig{})
	s1, s2 := split.Shard(), split.Shard()
	for _, e := range mk() {
		if e.Cycle%2 == 0 {
			s1.Event(e)
		} else {
			s2.Event(e)
		}
	}
	s1.Flush()
	s2.Flush()
	c := split.Report()
	if c.Committed != a.Committed {
		t.Fatalf("split committed %d, want %d", c.Committed, a.Committed)
	}
	if got := stackSlots(t, c, CPIConfined); got != stackSlots(t, a, CPIConfined) {
		t.Fatalf("split confined slots %v, want %v", got, stackSlots(t, a, CPIConfined))
	}
}

func TestCPIStackFormat(t *testing.T) {
	s := NewCPIStack(CPIStackConfig{})
	s.Event(Event{Kind: KindRetire, Cycle: 1})
	s.Event(Event{Kind: KindViolationPredicted, Cycle: 2, PC: 0x80, A: 1, B: RespConfined})
	s.Event(Event{Kind: KindRetire, Cycle: 20})
	rep := s.Report()
	out := rep.Format()
	for _, want := range []string{"CPI stack", "violation-confined", "top PCs", "0x00000080"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestAttribTop(t *testing.T) {
	var a attrib
	a.at(1).PenaltySlots = 5
	a.at(2).PenaltySlots = 9
	a.at(3).PenaltySlots = 5
	top := a.top(2)
	if len(top) != 2 || top[0].PC != 2 || top[1].PC != 1 {
		t.Fatalf("top order wrong: %+v", top)
	}
	if all := a.top(0); len(all) != 3 {
		t.Fatalf("top(0) = %d entries", len(all))
	}
}
