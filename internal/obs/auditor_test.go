package obs

import (
	"strings"
	"testing"
)

// feed pushes a synthetic stream of n events of kind k with the given payload
// template into a.
func feed(a *Auditor, k Kind, n int, tmpl Event) {
	for i := 0; i < n; i++ {
		e := tmpl
		e.Kind = k
		a.Event(e)
	}
}

// TestAuditorReconcileClean builds a self-consistent synthetic stream and
// expects a clean reconciliation.
func TestAuditorReconcileClean(t *testing.T) {
	a := NewAuditor()
	for seq := uint64(0); seq < 10; seq++ {
		a.Event(Event{Kind: KindFetch, Seq: seq})
		a.Event(Event{Kind: KindDispatch, Seq: seq})
		a.Event(Event{Kind: KindIssue, Seq: seq})
		a.Event(Event{Kind: KindRetire, Seq: seq})
	}
	feed(a, KindViolationPredicted, 3, Event{})
	feed(a, KindViolationActual, 2, Event{})
	feed(a, KindReplay, 2, Event{})
	feed(a, KindSlotFreeze, 4, Event{})
	feed(a, KindGlobalStall, 2, Event{A: StallCausePad})
	feed(a, KindFrontStall, 1, Event{A: StallCauseReplay})
	feed(a, KindDispatchStall, 5, Event{A: DispatchStallROB})
	a.Event(Event{Kind: KindFlush, A: 6})
	for c := uint64(1); c <= 40; c++ {
		a.Event(Event{Kind: KindSample, Cycle: c, A: 2, B: 7})
	}

	exp := Expected{
		Cycles: 40, Fetched: 10, Dispatched: 10, Selected: 10, Committed: 10,
		PredictedViolations: 3, ActualViolations: 2, Replays: 2, SquashedInsts: 6,
		SlotFreezes: 4, GlobalStalls: 2, FrontStalls: 1, DispatchStalls: 5,
		SumIQOcc: 80, SumROBOcc: 280, SamplePeriod: 1,
	}
	if err := a.Reconcile(exp); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	if pad, replay := a.GlobalStallCauses(); pad != 2 || replay != 0 {
		t.Errorf("global stall causes pad=%d replay=%d", pad, replay)
	}
	if pad, replay := a.FrontStallCauses(); pad != 0 || replay != 1 {
		t.Errorf("front stall causes pad=%d replay=%d", pad, replay)
	}
	if got := a.Count(KindRetire); got != 10 {
		t.Errorf("Count(KindRetire) = %d", got)
	}
}

// TestAuditorReconcileJoinsEveryMismatch checks each rule fires and that
// multiple violations are all reported.
func TestAuditorReconcileJoinsEveryMismatch(t *testing.T) {
	a := NewAuditor()
	feed(a, KindFetch, 3, Event{})
	feed(a, KindRetire, 2, Event{})
	err := a.Reconcile(Expected{Cycles: 100, Fetched: 5, Committed: 4})
	if err == nil {
		t.Fatal("mismatched stream accepted")
	}
	for _, want := range []string{"Fetched", "Committed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses the %s mismatch", err, want)
		}
	}
}

// TestAuditorRetireOrder checks program-order enforcement on retires.
func TestAuditorRetireOrder(t *testing.T) {
	a := NewAuditor()
	a.Event(Event{Kind: KindRetire, Seq: 5, Cycle: 10})
	a.Event(Event{Kind: KindRetire, Seq: 4, Cycle: 11}) // out of order
	err := a.Reconcile(Expected{Committed: 2})
	if err == nil || !strings.Contains(err.Error(), "program order") {
		t.Fatalf("out-of-order retire not reported: %v", err)
	}

	// Seq 0 first is legal (the guard must not treat seq 0 as a sentinel).
	a = NewAuditor()
	a.Event(Event{Kind: KindRetire, Seq: 0})
	a.Event(Event{Kind: KindRetire, Seq: 1})
	if err := a.Reconcile(Expected{Committed: 2}); err != nil {
		t.Fatalf("in-order retires rejected: %v", err)
	}
}

// TestAuditorFetchStallBound checks the icache-residue rule: stall cycles
// charged to fetches can never exceed total cycles.
func TestAuditorFetchStallBound(t *testing.T) {
	a := NewAuditor()
	a.Event(Event{Kind: KindFetch, B: 500})
	err := a.Reconcile(Expected{Cycles: 100, Fetched: 1})
	if err == nil || !strings.Contains(err.Error(), "icache stall") {
		t.Fatalf("excess icache stall cycles not reported: %v", err)
	}
}

// TestAuditorSampleCadence checks both sample-reconciliation modes.
func TestAuditorSampleCadence(t *testing.T) {
	// Period 1: exact count and exact occupancy sums.
	a := NewAuditor()
	feed(a, KindSample, 9, Event{A: 1, B: 2})
	err := a.Reconcile(Expected{Cycles: 10, SumIQOcc: 9, SumROBOcc: 18, SamplePeriod: 1})
	if err == nil || !strings.Contains(err.Error(), "samples") {
		t.Fatalf("missing sample not reported: %v", err)
	}
	a = NewAuditor()
	feed(a, KindSample, 10, Event{A: 1, B: 2})
	err = a.Reconcile(Expected{Cycles: 10, SumIQOcc: 9, SumROBOcc: 20, SamplePeriod: 1})
	if err == nil || !strings.Contains(err.Error(), "IQ occupancy") {
		t.Fatalf("occupancy sum drift not reported: %v", err)
	}

	// Coarser period: count within ±1 of the cadence, sums unchecked.
	a = NewAuditor()
	feed(a, KindSample, 15, Event{A: 99, B: 99})
	if err := a.Reconcile(Expected{Cycles: 1000, SamplePeriod: 64}); err != nil {
		t.Fatalf("in-cadence samples rejected: %v", err)
	}
	a = NewAuditor()
	feed(a, KindSample, 40, Event{})
	if err := a.Reconcile(Expected{Cycles: 1000, SamplePeriod: 64}); err == nil {
		t.Fatal("off-cadence sample count accepted")
	}
}

// TestAuditorFlushRules checks the flush-subset and squash-payload rules.
// Every real flush rides on a replay, so the streams feed matching KindReplay
// events.
func TestAuditorFlushRules(t *testing.T) {
	stream := func(replays int) *Auditor {
		a := NewAuditor()
		feed(a, KindReplay, replays, Event{})
		a.Event(Event{Kind: KindFlush, A: 3})
		a.Event(Event{Kind: KindFlush, A: 4})
		return a
	}
	if err := stream(2).Reconcile(Expected{Replays: 2, SquashedInsts: 7}); err != nil {
		t.Fatalf("consistent flushes rejected: %v", err)
	}
	err := stream(1).Reconcile(Expected{Replays: 1, SquashedInsts: 7})
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("flushes exceeding replays accepted: %v", err)
	}
	err = stream(2).Reconcile(Expected{Replays: 2, SquashedInsts: 6})
	if err == nil || !strings.Contains(err.Error(), "squashed") {
		t.Fatalf("squash payload drift accepted: %v", err)
	}
}

// TestAuditorReset checks Reset discards all accumulated state, aligning the
// auditor with a post-warmup stats reset.
func TestAuditorReset(t *testing.T) {
	a := NewAuditor()
	feed(a, KindFetch, 7, Event{B: 3})
	a.Event(Event{Kind: KindRetire, Seq: 9})
	a.Event(Event{Kind: KindRetire, Seq: 1}) // poison the order tracker
	a.Reset()
	a.Event(Event{Kind: KindRetire, Seq: 0})
	if err := a.Reconcile(Expected{Committed: 1}); err != nil {
		t.Fatalf("reset auditor still failing: %v", err)
	}
}
