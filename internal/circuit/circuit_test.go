package circuit

import (
	"testing"
	"testing/quick"
)

// xorNet builds a 2-input XOR from NAND gates (the classic 4-NAND XOR).
func xorNet(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("xor4nand", 2)
	a, c := b.Input(0), b.Input(1)
	n1 := b.Gate(Nand, a, c)
	n2 := b.Gate(Nand, a, n1)
	n3 := b.Gate(Nand, c, n1)
	n4 := b.Gate(Nand, n2, n3)
	b.Output(n4)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestXorFromNands(t *testing.T) {
	nl := xorNet(t)
	st := nl.NewState()
	for _, tc := range []struct{ a, b, want bool }{
		{false, false, false}, {false, true, true},
		{true, false, true}, {true, true, false},
	} {
		nl.Eval([]bool{tc.a, tc.b}, st)
		if got := nl.OutputValues(st)[0]; got != tc.want {
			t.Fatalf("xor(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestGateTypes(t *testing.T) {
	b := NewBuilder("alltypes", 3)
	x, y, z := b.Input(0), b.Input(1), b.Input(2)
	ids := []int{
		b.Gate(And, x, y), b.Gate(Or, x, y), b.Gate(Nand, x, y),
		b.Gate(Nor, x, y), b.Gate(Xor, x, y), b.Gate(Xnor, x, y),
		b.Not(x), b.Gate(Buf, x), b.Mux(z, x, y),
	}
	for _, id := range ids {
		b.Output(id)
	}
	nl := b.MustBuild()
	st := nl.NewState()
	check := func(x, y, z bool, want []bool) {
		nl.Eval([]bool{x, y, z}, st)
		got := nl.OutputValues(st)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("inputs (%v,%v,%v): output %d = %v, want %v", x, y, z, i, got[i], want[i])
			}
		}
	}
	// and or nand nor xor xnor not buf mux
	check(true, false, false, []bool{false, true, true, false, true, false, false, true, true})
	check(true, true, true, []bool{true, true, false, false, false, true, false, true, true})
	check(false, true, true, []bool{false, true, true, false, true, false, true, false, true})
}

func TestLogicDepth(t *testing.T) {
	nl := xorNet(t)
	if d := nl.LogicDepth(); d != 3 {
		t.Fatalf("4-NAND XOR depth = %d, want 3", d)
	}
}

func TestToggles(t *testing.T) {
	nl := xorNet(t)
	prev := nl.Eval([]bool{false, false}, nl.NewState())
	cur := nl.Eval([]bool{false, true}, nl.NewState())
	tg := nl.Toggles(prev, cur, nil)
	if len(tg) == 0 {
		t.Fatal("input change toggled no gates")
	}
	// Same input twice: no toggles.
	cur2 := nl.Eval([]bool{false, true}, nl.NewState())
	if tg2 := nl.Toggles(cur, cur2, nil); len(tg2) != 0 {
		t.Fatalf("identical inputs toggled %d gates", len(tg2))
	}
}

func TestReduceTrees(t *testing.T) {
	b := NewBuilder("reduce", 7)
	var ins []int
	for i := 0; i < 7; i++ {
		ins = append(ins, b.Input(i))
	}
	b.Output(b.ReduceAnd(ins))
	b.Output(b.ReduceOr(ins))
	nl := b.MustBuild()
	st := nl.NewState()

	all := []bool{true, true, true, true, true, true, true}
	nl.Eval(all, st)
	if out := nl.OutputValues(st); !out[0] || !out[1] {
		t.Fatal("all-ones reduce")
	}
	one := make([]bool, 7)
	one[3] = true
	nl.Eval(one, st)
	if out := nl.OutputValues(st); out[0] || !out[1] {
		t.Fatal("single-one reduce")
	}
	nl.Eval(make([]bool, 7), st)
	if out := nl.OutputValues(st); out[0] || out[1] {
		t.Fatal("all-zero reduce")
	}
	// Balanced tree depth: ceil(log2(7)) = 3.
	if d := nl.LogicDepth(); d != 3 {
		t.Fatalf("reduce depth %d, want 3", d)
	}
}

func TestValidateRejectsForwardRefs(t *testing.T) {
	nl := &Netlist{Name: "bad", NumInputs: 1, Gates: []Gate{{Type: Not, In: []int{2}}}}
	if err := nl.Validate(); err == nil {
		t.Fatal("forward reference accepted")
	}
	nl2 := &Netlist{Name: "bad2", NumInputs: 1, Gates: []Gate{{Type: Mux2, In: []int{0, 0}}}}
	if err := nl2.Validate(); err == nil {
		t.Fatal("underdriven mux accepted")
	}
	nl3 := &Netlist{Name: "bad3", NumInputs: 1, Outputs: []int{5}}
	if err := nl3.Validate(); err == nil {
		t.Fatal("dangling output accepted")
	}
}

func TestCountByType(t *testing.T) {
	nl := xorNet(t)
	c := nl.CountByType()
	if c[Nand] != 4 {
		t.Fatalf("nand count %d", c[Nand])
	}
	if nl.NumGates() != 4 {
		t.Fatalf("gate count %d", nl.NumGates())
	}
}

// Property: evaluation is deterministic and Toggles(x, x) is empty.
func TestEvalDeterministicProperty(t *testing.T) {
	nl := xorNet(t)
	f := func(a, b bool) bool {
		s1 := nl.Eval([]bool{a, b}, nl.NewState())
		s2 := nl.Eval([]bool{a, b}, nl.NewState())
		return len(nl.Toggles(s1, s2, nil)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGateTypeString(t *testing.T) {
	for g := And; g < NumGateTypes; g++ {
		if g.String() == "" {
			t.Fatalf("empty name for %d", g)
		}
	}
}

func BenchmarkEvalXor(b *testing.B) {
	bld := NewBuilder("bench", 2)
	x, y := bld.Input(0), bld.Input(1)
	bld.Output(bld.Xor2(x, y))
	nl := bld.MustBuild()
	st := nl.NewState()
	in := []bool{true, false}
	for i := 0; i < b.N; i++ {
		in[0] = !in[0]
		nl.Eval(in, st)
	}
}
