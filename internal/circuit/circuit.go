// Package circuit provides the gate-level substrate for the paper's
// supplemental study (§S1): combinational netlists, functional evaluation in
// topological order, toggle tracking (which gates change state between two
// consecutive input vectors — the definition behind the φ/ψ commonality
// metric), and structural metrics (gate count, logic depth) reported in
// Table 3. It plays the role Cadence NC-Verilog plays in the paper's
// cross-layer methodology (Figure 6).
package circuit

import "fmt"

// GateType enumerates the standard-cell functions used by the netlist
// builders.
type GateType uint8

const (
	And GateType = iota
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	// Mux2 selects In[1] when In[0] is false and In[2] when In[0] is true.
	Mux2
	NumGateTypes
)

// String returns the cell name.
func (t GateType) String() string {
	switch t {
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	case Xnor:
		return "xnor"
	case Not:
		return "not"
	case Buf:
		return "buf"
	case Mux2:
		return "mux2"
	default:
		return fmt.Sprintf("gate(%d)", uint8(t))
	}
}

// Gate is one cell instance. Inputs are node ids: ids below the netlist's
// NumInputs refer to primary inputs; higher ids refer to earlier gates'
// outputs (the netlist is topologically ordered by construction).
type Gate struct {
	Type GateType
	In   []int
}

// Netlist is a combinational circuit.
type Netlist struct {
	Name      string
	NumInputs int
	Gates     []Gate
	Outputs   []int
}

// NumGates returns the cell count.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumNodes returns inputs + gates.
func (n *Netlist) NumNodes() int { return n.NumInputs + len(n.Gates) }

// nodeID converts a gate index to its node id.
func (n *Netlist) nodeID(gateIdx int) int { return n.NumInputs + gateIdx }

// Validate checks topological ordering and reference validity.
func (n *Netlist) Validate() error {
	for i, g := range n.Gates {
		if len(g.In) == 0 {
			return fmt.Errorf("circuit %s: gate %d has no inputs", n.Name, i)
		}
		want := map[GateType]int{Not: 1, Buf: 1, Mux2: 3}
		if w, ok := want[g.Type]; ok && len(g.In) != w {
			return fmt.Errorf("circuit %s: gate %d (%v) has %d inputs, want %d",
				n.Name, i, g.Type, len(g.In), w)
		}
		if !ok2in(g.Type) && len(g.In) < 1 {
			return fmt.Errorf("circuit %s: gate %d underdriven", n.Name, i)
		}
		for _, in := range g.In {
			if in < 0 || in >= n.nodeID(i) {
				return fmt.Errorf("circuit %s: gate %d references node %d (not topological)",
					n.Name, i, in)
			}
		}
	}
	for _, o := range n.Outputs {
		if o < 0 || o >= n.NumNodes() {
			return fmt.Errorf("circuit %s: output node %d out of range", n.Name, o)
		}
	}
	return nil
}

func ok2in(t GateType) bool {
	switch t {
	case Not, Buf, Mux2:
		return false
	default:
		return true
	}
}

// State is the evaluation scratch for one netlist: one bool per node.
type State []bool

// NewState allocates evaluation state for n.
func (n *Netlist) NewState() State { return make(State, n.NumNodes()) }

// Eval computes all node values for the given primary inputs, storing them
// in st (which must come from NewState). It returns st for chaining.
func (n *Netlist) Eval(inputs []bool, st State) State {
	if len(inputs) != n.NumInputs {
		panic(fmt.Sprintf("circuit %s: %d inputs, want %d", n.Name, len(inputs), n.NumInputs))
	}
	copy(st, inputs)
	for i := range n.Gates {
		g := &n.Gates[i]
		var v bool
		switch g.Type {
		case And, Nand:
			v = true
			for _, in := range g.In {
				v = v && st[in]
			}
			if g.Type == Nand {
				v = !v
			}
		case Or, Nor:
			v = false
			for _, in := range g.In {
				v = v || st[in]
			}
			if g.Type == Nor {
				v = !v
			}
		case Xor, Xnor:
			v = false
			for _, in := range g.In {
				v = v != st[in]
			}
			if g.Type == Xnor {
				v = !v
			}
		case Not:
			v = !st[g.In[0]]
		case Buf:
			v = st[g.In[0]]
		case Mux2:
			if st[g.In[0]] {
				v = st[g.In[2]]
			} else {
				v = st[g.In[1]]
			}
		}
		st[n.nodeID(i)] = v
	}
	return st
}

// OutputValues extracts the output bits from an evaluated state.
func (n *Netlist) OutputValues(st State) []bool {
	out := make([]bool, len(n.Outputs))
	for i, o := range n.Outputs {
		out[i] = st[o]
	}
	return out
}

// Toggles compares two evaluated states and appends to dst the gate indices
// whose outputs differ — the gates that "change state" in the §S1 sense when
// the circuit input moves from one vector to the next.
func (n *Netlist) Toggles(prev, cur State, dst []int) []int {
	for i := range n.Gates {
		id := n.nodeID(i)
		if prev[id] != cur[id] {
			dst = append(dst, i)
		}
	}
	return dst
}

// LogicDepth returns the maximum number of gates on any input-to-output
// path, the metric of Table 3.
func (n *Netlist) LogicDepth() int {
	depth := make([]int, n.NumNodes())
	max := 0
	for i := range n.Gates {
		d := 0
		for _, in := range n.Gates[i].In {
			if depth[in] > d {
				d = depth[in]
			}
		}
		depth[n.nodeID(i)] = d + 1
	}
	for _, o := range n.Outputs {
		if depth[o] > max {
			max = depth[o]
		}
	}
	return max
}

// CountByType returns the per-cell-type histogram (for the power model).
func (n *Netlist) CountByType() [NumGateTypes]int {
	var c [NumGateTypes]int
	for i := range n.Gates {
		c[n.Gates[i].Type]++
	}
	return c
}

// Builder incrementally constructs a topologically ordered netlist.
type Builder struct {
	nl Netlist
}

// NewBuilder starts a netlist with the given name and primary input count.
func NewBuilder(name string, numInputs int) *Builder {
	return &Builder{nl: Netlist{Name: name, NumInputs: numInputs}}
}

// Input returns the node id of primary input i.
func (b *Builder) Input(i int) int {
	if i < 0 || i >= b.nl.NumInputs {
		panic("circuit: input index out of range")
	}
	return i
}

// Gate appends a cell and returns its node id.
func (b *Builder) Gate(t GateType, in ...int) int {
	b.nl.Gates = append(b.nl.Gates, Gate{Type: t, In: in})
	return b.nl.NumInputs + len(b.nl.Gates) - 1
}

// Not, And2, Or2, Xor2, Mux are convenience wrappers.
func (b *Builder) Not(a int) int         { return b.Gate(Not, a) }
func (b *Builder) And2(x, y int) int     { return b.Gate(And, x, y) }
func (b *Builder) Or2(x, y int) int      { return b.Gate(Or, x, y) }
func (b *Builder) Xor2(x, y int) int     { return b.Gate(Xor, x, y) }
func (b *Builder) Mux(s, a0, a1 int) int { return b.Gate(Mux2, s, a0, a1) }

// ReduceAnd builds a balanced AND tree over the nodes.
func (b *Builder) ReduceAnd(nodes []int) int { return b.reduce(And, nodes) }

// ReduceOr builds a balanced OR tree over the nodes.
func (b *Builder) ReduceOr(nodes []int) int { return b.reduce(Or, nodes) }

func (b *Builder) reduce(t GateType, nodes []int) int {
	if len(nodes) == 0 {
		panic("circuit: reduce over empty set")
	}
	for len(nodes) > 1 {
		var next []int
		for i := 0; i+1 < len(nodes); i += 2 {
			next = append(next, b.Gate(t, nodes[i], nodes[i+1]))
		}
		if len(nodes)%2 == 1 {
			next = append(next, nodes[len(nodes)-1])
		}
		nodes = next
	}
	return nodes[0]
}

// Output marks a node as a primary output.
func (b *Builder) Output(node int) {
	b.nl.Outputs = append(b.nl.Outputs, node)
}

// Build finalizes the netlist, validating it.
func (b *Builder) Build() (*Netlist, error) {
	nl := b.nl
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return &nl, nil
}

// MustBuild finalizes, panicking on structural errors (builders are
// program constants).
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}
