package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "alu", IntMul: "mul", IntDiv: "div",
		Load: "load", Store: "store", Branch: "branch",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("unknown class string %q", got)
	}
}

func TestHasDest(t *testing.T) {
	for _, c := range []Class{IntALU, IntMul, IntDiv, Load} {
		if !c.HasDest() {
			t.Errorf("%v should have dest", c)
		}
	}
	for _, c := range []Class{Store, Branch} {
		if c.HasDest() {
			t.Errorf("%v should not have dest", c)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("load/store must be memory ops")
	}
	if IntALU.IsMem() || Branch.IsMem() {
		t.Error("alu/branch must not be memory ops")
	}
}

func TestStageString(t *testing.T) {
	want := []string{"fetch", "decode", "rename", "dispatch", "issue",
		"regread", "execute", "memory", "writeback", "retire"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d).String() = %q, want %q", i, got, w)
		}
	}
}

func TestStageRegions(t *testing.T) {
	ooo := map[Stage]bool{Issue: true, RegRead: true, Execute: true, Memory: true, Writeback: true}
	for s := Fetch; s < NumStages; s++ {
		if got := s.InOoOEngine(); got != ooo[s] {
			t.Errorf("%v.InOoOEngine() = %v", s, got)
		}
	}
	stall := map[Stage]bool{Rename: true, Dispatch: true, Retire: true}
	for s := Fetch; s < NumStages; s++ {
		if got := s.StallTolerable(); got != stall[s] {
			t.Errorf("%v.StallTolerable() = %v", s, got)
		}
	}
	replay := map[Stage]bool{Fetch: true, Decode: true}
	for s := Fetch; s < NumStages; s++ {
		if got := s.ReplayOnly(); got != replay[s] {
			t.Errorf("%v.ReplayOnly() = %v", s, got)
		}
	}
}

// Property: every stage falls in exactly one of the three handling regions,
// except the untouched in-order Fetch..Decode vs stall vs OoO partition —
// i.e. the regions never overlap.
func TestStageRegionsDisjoint(t *testing.T) {
	for s := Fetch; s < NumStages; s++ {
		n := 0
		if s.InOoOEngine() {
			n++
		}
		if s.StallTolerable() {
			n++
		}
		if s.ReplayOnly() {
			n++
		}
		if n > 1 {
			t.Errorf("stage %v in %d regions", s, n)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Inst{
		{PC: 4, Class: IntALU, Dest: 3, Src1: 1, Src2: 2},
		{PC: 8, Class: Load, Dest: 5, Src1: 4, Src2: -1, Addr: 0x1000},
		{PC: 12, Class: Store, Dest: -1, Src1: 4, Src2: 5, Addr: 0x2000},
		{PC: 16, Class: Branch, Dest: -1, Src1: 3, Src2: -1, Taken: true, Target: 4},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", in, err)
		}
	}
	bad := []Inst{
		{PC: 4, Class: IntALU, Dest: 40, Src1: 1, Src2: 2},             // reg out of range
		{PC: 4, Class: IntALU, Dest: -1, Src1: 1, Src2: 2},             // missing dest
		{PC: 4, Class: Store, Dest: 3, Src1: 1, Src2: 2, Addr: 8},      // store with dest
		{PC: 4, Class: Load, Dest: 3, Src1: 1, Src2: -1},               // zero address
		{PC: 4, Class: IntALU, Dest: 3, Src1: 1, Src2: 2, Taken: true}, // non-branch taken
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid inst", in)
		}
	}
}

func TestLatency(t *testing.T) {
	if cy, pipe := IntALU.Latency(); cy != 1 || !pipe {
		t.Errorf("IntALU latency (%d,%v)", cy, pipe)
	}
	if cy, pipe := IntMul.Latency(); cy <= 1 || !pipe {
		t.Errorf("IntMul latency (%d,%v): must be multi-cycle pipelined", cy, pipe)
	}
	if cy, pipe := IntDiv.Latency(); cy <= 1 || pipe {
		t.Errorf("IntDiv latency (%d,%v): must be multi-cycle non-pipelined", cy, pipe)
	}
}

// Property: Latency is always >= 1 for any class value.
func TestLatencyPositiveProperty(t *testing.T) {
	f := func(c uint8) bool {
		cy, _ := Class(c % uint8(NumClasses)).Latency()
		return cy >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
