// Package isa defines the instruction-set abstraction shared by the workload
// generator and the pipeline simulator. The reproduction is trace-driven: the
// workload emits the committed dynamic instruction stream of a synthetic
// program, and the pipeline model executes it under detailed timing. The ISA
// is deliberately RISC-like (PISA/MIPS-class, as used by the Fabscalar cores
// in the paper): 32 integer architectural registers, explicit loads/stores,
// and functional-unit classes matching Core-1 (single-cycle simple ALU,
// multi-cycle complex ALU, memory port, branch).
package isa

import "fmt"

// NumArchRegs is the number of architectural integer registers. Register 0 is
// hardwired to zero and is never renamed (writes to it are dropped), matching
// the MIPS-like ISA Fabscalar implements.
const NumArchRegs = 32

// Class identifies the functional-unit class of an instruction.
type Class uint8

const (
	// IntALU is a single-cycle simple ALU operation (add, sub, logic, shift,
	// compare). These dominate integer codes.
	IntALU Class = iota
	// IntMul is a multi-cycle, fully pipelined complex-ALU operation.
	IntMul
	// IntDiv is a multi-cycle, non-pipelined complex-ALU operation.
	IntDiv
	// Load reads memory through the load-store queue and data cache.
	Load
	// Store writes memory at retire; address generation and LSQ insertion
	// happen in the memory stage.
	Store
	// Branch is a conditional or unconditional control transfer resolved in
	// the execute stage.
	Branch
	// NumClasses is the number of instruction classes.
	NumClasses
)

// String returns the mnemonic class name.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "alu"
	case IntMul:
		return "mul"
	case IntDiv:
		return "div"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// HasDest reports whether instructions of this class produce a register
// result that must be renamed and broadcast.
func (c Class) HasDest() bool {
	switch c {
	case IntALU, IntMul, IntDiv, Load:
		return true
	default:
		return false
	}
}

// IsMem reports whether the class occupies a memory port / LSQ entry.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Stage identifies a pipe stage of the Core-1 style pipeline. The order
// matches program flow: the in-order front end (Fetch..Dispatch), the
// out-of-order engine (Issue..Writeback), and in-order Retire.
type Stage uint8

const (
	Fetch Stage = iota
	Decode
	Rename
	Dispatch
	Issue // wakeup/select; the CAM-heavy stage where most violations occur
	RegRead
	Execute
	Memory
	Writeback
	Retire
	NumStages
)

// String returns the stage name used in reports.
func (s Stage) String() string {
	switch s {
	case Fetch:
		return "fetch"
	case Decode:
		return "decode"
	case Rename:
		return "rename"
	case Dispatch:
		return "dispatch"
	case Issue:
		return "issue"
	case RegRead:
		return "regread"
	case Execute:
		return "execute"
	case Memory:
		return "memory"
	case Writeback:
		return "writeback"
	case Retire:
		return "retire"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// InOoOEngine reports whether the stage belongs to the out-of-order engine
// (Issue through Writeback), the region the paper's violation-aware
// scheduling framework covers (§2.2).
func (s Stage) InOoOEngine() bool { return s >= Issue && s <= Writeback }

// StallTolerable reports whether a predicted violation in this stage is
// handled by the in-order stall mechanism of §2.2 (rename/dispatch/retire).
func (s Stage) StallTolerable() bool {
	return s == Rename || s == Dispatch || s == Retire
}

// ReplayOnly reports whether violations in this stage can only be handled by
// instruction replay (fetch and decode; §2.2).
func (s Stage) ReplayOnly() bool { return s == Fetch || s == Decode }

// Inst is one dynamic instruction of the committed path, as produced by the
// workload generator. Src/Dest are architectural register numbers; -1 (or
// register 0 for sources) means "none". The pipeline simulator decorates it
// with rename and timing state in its own DynInst wrapper.
type Inst struct {
	PC    uint64 // static instruction address (identifies the TEP entry)
	Class Class
	Dest  int8 // architectural destination register, -1 if none
	Src1  int8 // first source register, -1 if none
	Src2  int8 // second source register, -1 if none

	// Addr is the effective address for loads/stores.
	Addr uint64
	// Taken and Target describe the committed outcome of a branch.
	Taken  bool
	Target uint64
	// NextPC is the address of the next committed instruction (fall-through
	// or taken target); the front end fetches along this path.
	NextPC uint64
}

// Validate checks internal consistency of a generated instruction. It is
// used by workload tests and by the pipeline's debug mode.
func (in *Inst) Validate() error {
	if in.Dest >= NumArchRegs || in.Src1 >= NumArchRegs || in.Src2 >= NumArchRegs {
		return fmt.Errorf("isa: register out of range in %+v", *in)
	}
	if in.Class.HasDest() && in.Dest < 0 {
		return fmt.Errorf("isa: %v must have a destination", in.Class)
	}
	if !in.Class.HasDest() && in.Dest >= 0 {
		return fmt.Errorf("isa: %v must not have a destination", in.Class)
	}
	if in.Class.IsMem() && in.Addr == 0 {
		return fmt.Errorf("isa: memory op with zero address")
	}
	if in.Class != Branch && in.Taken {
		return fmt.Errorf("isa: non-branch marked taken")
	}
	return nil
}

// Latency returns the execute-stage occupancy in cycles for the class, and
// whether the functional unit is pipelined, mirroring Core-1's mix of
// single-cycle and multi-cycle units (§4.1).
func (c Class) Latency() (cycles int, pipelined bool) {
	switch c {
	case IntALU, Branch:
		return 1, true
	case IntMul:
		return 3, true
	case IntDiv:
		return 12, false
	case Load, Store:
		return 1, true // address generation; cache time is added in Memory
	default:
		return 1, true
	}
}
