package experiments

import (
	"math"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
)

// stackedRun simulates one faulty phase with a fresh profiler attached and
// returns its report (the suite shards the profiler automatically).
func stackedRun(t *testing.T, scheme core.Scheme, seed uint64) obs.CPIStackReport {
	t.Helper()
	cfg := Config{Insts: 30000, Warmup: 5000, Seed: seed}
	stack := NewRunCPIStack()
	cfg.Observer = stack
	if _, err := Simulate("sjeng", scheme, fault.VHighFault, cfg); err != nil {
		t.Fatal(err)
	}
	return stack.Report()
}

// TestRunCPIStackSumsToCPI is the acceptance criterion for the profiler on a
// real simulation: the reported components must sum to the measured CPI
// within 1e-9.
func TestRunCPIStackSumsToCPI(t *testing.T) {
	rep := stackedRun(t, core.ABS, 1)
	if rep.Committed == 0 || rep.Cycles == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if d := math.Abs(rep.Sum() - rep.CPI); d > 1e-9 {
		t.Fatalf("CPI stack sums to %.12f, CPI is %.12f (diff %g)", rep.Sum(), rep.CPI, d)
	}
	if rep.ViolationCPI <= 0 {
		t.Fatal("faulty run attributed no violation CPI")
	}
	if len(rep.TopPCs) == 0 {
		t.Fatal("no per-PC attribution on a faulty run")
	}
}

// TestConfinedCheaperThanPadding is the paper's headline claim read off the
// profiler: at the same voltage, seed and benchmark, the confined scheme
// (ABS) must charge strictly fewer violation cycles than Error Padding's
// whole-pipeline stalls.
func TestConfinedCheaperThanPadding(t *testing.T) {
	abs := stackedRun(t, core.ABS, 1)
	ep := stackedRun(t, core.EP, 1)
	if abs.ViolationCycles >= ep.ViolationCycles {
		t.Fatalf("confined violation cycles %.1f not below EP %.1f",
			abs.ViolationCycles, ep.ViolationCycles)
	}
}

// TestSchemeOverheads checks the overhead table that feeds RunReport and the
// CI perf gate: every requested (scheme, vdd) pair present, fault-free
// baselines at nominal voltage effectively free.
func TestSchemeOverheads(t *testing.T) {
	s := NewSuite(Config{Insts: 5000, Warmup: 1000, Seed: 1, Parallel: true})
	schemes := []core.Scheme{core.EP, core.ABS}
	ov, err := s.SchemeOverheads(schemes, EvalVoltages())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(schemes) * len(EvalVoltages()); len(ov) != want {
		t.Fatalf("%d overhead entries, want %d", len(ov), want)
	}
	seen := map[string]bool{}
	for _, o := range ov {
		seen[o.Scheme] = true
		if o.VDD != fault.VLowFault && o.VDD != fault.VHighFault {
			t.Fatalf("unexpected vdd %v", o.VDD)
		}
		if math.IsNaN(o.PerfPct) || math.IsNaN(o.EDPct) {
			t.Fatalf("NaN overhead for %s@%v", o.Scheme, o.VDD)
		}
	}
	if !seen["EP"] || !seen["ABS"] {
		t.Fatalf("missing schemes in %v", ov)
	}

	// The report round-trips through Overhead lookup (what tvgate does).
	rep := &obs.RunReport{Tool: "test", SchemeOverheads: ov}
	if _, ok := rep.Overhead("ABS", fault.VHighFault); !ok {
		t.Fatal("Overhead lookup failed for ABS at the high-fault voltage")
	}
	if _, ok := rep.Overhead("ABS", 0.5); ok {
		t.Fatal("Overhead lookup matched a bogus voltage")
	}
}
