package experiments

import (
	"fmt"
	"strings"

	"tvsched/internal/netlist"
	"tvsched/internal/power"
	"tvsched/internal/sensitize"
)

// Table3Row is one synthesized component of Table 3: gate count and logic
// depth, computed from the built netlists, with the paper's numbers for
// comparison (absolute counts depend on the cell mapping; the ordering is
// the reproducible shape).
type Table3Row struct {
	Module                 string
	Gates, LogicDepth      int
	PaperGates, PaperDepth int
}

// Table3 regenerates Table 3 from the component netlists.
func Table3() []Table3Row {
	paper := map[string][2]int{
		"iqselect": {189, 33},
		"alu32":    {4728, 46},
		"agen":     {491, 43},
		"fwdcheck": {428, 15},
	}
	var rows []Table3Row
	for _, nl := range netlist.Components() {
		p := paper[nl.Name]
		rows = append(rows, Table3Row{
			Module:     nl.Name,
			Gates:      nl.NumGates(),
			LogicDepth: nl.LogicDepth(),
			PaperGates: p[0],
			PaperDepth: p[1],
		})
	}
	return rows
}

// FormatTable3 renders Table 3 next to the paper's values.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Synthesized processor components (ours vs paper)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s | %8s %8s\n", "module", "gates", "depth", "paper-g", "paper-d")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d | %8d %8d\n",
			r.Module, r.Gates, r.LogicDepth, r.PaperGates, r.PaperDepth)
	}
	return b.String()
}

// Table2Row is one scheme of Table 2: area and power overhead of the VTE,
// at scheduler and core level, in percent.
type Table2Row struct {
	Scheme                         string
	SchedArea, SchedDyn, SchedLeak float64
	CoreArea, CoreDyn, CoreLeak    float64
}

// Table2 regenerates Table 2 from the structural scheduler/core model.
func Table2() []Table2Row {
	schemes := []struct {
		name  string
		delta power.Budget
	}{
		{"ABS", power.ABSDelta()},
		{"FFS", power.FFSDelta()},
		{"CDS", power.CDSDelta()},
	}
	var rows []Table2Row
	for _, s := range schemes {
		o := power.ComputeOverheads(s.delta)
		rows = append(rows, Table2Row{
			Scheme:    s.name,
			SchedArea: o.SchedArea, SchedDyn: o.SchedDynamic, SchedLeak: o.SchedLeakage,
			CoreArea: o.CoreArea, CoreDyn: o.CoreDynamic, CoreLeak: o.CoreLeakage,
		})
	}
	return rows
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	area, dyn, leak := power.SchedulerShare()
	fmt.Fprintf(&b, "Table 2: Area and power overhead of the proposed VTE\n")
	fmt.Fprintf(&b, "(scheduler is %.1f%% of core area, %.1f%% of dynamic, %.1f%% of leakage; paper: 3.9/8.9/1.2)\n",
		area, dyn, leak)
	fmt.Fprintf(&b, "%-6s | %28s | %28s\n", "", "scheduler-level overhead", "core-level overhead")
	fmt.Fprintf(&b, "%-6s | %8s %9s %9s | %8s %9s %9s\n",
		"scheme", "area%", "dynamic%", "leakage%", "area%", "dynamic%", "leakage%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s | %8.2f %9.2f %9.2f | %8.3f %9.3f %9.3f\n",
			r.Scheme, r.SchedArea, r.SchedDyn, r.SchedLeak, r.CoreArea, r.CoreDyn, r.CoreLeak)
	}
	return b.String()
}

// Figure7Data holds the sensitized-path commonality grid of §S1.3.
type Figure7Data struct {
	Results  []sensitize.Result
	Averages map[sensitize.Component]float64
}

// Figure7 regenerates Figure 7: the commonality of sensitized paths for six
// SPEC2000 integer benchmarks across the four studied components. Paper
// averages: 87.4% (IQ select), 89% (AGEN), 92.4% (forward check), 90% (ALU).
func Figure7(seed uint64) Figure7Data {
	opt := sensitize.DefaultOptions()
	opt.Seed = seed
	results, avg := sensitize.MeasureAll(opt)
	return Figure7Data{Results: results, Averages: avg}
}

// FormatFigure7 renders the commonality grid.
func FormatFigure7(d Figure7Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Commonality in sensitized paths (|φ|/|ψ|)\n")
	fmt.Fprintf(&b, "%-10s", "benchmark")
	for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, "\n")
	for _, prof := range sensitize.SPEC2000() {
		fmt.Fprintf(&b, "%-10s", prof.Name)
		for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
			for _, r := range d.Results {
				if r.Component == c && r.Benchmark == prof.Name {
					fmt.Fprintf(&b, " %12.3f", r.Commonality)
				}
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "%-10s", "AVERAGE")
	for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
		fmt.Fprintf(&b, " %12.3f", d.Averages[c])
	}
	fmt.Fprintf(&b, "  (paper: 0.874 / 0.89 / 0.924 / 0.90)\n")
	return b.String()
}
