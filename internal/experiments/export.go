package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tvsched/internal/core"
	"tvsched/internal/obs"
)

// This file serializes experiment results for downstream tooling: CSV for
// spreadsheets/plotting scripts and JSON for programmatic consumers.

// WriteTable1CSV emits Table 1 rows as CSV.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "ipc_ff", "paper_ipc",
		"fr_097", "paper_fr_097", "razor_perf_097", "razor_ed_097", "ep_perf_097", "ep_ed_097",
		"fr_104", "paper_fr_104", "razor_perf_104", "razor_ed_104", "ep_perf_104", "ep_ed_104",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, r := range rows {
		rec := []string{
			r.Bench, f(r.FaultFreeIPC), f(r.PaperIPC),
			f(r.FRHigh), f(r.PaperFRHigh), f(r.RazorHigh.Perf), f(r.RazorHigh.ED), f(r.EPHigh.Perf), f(r.EPHigh.ED),
			f(r.FRLow), f(r.PaperFRLow), f(r.RazorLow.Perf), f(r.RazorLow.ED), f(r.EPLow.Perf), f(r.EPLow.ED),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigureCSV emits a figure's bars as CSV; columns follow core.Proposed().
func WriteFigureCSV(w io.Writer, fig FigureData) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark"}
	for _, sch := range core.Proposed() {
		header = append(header, strings.ToLower(sch.String()))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, r := range append(append([]FigureRow(nil), fig.Rows...), fig.Avg) {
		rec := []string{r.Bench}
		for _, sch := range core.Proposed() {
			rec = append(rec, f(r.Value(sch)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report bundles every artifact for JSON export.
type Report struct {
	Config  Config       `json:"config"`
	Table1  []Table1Row  `json:"table1,omitempty"`
	Figure4 *FigureData  `json:"figure4,omitempty"`
	Figure5 *FigureData  `json:"figure5,omitempty"`
	Figure8 *FigureData  `json:"figure8,omitempty"`
	Figure9 *FigureData  `json:"figure9,omitempty"`
	Table2  []Table2Row  `json:"table2,omitempty"`
	Table3  []Table3Row  `json:"table3,omitempty"`
	Figure7 *Figure7JSON `json:"figure7,omitempty"`
	// RunReport is the cycle-accounting summary of the runs behind the
	// artifacts above (obs.RunReportSchema; see EXPERIMENTS.md).
	RunReport *obs.RunReport `json:"run_report,omitempty"`
}

// Figure7JSON is the JSON-friendly form of the commonality grid.
type Figure7JSON struct {
	Cells    []Figure7Cell      `json:"cells"`
	Averages map[string]float64 `json:"averages"`
}

// Figure7Cell is one (benchmark, component) measurement.
type Figure7Cell struct {
	Benchmark   string  `json:"benchmark"`
	Component   string  `json:"component"`
	Commonality float64 `json:"commonality"`
}

// Figure7ToJSON converts the study output for export.
func Figure7ToJSON(d Figure7Data) *Figure7JSON {
	out := &Figure7JSON{Averages: map[string]float64{}}
	for _, r := range d.Results {
		out.Cells = append(out.Cells, Figure7Cell{
			Benchmark:   r.Benchmark,
			Component:   r.Component.String(),
			Commonality: r.Commonality,
		})
	}
	for c, v := range d.Averages {
		out.Averages[c.String()] = v
	}
	return out
}

// WriteJSON emits the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PlotFigure renders a figure as ASCII bars (one group per benchmark), for
// terminal-only environments.
func PlotFigure(fig FigureData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig.Title)
	maxVal := 0.0
	rows := append(append([]FigureRow(nil), fig.Rows...), fig.Avg)
	for _, r := range rows {
		for _, sch := range core.Proposed() {
			if v := r.Value(sch); v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const width = 46
	bar := func(label string, v float64) {
		n := int(v/maxVal*width + 0.5)
		fmt.Fprintf(&b, "  %-4s %6.3f %s\n", label, v, strings.Repeat("#", n))
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\n", r.Bench)
		for _, sch := range core.Proposed() {
			bar(sch.String(), r.Value(sch))
		}
	}
	return b.String()
}
