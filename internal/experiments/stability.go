package experiments

import (
	"fmt"
	"math"
)

// This file quantifies measurement stability: the synthetic workloads have
// phase behaviour, so headline numbers (the figures' average overhead
// reductions) carry seed-to-seed variance. ReductionCI reruns a figure
// across seeds and reports the spread — the honest error bar to put next to
// a paper comparison.

// figureByID maps experiment ids to suite methods.
func figureByID(s *Suite, id string) (FigureData, error) {
	switch id {
	case "fig4":
		return s.Figure4()
	case "fig5":
		return s.Figure5()
	case "fig8":
		return s.Figure8()
	case "fig9":
		return s.Figure9()
	default:
		return FigureData{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

// ReductionCI reruns figure id across the given seeds and returns the
// per-seed average overhead reductions (percent) plus their mean and sample
// standard deviation.
func ReductionCI(id string, cfg Config, seeds []uint64) (vals []float64, mean, sigma float64, err error) {
	if len(seeds) == 0 {
		return nil, 0, 0, fmt.Errorf("experiments: no seeds")
	}
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		fig, ferr := figureByID(NewSuite(c), id)
		if ferr != nil {
			return nil, 0, 0, ferr
		}
		vals = append(vals, fig.Reduction())
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) > 1 {
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		sigma = math.Sqrt(ss / float64(len(vals)-1))
	}
	return vals, mean, sigma, nil
}
