package experiments

import (
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
)

// This file bridges the experiment engine and the obs.RunReport artifact:
// deriving a CPI-stack configuration from a machine configuration, and
// summarizing a suite into the per-scheme overhead rows a report carries.

// CPIStackConfigFor derives the cycle-accounting parameters from a machine
// configuration: issue width, the fetch-to-execute mispredict loop
// (FrontDepth plus the two issue stages, register read and execute), and the
// L1/L2 total data-access latencies that split load misses into L2 and DRAM
// components.
func CPIStackConfigFor(cfg pipeline.Config) obs.CPIStackConfig {
	l1 := uint64(cfg.Hierarchy.L1D.Latency)
	return obs.CPIStackConfig{
		Width:             cfg.Width,
		MispredictPenalty: uint64(cfg.FrontDepth + 4),
		L1DLatency:        l1,
		L2DLatency:        l1 + uint64(cfg.Hierarchy.L2.Latency),
	}
}

// NewRunCPIStack builds a profiler matched to the default Core-1 machine —
// what every simulation this package drives uses.
func NewRunCPIStack() *obs.CPIStack {
	return obs.NewCPIStack(CPIStackConfigFor(pipeline.DefaultConfig()))
}

// SchemeOverheads measures each scheme's performance and energy-delay
// overhead versus the fault-free baseline at each supply voltage, averaged
// across the benchmarks — the rows Figures 4/5/8/9 plot, in the shape
// obs.RunReport carries. A nil scheme list means every scheme. Runs are
// memoized with the rest of the suite, so this is free after the figures
// are built.
func (s *Suite) SchemeOverheads(schemes []core.Scheme, vdds []float64) ([]obs.SchemeOverhead, error) {
	if schemes == nil {
		for sch := core.Scheme(0); sch < core.NumSchemes; sch++ {
			schemes = append(schemes, sch)
		}
	}
	if err := s.prefetch(keysFor(schemes, vdds)); err != nil {
		return nil, err
	}
	var out []obs.SchemeOverhead
	for _, v := range vdds {
		for _, sch := range schemes {
			var perf, ed float64
			n := 0
			for _, b := range benches() {
				base, err := s.faultFree(b)
				if err != nil {
					return nil, err
				}
				r, err := s.get(runKey{b, sch, v})
				if err != nil {
					return nil, err
				}
				perf += r.PerfOverhead(&base)
				ed += r.EDOverhead(&base)
				n++
			}
			out = append(out, obs.SchemeOverhead{
				Scheme:  sch.String(),
				VDD:     v,
				PerfPct: 100 * perf / float64(n),
				EDPct:   100 * ed / float64(n),
			})
		}
	}
	return out, nil
}

// EvalVoltages returns the two faulty supply points of the evaluation
// (§5): the marginal 1.04 V and the aggressive 0.97 V.
func EvalVoltages() []float64 { return []float64{fault.VLowFault, fault.VHighFault} }

// TEPAccuracyFrom summarizes predictor quality from a run's statistics.
func TEPAccuracyFrom(st *pipeline.Stats) *obs.TEPAccuracy {
	acc := &obs.TEPAccuracy{
		TruePositives:  st.PredictedFaults,
		FalsePositives: st.FalsePositives,
		Unpredicted:    st.Mispredicted,
	}
	if st.Faults > 0 {
		acc.Coverage = float64(st.PredictedFaults) / float64(st.Faults)
	}
	if pos := st.PredictedFaults + st.FalsePositives; pos > 0 {
		acc.Precision = float64(st.PredictedFaults) / float64(pos)
	}
	return acc
}
