package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tvsched/internal/core"
)

// smokeStormConfig is a small three-scenario campaign exercising the three
// interesting regimes: quiet (bit-exactness), droop-storm (escalation), and
// blackout (watchdog-or-die).
func smokeStormConfig() StormConfig {
	cfg := DefaultStormConfig()
	cfg.Insts = 80000
	cfg.Warmup = 10000
	cfg.Horizon = 80000
	cfg.Scenarios = []string{"quiet", "droop-storm", "blackout"}
	cfg.Schemes = []core.Scheme{core.Razor, core.ABS}
	cfg.Seeds = []uint64{1}
	return cfg
}

func cellBy(t *testing.T, r *StormReport, scenario string, scheme core.Scheme) *StormCell {
	t.Helper()
	for i := range r.Cells {
		if r.Cells[i].Scenario == scenario && r.Cells[i].Scheme == scheme.String() {
			return &r.Cells[i]
		}
	}
	t.Fatalf("no %s/%v cell in report", scenario, scheme)
	return nil
}

func TestStormCampaign(t *testing.T) {
	r, err := RunStorm(context.Background(), smokeStormConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != StormReportSchema {
		t.Fatalf("schema %q", r.Schema)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells %d, want 6", len(r.Cells))
	}

	// Quiet cell: both twins survive and the supervised machine is
	// bit-identical to the unsupervised one — supervision is free when idle.
	q := cellBy(t, r, "quiet", core.ABS)
	if !q.Supervised.Survived || !q.Unsupervised.Survived {
		t.Fatalf("quiet cell did not survive: %+v", q)
	}
	if q.Supervised.Cycles != q.Unsupervised.Cycles || q.Supervised.IPC != q.Unsupervised.IPC {
		t.Fatalf("idle supervisor perturbed the quiet cell:\nsup  %+v\nplain %+v",
			q.Supervised, q.Unsupervised)
	}
	if q.Supervised.Escalations != 0 || q.Supervised.WatchdogFires != 0 {
		t.Fatalf("supervisor escalated on the quiet cell: %+v", q.Supervised)
	}

	// Droop-storm: both survive, but only thanks to escalation on the
	// supervised side, which must also fully de-escalate and report a
	// detection latency relative to the hazard onset.
	d := cellBy(t, r, "droop-storm", core.ABS)
	if !d.Supervised.Survived || !d.Unsupervised.Survived {
		t.Fatalf("droop-storm cell did not survive: %+v", d)
	}
	if d.Supervised.Escalations == 0 || d.Supervised.Deescalations == 0 {
		t.Fatalf("droop-storm cell saw no supervision activity: %+v", d.Supervised)
	}
	if d.Supervised.DetectCycle == 0 || d.Supervised.TimeToDetect == 0 {
		t.Fatalf("droop-storm cell has no detection milestone: %+v", d.Supervised)
	}
	if d.Supervised.FinalLevel != 0 || d.Supervised.RecoverCycle == 0 {
		t.Fatalf("droop-storm cell did not recover to base: %+v", d.Supervised)
	}

	// Blackout under Razor: with replay unreliable at this depth the
	// unsupervised machine loses forward progress and dies; the supervised
	// one must complete (rate monitor or watchdog, either rung reaches the
	// VDD boost).
	b := cellBy(t, r, "blackout", core.Razor)
	if b.Unsupervised.Survived {
		t.Fatalf("unsupervised blackout cell survived: %+v", b.Unsupervised)
	}
	if !strings.Contains(b.Unsupervised.Error, "no commit") {
		t.Fatalf("unsupervised blackout died differently: %q", b.Unsupervised.Error)
	}
	if !b.Supervised.Survived {
		t.Fatalf("supervised blackout cell did not survive: %+v", b.Supervised)
	}
	if b.Supervised.Escalations+b.Supervised.WatchdogFires == 0 {
		t.Fatalf("supervised blackout survived without escalating: %+v", b.Supervised)
	}

	if f := r.Failures(); len(f) != 0 {
		t.Fatalf("supervised failures: %v", f)
	}
}

// TestStormReportDeterministic: the same campaign twice must serialize to
// byte-identical JSON — the CI determinism gate relies on this.
func TestStormReportDeterministic(t *testing.T) {
	cfg := smokeStormConfig()
	cfg.Scenarios = []string{"droop-storm", "sensor-stuck"}
	run := func() []byte {
		r, err := RunStorm(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("same campaign produced different reports")
	}
}

func TestStormUnknownScenario(t *testing.T) {
	cfg := smokeStormConfig()
	cfg.Scenarios = []string{"nope"}
	if _, err := RunStorm(context.Background(), cfg); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestStormCellOrderGolden pins the report's cell order now that the cross
// product comes from the shared campaign enumerator: enumeration runs
// scenarios × schemes × seeds (seeds fastest, axes as given), then the
// stable sort normalizes to scenario < scheme < seed ascending. The axes
// here are deliberately unsorted so the test catches an enumerator that
// stops feeding the sort every cell.
func TestStormCellOrderGolden(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.Insts = 2000
	cfg.Warmup = 500
	cfg.Horizon = 2000
	cfg.Scenarios = []string{"quiet", "droop-storm"}
	cfg.Schemes = []core.Scheme{core.Razor, core.ABS}
	cfg.Seeds = []uint64{2, 1}
	r, err := RunStorm(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"droop-storm/ABS/1",
		"droop-storm/ABS/2",
		"droop-storm/Razor/1",
		"droop-storm/Razor/2",
		"quiet/ABS/1",
		"quiet/ABS/2",
		"quiet/Razor/1",
		"quiet/Razor/2",
	}
	if len(r.Cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(r.Cells), len(want))
	}
	for i, c := range r.Cells {
		got := fmt.Sprintf("%s/%s/%d", c.Scenario, c.Scheme, c.Seed)
		if got != want[i] {
			t.Errorf("cell %d = %s, want %s", i, got, want[i])
		}
	}
}
