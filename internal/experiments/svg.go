package experiments

import (
	"fmt"
	"io"
	"strings"

	"tvsched/internal/core"
)

// WriteFigureSVG renders a figure as a grouped bar chart in standalone SVG —
// a publication-style rendering of the paper's Figures 4/5/8/9 with no
// dependencies beyond a browser to view it.
func WriteFigureSVG(w io.Writer, fig FigureData) error {
	rows := append(append([]FigureRow(nil), fig.Rows...), fig.Avg)

	const (
		barW      = 12
		gap       = 4
		groupPad  = 18
		chartH    = 260
		marginL   = 52
		marginTop = 40
		marginBot = 70
	)
	groupW := 3*barW + 2*gap + groupPad
	width := marginL + groupW*len(rows) + 20
	height := marginTop + chartH + marginBot

	schemes := core.Proposed()
	maxVal := 0.0
	for _, r := range rows {
		for _, sch := range schemes {
			if v := r.Value(sch); v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	// Round the axis top up to a tidy step.
	step := niceStep(maxVal)
	axisTop := step * math64Ceil(maxVal/step)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13">%s</text>`+"\n", marginL, escape(fig.Title))

	// Y axis with gridlines.
	for v := 0.0; v <= axisTop+1e-9; v += step {
		y := marginTop + chartH - int(v/axisTop*float64(chartH))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			marginL, y, width-10, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#555">%.2f</text>`+"\n",
			marginL-6, y+4, v)
	}

	colors := [3]string{"#4878a8", "#e8a33d", "#6aa84f"}
	for gi, r := range rows {
		x0 := marginL + gi*groupW + groupPad/2
		for k, sch := range schemes {
			v := r.Value(sch)
			h := int(v / axisTop * float64(chartH))
			x := x0 + k*(barW+gap)
			y := marginTop + chartH - h
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s %s: %.3f</title></rect>`+"\n",
				x, y, barW, h, colors[k%len(colors)], escape(r.Bench), sch, v)
		}
		// Rotated benchmark label.
		lx := x0 + (3*barW+2*gap)/2
		ly := marginTop + chartH + 12
		fmt.Fprintf(&b, `<text x="%d" y="%d" transform="rotate(45 %d %d)" fill="#333">%s</text>`+"\n",
			lx, ly, lx, ly, escape(r.Bench))
	}

	// Legend.
	for k, sch := range schemes {
		x := marginL + k*70
		y := height - 14
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y-9, colors[k%len(colors)])
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", x+14, y, sch)
	}
	fmt.Fprintf(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func niceStep(max float64) float64 {
	for _, s := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5} {
		if max/s <= 6 {
			return s
		}
	}
	return 10
}

func math64Ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}
