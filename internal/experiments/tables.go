package experiments

import (
	"fmt"
	"strings"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/workload"
)

// Overhead is a (performance%, ED%) tuple as reported in Table 1.
type Overhead struct {
	Perf float64 // percent
	ED   float64 // percent
}

// Table1Row reproduces one row of Table 1: per-benchmark fault-free IPC,
// and for each faulty environment the fault rate plus the Razor and EP
// overhead tuples. Paper reference values ride along for comparison.
type Table1Row struct {
	Bench        string
	FaultFreeIPC float64

	FRHigh    float64 // % at 0.97 V
	RazorHigh Overhead
	EPHigh    Overhead

	FRLow    float64 // % at 1.04 V
	RazorLow Overhead
	EPLow    Overhead

	// Paper values (Table 1) for side-by-side comparison.
	PaperIPC, PaperFRLow, PaperFRHigh float64
}

// Table1 regenerates Table 1.
func (s *Suite) Table1() ([]Table1Row, error) {
	keys := keysFor([]core.Scheme{core.Razor, core.EP},
		[]float64{fault.VHighFault, fault.VLowFault})
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, b := range benches() {
		ff, err := s.faultFree(b)
		if err != nil {
			return nil, err
		}
		prof, _ := workload.ByName(b)
		row := Table1Row{
			Bench:        b,
			FaultFreeIPC: ff.Stats.IPC(),
			PaperIPC:     prof.PaperIPC,
			PaperFRLow:   prof.PaperFRLow,
			PaperFRHigh:  prof.PaperFRHigh,
		}
		fill := func(vdd float64, fr *float64, razor, ep *Overhead) error {
			rz, err := s.get(runKey{b, core.Razor, vdd})
			if err != nil {
				return err
			}
			e, err := s.get(runKey{b, core.EP, vdd})
			if err != nil {
				return err
			}
			*fr = 100 * e.Stats.FaultRate()
			*razor = Overhead{100 * rz.PerfOverhead(&ff), 100 * rz.EDOverhead(&ff)}
			*ep = Overhead{100 * e.PerfOverhead(&ff), 100 * e.EDOverhead(&ff)}
			return nil
		}
		if err := fill(fault.VHighFault, &row.FRHigh, &row.RazorHigh, &row.EPHigh); err != nil {
			return nil, err
		}
		if err := fill(fault.VLowFault, &row.FRLow, &row.RazorLow, &row.EPLow); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FigureRow is one bar group of Figures 4/5/8/9: the overhead of each
// proposed scheme relative to the EP baseline (lower is better).
type FigureRow struct {
	Bench         string
	ABS, FFS, CDS float64 // overhead normalized to EP
}

// Value returns the row's bar for one of the proposed schemes, so renderers
// can iterate core.Proposed() instead of hard-coding scheme names.
func (r *FigureRow) Value(s core.Scheme) float64 {
	switch s {
	case core.ABS:
		return r.ABS
	case core.FFS:
		return r.FFS
	case core.CDS:
		return r.CDS
	default:
		return 0
	}
}

// FigureData is a full figure: per-benchmark rows plus the AVERAGE bar.
type FigureData struct {
	Title string
	VDD   float64
	ED    bool // false: performance overhead; true: energy-delay overhead
	Rows  []FigureRow
	Avg   FigureRow
}

// Reduction returns the average overhead reduction versus EP in percent
// (the paper's headline 87%/82%/88%/83% numbers).
func (f *FigureData) Reduction() float64 {
	mean := (f.Avg.ABS + f.Avg.FFS + f.Avg.CDS) / 3
	return 100 * (1 - mean)
}

// figure builds one of the four overhead-comparison figures.
func (s *Suite) figure(title string, vdd float64, ed bool, benchList []string) (FigureData, error) {
	keys := keysFor(core.Schemes(), []float64{vdd})
	if err := s.prefetch(keys); err != nil {
		return FigureData{}, err
	}
	fig := FigureData{Title: title, VDD: vdd, ED: ed}
	var sum FigureRow
	for _, b := range benchList {
		ff, err := s.faultFree(b)
		if err != nil {
			return FigureData{}, err
		}
		ep, err := s.get(runKey{b, core.EP, vdd})
		if err != nil {
			return FigureData{}, err
		}
		ov := func(r *Run) float64 {
			if ed {
				return r.EDOverhead(&ff)
			}
			return r.PerfOverhead(&ff)
		}
		epOv := ov(&ep)
		row := FigureRow{Bench: b}
		for _, sch := range core.Proposed() {
			r, err := s.get(runKey{b, sch, vdd})
			if err != nil {
				return FigureData{}, err
			}
			rel := 0.0
			if epOv > 0 {
				rel = ov(&r) / epOv
			}
			switch sch {
			case core.ABS:
				row.ABS = rel
			case core.FFS:
				row.FFS = rel
			case core.CDS:
				row.CDS = rel
			}
		}
		fig.Rows = append(fig.Rows, row)
		sum.ABS += row.ABS
		sum.FFS += row.FFS
		sum.CDS += row.CDS
	}
	n := float64(len(fig.Rows))
	fig.Avg = FigureRow{Bench: "AVERAGE", ABS: sum.ABS / n, FFS: sum.FFS / n, CDS: sum.CDS / n}
	return fig, nil
}

// Figure4 regenerates Figure 4: performance overhead of ABS/FFS/CDS
// normalized to EP at the low fault rate (1.04 V). Paper average: ~0.13
// (87% reduction).
func (s *Suite) Figure4() (FigureData, error) {
	return s.figure("Figure 4: relative performance overhead @1.04V", fault.VLowFault, false, benches())
}

// Figure5 regenerates Figure 5: ED overhead normalized to EP at 1.04 V.
// Paper average reduction: 82%.
func (s *Suite) Figure5() (FigureData, error) {
	return s.figure("Figure 5: relative ED overhead @1.04V", fault.VLowFault, true, benches())
}

// high-fault-rate figures: the paper drops povray from Figures 8/9.
func benchesHigh() []string {
	var out []string
	for _, b := range benches() {
		if b != "povray" {
			out = append(out, b)
		}
	}
	return out
}

// Figure8 regenerates Figure 8: performance overhead normalized to EP at the
// high fault rate (0.97 V). Paper average reduction: 88%.
func (s *Suite) Figure8() (FigureData, error) {
	return s.figure("Figure 8: relative performance overhead @0.97V", fault.VHighFault, false, benchesHigh())
}

// Figure9 regenerates Figure 9: ED overhead normalized to EP at 0.97 V.
// Paper average reduction: 83%.
func (s *Suite) Figure9() (FigureData, error) {
	return s.figure("Figure 9: relative ED overhead @0.97V", fault.VHighFault, true, benchesHigh())
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Benchmark Fault Rates and %s/%s overheads (perf%%, ED%%)\n",
		core.Razor, core.EP)
	fmt.Fprintf(&b, "%-11s %8s | %6s %14s %14s | %6s %14s %14s\n",
		"benchmark", "IPC(ff)", "FR%.97",
		fmt.Sprintf("%s@0.97", core.Razor), fmt.Sprintf("%s@0.97", core.EP),
		"FR%1.04",
		fmt.Sprintf("%s@1.04", core.Razor), fmt.Sprintf("%s@1.04", core.EP))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %8.3f | %6.2f (%5.1f,%6.1f) (%5.2f,%6.2f) | %6.2f (%5.1f,%6.1f) (%5.2f,%6.2f)\n",
			r.Bench, r.FaultFreeIPC,
			r.FRHigh, r.RazorHigh.Perf, r.RazorHigh.ED, r.EPHigh.Perf, r.EPHigh.ED,
			r.FRLow, r.RazorLow.Perf, r.RazorLow.ED, r.EPLow.Perf, r.EPLow.ED)
	}
	return b.String()
}

// FormatFigure renders a figure's bar values as text. Columns come from
// core.Proposed(), so scheme naming has a single source of truth.
func FormatFigure(f FigureData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (normalized to %s; lower is better)\n", f.Title, core.EP)
	fmt.Fprintf(&b, "%-11s", "benchmark")
	for _, sch := range core.Proposed() {
		fmt.Fprintf(&b, " %6s", sch)
	}
	b.WriteByte('\n')
	row := func(r FigureRow) {
		fmt.Fprintf(&b, "%-11s", r.Bench)
		for _, sch := range core.Proposed() {
			fmt.Fprintf(&b, " %6.3f", r.Value(sch))
		}
	}
	for _, r := range f.Rows {
		row(r)
		b.WriteByte('\n')
	}
	row(f.Avg)
	fmt.Fprintf(&b, "   => average overhead reduction %.0f%%\n", f.Reduction())
	return b.String()
}
