package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"tvsched/internal/sensitize"
)

func sampleFigure() FigureData {
	return FigureData{
		Title: "test figure",
		VDD:   0.97,
		Rows: []FigureRow{
			{Bench: "a", ABS: 0.1, FFS: 0.2, CDS: 0.15},
			{Bench: "b", ABS: 0.3, FFS: 0.25, CDS: 0.3},
		},
		Avg: FigureRow{Bench: "AVERAGE", ABS: 0.2, FFS: 0.225, CDS: 0.225},
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 2 rows + average
		t.Fatalf("records %d", len(recs))
	}
	if recs[0][0] != "benchmark" || recs[3][0] != "AVERAGE" {
		t.Fatalf("layout: %v", recs)
	}
	if recs[1][1] != "0.1000" {
		t.Fatalf("value formatting: %v", recs[1])
	}
}

func TestWriteTable1CSV(t *testing.T) {
	rows := []Table1Row{{
		Bench: "bzip2", FaultFreeIPC: 1.5, PaperIPC: 1.48,
		FRHigh: 7.2, PaperFRHigh: 8.92,
		RazorHigh: Overhead{Perf: 43, ED: 70}, EPHigh: Overhead{Perf: 13, ED: 17},
		FRLow: 2.0, PaperFRLow: 2.24,
		RazorLow: Overhead{Perf: 13, ED: 19}, EPLow: Overhead{Perf: 4.4, ED: 5.8},
	}}
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[0]) != 15 {
		t.Fatalf("shape: %dx%d", len(recs), len(recs[0]))
	}
	if recs[1][0] != "bzip2" {
		t.Fatalf("row: %v", recs[1])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	fig := sampleFigure()
	rep := Report{
		Config:  Config{Insts: 1000, Warmup: 100, Seed: 1},
		Figure8: &fig,
		Table2:  Table2(),
		Table3:  Table3(),
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Figure8 == nil || back.Figure8.Rows[1].ABS != 0.3 {
		t.Fatal("figure lost in round trip")
	}
	if len(back.Table3) != 4 || back.Table3[1].Module != "alu32" {
		t.Fatal("table3 lost in round trip")
	}
	if back.Table1 != nil {
		t.Fatal("omitempty broken")
	}
}

func TestFigure7ToJSON(t *testing.T) {
	d := Figure7Data{
		Results: []sensitize.Result{
			{Benchmark: "vortex", Component: sensitize.CompALU, Commonality: 0.97},
		},
		Averages: map[sensitize.Component]float64{sensitize.CompALU: 0.9},
	}
	j := Figure7ToJSON(d)
	if len(j.Cells) != 1 || j.Cells[0].Component != "ALU" {
		t.Fatalf("cells: %+v", j.Cells)
	}
	if j.Averages["ALU"] != 0.9 {
		t.Fatalf("averages: %+v", j.Averages)
	}
}

func TestPlotFigure(t *testing.T) {
	out := PlotFigure(sampleFigure())
	if !strings.Contains(out, "###") {
		t.Fatal("no bars rendered")
	}
	if !strings.Contains(out, "AVERAGE") {
		t.Fatal("missing average group")
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	maxLen, maxLine := 0, ""
	for _, l := range lines {
		if n := strings.Count(l, "#"); n > maxLen {
			maxLen, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "0.300") {
		t.Fatalf("longest bar not on the max value: %q", maxLine)
	}
	// Degenerate all-zero figure must not divide by zero.
	zero := FigureData{Title: "z", Rows: []FigureRow{{Bench: "x"}}}
	if out := PlotFigure(zero); !strings.Contains(out, "x") {
		t.Fatal("zero figure not rendered")
	}
}

func TestWriteFigureSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureSVG(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 3 bars per group x 3 groups (2 rows + average) + legend swatches.
	if n := strings.Count(out, "<rect"); n != 9+3 {
		t.Fatalf("rect count %d, want 12", n)
	}
	if !strings.Contains(out, "AVERAGE") {
		t.Fatal("missing average group")
	}
	// Escaping: a hostile title must not inject markup.
	evil := sampleFigure()
	evil.Title = `<script>"x"</script>`
	buf.Reset()
	if err := WriteFigureSVG(&buf, evil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("title not escaped")
	}
}

func TestNiceStep(t *testing.T) {
	for _, tc := range []struct{ max, want float64 }{
		{0.05, 0.01}, {0.3, 0.05}, {0.55, 0.1}, {2.4, 0.5}, {30, 5},
	} {
		if got := niceStep(tc.max); got != tc.want {
			t.Errorf("niceStep(%v) = %v, want %v", tc.max, got, tc.want)
		}
	}
}
