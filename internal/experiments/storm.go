package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tvsched/internal/campaign"
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/hazard"
	"tvsched/internal/obs"
	"tvsched/internal/sim"
)

// This file implements the storm campaign behind cmd/tvstorm: hazard
// scenarios × schemes × seeds, each cell simulated twice on the same seed —
// once with the graceful-degradation supervisor, once without — so the
// report quantifies exactly what supervision buys (and costs) under each
// transient. Everything in the report is derived from simulated state, never
// wall clock, so two runs of the same campaign are byte-identical.

// StormReportSchema identifies the StormReport JSON layout; bump on breaking
// changes so downstream tooling fails loudly instead of misparsing.
const StormReportSchema = "tvsched/storm-report/v1"

// StormConfig parameterizes a campaign.
type StormConfig struct {
	// Bench is the workload profile every cell runs.
	Bench string
	// VDD is the supply voltage (the interesting campaigns run at the
	// aggressive 0.97 V point, where hazards bite hardest).
	VDD float64
	// Insts is the committed-instruction count of the measured phase.
	Insts uint64
	// Warmup is the committed-instruction warmup before measurement.
	Warmup uint64
	// Horizon scales the scenario geometry (hazard.Scenario.Build); 0 means
	// Insts, which places the curated envelopes inside a typical run.
	Horizon uint64
	// Window is the worst-window CPI window in cycles; 0 means the
	// supervisor policy's monitoring window, so both machines are scored on
	// the granularity the supervisor acts at.
	Window uint64
	// Scenarios is the hazard scenario list; nil means every curated one.
	Scenarios []string
	// Schemes is the base-scheme list; nil means {Razor, EP, ABS}.
	Schemes []core.Scheme
	// Seeds drives workload and hazard randomness; nil means {1}.
	Seeds []uint64
	// Policy is the supervised twin's tuning.
	Policy core.SupervisorPolicy
	// Parallel runs cells across CPUs; the report is identical either way.
	Parallel bool
}

// DefaultStormConfig returns a campaign sized for interactive use.
func DefaultStormConfig() StormConfig {
	return StormConfig{
		Bench:    "bzip2",
		VDD:      fault.VHighFault,
		Insts:    150000,
		Warmup:   20000,
		Policy:   core.DefaultSupervisorPolicy(),
		Parallel: true,
	}
}

// StormOutcome is one machine's fate under one hazard cell.
type StormOutcome struct {
	// Survived reports whether the run completed; Error carries the failure
	// otherwise (e.g. the no-forward-progress error, or a spent watchdog).
	Survived bool   `json:"survived"`
	Error    string `json:"error,omitempty"`

	Cycles    uint64  `json:"cycles"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`
	// WorstWindowCPI is the worst cycles-per-retire over fixed windows of
	// the measured phase — the survival headline: how bad did it get.
	WorstWindowCPI float64 `json:"worst_window_cpi"`

	// Supervisor activity (zero for the unsupervised twin).
	Escalations   uint64 `json:"escalations,omitempty"`
	Deescalations uint64 `json:"deescalations,omitempty"`
	WatchdogFires uint64 `json:"watchdog_fires,omitempty"`
	// DetectCycle is the absolute cycle of the first escalation, and
	// TimeToDetect its distance from the hazard onset; both 0 when the
	// supervisor never escalated (or was absent).
	DetectCycle  uint64 `json:"detect_cycle,omitempty"`
	TimeToDetect uint64 `json:"time_to_detect,omitempty"`
	// RecoverCycle is the absolute cycle of the last return to the base
	// rung, and TimeToRecover its distance from the hazard's end; both 0
	// when the machine never escalated. A machine still escalated at run
	// end reports FinalLevel > 0 and no recover cycle.
	RecoverCycle  uint64 `json:"recover_cycle,omitempty"`
	TimeToRecover uint64 `json:"time_to_recover,omitempty"`
	FinalLevel    int    `json:"final_level,omitempty"`
}

// StormCell is one (scenario, scheme, seed) campaign cell: the same-seed
// supervised/unsupervised twin outcomes side by side.
type StormCell struct {
	Scenario     string       `json:"scenario"`
	Scheme       string       `json:"scheme"`
	Seed         uint64       `json:"seed"`
	HazardOnset  uint64       `json:"hazard_onset,omitempty"`
	HazardEnd    uint64       `json:"hazard_end,omitempty"`
	Supervised   StormOutcome `json:"supervised"`
	Unsupervised StormOutcome `json:"unsupervised"`
}

// StormReport is the campaign artifact (schema tvsched/storm-report/v1).
// It contains no timestamps or host details, so reruns are byte-identical.
type StormReport struct {
	Schema  string                `json:"schema"`
	Bench   string                `json:"bench"`
	VDD     float64               `json:"vdd"`
	Insts   uint64                `json:"insts"`
	Warmup  uint64                `json:"warmup"`
	Horizon uint64                `json:"horizon"`
	Window  uint64                `json:"window"`
	Policy  core.SupervisorPolicy `json:"policy"`
	Cells   []StormCell           `json:"cells"`
}

// worstWindowObs tracks the worst cycles-per-retire ratio over fixed windows
// and the supervisor transition milestones, from the typed event stream.
type worstWindowObs struct {
	window   uint64
	winStart uint64
	started  bool
	retires  uint64
	last     uint64
	worst    float64

	detect  uint64 // first escalation cycle
	recover uint64 // last return-to-base cycle
}

func (w *worstWindowObs) flush(end uint64) {
	cycles := end - w.winStart
	if cycles == 0 {
		return
	}
	r := w.retires
	if r == 0 {
		r = 1
	}
	if cpi := float64(cycles) / float64(r); cpi > w.worst {
		w.worst = cpi
	}
	w.winStart, w.retires = end, 0
}

func (w *worstWindowObs) Event(e obs.Event) {
	if e.Kind == obs.KindSupervisor {
		if e.B > e.A && w.detect == 0 {
			w.detect = e.Cycle
		}
		if e.B == 0 && e.A > 0 {
			w.recover = e.Cycle
		}
	}
	if e.Cycle == 0 {
		return // component-level events carry no cycle
	}
	if !w.started {
		w.winStart, w.started = e.Cycle, true
	}
	// Event cycles are not monotone (retire-side events carry earlier stage
	// cycles); window boundaries track the high-water mark.
	if e.Cycle > w.last {
		w.last = e.Cycle
	}
	if e.Kind == obs.KindRetire {
		w.retires++
	}
	if w.last-w.winStart >= w.window {
		w.flush(w.last)
	}
}

// stormCell runs one twin of one cell and summarizes it.
func stormCell(ctx context.Context, cfg StormConfig, sc hazard.Scenario,
	scheme core.Scheme, seed uint64, supervised bool) (StormOutcome, error) {
	scfg := sim.Config{
		Benchmark: cfg.Bench,
		Scheme:    scheme,
		VDD:       cfg.VDD,
		Warmup:    cfg.Warmup,
		Seed:      seed,
	}
	if supervised {
		pol := cfg.Policy
		scfg.Supervisor = &pol
	}
	sess, err := sim.New(scfg)
	if err != nil {
		return StormOutcome{}, err
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = cfg.Insts
	}
	tl := sc.Build(seed, horizon)
	sess.SetHazard(tl)

	window := cfg.Window
	if window == 0 {
		window = cfg.Policy.Window
	}
	w := &worstWindowObs{window: window}
	sess.SetObserver(w)

	out := StormOutcome{}
	if err := sess.Warmup(ctx); err != nil {
		if ctx.Err() != nil {
			return StormOutcome{}, err
		}
		out.Error = err.Error()
	} else if st, err := sess.Run(ctx, cfg.Insts); err != nil {
		if ctx.Err() != nil {
			return StormOutcome{}, err
		}
		out.Error = err.Error()
		out.Cycles, out.Committed = st.Cycles, st.Committed
	} else {
		out.Survived = true
		out.Cycles, out.Committed = st.Cycles, st.Committed
		out.IPC = st.IPC()
		out.Escalations = st.SupEscalations
		out.Deescalations = st.SupDeescalations
		out.WatchdogFires = st.SupWatchdogFires
	}
	w.flush(w.last)
	out.WorstWindowCPI = w.worst
	if sup := sess.Supervisor(); sup != nil {
		out.FinalLevel = sup.Level()
	}
	if w.detect > 0 {
		out.DetectCycle = w.detect
		if on := tl.Onset(); w.detect > on {
			out.TimeToDetect = w.detect - on
		}
	}
	// A recovery only counts once the hazard is actually over (mid-hazard
	// probes that stepped back to base and got burned again do not).
	if end := tl.End(); w.recover > 0 && out.FinalLevel == 0 && end != ^uint64(0) {
		out.RecoverCycle = w.recover
		if w.recover > end {
			out.TimeToRecover = w.recover - end
		}
	}
	return out, nil
}

// RunStorm executes the campaign and assembles the report. Cell-level
// simulation failures (the very thing the campaign measures) are recorded in
// the outcome, not returned; only configuration and context errors are.
func RunStorm(ctx context.Context, cfg StormConfig) (*StormReport, error) {
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	scenarios := cfg.Scenarios
	if scenarios == nil {
		for _, s := range hazard.Scenarios() {
			scenarios = append(scenarios, s.Name)
		}
	}
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = []core.Scheme{core.Razor, core.EP, core.ABS}
	}
	seeds := cfg.Seeds
	if seeds == nil {
		seeds = []uint64{1}
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = cfg.Insts
	}
	window := cfg.Window
	if window == 0 {
		window = cfg.Policy.Window
	}

	// The cell sequence is the shared campaign cross product (scenario ×
	// scheme × seed, seeds fastest) — the same enumerator /v1/sweep and
	// tvplan use — then stably sorted by name so curated and ad-hoc scenario
	// lists produce the same report layout.
	type hazardSpan struct{ onset, end uint64 }
	spans := make([]hazardSpan, len(scenarios))
	for i, name := range scenarios {
		sc, err := hazard.Lookup(name)
		if err != nil {
			return nil, err
		}
		tl := sc.Build(seeds[0], horizon)
		onset, end := tl.Onset(), tl.End()
		if tl.Empty() {
			onset = 0
		}
		if end == ^uint64(0) {
			end = 0 // "never": omitted from the report
		}
		spans[i] = hazardSpan{onset, end}
	}
	lens := []int{len(scenarios), len(schemes), len(seeds)}
	total := campaign.Count(lens)
	if total < 0 {
		return nil, fmt.Errorf("storm campaign cross product overflows int")
	}
	cells := make([]StormCell, 0, total)
	campaign.Enumerate(lens, func(_ int, idx []int) bool {
		cells = append(cells, StormCell{
			Scenario: scenarios[idx[0]], Scheme: schemes[idx[1]].String(), Seed: seeds[idx[2]],
			HazardOnset: spans[idx[0]].onset, HazardEnd: spans[idx[0]].end,
		})
		return true
	})
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Scenario != cells[j].Scenario {
			return cells[i].Scenario < cells[j].Scenario
		}
		if cells[i].Scheme != cells[j].Scheme {
			return cells[i].Scheme < cells[j].Scheme
		}
		return cells[i].Seed < cells[j].Seed
	})

	workers := 1
	if cfg.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(cells) {
			workers = len(cells)
		}
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
		errs []error
	)
	runCell := func(i int) error {
		c := &cells[i]
		sc, err := hazard.Lookup(c.Scenario)
		if err != nil {
			return err
		}
		var scheme core.Scheme
		if err := scheme.UnmarshalText([]byte(c.Scheme)); err != nil {
			return err
		}
		if c.Supervised, err = stormCell(ctx, cfg, sc, scheme, c.Seed, true); err != nil {
			return err
		}
		c.Unsupervised, err = stormCell(ctx, cfg, sc, scheme, c.Seed, false)
		return err
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(cells) || len(errs) > 0 {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := runCell(i); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}

	return &StormReport{
		Schema:  StormReportSchema,
		Bench:   cfg.Bench,
		VDD:     cfg.VDD,
		Insts:   cfg.Insts,
		Warmup:  cfg.Warmup,
		Horizon: horizon,
		Window:  window,
		Policy:  cfg.Policy,
		Cells:   cells,
	}, nil
}

// Failures lists the supervised cells that did not survive — the campaign's
// pass/fail line: an unsupervised twin may die (that is the point of some
// scenarios), a supervised one must not.
func (r *StormReport) Failures() []string {
	var out []string
	for i := range r.Cells {
		c := &r.Cells[i]
		if !c.Supervised.Survived {
			out = append(out, fmt.Sprintf("%s/%s/seed%d: %s",
				c.Scenario, c.Scheme, c.Seed, c.Supervised.Error))
		}
	}
	return out
}
