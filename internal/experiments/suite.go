// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and the supplement): Table 1 (fault rates and Razor/EP
// overheads), Figures 4/5 (performance and ED overhead of ABS/FFS/CDS
// normalized to EP at 1.04 V), Figures 8/9 (the same at 0.97 V), Table 2
// (VTE area/power overhead), Table 3 (synthesized component characteristics)
// and Figure 7 (sensitized-path commonality). It is the engine behind
// cmd/tvbench and the root bench_test.go.
package experiments

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"tvsched/internal/core"
	"tvsched/internal/energy"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/pipeline"
	"tvsched/internal/sim"
	"tvsched/internal/workload"
)

// Config parameterizes a reproduction run.
type Config struct {
	// Insts is the committed-instruction count per simulated phase. The
	// paper uses 1M-instruction SimPoint phases; smaller counts run faster
	// with slightly noisier averages.
	Insts uint64
	// Warmup is the number of committed instructions simulated (after an L2
	// working-set prefill) before measurement begins.
	Warmup uint64
	// Seed drives all deterministic randomness.
	Seed uint64
	// Parallel runs independent simulations across CPUs. Results are
	// identical either way.
	Parallel bool
	// Observer, when non-nil, receives the event stream of every simulation
	// this config drives (warmup included). With Parallel set, simulations
	// run concurrently and all share this observer, so it must be safe for
	// concurrent use — obs.Metrics is; obs.ChromeTracer is too, though
	// interleaved-run traces are rarely what you want. Observers that also
	// implement obs.Sharder (Metrics, CPIStack, and Multi over them) get a
	// private lock-free shard per simulation, flushed into the parent when
	// the simulation ends — the hot Event path then never contends. Excluded
	// from JSON reports (it is machinery, not a result parameter).
	Observer obs.Observer `json:"-"`
	// Debug enables the pipeline's per-cycle invariant checker and end-of-run
	// drain check (pipeline.Config.Debug) on every simulation this config
	// drives. Roughly an order of magnitude slower; meant for correctness
	// sweeps (cmd/tvfuzz), not measurement runs.
	Debug bool
}

// DefaultConfig returns a configuration sized for interactive use: 300k
// measured instructions per phase. Pass Insts: 1e6 for paper-scale phases.
func DefaultConfig() Config {
	return Config{Insts: 300000, Warmup: 50000, Seed: 1, Parallel: true}
}

// Run is one simulation outcome.
type Run struct {
	Bench  string
	Scheme core.Scheme
	VDD    float64
	Stats  pipeline.Stats
	Energy energy.Result
	// Phases holds per-phase measurements when the run was phased
	// (SimulatePhased); empty for single-phase runs.
	Phases []PhaseStat
}

// PhaseStat summarizes one measured phase of a phased run.
type PhaseStat struct {
	Cycles    uint64
	Committed uint64
	Faults    uint64
}

// IPC returns the phase's instructions per cycle.
func (p *PhaseStat) IPC() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.Committed) / float64(p.Cycles)
}

// FaultRate returns the phase's violations per committed instruction.
func (p *PhaseStat) FaultRate() float64 {
	if p.Committed == 0 {
		return 0
	}
	return float64(p.Faults) / float64(p.Committed)
}

// PerfOverhead returns r's relative IPC degradation versus base.
func (r *Run) PerfOverhead(base *Run) float64 {
	if r.Stats.IPC() == 0 {
		return 0
	}
	ov := base.Stats.IPC()/r.Stats.IPC() - 1
	if ov < 0 {
		return 0 // measurement noise on sub-permille overheads
	}
	return ov
}

// EDOverhead returns r's relative energy-delay degradation versus base.
func (r *Run) EDOverhead(base *Run) float64 {
	ov := energy.Overhead(r.Energy, base.Energy)
	if ov < 0 {
		return 0
	}
	return ov
}

// Simulate runs one (benchmark, scheme, voltage) combination as a single
// measured phase.
func Simulate(bench string, scheme core.Scheme, vdd float64, cfg Config) (Run, error) {
	return SimulatePhasedContext(context.Background(), bench, scheme, vdd, cfg, 1)
}

// SimulateContext is Simulate with cancellation: the simulation stops within
// 256 simulated cycles of ctx being done and returns the context's error.
func SimulateContext(ctx context.Context, bench string, scheme core.Scheme, vdd float64, cfg Config) (Run, error) {
	return SimulatePhasedContext(ctx, bench, scheme, vdd, cfg, 1)
}

// SimulatePhased splits the measured run into `phases` consecutive phases of
// cfg.Insts/phases instructions each, mirroring the SimPoint methodology of
// §4.2 (multiple representative phases per benchmark). The aggregate Run
// covers all phases; per-phase IPC/fault-rate deltas ride along so callers
// can see phase behaviour and variance.
func SimulatePhased(bench string, scheme core.Scheme, vdd float64, cfg Config, phases int) (Run, error) {
	return SimulatePhasedContext(context.Background(), bench, scheme, vdd, cfg, phases)
}

// SimulatePhasedContext is SimulatePhased with cancellation.
func SimulatePhasedContext(ctx context.Context, bench string, scheme core.Scheme, vdd float64, cfg Config, phases int) (Run, error) {
	observer := cfg.Observer
	if s, ok := cfg.Observer.(obs.Sharder); ok {
		sh := s.Shard()
		observer = sh
		defer sh.Flush()
	}
	sess, err := sim.New(sim.Config{
		Benchmark: bench,
		Scheme:    scheme,
		VDD:       vdd,
		Warmup:    cfg.Warmup,
		Seed:      cfg.Seed,
		Observer:  observer,
		Debug:     cfg.Debug,
	})
	if err != nil {
		return Run{}, err
	}
	if err := sess.Warmup(ctx); err != nil {
		return Run{}, err
	}
	if phases < 1 {
		phases = 1
	}
	per := cfg.Insts / uint64(phases)
	if per == 0 {
		per = 1
	}
	var (
		st        pipeline.Stats
		phaseList []PhaseStat
		prev      pipeline.Stats
	)
	for i := 0; i < phases; i++ {
		n := per
		if i == phases-1 {
			n = cfg.Insts - per*uint64(phases-1) // remainder into the last phase
		}
		st, err = sess.Run(ctx, n)
		if err != nil {
			return Run{}, err
		}
		if phases > 1 {
			phaseList = append(phaseList, PhaseStat{
				Cycles:    st.Cycles - prev.Cycles,
				Committed: st.Committed - prev.Committed,
				Faults:    st.Faults - prev.Faults,
			})
			prev = st
		}
	}
	return Run{
		Bench:  bench,
		Scheme: scheme,
		VDD:    vdd,
		Stats:  st,
		Energy: energy.Compute(energy.Default45nm(), &st),
		Phases: phaseList,
	}, nil
}

type runKey struct {
	bench  string
	scheme core.Scheme
	vdd    float64
}

// Suite memoizes simulation runs so Table 1 and the four figures share them.
type Suite struct {
	cfg  Config
	ctx  context.Context
	mu   sync.Mutex
	runs map[runKey]Run
}

// NewSuite builds an empty suite.
func NewSuite(cfg Config) *Suite {
	return NewSuiteContext(context.Background(), cfg)
}

// NewSuiteContext builds an empty suite whose simulations run under ctx:
// cancel it and every in-flight and future simulation returns the context's
// error. The context is stored because the suite memoizes lazily — table and
// figure methods simulate on first use, long after construction.
func NewSuiteContext(ctx context.Context, cfg Config) *Suite {
	return &Suite{cfg: cfg, ctx: ctx, runs: make(map[runKey]Run)}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// get returns the memoized run for key, simulating on first use.
func (s *Suite) get(k runKey) (Run, error) {
	s.mu.Lock()
	r, ok := s.runs[k]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	r, err := SimulateContext(s.ctx, k.bench, k.scheme, k.vdd, s.cfg)
	if err != nil {
		return Run{}, err
	}
	s.mu.Lock()
	s.runs[k] = r
	s.mu.Unlock()
	return r, nil
}

// prefetch simulates the given combinations, in parallel when configured.
func (s *Suite) prefetch(keys []runKey) error {
	// Drop already-memoized keys.
	s.mu.Lock()
	var todo []runKey
	for _, k := range keys {
		if _, ok := s.runs[k]; !ok {
			todo = append(todo, k)
		}
	}
	s.mu.Unlock()
	if len(todo) == 0 {
		return nil
	}
	workers := 1
	if s.cfg.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(todo) {
			workers = len(todo)
		}
	}
	var (
		wg   sync.WaitGroup
		next int
		nmu  sync.Mutex
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := s.ctx.Err(); err != nil {
					nmu.Lock()
					errs = append(errs, err)
					nmu.Unlock()
					return
				}
				nmu.Lock()
				if next >= len(todo) {
					nmu.Unlock()
					return
				}
				k := todo[next]
				next++
				nmu.Unlock()
				if _, err := s.get(k); err != nil {
					nmu.Lock()
					errs = append(errs, err)
					nmu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// faultFree returns the fault-free baseline run for bench (age-based
// selection at the nominal supply, §4.2).
func (s *Suite) faultFree(bench string) (Run, error) {
	return s.get(runKey{bench, core.ABS, fault.VNominal})
}

// benches returns the Table 1 benchmark list.
func benches() []string { return workload.Names() }

// keysFor enumerates the combinations the full evaluation needs.
func keysFor(schemes []core.Scheme, vdds []float64) []runKey {
	var keys []runKey
	for _, b := range benches() {
		keys = append(keys, runKey{b, core.ABS, fault.VNominal})
		for _, v := range vdds {
			for _, sch := range schemes {
				keys = append(keys, runKey{b, sch, v})
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bench != keys[j].bench {
			return keys[i].bench < keys[j].bench
		}
		if keys[i].scheme != keys[j].scheme {
			return keys[i].scheme < keys[j].scheme
		}
		return keys[i].vdd < keys[j].vdd
	})
	return keys
}
