package experiments

import (
	"strings"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
)

// quickCfg keeps suite tests fast; the shapes tested here are robust down to
// short phases.
func quickCfg() Config {
	return Config{Insts: 40000, Warmup: 12000, Seed: 1, Parallel: true}
}

func TestSimulateBasics(t *testing.T) {
	r, err := Simulate("bzip2", core.ABS, fault.VNominal, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Committed != 40000 {
		t.Fatalf("committed %d", r.Stats.Committed)
	}
	if r.Stats.Faults != 0 {
		t.Fatal("faults at nominal voltage")
	}
	if r.Energy.TotalPJ() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestSimulateUnknownBench(t *testing.T) {
	if _, err := Simulate("nope", core.ABS, fault.VNominal, quickCfg()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestOverheadClamping(t *testing.T) {
	base := Run{}
	base.Stats.Cycles = 100
	base.Stats.Committed = 100
	slow := Run{}
	slow.Stats.Cycles = 125
	slow.Stats.Committed = 100
	if ov := slow.PerfOverhead(&base); ov < 0.24 || ov > 0.26 {
		t.Fatalf("overhead %v, want 0.25", ov)
	}
	// Faster than baseline clamps to zero (noise).
	if ov := base.PerfOverhead(&slow); ov != 0 {
		t.Fatalf("negative overhead not clamped: %v", ov)
	}
}

func TestSuiteMemoizes(t *testing.T) {
	s := NewSuite(quickCfg())
	k := runKey{"mcf", core.ABS, fault.VNominal}
	a, err := s.get(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.get(k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.Energy != b.Energy {
		t.Fatal("memoized run differs")
	}
	if len(s.runs) != 1 {
		t.Fatalf("runs cached: %d", len(s.runs))
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	s := NewSuite(quickCfg())
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("12 benchmarks expected, got %d", len(rows))
	}
	for _, r := range rows {
		if r.FaultFreeIPC <= 0 {
			t.Errorf("%s: zero IPC", r.Bench)
		}
		// Fault rates grow as voltage drops.
		if r.FRHigh <= r.FRLow {
			t.Errorf("%s: FR ordering broken (%v vs %v)", r.Bench, r.FRHigh, r.FRLow)
		}
		// Razor costs more than EP in both environments (Table 1's shape).
		if r.RazorHigh.Perf <= r.EPHigh.Perf {
			t.Errorf("%s: Razor %v not above EP %v at 0.97V", r.Bench, r.RazorHigh.Perf, r.EPHigh.Perf)
		}
		// ED overheads exceed performance overheads (leakage during stalls).
		if r.EPHigh.ED <= r.EPHigh.Perf {
			t.Errorf("%s: EP ED %v not above perf %v", r.Bench, r.EPHigh.ED, r.EPHigh.Perf)
		}
		// Sanity only: the short phases used in tests have visible
		// phase-to-phase IPC variance; the full-scale calibration against
		// Table 1 is recorded in EXPERIMENTS.md (run cmd/tvbench -n 300000).
		if r.FaultFreeIPC < r.PaperIPC*0.45 || r.FaultFreeIPC > r.PaperIPC*2.2 {
			t.Errorf("%s: IPC %v far from paper %v", r.Bench, r.FaultFreeIPC, r.PaperIPC)
		}
	}
	txt := FormatTable1(rows)
	if !strings.Contains(txt, "sjeng") || !strings.Contains(txt, "Razor") {
		t.Error("formatted table incomplete")
	}
}

func TestFigure8Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs are slow in -short mode")
	}
	s := NewSuite(quickCfg())
	fig, err := s.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 11 {
		t.Fatalf("Figure 8 drops povray: got %d rows", len(fig.Rows))
	}
	// The headline: the proposed schemes eliminate most of EP's overhead
	// (paper: 88%% average reduction at 0.97V; accept anything above 60%%
	// for short phases).
	if red := fig.Reduction(); red < 60 || red > 99 {
		t.Fatalf("average overhead reduction %v%% outside plausible band", red)
	}
	for _, r := range fig.Rows {
		if r.ABS < 0 || r.ABS > 0.9 {
			t.Errorf("%s: ABS relative overhead %v implausible", r.Bench, r.ABS)
		}
	}
	txt := FormatFigure(fig)
	if !strings.Contains(txt, "AVERAGE") {
		t.Error("figure format missing average")
	}
}

func TestTable3Values(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("4 components expected")
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Module] = r
		if r.Gates <= 0 || r.LogicDepth <= 0 {
			t.Errorf("%s: degenerate metrics", r.Module)
		}
	}
	if byName["alu32"].Gates <= byName["agen"].Gates {
		t.Error("ALU must have the most gates (Table 3 shape)")
	}
	if byName["fwdcheck"].LogicDepth >= byName["iqselect"].LogicDepth {
		t.Error("forward check must be the shallowest")
	}
	if !strings.Contains(FormatTable3(rows), "alu32") {
		t.Error("format incomplete")
	}
}

func TestTable2Values(t *testing.T) {
	rows := Table2()
	if len(rows) != 3 {
		t.Fatal("3 schemes expected")
	}
	if rows[0].Scheme != "ABS" || rows[2].Scheme != "CDS" {
		t.Fatal("scheme order")
	}
	if rows[0] != (Table2Row{Scheme: "FFS", SchedArea: rows[0].SchedArea, SchedDyn: rows[0].SchedDyn,
		SchedLeak: rows[0].SchedLeak, CoreArea: rows[0].CoreArea, CoreDyn: rows[0].CoreDyn, CoreLeak: rows[0].CoreLeak}) {
		// ABS and FFS rows must carry identical numbers.
		abs, ffs := rows[0], rows[1]
		abs.Scheme, ffs.Scheme = "", ""
		if abs != ffs {
			t.Error("ABS and FFS must have identical overheads")
		}
	}
	if rows[2].SchedArea <= rows[0].SchedArea*3 {
		t.Error("CDS must cost several times ABS in scheduler area")
	}
	if !strings.Contains(FormatTable2(rows), "core-level") {
		t.Error("format incomplete")
	}
}

func TestFigure7Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level grid is slow in -short mode")
	}
	d := Figure7(1)
	if len(d.Results) != 24 {
		t.Fatalf("6x4 grid expected, got %d", len(d.Results))
	}
	for _, avg := range d.Averages {
		if avg < 0.8 || avg > 0.98 {
			t.Errorf("component average %v outside band", avg)
		}
	}
	if !strings.Contains(FormatFigure7(d), "vortex") {
		t.Error("format incomplete")
	}
}

func TestReductionCI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow in -short mode")
	}
	cfg := Config{Insts: 25000, Warmup: 8000, Parallel: true}
	vals, mean, sigma, err := ReductionCI("fig8", cfg, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("vals %v", vals)
	}
	if mean < 40 || mean > 99 {
		t.Fatalf("mean reduction %v implausible", mean)
	}
	if sigma < 0 {
		t.Fatalf("sigma %v", sigma)
	}
	if _, _, _, err := ReductionCI("nope", cfg, []uint64{1}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, _, _, err := ReductionCI("fig8", cfg, nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	// The README promises harness parallelism never changes results.
	cfgP := Config{Insts: 20000, Warmup: 6000, Seed: 4, Parallel: true}
	cfgS := cfgP
	cfgS.Parallel = false

	sp := NewSuite(cfgP)
	ss := NewSuite(cfgS)
	keys := keysFor([]core.Scheme{core.EP, core.ABS}, []float64{fault.VHighFault})
	if err := sp.prefetch(keys); err != nil {
		t.Fatal(err)
	}
	if err := ss.prefetch(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		rp, err := sp.get(k)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ss.get(k)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Stats != rs.Stats {
			t.Fatalf("parallel and serial diverge for %+v", k)
		}
	}
}
