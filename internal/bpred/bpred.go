// Package bpred implements the front-end branch prediction used by the
// pipeline model: a gshare direction predictor, a direct-mapped branch target
// buffer, and a return-address stack. The paper's Core-1 configuration has a
// 10-stage misprediction loop from fetch to execute (§4.1); the predictor
// here determines *when* that loop is paid. The global-history register it
// maintains is also the history the Timing Error Predictor folds into its
// index (§2.1.1).
package bpred

import "tvsched/internal/rng"

// Config sizes the predictor structures.
type Config struct {
	// HistoryBits is the global-history length and the log2 size of the
	// pattern history table.
	HistoryBits int
	// BTBEntries is the number of branch-target-buffer entries (power of 2).
	BTBEntries int
	// RASEntries is the return-address-stack depth.
	RASEntries int
}

// DefaultConfig returns a predictor comparable to a mid-2000s 4-wide core:
// 12 bits of history (4K-entry PHT), 1K-entry BTB, 16-deep RAS.
func DefaultConfig() Config {
	return Config{HistoryBits: 12, BTBEntries: 1024, RASEntries: 16}
}

// Stats counts predictor outcomes.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// MispredictRate returns mispredicts per branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is a gshare + BTB + RAS front-end predictor.
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters
	phtMask uint64
	history uint64
	histMsk uint64
	btb     []btbEntry
	btbMask uint64
	ras     []uint64
	rasTop  int
	Stats   Stats
}

// New builds a predictor; pht counters start weakly taken.
func New(cfg Config) *Predictor {
	phtSize := 1 << cfg.HistoryBits
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, phtSize),
		phtMask: uint64(phtSize - 1),
		histMsk: uint64(phtSize - 1),
		btb:     make([]btbEntry, cfg.BTBEntries),
		btbMask: uint64(cfg.BTBEntries - 1),
		ras:     make([]uint64, cfg.RASEntries),
	}
	for i := range p.pht {
		p.pht[i] = 2 // weakly taken
	}
	return p
}

// History returns the current global branch history register (low bits). The
// TEP mixes this into its table index, per §2.1.1.
func (p *Predictor) History() uint64 { return p.history }

func (p *Predictor) phtIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.phtMask
}

// Predict returns the predicted direction and target for the branch at pc.
// If the BTB misses, the target is unknown (0) and the front end must
// fall through until resolution even on a predicted-taken branch.
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64) {
	taken = p.pht[p.phtIndex(pc)] >= 2
	e := &p.btb[(pc>>2)&p.btbMask]
	if e.valid && e.tag == pc {
		target = e.target
	}
	return taken, target
}

// Update trains the predictor with the resolved outcome and maintains global
// history. It returns whether the prediction (direction and, for taken
// branches, target) was correct.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) bool {
	p.Stats.Branches++
	idx := p.phtIndex(pc)
	predTaken := p.pht[idx] >= 2
	e := &p.btb[(pc>>2)&p.btbMask]
	predTarget := uint64(0)
	if e.valid && e.tag == pc {
		predTarget = e.target
	}
	correct := predTaken == taken && (!taken || predTarget == target)
	if taken && (predTarget == 0 || predTarget != target) {
		p.Stats.BTBMisses++
	}
	if !correct {
		p.Stats.Mispredicts++
	}
	// Train the 2-bit counter.
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	// Install/refresh the BTB entry for taken branches.
	if taken {
		*e = btbEntry{tag: pc, target: target, valid: true}
	}
	// Shift history.
	p.history = ((p.history << 1) | b2u(taken)) & p.histMsk
	return correct
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret uint64) {
	p.ras[p.rasTop%len(p.ras)] = ret
	p.rasTop++
}

// PopRAS predicts a return target; returns 0 if the stack is empty.
func (p *Predictor) PopRAS() uint64 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

// Reset clears all state.
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 2
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	p.history = 0
	p.rasTop = 0
	p.Stats = Stats{}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// OracleNoise is a helper predictor model used by the trace-driven pipeline:
// because the workload supplies the committed path, the pipeline charges a
// misprediction penalty stochastically at the profile's mispredict rate
// rather than simulating wrong-path fetch. OracleNoise decides, per branch,
// whether this dynamic branch mispredicts, deterministically from the seed
// and the branch's sequence number, while still training the real gshare
// structures (so TEP history indexing stays realistic).
type OracleNoise struct {
	rate float64
	src  *rng.Source
}

// NewOracleNoise builds a mispredict-noise source with the given per-branch
// rate and deterministic seed.
func NewOracleNoise(rate float64, seed uint64) *OracleNoise {
	return &OracleNoise{rate: rate, src: rng.New(seed)}
}

// Mispredict reports whether this dynamic branch instance mispredicts.
func (o *OracleNoise) Mispredict() bool {
	if o.rate <= 0 {
		return false
	}
	return o.src.Bool(o.rate)
}

// Rate returns the configured misprediction rate.
func (o *OracleNoise) Rate() float64 { return o.rate }
