package bpred

import (
	"testing"
	"testing/quick"
)

func TestAlwaysTakenLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := uint64(0x400), uint64(0x800)
	// Train.
	for i := 0; i < 10; i++ {
		p.Update(pc, true, target)
	}
	taken, tgt := p.Predict(pc)
	if !taken || tgt != target {
		t.Fatalf("after training: taken=%v target=%#x", taken, tgt)
	}
}

func TestAlwaysNotTakenLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400)
	for i := 0; i < 10; i++ {
		p.Update(pc, false, 0)
	}
	if taken, _ := p.Predict(pc); taken {
		t.Fatal("predicts taken after not-taken training")
	}
}

func TestAlternatingPatternWithHistory(t *testing.T) {
	// gshare with global history learns strict alternation.
	p := New(DefaultConfig())
	pc, target := uint64(0x1000), uint64(0x2000)
	correct := 0
	n := 2000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if p.Update(pc, taken, target) {
			correct++
		}
	}
	// After warmup the pattern is fully predictable; allow warmup slack.
	if correct < n*9/10 {
		t.Fatalf("alternating pattern only %d/%d correct", correct, n)
	}
}

func TestMispredictCounting(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x40)
	p.Update(pc, true, 0x80) // BTB cold: target unknown -> mispredict
	if p.Stats.Branches != 1 {
		t.Fatalf("branches %d", p.Stats.Branches)
	}
	if p.Stats.Mispredicts == 0 {
		t.Fatal("cold taken branch with unknown target must mispredict")
	}
}

func TestHistoryShifts(t *testing.T) {
	p := New(DefaultConfig())
	p.Update(0x40, true, 0x80)
	if p.History()&1 != 1 {
		t.Fatal("history LSB should be 1 after taken")
	}
	p.Update(0x40, false, 0)
	if p.History()&1 != 0 {
		t.Fatal("history LSB should be 0 after not-taken")
	}
	if (p.History()>>1)&1 != 1 {
		t.Fatal("previous outcome should have shifted up")
	}
}

func TestRAS(t *testing.T) {
	p := New(DefaultConfig())
	if p.PopRAS() != 0 {
		t.Fatal("empty RAS should return 0")
	}
	p.PushRAS(0x100)
	p.PushRAS(0x200)
	if v := p.PopRAS(); v != 0x200 {
		t.Fatalf("RAS pop = %#x", v)
	}
	if v := p.PopRAS(); v != 0x100 {
		t.Fatalf("RAS pop = %#x", v)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 4
	p := New(cfg)
	for i := 0; i < 10; i++ {
		p.PushRAS(uint64(i))
	}
	// Deep pushes overwrite; pops must still return the most recent ones.
	if v := p.PopRAS(); v != 9 {
		t.Fatalf("top of wrapped RAS = %d", v)
	}
}

func TestReset(t *testing.T) {
	p := New(DefaultConfig())
	p.Update(0x40, true, 0x80)
	p.PushRAS(1)
	p.Reset()
	if p.Stats.Branches != 0 || p.History() != 0 || p.PopRAS() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMispredictRate(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("zero-branch rate")
	}
	s = Stats{Branches: 100, Mispredicts: 7}
	if s.MispredictRate() != 0.07 {
		t.Fatalf("rate %v", s.MispredictRate())
	}
}

func TestOracleNoiseDeterminism(t *testing.T) {
	a := NewOracleNoise(0.05, 99)
	b := NewOracleNoise(0.05, 99)
	for i := 0; i < 1000; i++ {
		if a.Mispredict() != b.Mispredict() {
			t.Fatal("oracle noise not deterministic")
		}
	}
}

func TestOracleNoiseRate(t *testing.T) {
	o := NewOracleNoise(0.1, 5)
	n, miss := 100000, 0
	for i := 0; i < n; i++ {
		if o.Mispredict() {
			miss++
		}
	}
	rate := float64(miss) / float64(n)
	if rate < 0.09 || rate > 0.11 {
		t.Fatalf("oracle rate %v, want ~0.1", rate)
	}
	if o.Rate() != 0.1 {
		t.Fatalf("Rate() = %v", o.Rate())
	}
}

func TestOracleNoiseZero(t *testing.T) {
	o := NewOracleNoise(0, 1)
	for i := 0; i < 100; i++ {
		if o.Mispredict() {
			t.Fatal("zero-rate oracle mispredicted")
		}
	}
}

// Property: history register always fits within HistoryBits.
func TestHistoryBoundedProperty(t *testing.T) {
	p := New(Config{HistoryBits: 8, BTBEntries: 64, RASEntries: 4})
	f := func(pc uint64, taken bool) bool {
		p.Update(pc, taken, pc+4)
		return p.History() < (1 << 8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Stats.Mispredicts never exceeds Stats.Branches.
func TestStatsSanityProperty(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pc uint64, taken bool) bool {
		p.Update(pc&0xffff, taken, (pc^0xabc)&0xffff)
		return p.Stats.Mispredicts <= p.Stats.Branches
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := uint64(i%512) * 4
		p.Predict(pc)
		p.Update(pc, i%3 == 0, pc+16)
	}
}
