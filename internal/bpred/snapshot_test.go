package bpred

import (
	"testing"

	"tvsched/internal/rng"
	"tvsched/internal/snap"
)

// TestPredictorSnapshotRoundTrip trains a predictor on a pseudo-random
// branch stream, restores it into a fresh predictor, and requires identical
// predictions and training outcomes afterwards.
func TestPredictorSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	src := rng.New(11)
	branch := func() (pc uint64, taken bool, tgt uint64) {
		pc = uint64(0x400000 + 4*src.Intn(4000))
		taken = src.Bool(0.6)
		tgt = pc + uint64(4*(1+src.Intn(50)))
		return
	}
	for i := 0; i < 30000; i++ {
		pc, taken, tgt := branch()
		p.Update(pc, taken, tgt)
	}
	p.PushRAS(0x1234)
	p.PushRAS(0x5678)

	var w snap.Writer
	p.AppendState(&w)
	p2 := New(cfg)
	if err := p2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	// Restore zeroes statistics (the warmup-boundary contract); zero the
	// original's too so both accumulate from the same point below.
	p.Stats = Stats{}
	if p2.History() != p.History() {
		t.Fatal("history not restored")
	}
	if a, b := p.PopRAS(), p2.PopRAS(); a != b {
		t.Fatalf("RAS diverged: %#x vs %#x", a, b)
	}
	for i := 0; i < 30000; i++ {
		pc, taken, tgt := branch()
		t1, g1 := p.Predict(pc)
		t2, g2 := p2.Predict(pc)
		if t1 != t2 || g1 != g2 {
			t.Fatalf("prediction diverged at %d", i)
		}
		if c1, c2 := p.Update(pc, taken, tgt), p2.Update(pc, taken, tgt); c1 != c2 {
			t.Fatalf("training diverged at %d", i)
		}
	}
	if p.Stats != p2.Stats {
		t.Fatal("post-restore statistics diverged")
	}
}

func TestPredictorSnapshotGeometryMismatch(t *testing.T) {
	p := New(DefaultConfig())
	var w snap.Writer
	p.AppendState(&w)
	small := New(Config{HistoryBits: 4, BTBEntries: 16, RASEntries: 4})
	if err := small.ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestOracleNoiseSnapshotRoundTrip(t *testing.T) {
	o := NewOracleNoise(0.05, 9)
	for i := 0; i < 1000; i++ {
		o.Mispredict()
	}
	var w snap.Writer
	o.AppendState(&w)
	o2 := NewOracleNoise(0.05, 1) // wrong seed, stream overwritten
	if err := o2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if o.Mispredict() != o2.Mispredict() {
			t.Fatalf("noise streams diverged at %d", i)
		}
	}
}
