package bpred

import (
	"fmt"

	"tvsched/internal/snap"
)

// AppendState serializes the predictor's learned state: the full pattern
// history table, global history, every valid BTB entry (sparse, by index),
// and the return-address stack. Statistics are not serialized — snapshots
// are taken at the warmup boundary, where the pipeline zeroes them.
func (p *Predictor) AppendState(w *snap.Writer) {
	w.U32(uint32(len(p.pht)))
	for _, c := range p.pht {
		w.U8(c)
	}
	w.U64(p.history)
	w.U32(uint32(len(p.btb)))
	n := 0
	for i := range p.btb {
		if p.btb[i].valid {
			n++
		}
	}
	w.U32(uint32(n))
	for i := range p.btb {
		if p.btb[i].valid {
			w.U32(uint32(i))
			w.U64(p.btb[i].tag)
			w.U64(p.btb[i].target)
		}
	}
	w.U32(uint32(len(p.ras)))
	for _, v := range p.ras {
		w.U64(v)
	}
	w.I64(int64(p.rasTop))
}

// ReadState restores state written by AppendState into a predictor of
// identical geometry; mismatched table sizes are rejected. Statistics are
// zeroed.
func (p *Predictor) ReadState(r *snap.Reader) error {
	if got := int(r.U32()); got != len(p.pht) {
		return fmt.Errorf("%w: pht size %d, have %d", snap.ErrCorrupt, got, len(p.pht))
	}
	for i := range p.pht {
		p.pht[i] = r.U8()
	}
	p.history = r.U64()
	if got := int(r.U32()); got != len(p.btb) {
		return fmt.Errorf("%w: btb size %d, have %d", snap.ErrCorrupt, got, len(p.btb))
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	n := int(r.U32())
	if n > len(p.btb) {
		return fmt.Errorf("%w: %d valid btb entries of %d", snap.ErrCorrupt, n, len(p.btb))
	}
	for k := 0; k < n; k++ {
		i := int(r.U32())
		if i >= len(p.btb) {
			return fmt.Errorf("%w: btb index %d out of range", snap.ErrCorrupt, i)
		}
		p.btb[i] = btbEntry{tag: r.U64(), target: r.U64(), valid: true}
	}
	if got := int(r.U32()); got != len(p.ras) {
		return fmt.Errorf("%w: ras size %d, have %d", snap.ErrCorrupt, got, len(p.ras))
	}
	for i := range p.ras {
		p.ras[i] = r.U64()
	}
	p.rasTop = int(r.I64())
	p.Stats = Stats{}
	return r.Err()
}

// AppendState serializes the oracle's RNG stream position (the rate is
// configuration, rebuilt by the restoring side).
func (o *OracleNoise) AppendState(w *snap.Writer) { o.src.AppendState(w) }

// ReadState restores the oracle's RNG stream position.
func (o *OracleNoise) ReadState(r *snap.Reader) error { return o.src.ReadState(r) }
