// Package core implements the paper's primary contribution: the Violation
// Tolerant Enhancement (VTE) of the issue stage and the violation-aware
// instruction scheduling algorithms of §3 — Age Based Selection (ABS),
// Faulty First Selection (FFS) and Criticality Driven Selection (CDS) — along
// with the comparative schemes they are evaluated against (Razor instruction
// replay and Error Padding stalls).
//
// The package is deliberately free of simulator plumbing: it defines the
// scheduling-visible state of an issue-queue entry, the selection-priority
// logic (§3.5.1), the Functional Unit State Register (§3.3.3), the
// Criticality Detection Logic (§3.5.2), and the decision table mapping a
// (scheme, predicted?, stage) triple to the micro-architectural response
// (§2.2, §3.3). The pipeline simulator consumes these pieces.
package core

import (
	"errors"
	"fmt"

	"tvsched/internal/isa"
)

// ErrUnknownScheme is wrapped by ParseScheme/UnmarshalText failures, so
// callers can match them with errors.Is. The public facade re-exports it.
var ErrUnknownScheme = errors.New("unknown scheme")

// Scheme identifies a timing-error handling scheme (§5, "Comparative
// Schemes").
type Scheme uint8

const (
	// Razor fires an instruction replay for every error in the system [3];
	// it does not use the TEP.
	Razor Scheme = iota
	// EP (Error Padding) is the baseline: it introduces a whole-pipeline
	// stall cycle for each predicted error, similar to [12, 13].
	EP
	// ABS is violation-aware scheduling with age-based selection.
	ABS
	// FFS is violation-aware scheduling with faulty-first selection.
	FFS
	// CDS is violation-aware scheduling with criticality-driven selection.
	CDS
	// NumSchemes is the number of schemes.
	NumSchemes
)

// String returns the scheme name as used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Razor:
		return "Razor"
	case EP:
		return "EP"
	case ABS:
		return "ABS"
	case FFS:
		return "FFS"
	case CDS:
		return "CDS"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// ParseScheme converts a name (case-sensitive, as printed by String) to a
// Scheme.
func ParseScheme(name string) (Scheme, error) {
	for s := Razor; s < NumSchemes; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: %w %q", ErrUnknownScheme, name)
}

// MarshalText implements encoding.TextMarshaler, so Scheme round-trips
// through JSON, flag.TextVar and friends using the paper's names.
func (s Scheme) MarshalText() ([]byte, error) {
	if s >= NumSchemes {
		return nil, fmt.Errorf("core: %w (%d)", ErrUnknownScheme, uint8(s))
	}
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; it accepts exactly the
// names String produces (round-trip with ParseScheme).
func (s *Scheme) UnmarshalText(text []byte) error {
	v, err := ParseScheme(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// UsesTEP reports whether the scheme consults the Timing Error Predictor.
// Razor is purely reactive.
func (s Scheme) UsesTEP() bool { return s != Razor }

// Confined reports whether the scheme uses the violation-aware scheduling
// framework (penalty confined to the faulty instruction and its dependents).
func (s Scheme) Confined() bool { return s == ABS || s == FFS || s == CDS }

// Policy returns the issue-selection policy the scheme uses. Fault-free
// execution and the EP baseline use age-based selection (§4.2).
func (s Scheme) Policy() Policy {
	switch s {
	case FFS:
		return FaultyFirst
	case CDS:
		return CriticalityDriven
	default:
		return AgeBased
	}
}

// Action is the micro-architectural response to a timing violation.
type Action uint8

const (
	// ActNone: proceed normally (no violation, or prediction suppressed).
	ActNone Action = iota
	// ActConfined: the VTE response — the instruction occupies its stage one
	// extra cycle, its resource slot is frozen for the following cycle, and
	// its tag broadcast is delayed one cycle (§3.1, §3.2).
	ActConfined
	// ActGlobalStall: the EP response — the whole pipeline stalls one cycle
	// while the faulty stage completes in two.
	ActGlobalStall
	// ActFrontStall: the in-order-engine response (§2.2) — rename/dispatch/
	// retire recirculate their inputs for one cycle; the OoO engine runs on.
	ActFrontStall
	// ActReplay: error recovery by instruction replay, as in Razor (§2.1.2).
	ActReplay
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActConfined:
		return "confined"
	case ActGlobalStall:
		return "global-stall"
	case ActFrontStall:
		return "front-stall"
	case ActReplay:
		return "replay"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Respond is the decision table of §2.2 and §3.3: given the handling scheme,
// whether the violation was predicted early by the TEP, and the pipe stage
// it occurs in, it returns the response the machine takes.
//
//   - Unpredicted violations always trigger replay (all schemes; Razor
//     predicts nothing so everything replays).
//   - Predicted violations in fetch/decode cannot be mitigated by the TEP
//     path and replay as well (§2.2) — rare in practice [17].
//   - Predicted violations in the in-order engine (rename/dispatch/retire)
//     are tolerated by a localized stall under every TEP-using scheme.
//   - Predicted violations in the OoO engine are the interesting case:
//     EP stalls the whole pipeline; ABS/FFS/CDS confine the penalty.
func Respond(s Scheme, predicted bool, stage isa.Stage) Action {
	if !predicted || !s.UsesTEP() {
		return ActReplay
	}
	switch {
	case stage.ReplayOnly():
		return ActReplay
	case stage.StallTolerable():
		if s == EP {
			return ActGlobalStall
		}
		return ActFrontStall
	case stage.InOoOEngine():
		if s == EP {
			return ActGlobalStall
		}
		return ActConfined
	default:
		return ActReplay
	}
}

// Schemes returns all schemes in paper order.
func Schemes() []Scheme { return []Scheme{Razor, EP, ABS, FFS, CDS} }

// Proposed returns the paper's three proposed schemes.
func Proposed() []Scheme { return []Scheme{ABS, FFS, CDS} }
