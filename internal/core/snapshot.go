package core

import (
	"fmt"

	"tvsched/internal/snap"
)

// AppendState serializes the FUSR's lane reservations. Lane kinds are
// configuration (rebuilt by the restoring side) and only sanity-checked.
func (f *FUSR) AppendState(w *snap.Writer) {
	w.U32(uint32(len(f.lanes)))
	for i := range f.lanes {
		w.U8(uint8(f.lanes[i].Kind))
		w.U64(f.lanes[i].nextFree)
	}
}

// ReadState restores lane reservations written by AppendState; a mismatched
// lane count or kind layout is rejected.
func (f *FUSR) ReadState(r *snap.Reader) error {
	if got := int(r.U32()); got != len(f.lanes) {
		return fmt.Errorf("%w: %d lanes, have %d", snap.ErrCorrupt, got, len(f.lanes))
	}
	for i := range f.lanes {
		if k := FUKind(r.U8()); k != f.lanes[i].Kind {
			return fmt.Errorf("%w: lane %d kind %v, have %v", snap.ErrCorrupt, i, k, f.lanes[i].Kind)
		}
		f.lanes[i].nextFree = r.U64()
	}
	return r.Err()
}
