package core

import (
	"fmt"

	"tvsched/internal/obs"
)

// FUKind classifies the functional-unit lanes of the Core-1 execute stage:
// single-cycle simple ALUs (which also resolve branches), a multi-cycle
// complex ALU, and a memory port feeding the load-store unit (§3.3.3, §4.1).
type FUKind uint8

const (
	FUSimple FUKind = iota
	FUComplex
	FUMemory
	NumFUKinds
)

// String names the FU kind.
func (k FUKind) String() string {
	switch k {
	case FUSimple:
		return "simple"
	case FUComplex:
		return "complex"
	case FUMemory:
		return "memory"
	default:
		return fmt.Sprintf("fu(%d)", uint8(k))
	}
}

// Lane describes one functional-unit lane.
type Lane struct {
	Kind FUKind
	// nextFree is the first cycle at which a new instruction may be issued
	// to this lane. Pipelined lanes advance it by one per issue;
	// non-pipelined operations reserve the lane for their full latency;
	// VTE slot freezing pushes it one further (§3.2.3, §3.3.3).
	nextFree uint64
}

// FUSR is the Functional Unit State Register of §3.3.3: one state per lane
// indicating whether a new instruction can be issued to that unit in the
// next cycle. Issue-slot freezing for faulty instructions (§3.2.3) is
// implemented by extending a lane's busy time by one cycle.
type FUSR struct {
	lanes []Lane
	obs   obs.Observer
}

// SetObserver attaches o to the FUSR's slot-freeze paths: every freeze the
// VTE applies (§3.2.3, §3.3) fires a KindSlotFreeze event. nil detaches.
func (f *FUSR) SetObserver(o obs.Observer) { f.obs = o }

// NewFUSR builds the lane set for the Core-1 configuration: nSimple simple
// ALUs, nComplex complex ALUs and nMemory memory ports.
func NewFUSR(nSimple, nComplex, nMemory int) *FUSR {
	f := &FUSR{}
	for i := 0; i < nSimple; i++ {
		f.lanes = append(f.lanes, Lane{Kind: FUSimple})
	}
	for i := 0; i < nComplex; i++ {
		f.lanes = append(f.lanes, Lane{Kind: FUComplex})
	}
	for i := 0; i < nMemory; i++ {
		f.lanes = append(f.lanes, Lane{Kind: FUMemory})
	}
	return f
}

// NumLanes returns the total lane count.
func (f *FUSR) NumLanes() int { return len(f.lanes) }

// Kind returns the kind of lane i.
func (f *FUSR) Kind(i int) FUKind { return f.lanes[i].Kind }

// Available returns the index of a lane of the given kind that can accept an
// instruction at cycle, or -1 if none can.
func (f *FUSR) Available(kind FUKind, cycle uint64) int {
	for i := range f.lanes {
		if f.lanes[i].Kind == kind && f.lanes[i].nextFree <= cycle {
			return i
		}
	}
	return -1
}

// Issue marks lane as having accepted an instruction at cycle.
//
//   - A pipelined unit accepts a new instruction every cycle: busy 1 cycle.
//   - A non-pipelined unit is reserved for the operation's full latency
//     (occupancy cycles).
//   - faulty applies the paper's slot freeze: the FUSR bit stays off one
//     extra cycle so no new instruction issues right behind the faulty one.
//     For non-pipelined units the busy state likewise extends one cycle
//     beyond the expected completion (§3.3.3); for multi-cycle pipelined
//     units the conservative policy of §3.3.3 — no new issue to the unit
//     until the faulty instruction completes — is modeled by reserving the
//     lane for the full occupancy as if it were unpipelined.
func (f *FUSR) Issue(lane int, cycle uint64, occupancy int, pipelined, faulty bool) {
	busy := 1
	if !pipelined {
		busy = occupancy
	}
	if faulty {
		if pipelined && occupancy > 1 {
			busy = occupancy // hold the whole pipelined unit (§3.3.3)
		}
		busy++
	}
	until := cycle + uint64(busy)
	if until > f.lanes[lane].nextFree {
		f.lanes[lane].nextFree = until
	}
	if faulty && f.obs != nil {
		f.obs.Event(obs.Event{Kind: obs.KindSlotFreeze, Cycle: cycle, Lane: int16(lane), A: until})
	}
}

// Freeze blocks lane for one extra cycle starting at cycle (used for
// register-read port blocking and writeback slot recirculation, §3.3.2 and
// §3.3.5, which share the mechanism).
func (f *FUSR) Freeze(lane int, cycle uint64) {
	if until := cycle + 1; until > f.lanes[lane].nextFree {
		f.lanes[lane].nextFree = until
	}
	if f.obs != nil {
		f.obs.Event(obs.Event{Kind: obs.KindSlotFreeze, Cycle: cycle, Lane: int16(lane), A: cycle + 1})
	}
}

// ShiftAll pushes every pending lane reservation one cycle later; used when
// the whole pipeline recirculates for a stall cycle.
func (f *FUSR) ShiftAll(cycle uint64) {
	for i := range f.lanes {
		if f.lanes[i].nextFree > cycle {
			f.lanes[i].nextFree++
		}
	}
}

// NextFree exposes a lane's next-free cycle (diagnostics and tests).
func (f *FUSR) NextFree(lane int) uint64 { return f.lanes[lane].nextFree }

// Reset clears all lane reservations.
func (f *FUSR) Reset() {
	for i := range f.lanes {
		f.lanes[i].nextFree = 0
	}
}

// KindFor maps an instruction-class occupancy to its lane kind. Loads and
// stores use the memory port; multiplies and divides the complex ALU;
// everything else (ALU ops and branches) the simple ALUs.
func KindFor(isMem, isComplex bool) FUKind {
	switch {
	case isMem:
		return FUMemory
	case isComplex:
		return FUComplex
	default:
		return FUSimple
	}
}
