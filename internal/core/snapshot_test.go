package core

import (
	"testing"

	"tvsched/internal/snap"
)

func TestFUSRSnapshotRoundTrip(t *testing.T) {
	f := NewFUSR(3, 1, 2)
	f.Issue(0, 10, 1, true, false)
	f.Issue(3, 10, 12, false, true)
	f.Freeze(4, 20)

	var w snap.Writer
	f.AppendState(&w)
	f2 := NewFUSR(3, 1, 2)
	if err := f2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.NumLanes(); i++ {
		if f.NextFree(i) != f2.NextFree(i) {
			t.Fatalf("lane %d reservation %d != %d", i, f.NextFree(i), f2.NextFree(i))
		}
	}
}

func TestFUSRSnapshotLaneMismatch(t *testing.T) {
	f := NewFUSR(3, 1, 2)
	var w snap.Writer
	f.AppendState(&w)
	if err := NewFUSR(2, 1, 2).ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("lane count mismatch accepted")
	}
	// Same count, different kind layout must also be rejected.
	if err := NewFUSR(4, 1, 1).ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("lane kind mismatch accepted")
	}
}
